"""Provider risk report (§3.5) + a mitigation plan (§3.10).

What a cellular provider's risk team would run: their fleet's exposure
by WHP class and radio technology, then a budgeted hardening plan for
the highest-impact sites.

Usage::

    python examples/provider_risk_report.py [provider] [budget_sites]
"""

import sys

from repro import SyntheticUS, UniverseConfig, mitigation_plan
from repro.core import report
from repro.core.provider_risk import (
    provider_risk_analysis,
    regional_carriers_at_risk,
)
from repro.core.technology import technology_risk_analysis
from repro.data.cells import PROVIDER_GROUPS


def main() -> None:
    provider = sys.argv[1] if len(sys.argv) > 1 else "AT&T"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    if provider not in PROVIDER_GROUPS:
        raise SystemExit(f"provider must be one of {PROVIDER_GROUPS}")

    universe = SyntheticUS(UniverseConfig(n_transceivers=60_000,
                                          whp_resolution_deg=0.1))

    print("=== Table 2: provider risk ===")
    rows = provider_risk_analysis(universe)
    print(report.render_table2(rows))
    print(f"\nregional carriers with at-risk assets: "
          f"{regional_carriers_at_risk(universe)} (paper: 46)")

    print("\n=== Table 3: technology risk ===")
    print(report.render_table3(technology_risk_analysis(universe)))

    mine = next(r for r in rows if r.provider == provider)
    print(f"\n{provider}: {mine.total_at_risk:,} at-risk transceivers "
          f"({mine.total_at_risk / max(mine.fleet_size, 1):.1%} of fleet)")

    print(f"\n=== §3.10: hardening plan, budget = {budget} sites ===")
    plan = mitigation_plan(universe, budget_sites=budget)
    print(f"{'site':>8}  {'WHP':>3}  {'tx':>3}  {'providers':>9}  "
          f"{'county pop':>12}  actions")
    for site in plan.hardened[:15]:
        actions = ", ".join(a.name.lower().replace("_", " ")
                            for a in plan.actions[site.site_id])
        print(f"{site.site_id:>8}  {site.whp_class:>3}  "
              f"{site.n_transceivers:>3}  {site.n_providers:>9}  "
              f"{site.county_population:>12,}  {actions}")
    print(f"... plan covers {plan.covered_transceivers} transceivers "
          f"across counties with {plan.covered_population:,} residents")


if __name__ == "__main__":
    main()
