"""The 2019 California case study (§3.2 and §3.4).

Reproduces the paper's Figure 5 — daily cell-site outages by cause
during the PG&E Public Safety Power Shutoffs, 25 Oct – 1 Nov 2019 —
and the §3.4 validation: how well did the Wildfire Hazard Potential map
predict the transceivers that ended up inside the 2019 fire perimeters?

Usage::

    python examples/california_2019_case_study.py
"""

from repro import (
    SyntheticUS,
    UniverseConfig,
    case_study_analysis,
    extend_very_high,
    validate_whp_2019,
)
from repro.core import report
from repro.viz.ascii import bar_chart


def main() -> None:
    universe = SyntheticUS(UniverseConfig(n_transceivers=60_000,
                                          whp_resolution_deg=0.1))

    print("=== Figure 5: cell-site outages during the PG&E blackouts ===")
    summary = case_study_analysis(universe)
    print(report.render_figure5(summary))
    print("\nDaily totals:")
    print(bar_chart(summary.days, summary.totals(), width=40))
    print(f"\nKey finding: {summary.peak_power_share:.0%} of the "
          f"peak-day outages were POWER loss, not fire damage —\n"
          f"the paper's central §3.2 observation (paper: >80%).")

    print("\n=== §3.4: validating WHP against the 2019 fire season ===")
    validation = validate_whp_2019(universe, oversample=16)
    print(report.render_validation(validation))
    print("\nThe misses concentrate in two Los Angeles fires whose"
          "\nfootprints covered roads and urban fringe that WHP rates"
          "\nlow-risk — exactly the anomaly the paper reports for the"
          "\nSaddle Ridge and Tick fires.")

    print("\n=== §3.8: extending the very-high regions ===")
    extension = extend_very_high(universe)
    print(report.render_extension(extension))


if __name__ == "__main__":
    main()
