"""Power dependency and coverage loss — the §3.11 follow-on analyses.

The paper's case study showed power loss dominates wildfire cell
outages, and its limitations section flags two open questions this
example answers with the library's extension modules:

1. *How far beyond the fire perimeters does the power channel reach?*
   (`repro.core.power`) — substations, transmission lines, and
   distribution feeders crossing burned or de-energized terrain.
2. *What does losing the at-risk sites mean for service coverage?*
   (`repro.core.coverage`) — population whose only coverage comes from
   at-risk sites.

Usage::

    python examples/power_and_coverage.py
"""

from repro import SyntheticUS, UniverseConfig
from repro.core.coverage import coverage_loss_analysis
from repro.core.power import (
    fire_power_impact,
    power_grid_for,
    psps_exposure,
)
from repro.data.whp import WHPClass


def main() -> None:
    universe = SyntheticUS(UniverseConfig(n_transceivers=60_000,
                                          whp_resolution_deg=0.1))
    grid = power_grid_for(universe)
    print(f"synthetic grid: {grid.n_substations} substations, "
          f"{grid.n_lines} transmission lines, "
          f"{len(grid.site_substation):,} dependent cell sites")

    print("\n=== Fire seasons: direct vs power-mediated outages ===")
    print("(an upper bound: no feeder sectionalizing is modeled)")
    for year in (2017, 2018, 2019):
        impact = fire_power_impact(universe, year, grid=grid)
        print(f"  {year}: {impact.sites_direct:>4} sites inside "
              f"perimeters, {impact.sites_indirect:>5} more lose power "
              f"({impact.substations_hit} substations hit, "
              f"{impact.lines_cut} lines cut)")
    print("\nThe power channel dwarfs direct damage — the paper's §3.2 "
          "finding\n(874 sites out vs ~21 damaged in the 2019 event).")

    exposure = psps_exposure(universe, grid=grid)
    print(f"\nStanding PSPS exposure: {exposure.sites_exposed:,} of "
          f"{exposure.sites_total:,} sites ({exposure.exposed_share:.0%})"
          f"\nhang off lines or feeders crossing high/very-high WHP "
          f"terrain.")

    print("\n=== Coverage loss if the at-risk sites go dark ===")
    for floor in (WHPClass.MODERATE, WHPClass.HIGH, WHPClass.VERY_HIGH):
        r = coverage_loss_analysis(universe, hazard_floor=floor)
        print(f"  losing {floor.name:>9} + sites "
              f"({r.sites_lost:>5,}): {r.population_lost / 1e6:>5.1f}M "
              f"people lose all coverage ({r.lost_share:.2%} of US)")
    print("\nNote the asymmetry the paper's §3.6 impact index misses: "
          "85M+ people live in\ncounties with at-risk transceivers, but "
          "urban redundancy means an order of\nmagnitude fewer would "
          "actually lose coverage — the stranded users are rural/WUI.")


if __name__ == "__main__":
    main()
