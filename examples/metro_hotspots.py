"""Metro hotspot analysis (§3.6–§3.7, Figures 11–13).

Ranks metro areas by at-risk infrastructure, shows the city-level
"very-high WHP in very-dense counties" counts, and renders the WHP map
windows around the Los Angeles/San Diego and Bay Area WUI rings.

Usage::

    python examples/metro_hotspots.py
"""

from repro import (
    SyntheticUS,
    UniverseConfig,
    city_very_high_counts,
    metro_risk_analysis,
    population_impact_analysis,
)
from repro.core import report
from repro.viz.figures import figure13


def main() -> None:
    universe = SyntheticUS(UniverseConfig(n_transceivers=60_000,
                                          whp_resolution_deg=0.1))

    print("=== Figure 10: WHP x county-density matrix ===")
    print(report.render_figure10(population_impact_analysis(universe)))

    print("\n=== Figure 12: metro ranking ===")
    print(report.render_figure12(metro_risk_analysis(universe)))

    print("\n=== §3.6: very-high WHP in >1.5M counties, by city ===")
    for city, count in sorted(city_very_high_counts(universe).items(),
                              key=lambda kv: -kv[1]):
        print(f"  {city:>24}: {count:,}")

    print("\n=== Figure 13: metro WHP windows "
          "(m=moderate H=high #=very high) ===")
    print(figure13(universe, width=70).ascii_art)
    print("\nNote the paper's §3.7 observation: hazard is absent from "
          "the urban cores\nand ocean, and rises with distance toward "
          "the wildland-urban interface.")


if __name__ == "__main__":
    main()
