"""Future wildfire risk (§3.9) and the escape-model extension (§3.11).

Overlays the Salt Lake City–Denver corridor ecoregions (with Littell et
al. 2040s projections) on cellular infrastructure, and runs the paper's
proposed HOT-style escape-probability extension to quantify how much
infrastructure a static hazard map misses.

Usage::

    python examples/future_climate_planning.py
"""

from repro import (
    SyntheticUS,
    UniverseConfig,
    escape_adjusted_risk,
    future_risk_analysis,
)
from repro.core import report
from repro.viz.figures import figure15


def main() -> None:
    universe = SyntheticUS(UniverseConfig(n_transceivers=60_000,
                                          whp_resolution_deg=0.1))

    print("=== Figures 14/15: SLC-Denver ecoregion projections ===")
    rows = future_risk_analysis(universe)
    print(report.render_ecoregions(rows))

    i80 = next(r for r in rows if "I-80" in r.name)
    print(f"\nThe I-80 corridor ecoregion expects "
          f"+{i80.delta_2040_pct:.0f}% area burned by the 2040s; "
          f"{i80.transceivers:,} transceivers\n(scaled) serve that "
          f"corridor — the paper's argument for hardening that route.")

    print("\nWHP in the corridor window:")
    print(figure15(universe, width=80).ascii_art)

    print("\n=== §3.11 extension: escape-probability model (HOT) ===")
    for p in (0.2, 0.05, 0.02):
        result = escape_adjusted_risk(universe, reach_probability=p)
        print(f"  P(reach) >= {p:.2f}: at-risk "
              f"{result.static_at_risk:,} -> "
              f"{result.escape_adjusted_at_risk:,} "
              f"(+{result.added_transceivers:,})")
    print("\nEven a 5% escape-reach threshold adds substantially to the "
          "static at-risk set —\nquantifying the §3.11 limitation that "
          "WHP ignores fires spreading into low-risk areas.")


if __name__ == "__main__":
    main()
