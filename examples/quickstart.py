"""Quickstart: build a synthetic US and reproduce the headline result.

Runs the paper's central analysis — how many cell transceivers sit in
moderate/high/very-high Wildfire Hazard Potential areas, and where —
on a small synthetic universe (~1 minute end to end).

Usage::

    python examples/quickstart.py [n_transceivers]
"""

import sys

from repro import (
    SyntheticUS,
    UniverseConfig,
    hazard_analysis,
    population_served_at_risk,
)
from repro.core import report


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    print(f"building a synthetic US with {n:,} transceivers ...")
    universe = SyntheticUS(UniverseConfig(n_transceivers=n,
                                          whp_resolution_deg=0.1))

    summary = hazard_analysis(universe)

    print("\nTransceivers at wildfire risk (scaled to the paper's "
          "5,364,949-transceiver universe):\n")
    print(report.render_figure7(summary))

    print("\nStates with the most at-risk transceivers (Figure 8):\n")
    print(report.render_figure8(summary, n=7))

    served = population_served_at_risk(universe, summary)
    print(f"\nPopulation of the counties containing at-risk "
          f"transceivers: {served / 1e6:.0f}M (paper: >85M)")


if __name__ == "__main__":
    main()
