"""Render the paper's map figures as real images (binary PPM).

Writes Figure 2 (all transceivers), Figure 4 (transceivers inside fire
perimeters), Figure 6 (the WHP map, paper palette) and a Figure 13
window (LA/San Diego WUI) into a directory; PPM opens in any image
viewer and converts with ``convert x.ppm x.png``.

Usage::

    python examples/render_figure_maps.py [outdir]
"""

import sys
from pathlib import Path

from repro import SyntheticUS, UniverseConfig, total_in_perimeters
from repro.geo.geometry import BBox
from repro.viz.image import (
    save_class_image,
    save_density_image,
    write_ppm,
    class_image,
    WHP_PALETTE,
)


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    outdir.mkdir(parents=True, exist_ok=True)

    universe = SyntheticUS(UniverseConfig(n_transceivers=60_000,
                                          whp_resolution_deg=0.05))
    cells = universe.cells
    bbox = universe.population.grid.bbox

    path = save_density_image(cells.lons, cells.lats, bbox,
                              outdir / "figure2_transceivers.ppm")
    print(f"wrote {path} (Figure 2: all transceivers)")

    _, mask = total_in_perimeters(universe)
    path = save_density_image(cells.lons[mask], cells.lats[mask], bbox,
                              outdir / "figure4_in_perimeters.ppm")
    print(f"wrote {path} (Figure 4: transceivers in perimeters)")

    whp = universe.whp
    path = save_class_image(whp.raster.data, whp.grid,
                            outdir / "figure6_whp.ppm")
    print(f"wrote {path} (Figure 6: WHP, red/yellow = high hazard)")

    # Figure 13 middle panel: the LA / San Diego WUI window.
    window = BBox(-119.5, 32.3, -116.0, 35.2)
    grid = whp.grid
    r0, c0 = grid.rowcol(window.min_lon, window.max_lat)
    r1, c1 = grid.rowcol(window.max_lon, window.min_lat)
    sub = whp.raster.data[int(r0):int(r1), int(c0):int(c1)]
    write_ppm(class_image(sub, WHP_PALETTE),
              outdir / "figure13_la_sd_window.ppm")
    print(f"wrote {outdir / 'figure13_la_sd_window.ppm'} "
          f"(Figure 13: LA/SD WUI window)")

    print("\nconvert to PNG with e.g.:  "
          "for f in figures/*.ppm; do convert $f ${f%.ppm}.png; done")


if __name__ == "__main__":
    main()
