"""Swapping in real data.

The synthetic generators exist because the paper's inputs are bulky or
proprietary, but every pipeline runs on the standard interchange
formats, so real data drops in:

* transceivers — an OpenCelliD-layout CSV (``CellUniverse.from_csv``),
* fire perimeters — GeoJSON polygons (``repro.geo.load_features``).

This example round-trips synthetic data through both formats and re-runs
an overlay from the files, which is exactly the code path a real
OpenCelliD snapshot and real GeoMAC perimeters would take.

Usage::

    python examples/bring_your_own_data.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import SyntheticUS, UniverseConfig, overlay_fires
from repro.data.cells import CellUniverse
from repro.data.wildfires import FirePerimeter
from repro.geo import dump_features, feature, load_features


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path(tempfile.mkdtemp(prefix="fivealarms-"))
    workdir.mkdir(parents=True, exist_ok=True)

    universe = SyntheticUS(UniverseConfig(n_transceivers=20_000,
                                          whp_resolution_deg=0.1))

    # --- export ---------------------------------------------------------
    cells_csv = workdir / "cells.csv"
    universe.cells.to_csv(cells_csv)
    print(f"wrote {cells_csv} ({len(universe.cells):,} transceivers, "
          f"OpenCelliD column layout)")

    fires = universe.fire_season(2019).fires[:50]
    fires_geojson = workdir / "perimeters_2019.geojson"
    dump_features(
        [feature(f.polygon, {"name": f.name, "year": f.year,
                             "acres": f.acres,
                             "start_doy": f.start_doy,
                             "end_doy": f.end_doy}) for f in fires],
        fires_geojson)
    print(f"wrote {fires_geojson} ({len(fires)} perimeters, GeoJSON)")

    # --- import and re-run the overlay ----------------------------------
    cells = CellUniverse.from_csv(cells_csv)
    loaded = []
    for geom, props in load_features(fires_geojson):
        loaded.append(FirePerimeter(
            name=props["name"], year=props["year"],
            start_doy=props["start_doy"], end_doy=props["end_doy"],
            acres=props["acres"], polygon=geom))

    result = overlay_fires(cells, loaded, year=2019)
    print(f"\noverlay from files: {result.n_in_perimeter} transceivers "
          f"inside {result.n_fires} perimeters")
    top = sorted(result.per_fire_counts.items(),
                 key=lambda kv: -kv[1])[:5]
    for name, count in top:
        print(f"  {name:>16}: {count}")

    print("\nTo run on real data: download an OpenCelliD snapshot into "
          "cells.csv and GeoMAC\nperimeters into perimeters.geojson, "
          "then use these same loaders.")


if __name__ == "__main__":
    main()
