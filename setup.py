"""Setup shim.

This environment is offline and has no ``wheel`` package, so PEP 517
editable installs (which build an editable wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which needs only setuptools.
"""

from setuptools import setup

setup()
