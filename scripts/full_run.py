"""Full-pipeline run at benchmark scale; output feeds EXPERIMENTS.md."""
import time

from repro import *
from repro.core import report, regional_carriers_at_risk

t0 = time.time()
u = default_universe()

print("=== UNIVERSE ===")
print(f"n_transceivers={len(u.cells):,} sites={u.cells.n_sites():,} "
      f"scale={u.universe_scale:.1f}")

print("\n=== TABLE 1 (historical) ===")
rows = historical_analysis(u)
print(report.render_table1(rows))
tot, _ = total_in_perimeters(u)
print(f"total in perimeters 2000-2018 (scaled): {tot:,} | paper >27,000")

print("\n=== FIGURE 5 (case study) ===")
print(report.render_figure5(case_study_analysis(u)))

print("\n=== FIGURE 7/8/9 (hazard) ===")
summ = hazard_analysis(u)
print(report.render_figure7(summ))
print(report.render_figure8(summ))
print(report.render_figure9(summ))
print("population served at risk:",
      f"{population_served_at_risk(u, summ):,} | paper >85M")

print("\n=== S3.4 VALIDATION ===")
print(report.render_validation(validate_whp_2019(u, oversample=16)))

print("\n=== S3.8 EXTENSION ===")
print(report.render_extension(extend_very_high(u)))

print("\n=== TABLE 2 (providers) ===")
print(report.render_table2(provider_risk_analysis(u)))
print("regional carriers at risk:", regional_carriers_at_risk(u),
      "| paper 46")

print("\n=== TABLE 3 (technology) ===")
print(report.render_table3(technology_risk_analysis(u)))

print("\n=== FIGURE 10 (population impact) ===")
print(report.render_figure10(population_impact_analysis(u)))

print("\n=== FIGURE 12 (metros) ===")
print(report.render_figure12(metro_risk_analysis(u)))
print("city VH counts:", city_very_high_counts(u))

print("\n=== FIGURES 14/15 (ecoregions) ===")
print(report.render_ecoregions(future_risk_analysis(u)))

print("\n=== MITIGATION (S3.10) ===")
plan = mitigation_plan(u, budget_sites=50)
print(f"hardened {len(plan.hardened)} sites covering "
      f"{plan.covered_transceivers} transceivers")

print("\n=== ESCAPE MODEL (S3.11) ===")
esc = escape_adjusted_risk(u)
print(f"static at-risk {esc.static_at_risk:,} -> escape-adjusted "
      f"{esc.escape_adjusted_at_risk:,} (+{esc.added_transceivers:,})")

print(f"\ntotal wall time: {time.time()-t0:.1f}s")
