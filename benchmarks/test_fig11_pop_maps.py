"""Figure 11: three map panels of at-risk x density subsets (§3.6)."""

from conftest import print_result

from repro.viz.figures import figure11


def test_fig11_pop_maps(benchmark, universe):
    art = benchmark.pedantic(figure11, args=(universe,),
                             rounds=1, iterations=1)
    print_result("FIGURE 11 — density subsets", art.ascii_art)
    assert art.data["vh_both"] <= art.data["vh_pop"] <= art.data["all"]
    assert art.data["all"] > 0
