"""Figure 6: conterminous US Wildfire Hazard Potential."""

from conftest import print_result

from repro.viz.figures import figure6


def test_fig6_whp_map(benchmark, universe):
    art = benchmark.pedantic(figure6, args=(universe,),
                             rounds=1, iterations=1)
    print_result("FIGURE 6 — WHP map "
                 "(m=moderate H=high #=very high)", art.ascii_art)
    histogram = art.data
    assert histogram[5] < histogram[4] < histogram[3]  # cells per class
