"""Figure 10: transceivers by WHP class and county density (§3.6)."""

from conftest import print_result

from repro.core import report
from repro.core.population_impact import population_impact_analysis


def test_fig10_pop_matrix(benchmark, universe):
    impact = benchmark.pedantic(population_impact_analysis,
                                args=(universe,), rounds=1, iterations=1)
    print_result("FIGURE 10 — WHP x density matrix",
                 report.render_figure10(impact))

    assert 15 <= impact.n_vh_pop_counties <= 35      # paper: 23
    assert 20_000 < impact.at_risk_in_vh_pop_counties < 200_000
