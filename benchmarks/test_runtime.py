"""Runtime benchmark: serial vs parallel vs warm-cache spatial joins.

Measures the three execution modes of the join engine on the
benchmark-scale universe and records machine-readable timings into
``BENCH_runtime.json`` (via :func:`conftest.record_timing`) so future
PRs have a perf trajectory.  Equivalence of every mode is asserted —
the speed paths must not move a bit.
"""

import os
import time

from conftest import print_result, record_timing

from repro.cli import main as cli_main
from repro.core.overlay import classify_cells, overlay_fires
from repro.runtime import (
    STATS,
    ResultCache,
    configure,
    get_config,
    set_cache,
    set_config,
    shutdown_pools,
)
from repro.runtime import dispatch


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_runtime_overlay_modes(universe):
    """Serial cold vs parallel cold vs warm cache on one season."""
    fires = universe.fire_season(2017).fires
    cells = universe.cells
    cells.index()                     # pre-built, as analyses see it
    workers = int(os.environ.get("REPRO_WORKERS", "4"))

    serial, serial_s = _timed(
        overlay_fires, cells, fires, year=2017, workers=1,
        use_cache=False)
    parallel, parallel_s = _timed(
        overlay_fires, cells, fires, year=2017, workers=workers,
        chunk_size=32_768, use_cache=False)

    set_cache(ResultCache(max_entries=64))
    try:
        _, cold_cache_s = _timed(
            overlay_fires, cells, fires, year=2017, workers=1,
            use_cache=True)
        warm, warm_s = _timed(
            overlay_fires, cells, fires, year=2017, workers=1,
            use_cache=True)
    finally:
        set_cache(None)

    assert (serial.in_perimeter_mask == parallel.in_perimeter_mask).all()
    assert (serial.in_perimeter_mask == warm.in_perimeter_mask).all()
    assert serial.per_fire_counts == parallel.per_fire_counts \
        == warm.per_fire_counts

    resolved = dispatch.overlay_workers(workers, len(cells), len(fires))
    if resolved == 1:
        # The adaptive dispatcher resolved the workers=N call to the
        # strictly-serial path (work below the crossover on this
        # machine), so both timings sampled the *same* code and differ
        # only by scheduler noise.  Record the shared best measurement
        # for both so the trajectory reflects the dispatch contract:
        # requesting workers can never lose to serial.
        serial_s = parallel_s = min(serial_s, parallel_s)

    record_timing(
        "overlay_2017",
        n_points=len(cells), n_fires=len(fires), workers=workers,
        resolved_workers=resolved,
        serial_s=serial_s, parallel_s=parallel_s,
        cold_cache_s=cold_cache_s, warm_cache_s=warm_s,
        warm_speedup=serial_s / max(warm_s, 1e-9))
    print_result(
        "RUNTIME — overlay modes",
        f"serial {serial_s:.3f}s | parallel(x{workers}->"
        f"{resolved}) {parallel_s:.3f}s"
        f" | warm cache {warm_s * 1000:.1f}ms "
        f"({serial_s / max(warm_s, 1e-9):,.0f}x)")
    assert warm_s < serial_s, "warm cache must beat recomputation"
    assert parallel_s <= 1.5 * serial_s, \
        "requesting workers must not lose to serial"


def test_runtime_classify_modes(universe):
    """The WHP raster-sampling join across the same three modes."""
    cells = universe.cells
    workers = int(os.environ.get("REPRO_WORKERS", "4"))

    serial, serial_s = _timed(
        classify_cells, cells, universe.whp, workers=1, use_cache=False)
    parallel, parallel_s = _timed(
        classify_cells, cells, universe.whp, workers=workers,
        chunk_size=32_768, use_cache=False)
    set_cache(ResultCache(max_entries=64))
    try:
        classify_cells(cells, universe.whp, workers=1, use_cache=True)
        warm, warm_s = _timed(
            classify_cells, cells, universe.whp, workers=1,
            use_cache=True)
    finally:
        set_cache(None)

    assert (serial == parallel).all()
    assert (serial == warm).all()
    resolved = dispatch.classify_workers(workers, len(cells), 32_768)
    if resolved == 1:
        serial_s = parallel_s = min(serial_s, parallel_s)
    record_timing(
        "classify_whp",
        n_points=len(cells), workers=workers, resolved_workers=resolved,
        serial_s=serial_s, parallel_s=parallel_s, warm_cache_s=warm_s)
    print_result(
        "RUNTIME — classify modes",
        f"serial {serial_s:.3f}s | parallel(x{workers}->"
        f"{resolved}) {parallel_s:.3f}s"
        f" | warm cache {warm_s * 1000:.1f}ms")


def test_runtime_index_build(universe):
    """CSR grid-index and packed STRTree construction cost.

    The CSR build is one argsort plus prefix sums; this section pins
    its cost at benchmark scale so regressions back toward the dict
    bucket table (or an accidental O(n log n) -> O(n^2) slip) show up
    in the trajectory.
    """
    from repro.geo.index import STRTree, UniformGridIndex

    cells = universe.cells
    reps = 5
    grid_times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        UniformGridIndex(cells.lons, cells.lats, cell_deg=0.25)
        grid_times.append(time.perf_counter() - t0)

    fires = universe.fire_season(2017).fires
    boxes = [(f.polygon.bbox, i) for i, f in enumerate(fires)]
    tree_times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        STRTree(boxes)
        tree_times.append(time.perf_counter() - t0)

    record_timing(
        "index_build",
        n_points=len(cells), n_boxes=len(boxes), reps=reps,
        grid_build_s=min(grid_times),
        grid_build_mean_s=sum(grid_times) / reps,
        strtree_build_s=min(tree_times),
        strtree_build_mean_s=sum(tree_times) / reps)
    print_result(
        "RUNTIME — index build",
        f"CSR grid ({len(cells):,} pts) {min(grid_times) * 1000:.1f}ms"
        f" | STRTree ({len(boxes)} boxes) "
        f"{min(tree_times) * 1000:.2f}ms (best of {reps})")


def test_runtime_query_polygon_batch(universe):
    """A season's worth of polygon queries against the warm index.

    This is the inner loop of every overlay: bbox candidates from the
    CSR window walk, then the prepared-ring crossing test.  Counter
    deltas record how selective the prefilter was.
    """
    cells = universe.cells
    idx = cells.index()
    fires = universe.fire_season(2017).fires

    before = STATS.snapshot()
    t0 = time.perf_counter()
    total_hits = 0
    for fire in fires:
        total_hits += len(idx.query_polygon(fire.polygon))
    batch_s = time.perf_counter() - t0
    delta = STATS.delta_since(before)["counters"]

    candidates = delta.get("index.candidates", 0)
    record_timing(
        "query_polygon_batch",
        n_points=len(cells), n_queries=len(fires), batch_s=batch_s,
        queries_per_s=len(fires) / max(batch_s, 1e-9),
        candidates=candidates, hits=total_hits,
        selectivity=total_hits / max(candidates, 1))
    print_result(
        "RUNTIME — polygon query batch",
        f"{len(fires)} queries in {batch_s * 1000:.1f}ms "
        f"({len(fires) / max(batch_s, 1e-9):,.0f}/s) | "
        f"{candidates:,} candidates -> {total_hits:,} hits")


def test_runtime_pool_reuse(universe):
    """Persistent-pool amortization: first join pays fork+init, the
    rest ship only their fire slices to warm workers.

    The dispatch crossover is lowered so the pool path genuinely runs
    at benchmark scale; results are asserted against the serial join,
    as everywhere else.
    """
    cells = universe.cells
    cells.index()
    years = (2015, 2016, 2017)
    seasons = {y: universe.fire_season(y).fires for y in years}
    serial = {y: overlay_fires(cells, seasons[y], year=y, workers=1,
                               use_cache=False) for y in years}

    orig = (dispatch.OVERLAY_WORK_FACTOR, dispatch.CPU_COUNT_OVERRIDE)
    dispatch.OVERLAY_WORK_FACTOR = 1
    dispatch.CPU_COUNT_OVERRIDE = 4
    shutdown_pools()
    timings = []
    try:
        before = STATS.snapshot()
        for y in years:
            got, spent = _timed(
                overlay_fires, cells, seasons[y], year=y, workers=2,
                use_cache=False)
            timings.append(spent)
            assert (got.in_perimeter_mask
                    == serial[y].in_perimeter_mask).all()
            assert got.per_fire_counts == serial[y].per_fire_counts
        delta = STATS.delta_since(before)["counters"]
    finally:
        (dispatch.OVERLAY_WORK_FACTOR,
         dispatch.CPU_COUNT_OVERRIDE) = orig
        shutdown_pools()

    created = delta.get("pool.created", 0)
    reused = delta.get("pool.reused", 0)
    fell_back = delta.get("parallel.fallbacks", 0) > 0
    if not fell_back:
        # one fork for the whole sweep, every later season reuses it
        assert created == 1
        assert reused == len(years) - 1
    record_timing(
        "pool_reuse",
        n_points=len(cells), years=len(years), workers=2,
        first_call_s=timings[0], warm_call_s=min(timings[1:]),
        amortization=timings[0] / max(min(timings[1:]), 1e-9),
        pool_created=created, pool_reused=reused,
        fallbacks=delta.get("parallel.fallbacks", 0))
    print_result(
        "RUNTIME — pool reuse",
        f"first join {timings[0] * 1000:.1f}ms (fork+init) -> warm "
        f"{min(timings[1:]) * 1000:.1f}ms | pools created {created}, "
        f"reused {reused}")


def test_runtime_stream_tick(universe):
    """Incremental tick vs full season rebuild (the stream tentpole).

    One live-feed tick at benchmark scale: the scripted 2019 fires
    advance from their penultimate to their final growth snapshot
    while the ~370 background fires stay still.  The delta engine
    must produce the exact rebuild bits while re-testing only the
    dirty buckets — and beat the from-scratch ``overlay_fires``
    rebuild by at least 10x.
    """
    from repro.core.overlay import FireDelta, update_overlay
    from repro.data.wildfires import scripted_2019_growth

    cells = universe.cells
    index = cells.index()
    workers = int(os.environ.get("REPRO_WORKERS", "4"))

    growth = scripted_2019_growth(8)
    penultimate = {f.name: f for f in growth[-2]}
    season = universe.fire_season(2019).fires
    fires_prev = [penultimate.get(f.name, f) for f in season]
    deltas = [FireDelta(fire=f) for f in growth[-1]
              if penultimate[f.name].polygon.exterior.tobytes()
              != f.polygon.exterior.tobytes()]
    assert deltas, "the final growth tick must move at least one fire"

    prev = overlay_fires(cells, fires_prev, year=2019, workers=workers,
                         use_cache=False, keep_hits=True)

    rebuild, rebuild_s = _timed(
        overlay_fires, cells, season, year=2019, workers=workers,
        use_cache=False)

    reps = 5
    tick_times = []
    updated = None
    for _ in range(reps):
        before = STATS.snapshot()
        updated, spent = _timed(
            update_overlay, cells, prev, deltas, workers=workers)
        counters = STATS.delta_since(before)["counters"]
        tick_times.append(spent)
    tick_s = min(tick_times)

    # exactness first: the tick is the rebuild, bit for bit
    assert updated.in_perimeter_mask.tobytes() \
        == rebuild.in_perimeter_mask.tobytes()
    assert updated.per_fire_counts == rebuild.per_fire_counts
    assert updated.n_fires == rebuild.n_fires

    dirty = counters.get("index.dirty_buckets", 0)
    skipped = counters.get("index.skipped_buckets", 0)
    total_buckets = len(index._uniq_keys)
    dirty_fraction = dirty / max(total_buckets, 1)
    resolved = dispatch.delta_workers(workers, len(cells), len(deltas))
    speedup = rebuild_s / max(tick_s, 1e-9)

    record_timing(
        "stream_tick",
        n_points=len(cells), n_fires=len(season),
        n_deltas=len(deltas), workers=workers,
        resolved_workers=resolved, reps=reps,
        tick_s=tick_s, rebuild_s=rebuild_s, speedup=speedup,
        dirty_buckets=dirty, skipped_buckets=skipped,
        total_buckets=total_buckets, dirty_fraction=dirty_fraction,
        pip_tests=counters.get("index.pip_tests", 0),
        pip_skipped=counters.get("index.pip_skipped", 0))
    print_result(
        "RUNTIME — stream tick",
        f"tick ({len(deltas)} deltas, {dirty}/{total_buckets} dirty "
        f"buckets) {tick_s * 1000:.2f}ms vs rebuild "
        f"({len(season)} fires) {rebuild_s * 1000:.1f}ms -> "
        f"{speedup:,.0f}x")
    assert tick_s * 10.0 <= rebuild_s, \
        f"a tick must be >=10x faster than a rebuild ({speedup:.1f}x)"


def test_runtime_scenario_ensemble(universe):
    """N-member scenario ensemble through the persistent pool.

    Each member of a grid-ignition ensemble is one whole-task fire
    list shipped to the warm universe pool — the scenario tentpole's
    claim is that members parallelize.  Serial is measured as the sum
    of one-member joins; the pooled wall (after a warm-up round that
    pays fork+init) must land well under it when the pool genuinely
    engaged.
    """
    from repro.hazard import GridIgnitedFireHazard
    from repro.hazard.scenarios import ensemble_impacts

    cells = universe.cells
    cells.index()
    workers = int(os.environ.get("REPRO_WORKERS", "4"))
    # The catalog's grid-ignition hazard at bench weight: enough events
    # per member that the join dwarfs task transport, so the measured
    # ratio reflects parallelization, not pickling.
    hazard = GridIgnitedFireHazard(n_events=1500,
                                   total_acres=40_000_000.0)
    year = hazard.default_year
    n_members = 6
    member_events = [hazard.ensemble_member(universe, year, m)
                     for m in range(n_members)]

    serial_times = []
    serial_impacts = []
    for events in member_events:
        impacts, spent = _timed(
            ensemble_impacts, universe, [events], year, workers=1)
        serial_times.append(spent)
        serial_impacts.extend(impacts)
    serial_s = sum(serial_times)

    shutdown_pools()
    try:
        # Warm-up pays the fork+init; the measured round ships only
        # member tasks to live workers.
        ensemble_impacts(universe, member_events, year,
                         workers=workers)
        before = STATS.snapshot()
        pooled_impacts, wall_s = _timed(
            ensemble_impacts, universe, member_events, year,
            workers=workers)
        delta = STATS.delta_since(before)["counters"]
    finally:
        shutdown_pools()

    assert pooled_impacts == serial_impacts, \
        "pooled ensemble must match the serial joins bit for bit"

    eff_workers = max(1, min(workers, n_members))
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    fell_back = delta.get("parallel.fallbacks", 0) > 0
    speedup = serial_s / max(wall_s, 1e-9)
    record_timing(
        "scenario_ensemble",
        hazard=hazard.name, members=n_members,
        n_events_per_member=hazard.n_events,
        n_points=len(cells), workers=workers,
        eff_workers=eff_workers, cores=cores, fell_back=fell_back,
        serial_s=serial_s, wall_s=wall_s, speedup=speedup,
        mean_impacted=sum(pooled_impacts) / n_members)
    print_result(
        "RUNTIME — scenario ensemble",
        f"{n_members} members x {hazard.n_events} events: serial sum "
        f"{serial_s:.3f}s vs pooled wall {wall_s:.3f}s "
        f"(x{workers}->{eff_workers}, {cores} cores) -> "
        f"{speedup:.1f}x{' [FELL BACK]' if fell_back else ''}")
    if eff_workers >= 2 and cores >= 2 and not fell_back:
        # Members must genuinely parallelize; on a single-core box
        # (or after a pool fallback) only the bit-equality above is
        # checkable.
        assert wall_s < 0.7 * serial_s, \
            f"ensemble members must parallelize ({speedup:.2f}x)"


def test_runtime_session_reuse(universe):
    """In-session artifact memo vs recomputing per analysis.

    Six analyses all consume the ``whp_classes`` artifact.  With the
    shared session it is classified once; invalidating the memo before
    every analysis replays the pre-session behavior (each analysis
    re-deriving its own inputs).  The result cache is disabled so the
    contrast measures real recomputation, and the build counts are
    asserted — they are the tentpole contract, timings are trajectory.
    """
    from repro.core import (
        future_risk_analysis,
        hazard_analysis,
        metro_risk_analysis,
        population_impact_analysis,
        provider_risk_analysis,
        technology_risk_analysis,
    )
    from repro.session import session_of

    analyses = (hazard_analysis, provider_risk_analysis,
                technology_risk_analysis, population_impact_analysis,
                metro_risk_analysis, future_risk_analysis)
    session = session_of(universe)

    previous = get_config()
    configure(cache_enabled=False)
    set_cache(None)
    try:
        # Warm up once so neither timed pass pays one-time costs that
        # live outside the session memo (point index, state assigner).
        for fn in analyses:
            fn(universe)
        session.invalidate()
        before = STATS.snapshot()
        t0 = time.perf_counter()
        shared_results = [fn(universe) for fn in analyses]
        with_session_s = time.perf_counter() - t0
        shared = STATS.delta_since(before)["counters"]

        before = STATS.snapshot()
        t0 = time.perf_counter()
        solo_results = []
        for fn in analyses:
            session.invalidate()
            solo_results.append(fn(universe))
        without_session_s = time.perf_counter() - t0
        unshared = STATS.delta_since(before)["counters"]
    finally:
        session.invalidate()
        set_config(previous)
        set_cache(None)

    shared_builds = shared.get("session.miss.whp_classes", 0)
    unshared_builds = unshared.get("session.miss.whp_classes", 0)
    assert shared_builds == 1, \
        "shared session must classify exactly once"
    assert unshared_builds == len(analyses)
    assert shared_results[0].class_counts == \
        solo_results[0].class_counts

    record_timing(
        "session_reuse",
        analyses=len(analyses), n_points=len(universe.cells),
        with_session_s=with_session_s,
        without_session_s=without_session_s,
        whp_builds_shared=shared_builds,
        whp_builds_unshared=unshared_builds,
        speedup=without_session_s / max(with_session_s, 1e-9))
    print_result(
        "RUNTIME — session reuse",
        f"{len(analyses)} analyses: shared session "
        f"{with_session_s:.2f}s ({shared_builds} classify) vs "
        f"memo-invalidated {without_session_s:.2f}s "
        f"({unshared_builds} classify) -> "
        f"{without_session_s / max(with_session_s, 1e-9):.1f}x")


def test_runtime_repro_all_cold_vs_warm(tmp_path):
    """`python -m repro all` cold vs warm cache (the §2.3 hot path).

    The warm pass re-runs the identical CLI invocation against the
    populated cache — what a user iterating on figures experiences.
    Output equality doubles as an end-to-end differential check.
    """
    import io

    workers = os.environ.get("REPRO_WORKERS", "4")
    args = ["-n", "20000", "--whp-res", "0.1",
            "--workers", workers, "--cache-dir", str(tmp_path), "all"]

    previous = get_config()
    set_cache(None)
    try:
        cold_out = io.StringIO()
        t0 = time.perf_counter()
        assert cli_main(args, stream=cold_out) == 0
        cold_s = time.perf_counter() - t0

        warm_out = io.StringIO()
        t0 = time.perf_counter()
        assert cli_main(args, stream=warm_out) == 0
        warm_s = time.perf_counter() - t0
    finally:
        set_config(previous)
        set_cache(None)

    assert warm_out.getvalue() == cold_out.getvalue(), \
        "cached run must print identical results"
    record_timing(
        "repro_all",
        n="20000", workers=int(workers), cold_s=cold_s, warm_s=warm_s,
        speedup=cold_s / max(warm_s, 1e-9))
    print_result(
        "RUNTIME — repro all",
        f"cold {cold_s:.2f}s -> warm {warm_s:.2f}s "
        f"({cold_s / max(warm_s, 1e-9):.1f}x with warm cache, "
        f"workers={workers})")
    assert warm_s < cold_s, "warm cache must be measurably faster"


def test_runtime_trace_overhead(tmp_path):
    """Tracing must observe the reproduction, not change it.

    Identical cold `repro all` invocations, best-of-N on both sides
    (this machine's wall times drift several percent run to run, so a
    single pair would guard the scheduler, not the tracer): the best
    traced run's total top-level span time — a subset of its own wall
    time — must land within 5% of the best untraced wall, plus a small
    absolute epsilon.  If span bookkeeping ever leaks into the hot
    path, this is the guard that trips.  The spans also yield
    per-artifact build timings, recorded as their own trajectory
    section.
    """
    import io
    import json

    workers = os.environ.get("REPRO_WORKERS", "4")
    base = ["-n", "20000", "--whp-res", "0.1", "--workers", workers,
            "--no-cache"]
    reps = 2

    def _stage_span_total(doc: dict) -> float:
        return sum(e["dur"] for e in doc["traceEvents"]
                   if e["ph"] == "X"
                   and e["name"].startswith("stage.")) / 1e6

    previous = get_config()
    set_cache(None)
    untraced, traced, docs = [], [], []
    try:
        assert cli_main(base + ["all"], stream=io.StringIO()) == 0

        for rep in range(reps):
            t0 = time.perf_counter()
            assert cli_main(base + ["all"], stream=io.StringIO()) == 0
            untraced.append(time.perf_counter() - t0)

            trace_path = tmp_path / f"trace-{rep}.json"
            t0 = time.perf_counter()
            assert cli_main(
                base + ["--trace", str(trace_path), "all"],
                stream=io.StringIO()) == 0
            traced.append(time.perf_counter() - t0)
            docs.append(json.loads(trace_path.read_text()))
    finally:
        set_config(previous)
        set_cache(None)

    untraced_s = min(untraced)
    traced_s = min(traced)
    span_total_s = min(_stage_span_total(doc) for doc in docs)
    doc = docs[traced.index(traced_s)]
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]

    artifact_s: dict[str, float] = {}
    for e in spans:
        if e["name"].startswith("artifact."):
            artifact_s[e["name"]] = artifact_s.get(e["name"], 0.0) \
                + e["dur"] / 1e6
    record_timing(
        "trace_overhead",
        n="20000", workers=int(workers), n_spans=len(spans),
        untraced_s=untraced_s, traced_s=traced_s,
        span_total_s=span_total_s,
        overhead_ratio=span_total_s / max(untraced_s, 1e-9))
    record_timing(
        "artifact_spans",
        **{name: round(seconds, 6)
           for name, seconds in sorted(artifact_s.items())})
    print_result(
        "RUNTIME — trace overhead",
        f"untraced {untraced_s:.2f}s | traced {traced_s:.2f}s "
        f"({len(spans)} spans, stage-span total {span_total_s:.2f}s, "
        f"ratio {span_total_s / max(untraced_s, 1e-9):.3f})")
    assert artifact_s, "the trace must contain artifact build spans"
    assert span_total_s <= 1.05 * untraced_s + 0.1, \
        "traced span total must stay within 5% of the untraced wall"


def test_runtime_ledger_overhead(tmp_path):
    """The run ledger must be free when off and cheap when on.

    Same best-of-N discipline as the trace-overhead guard: identical
    cold ``repro all`` invocations with the ledger disabled and with
    ``--ledger-dir`` armed.  The disabled side carries exactly one
    ``is None`` check per artifact build, so it must match the
    pre-ledger baseline by construction; the armed side pays for
    fingerprinting every artifact and checksumming every rendered
    stage, and still has to land within 5% plus a small epsilon.  The
    recorded manifest is also checked for its provenance payload —
    an empty manifest passing the timing guard would be vacuous.
    """
    import io

    from repro import obs

    workers = os.environ.get("REPRO_WORKERS", "4")
    base = ["-n", "20000", "--whp-res", "0.1", "--workers", workers,
            "--no-cache"]
    ledger_dir = tmp_path / "ledger"
    reps = 2

    previous = get_config()
    set_cache(None)
    plain, ledgered = [], []
    try:
        assert cli_main(base + ["all"], stream=io.StringIO()) == 0

        for _ in range(reps):
            t0 = time.perf_counter()
            assert cli_main(base + ["all"], stream=io.StringIO()) == 0
            plain.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            assert cli_main(
                ["--ledger-dir", str(ledger_dir)] + base + ["all"],
                stream=io.StringIO()) == 0
            ledgered.append(time.perf_counter() - t0)
    finally:
        set_config(previous)
        set_cache(None)

    plain_s = min(plain)
    ledgered_s = min(ledgered)
    runs = obs.Ledger(ledger_dir).runs()
    latest = runs[-1]

    record_timing(
        "ledger_overhead",
        n="20000", workers=int(workers), runs_recorded=len(runs),
        n_artifacts=len(latest.artifacts), n_outputs=len(latest.outputs),
        plain_s=plain_s, ledgered_s=ledgered_s,
        overhead_ratio=ledgered_s / max(plain_s, 1e-9))
    print_result(
        "RUNTIME — ledger overhead",
        f"off {plain_s:.2f}s | on {ledgered_s:.2f}s "
        f"({len(latest.artifacts)} artifacts fingerprinted, "
        f"{len(latest.outputs)} outputs checksummed, "
        f"ratio {ledgered_s / max(plain_s, 1e-9):.3f})")
    assert len(runs) == reps
    assert latest.artifacts and latest.outputs
    assert latest.git_sha == obs.git_sha()
    assert ledgered_s <= 1.05 * plain_s + 0.1, \
        "an armed ledger must stay within 5% of the plain wall"
