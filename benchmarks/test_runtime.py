"""Runtime benchmark: serial vs parallel vs warm-cache spatial joins.

Measures the three execution modes of the join engine on the
benchmark-scale universe and records machine-readable timings into
``BENCH_runtime.json`` (via :func:`conftest.record_timing`) so future
PRs have a perf trajectory.  Equivalence of every mode is asserted —
the speed paths must not move a bit.
"""

import os
import time

from conftest import print_result, record_timing

from repro.cli import main as cli_main
from repro.core.overlay import classify_cells, overlay_fires
from repro.runtime import (
    ResultCache,
    configure,
    get_config,
    set_cache,
    set_config,
)


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_runtime_overlay_modes(universe):
    """Serial cold vs parallel cold vs warm cache on one season."""
    fires = universe.fire_season(2017).fires
    cells = universe.cells
    cells.index()                     # pre-built, as analyses see it
    workers = int(os.environ.get("REPRO_WORKERS", "4"))

    serial, serial_s = _timed(
        overlay_fires, cells, fires, year=2017, workers=1,
        use_cache=False)
    parallel, parallel_s = _timed(
        overlay_fires, cells, fires, year=2017, workers=workers,
        chunk_size=32_768, use_cache=False)

    set_cache(ResultCache(max_entries=64))
    try:
        _, cold_cache_s = _timed(
            overlay_fires, cells, fires, year=2017, workers=1,
            use_cache=True)
        warm, warm_s = _timed(
            overlay_fires, cells, fires, year=2017, workers=1,
            use_cache=True)
    finally:
        set_cache(None)

    assert (serial.in_perimeter_mask == parallel.in_perimeter_mask).all()
    assert (serial.in_perimeter_mask == warm.in_perimeter_mask).all()
    assert serial.per_fire_counts == parallel.per_fire_counts \
        == warm.per_fire_counts

    record_timing(
        "overlay_2017",
        n_points=len(cells), n_fires=len(fires), workers=workers,
        serial_s=serial_s, parallel_s=parallel_s,
        cold_cache_s=cold_cache_s, warm_cache_s=warm_s,
        warm_speedup=serial_s / max(warm_s, 1e-9))
    print_result(
        "RUNTIME — overlay modes",
        f"serial {serial_s:.3f}s | parallel(x{workers}) {parallel_s:.3f}s"
        f" | warm cache {warm_s * 1000:.1f}ms "
        f"({serial_s / max(warm_s, 1e-9):,.0f}x)")
    assert warm_s < serial_s, "warm cache must beat recomputation"


def test_runtime_classify_modes(universe):
    """The WHP raster-sampling join across the same three modes."""
    cells = universe.cells
    workers = int(os.environ.get("REPRO_WORKERS", "4"))

    serial, serial_s = _timed(
        classify_cells, cells, universe.whp, workers=1, use_cache=False)
    parallel, parallel_s = _timed(
        classify_cells, cells, universe.whp, workers=workers,
        chunk_size=32_768, use_cache=False)
    set_cache(ResultCache(max_entries=64))
    try:
        classify_cells(cells, universe.whp, workers=1, use_cache=True)
        warm, warm_s = _timed(
            classify_cells, cells, universe.whp, workers=1,
            use_cache=True)
    finally:
        set_cache(None)

    assert (serial == parallel).all()
    assert (serial == warm).all()
    record_timing(
        "classify_whp",
        n_points=len(cells), workers=workers, serial_s=serial_s,
        parallel_s=parallel_s, warm_cache_s=warm_s)
    print_result(
        "RUNTIME — classify modes",
        f"serial {serial_s:.3f}s | parallel(x{workers}) {parallel_s:.3f}s"
        f" | warm cache {warm_s * 1000:.1f}ms")


def test_runtime_repro_all_cold_vs_warm(tmp_path):
    """`python -m repro all` cold vs warm cache (the §2.3 hot path).

    The warm pass re-runs the identical CLI invocation against the
    populated cache — what a user iterating on figures experiences.
    Output equality doubles as an end-to-end differential check.
    """
    import io

    workers = os.environ.get("REPRO_WORKERS", "4")
    args = ["-n", "20000", "--whp-res", "0.1",
            "--workers", workers, "--cache-dir", str(tmp_path), "all"]

    previous = get_config()
    set_cache(None)
    try:
        cold_out = io.StringIO()
        t0 = time.perf_counter()
        assert cli_main(args, stream=cold_out) == 0
        cold_s = time.perf_counter() - t0

        warm_out = io.StringIO()
        t0 = time.perf_counter()
        assert cli_main(args, stream=warm_out) == 0
        warm_s = time.perf_counter() - t0
    finally:
        set_config(previous)
        set_cache(None)

    assert warm_out.getvalue() == cold_out.getvalue(), \
        "cached run must print identical results"
    record_timing(
        "repro_all",
        n="20000", workers=int(workers), cold_s=cold_s, warm_s=warm_s,
        speedup=cold_s / max(warm_s, 1e-9))
    print_result(
        "RUNTIME — repro all",
        f"cold {cold_s:.2f}s -> warm {warm_s:.2f}s "
        f"({cold_s / max(warm_s, 1e-9):.1f}x with warm cache, "
        f"workers={workers})")
    assert warm_s < cold_s, "warm cache must be measurably faster"
