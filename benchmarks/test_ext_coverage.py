"""Extension: coverage-loss analysis (§3.11 alternate approach)."""

from conftest import print_result

from repro.core.coverage import coverage_loss_analysis
from repro.core.report import format_table
from repro.data.whp import WHPClass


def _run(universe):
    return {floor: coverage_loss_analysis(universe, hazard_floor=floor)
            for floor in (WHPClass.MODERATE, WHPClass.HIGH,
                          WHPClass.VERY_HIGH)}


def test_ext_coverage(benchmark, universe):
    results = benchmark.pedantic(_run, args=(universe,),
                                 rounds=1, iterations=1)
    rows = []
    for floor, r in results.items():
        rows.append([floor.name, f"{r.sites_lost:,}",
                     f"{r.population_lost / 1e6:.1f}M",
                     f"{r.lost_share:.2%}"])
    body = format_table(["Losing sites >=", "Sites", "People losing "
                         "coverage", "Share of US"], rows)
    base = results[WHPClass.MODERATE]
    body += (f"\nbaseline coverage: "
             f"{base.covered_share_before:.0%} of population")
    print_result("EXTENSION — coverage loss (S3.11)", body)

    m = results[WHPClass.MODERATE]
    vh = results[WHPClass.VERY_HIGH]
    assert vh.population_lost <= m.population_lost
    assert m.covered_share_before > 0.7
