"""Extension: per-county historical exposure ranking."""

from conftest import print_result

from repro.core.county_exposure import county_exposure_analysis
from repro.core.report import format_table


def test_ext_county_exposure(benchmark, universe):
    rows = benchmark.pedantic(county_exposure_analysis,
                              args=(universe,), kwargs={"top_n": 15},
                              rounds=1, iterations=1)
    body = format_table(
        ["County", "State", "Population", "Exposures", "Years"],
        [[r.county, r.state, f"{r.population:,}",
          f"{r.transceiver_exposures:,}", r.years_touched]
         for r in rows])
    print_result("EXTENSION — county exposure ranking", body)

    assert rows
    assert rows[0].transceiver_exposures >= rows[-1].transceiver_exposures
