"""Extension: seed-sensitivity sweep of the headline metrics."""

from conftest import print_result

from repro.core.sensitivity import seed_sweep


def test_ext_sensitivity(benchmark):
    report = benchmark.pedantic(
        seed_sweep,
        kwargs={"n_transceivers": 40_000, "n_seeds": 3,
                "validation_oversample": 8},
        rounds=1, iterations=1)
    print_result("EXTENSION — seed sensitivity", report.render())

    # The calibrated metric is tight; rare-event metrics are looser.
    assert report.metrics["at_risk_total"].rel_std < 0.15
    assert report.metrics["in_perimeters"].rel_std < 1.0
