"""Figure 8: states with the most at-risk transceivers (§3.3)."""

from conftest import print_result

from repro.core import report
from repro.core.hazard import hazard_analysis
from repro.data.paper_constants import TOP_MODERATE_STATES


def test_fig8_states(benchmark, universe):
    summary = benchmark.pedantic(hazard_analysis, args=(universe,),
                                 rounds=1, iterations=1)
    print_result("FIGURE 8 — top states", report.render_figure8(summary))

    top7 = set(summary.top_states(7))
    overlap = top7 & set(TOP_MODERATE_STATES)
    assert summary.states[0].state == "CA"
    assert len(overlap) >= 4, (top7, TOP_MODERATE_STATES)
