"""Figure 3: wildfire perimeters from 2000 to 2018."""

from conftest import print_result

from repro.viz.figures import figure3


def test_fig3_fire_map(benchmark, universe):
    art = benchmark.pedantic(figure3, args=(universe,),
                             rounds=1, iterations=1)
    print_result("FIGURE 3 — wildfire perimeters 2000-2018",
                 art.ascii_art)
    assert art.data["n_fires"] > 3000          # ~19 seasons of fires
    assert art.data["acres"] > 120e6           # ~133M acres total
