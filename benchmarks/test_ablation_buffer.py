"""Ablation: §3.8 buffer-radius sweep.

The paper fixes the buffer at 0.5 miles; this sweep shows the
accuracy/over-labeling trade-off the choice sits on.
"""

from conftest import print_result

from repro.core.extension import extend_very_high
from repro.core.report import format_table


def _sweep(universe):
    rows = []
    for radius in (0.25, 0.5, 1.0):
        r = extend_very_high(universe, radius_miles=radius)
        rows.append([f"{radius:.2f} mi", f"{r.vh_after:,}",
                     f"{r.total_after:,}",
                     f"{r.validation_after.accuracy:.0%}"])
    return rows


def test_ablation_buffer(benchmark, universe):
    rows = benchmark.pedantic(_sweep, args=(universe,),
                              rounds=1, iterations=1)
    print_result("ABLATION — buffer radius sweep", format_table(
        ["Radius", "VH after", "Total after", "Accuracy"], rows))

    vh = [int(r[1].replace(",", "")) for r in rows]
    assert vh[0] <= vh[1] <= vh[2]   # larger buffer, more labeled
