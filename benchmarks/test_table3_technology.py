"""Table 3: cell transceiver types at risk (§3.5)."""

from conftest import print_result

from repro.core import report
from repro.core.technology import technology_risk_analysis


def test_table3_technology(benchmark, universe):
    rows = benchmark.pedantic(technology_risk_analysis, args=(universe,),
                              rounds=1, iterations=1)
    print_result("TABLE 3 — technology risk", report.render_table3(rows))

    by_tech = {r.technology: r for r in rows}
    assert by_tech["LTE"].total == max(r.total for r in rows)
    assert by_tech["UMTS"].total > by_tech["GSM"].total
