"""§3.4: validation of WHP against the 2019 fire season."""

from conftest import print_result

from repro.core import report
from repro.core.validation import validate_whp_2019


def test_s34_validation(benchmark, universe):
    result = benchmark.pedantic(
        validate_whp_2019, args=(universe,),
        kwargs={"oversample": 16}, rounds=1, iterations=1)
    print_result("S3.4 — WHP validation vs 2019 fires",
                 report.render_validation(result))

    # paper: 46% accuracy; misses concentrated in the LA fires;
    # excluding them accuracy rises to 84%
    assert 0.2 < result.accuracy < 0.8
    assert result.missed_in_la_fires > 0
    assert result.accuracy_excluding_la >= result.accuracy - 0.05
