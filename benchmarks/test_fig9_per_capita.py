"""Figure 9: at-risk transceivers per capita by state (§3.3)."""

from conftest import print_result

from repro.core import report
from repro.core.hazard import hazard_analysis
from repro.data.paper_constants import TOP_VH_PER_CAPITA_STATES
from repro.data.whp import WHPClass


def test_fig9_per_capita(benchmark, universe):
    summary = benchmark.pedantic(hazard_analysis, args=(universe,),
                                 rounds=1, iterations=1)
    print_result("FIGURE 9 — per-capita risk",
                 report.render_figure9(summary))

    top = summary.top_states_per_capita(6, WHPClass.VERY_HIGH)
    overlap = set(top) & set(TOP_VH_PER_CAPITA_STATES)
    assert len(overlap) >= 2, (top, TOP_VH_PER_CAPITA_STATES)
