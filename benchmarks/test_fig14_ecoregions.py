"""Figure 14 / §3.9: ecoregion fire projections, SLC-Denver corridor."""

from conftest import print_result

from repro.core import report
from repro.core.future import future_risk_analysis


def test_fig14_ecoregions(benchmark, universe):
    rows = benchmark.pedantic(future_risk_analysis, args=(universe,),
                              rounds=1, iterations=1)
    print_result("FIGURE 14 — ecoregion projections",
                 report.render_ecoregions(rows))

    assert len(rows) == 13
    assert rows[0].delta_2040_pct == 240.0
    assert rows[-1].delta_2040_pct == -119.0
