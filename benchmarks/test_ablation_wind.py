"""Ablation: wind-driven (elongated) vs isotropic fire perimeters.

Santa Ana events stretch perimeters several-fold along the wind; this
ablation quantifies how footprint shape (same total acreage) changes
the number of transceivers swept.
"""

from conftest import print_result

from repro.core.overlay import overlay_fires
from repro.data.wildfires import generate_fire_season


def _run(universe):
    iso = generate_fire_season(2018, universe.whp, seed=4242)
    windy = generate_fire_season(2018, universe.whp, seed=4242,
                                 elongation_range=(2.0, 4.0))
    iso_count = overlay_fires(universe.cells, iso.fires).n_in_perimeter
    windy_count = overlay_fires(universe.cells,
                                windy.fires).n_in_perimeter
    return iso_count, windy_count, iso.total_acres(), windy.total_acres()


def test_ablation_wind(benchmark, universe):
    iso_count, windy_count, iso_acres, windy_acres = benchmark.pedantic(
        _run, args=(universe,), rounds=1, iterations=1)
    scale = universe.universe_scale
    print_result(
        "ABLATION — wind-driven perimeters",
        f"isotropic: {round(iso_count * scale):,} transceivers swept\n"
        f"elongated (2-4x): {round(windy_count * scale):,} swept\n"
        f"(equal acreage: {iso_acres / 1e6:.2f}M vs "
        f"{windy_acres / 1e6:.2f}M acres)")

    # acreage is identical by construction
    assert abs(iso_acres - windy_acres) < 1e-3 * iso_acres
    assert iso_count >= 0 and windy_count >= 0
