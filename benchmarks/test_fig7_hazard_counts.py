"""Figure 7: transceivers in Moderate/High/Very High WHP areas (§3.3)."""

from conftest import print_result

from repro.core import report
from repro.core.hazard import hazard_analysis, population_served_at_risk
from repro.data.paper_constants import WHP_AT_RISK_TOTAL


def test_fig7_hazard_counts(benchmark, universe):
    summary = benchmark.pedantic(hazard_analysis, args=(universe,),
                                 rounds=1, iterations=1)
    served = population_served_at_risk(universe, summary)
    body = report.render_figure7(summary)
    body += f"\npopulation of at-risk counties: {served:,} | paper: >85M"
    print_result("FIGURE 7 — WHP hazard counts", body)

    assert summary.at_risk_total > 0.6 * WHP_AT_RISK_TOTAL
    assert summary.at_risk_total < 1.4 * WHP_AT_RISK_TOTAL
    assert served > 40e6
