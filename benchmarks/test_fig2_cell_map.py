"""Figure 2: all cell transceivers within the United States."""

from conftest import print_result

from repro.viz.figures import figure2


def test_fig2_cell_map(benchmark, universe):
    art = benchmark.pedantic(figure2, args=(universe,),
                             rounds=1, iterations=1)
    print_result("FIGURE 2 — all transceivers", art.ascii_art)
    assert art.data["n"] == len(universe.cells)
    # urban density structure: the map uses more than two glyph levels
    assert len(set(art.ascii_art.replace("\n", ""))) > 3
