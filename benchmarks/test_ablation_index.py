"""Ablation: uniform-grid spatial index vs brute-force overlay.

Quantifies what the index substrate buys the spatial-join engine; both
paths must return identical results (equivalence is asserted).
"""

import time

from conftest import print_result

from repro.core.overlay import overlay_fires, overlay_fires_bruteforce


def test_ablation_index(benchmark, universe):
    fires = universe.fire_season(2017).fires[:120]
    universe.cells.index()  # pre-build so we measure the query path

    fast = benchmark.pedantic(overlay_fires,
                              args=(universe.cells, fires),
                              rounds=1, iterations=1)
    t0 = time.perf_counter()
    slow = overlay_fires_bruteforce(universe.cells, fires)
    brute_s = time.perf_counter() - t0

    assert fast.n_in_perimeter == slow.n_in_perimeter
    assert fast.per_fire_counts == slow.per_fire_counts
    print_result(
        "ABLATION — spatial index",
        f"brute force: {brute_s:.2f}s for {len(fires)} fires x "
        f"{len(universe.cells):,} transceivers (index timing in "
        f"benchmark table; equivalence verified)")
