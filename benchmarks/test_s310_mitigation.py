"""§3.10: risk prioritization and mitigation planning."""

from conftest import print_result

from repro.core.mitigation import MitigationAction, mitigation_plan


def test_s310_mitigation(benchmark, universe):
    plan = benchmark.pedantic(mitigation_plan, args=(universe,),
                              kwargs={"budget_sites": 100},
                              rounds=1, iterations=1)
    top = plan.hardened[:10]
    lines = [f"site {s.site_id:>7}  WHP {s.whp_class}  "
             f"tx {s.n_transceivers:>2}  county pop "
             f"{s.county_population:>10,}  score {s.score:.2f}"
             for s in top]
    lines.append(f"plan covers {plan.covered_transceivers} transceivers, "
                 f"county population {plan.covered_population:,}")
    print_result("S3.10 — mitigation plan (top 10 sites)",
                 "\n".join(lines))

    assert len(plan.hardened) <= 100
    assert all(acts[0] == MitigationAction.BACKUP_POWER
               for acts in plan.actions.values())
