"""Figure 5: cell site outages during the 2019 PG&E blackouts (§3.2)."""

from conftest import print_result

from repro.core import report
from repro.core.case_study import case_study_analysis


def test_fig5_case_study(benchmark, universe):
    summary = benchmark.pedantic(case_study_analysis, args=(universe,),
                                 rounds=1, iterations=1)
    print_result("FIGURE 5 — DIRS case study",
                 report.render_figure5(summary))

    assert summary.peak_power_share > 0.6      # paper: >80% power
    assert summary.peak_day in ("Oct 27", "Oct 28", "Oct 29")
    assert summary.final_total < summary.peak_total
