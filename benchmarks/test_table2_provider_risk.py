"""Table 2: cellular service provider risk (§3.5)."""

from conftest import print_result

from repro.core import report
from repro.core.provider_risk import (
    provider_risk_analysis,
    regional_carriers_at_risk,
)
from repro.data.whp import WHPClass


def test_table2_provider_risk(benchmark, universe):
    rows = benchmark.pedantic(provider_risk_analysis, args=(universe,),
                              rounds=1, iterations=1)
    n_regional = regional_carriers_at_risk(universe)
    body = report.render_table2(rows)
    body += f"\nregional carriers with at-risk assets: {n_regional} | paper: 46"
    print_result("TABLE 2 — provider risk", body)

    by_name = {r.provider: r for r in rows}
    assert by_name["AT&T"].total_at_risk == max(r.total_at_risk
                                                for r in rows)
    for r in rows:
        assert r.pct(WHPClass.MODERATE) > r.pct(WHPClass.VERY_HIGH)
    assert 30 <= n_regional <= 46
