"""§3.6: WHP very-high transceivers in >1.5M counties, by city."""

from conftest import print_result

from repro.core.metro import city_very_high_counts
from repro.data.paper_constants import CITY_VERY_HIGH_COUNTS


def test_s36_cities(benchmark, universe):
    counts = benchmark.pedantic(city_very_high_counts, args=(universe,),
                                rounds=1, iterations=1)
    lines = [f"{city:>24}: {count:>7,}  (paper "
             f"{CITY_VERY_HIGH_COUNTS.get(city, 0):>6,})"
             for city, count in sorted(counts.items(),
                                       key=lambda kv: -kv[1])]
    print_result("S3.6 — city very-high counts", "\n".join(lines))

    west = (counts["Los Angeles"] + counts["San Diego"]
            + counts["San Francisco/San Jose"] + counts["Miami"])
    small = counts["Las Vegas"] + counts["New York City"]
    assert west > small
    assert counts["Los Angeles"] > 0
