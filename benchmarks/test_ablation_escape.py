"""Ablation: §3.11 escape-probability model on top of static WHP."""

from conftest import print_result

from repro.core.escape import escape_adjusted_risk
from repro.core.report import format_table


def _sweep(universe):
    rows = []
    for p in (0.2, 0.05, 0.02):
        r = escape_adjusted_risk(universe, reach_probability=p)
        rows.append([f"{p:.2f}", f"{r.static_at_risk:,}",
                     f"{r.escape_adjusted_at_risk:,}",
                     f"{r.added_transceivers:,}"])
    return rows


def test_ablation_escape(benchmark, universe):
    rows = benchmark.pedantic(_sweep, args=(universe,),
                              rounds=1, iterations=1)
    print_result("ABLATION — escape model (HOT) reach sweep",
                 format_table(["P(reach)", "Static", "Adjusted",
                               "Added"], rows))

    added = [int(r[3].replace(",", "")) for r in rows]
    assert added[0] <= added[1] <= added[2]
