"""Figure 13: WHP windows around SF/Sacramento, LA/SD, Orlando (§3.7)."""

from conftest import print_result

from repro.viz.figures import figure13


def test_fig13_metro_maps(benchmark, universe):
    art = benchmark.pedantic(figure13, args=(universe,),
                             rounds=1, iterations=1)
    print_result("FIGURE 13 — metro WHP windows", art.ascii_art)
    assert "Los Angeles/San Diego" in art.ascii_art
    # the LA/SD window shows at-risk classes (WUI rings)
    assert any(c in art.ascii_art for c in "mH#")
