"""Paper-scale benchmark (env-gated: ``REPRO_PAPER_SCALE=1``).

The tentpole contract of the paper-scale runtime work: Table 1 and a
season overlay on the full 5,364,949-transceiver universe must land
within **10×** the seed-scale (benchmark-universe) spans, at 36× the
points.  Both sides of the ratio are measured in this process on this
machine, so the assertion is robust to runner speed; the absolute
numbers are recorded as the ``paper_scale`` section of
``BENCH_runtime.json`` for the ledger trajectory.

Run with::

    REPRO_PAPER_SCALE=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_paper_scale.py -q -s
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import print_result, record_timing

from repro.core import historical_analysis
from repro.core.overlay import overlay_fires
from repro.runtime import STATS, shutdown_pools

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_PAPER_SCALE"),
    reason="paper-scale bench is opt-in (REPRO_PAPER_SCALE=1)")

#: The tentpole budget: paper-scale spans within 10x seed-scale spans.
SPAN_BUDGET = 10.0


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_paper_scale_within_budget(universe):
    from repro.data.universe import universe_for_scale

    # --- seed-scale reference spans (the benchmark universe) ---------
    seed_cells = universe.cells
    seed_cells.index()
    _, seed_table1_s = _timed(historical_analysis, universe)
    seed_fires = universe.fire_season(2019).fires
    _, seed_overlay_s = _timed(
        overlay_fires, seed_cells, seed_fires, year=2019,
        use_cache=False)

    # --- paper scale -------------------------------------------------
    paper = universe_for_scale("paper")
    t0 = time.perf_counter()
    paper_cells = paper.cells
    build_cells_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    paper.whp
    build_whp_s = time.perf_counter() - t0
    paper_cells.index()

    before = STATS.snapshot()
    table1_rows, paper_table1_s = _timed(historical_analysis, paper)
    paper_fires = paper.fire_season(2019).fires
    overlay_result, paper_overlay_s = _timed(
        overlay_fires, paper_cells, paper_fires, year=2019,
        use_cache=False)
    counters = STATS.delta_since(before)["counters"]
    shutdown_pools()

    n_ratio = len(paper_cells) / len(seed_cells)
    table1_ratio = paper_table1_s / max(seed_table1_s, 1e-9)
    overlay_ratio = paper_overlay_s / max(seed_overlay_s, 1e-9)

    record_timing(
        "paper_scale",
        n_points=len(paper_cells), n_points_seed=len(seed_cells),
        point_ratio=n_ratio,
        build_cells_s=build_cells_s, build_whp_s=build_whp_s,
        seed_table1_s=seed_table1_s, paper_table1_s=paper_table1_s,
        table1_ratio=table1_ratio,
        seed_overlay_s=seed_overlay_s, paper_overlay_s=paper_overlay_s,
        overlay_ratio=overlay_ratio,
        span_budget=SPAN_BUDGET,
        worker_index_builds=counters.get("pool.worker_index_builds", 0),
        worker_index_attach=counters.get("pool.worker_index_attach", 0),
        pool_runs=counters.get("parallel.pool_runs", 0),
        shm_created=counters.get("shm.created", 0),
    )
    print_result(
        "Paper scale (5.36M transceivers)",
        f"points: {len(seed_cells):,} -> {len(paper_cells):,} "
        f"({n_ratio:.0f}x)\n"
        f"table1:  {seed_table1_s:.2f}s -> {paper_table1_s:.2f}s "
        f"({table1_ratio:.1f}x, budget {SPAN_BUDGET:.0f}x)\n"
        f"overlay: {seed_overlay_s:.2f}s -> {paper_overlay_s:.2f}s "
        f"({overlay_ratio:.1f}x, budget {SPAN_BUDGET:.0f}x)\n"
        f"universe build: cells {build_cells_s:.1f}s, "
        f"whp {build_whp_s:.1f}s\n"
        f"worker index builds: "
        f"{counters.get('pool.worker_index_builds', 0)}")

    # results stay sane at scale (scale factor is exactly 1.0)
    assert len(table1_rows) == 19
    assert all(r.transceivers_in_perimeters_scaled
               == r.transceivers_in_perimeters for r in table1_rows)
    assert overlay_result.n_in_perimeter > 0

    # the tentpole: 36x the points, at most 10x the span
    assert paper_table1_s <= SPAN_BUDGET * seed_table1_s, \
        f"table1 {table1_ratio:.1f}x exceeds {SPAN_BUDGET}x budget"
    assert paper_overlay_s <= SPAN_BUDGET * seed_overlay_s, \
        f"overlay {overlay_ratio:.1f}x exceeds {SPAN_BUDGET}x budget"

    # the zero-rebuild contract, whenever the pool path actually ran
    if counters.get("parallel.pool_runs", 0) and \
            not counters.get("parallel.fallbacks", 0):
        assert counters.get("pool.worker_index_builds", 0) == 0


def test_paper_scale_stream_tick():
    """The streaming tentpole at paper scale.

    One incident tick over the full 5.36M-transceiver universe — the
    scripted 2019 fires advance one growth step, every background
    fire holds still — must (a) touch at most 5% of the occupied
    grid buckets and (b) finish at least 10x faster than rebuilding
    the season overlay from scratch, while matching the rebuild bit
    for bit.
    """
    from repro.core.overlay import FireDelta, overlay_fires, update_overlay
    from repro.data.universe import universe_for_scale
    from repro.data.wildfires import scripted_2019_growth
    from repro.runtime import dispatch

    paper = universe_for_scale("paper")    # cached across this module
    cells = paper.cells
    index = cells.index()
    workers = int(os.environ.get("REPRO_WORKERS", "4"))

    growth = scripted_2019_growth(8)
    penultimate = {f.name: f for f in growth[-2]}
    season = paper.fire_season(2019).fires
    fires_prev = [penultimate.get(f.name, f) for f in season]
    deltas = [FireDelta(fire=f) for f in growth[-1]
              if penultimate[f.name].polygon.exterior.tobytes()
              != f.polygon.exterior.tobytes()]
    assert deltas

    prev = overlay_fires(cells, fires_prev, year=2019, workers=workers,
                         use_cache=False, keep_hits=True)
    rebuild, rebuild_s = _timed(
        overlay_fires, cells, season, year=2019, workers=workers,
        use_cache=False)

    reps = 5
    tick_times, counters = [], {}
    updated = None
    for _ in range(reps):
        before = STATS.snapshot()
        updated, spent = _timed(
            update_overlay, cells, prev, deltas, workers=workers)
        counters = STATS.delta_since(before)["counters"]
        tick_times.append(spent)
    tick_s = min(tick_times)
    shutdown_pools()

    assert updated.in_perimeter_mask.tobytes() \
        == rebuild.in_perimeter_mask.tobytes()
    assert updated.per_fire_counts == rebuild.per_fire_counts
    assert updated.n_fires == rebuild.n_fires

    dirty = counters.get("index.dirty_buckets", 0)
    total_buckets = len(index._uniq_keys)
    dirty_fraction = dirty / max(total_buckets, 1)
    speedup = rebuild_s / max(tick_s, 1e-9)
    resolved = dispatch.delta_workers(workers, len(cells), len(deltas))

    record_timing(
        "stream_tick_paper",
        n_points=len(cells), n_fires=len(season),
        n_deltas=len(deltas), workers=workers,
        resolved_workers=resolved, reps=reps,
        tick_s=tick_s, rebuild_s=rebuild_s, speedup=speedup,
        dirty_buckets=dirty,
        skipped_buckets=counters.get("index.skipped_buckets", 0),
        total_buckets=total_buckets, dirty_fraction=dirty_fraction)
    print_result(
        "Paper scale — stream tick",
        f"tick ({len(deltas)} deltas, {dirty}/{total_buckets} dirty "
        f"buckets = {dirty_fraction:.2%}) {tick_s * 1000:.1f}ms vs "
        f"rebuild {rebuild_s:.2f}s -> {speedup:,.0f}x")

    assert dirty_fraction <= 0.05, \
        f"a tick must stay under 5% dirty buckets ({dirty_fraction:.2%})"
    assert tick_s * 10.0 <= rebuild_s, \
        f"a paper-scale tick must beat the rebuild 10x ({speedup:.1f}x)"
