"""Table 1: historical wildfire statistics, 2000-2018 (§3.1)."""

from conftest import print_result

from repro.core import report
from repro.core.historical import historical_analysis, total_in_perimeters
from repro.data.paper_constants import TOTAL_IN_PERIMETERS_2000_2018


def test_table1_historical(benchmark, universe):
    rows = benchmark.pedantic(historical_analysis, args=(universe,),
                              rounds=1, iterations=1)
    total, _ = total_in_perimeters(universe)
    body = report.render_table1(rows)
    body += (f"\ntotal transceivers in perimeters 2000-2018 (scaled): "
             f"{total:,} | paper: >{TOTAL_IN_PERIMETERS_2000_2018:,}")
    print_result("TABLE 1 — historical analysis", body)

    assert len(rows) == 19
    scaled = [r.transceivers_in_perimeters_scaled for r in rows]
    assert max(scaled) > 500          # every year has exposure
    assert total > 10_000             # paper: >27,000
