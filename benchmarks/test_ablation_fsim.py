"""Ablation: fuel-model WHP vs Fsim-derived WHP.

The real WHP came from burn-probability simulation (Fsim); our
production WHP is a closed-form fuel model.  This ablation derives a
WHP from an actual spread-simulation ensemble and measures how much of
the production geography it reproduces.
"""


from conftest import print_result

from repro.data.fsim import FsimConfig, derive_whp_classes, run_fsim
from repro.data.whp import WHPClass


def _run(universe):
    burn = run_fsim(universe.whp, FsimConfig(n_ignitions=3000))
    classes = derive_whp_classes(universe.whp, burn)
    return burn, classes


def test_ablation_fsim(benchmark, universe):
    burn, sim_classes = benchmark.pedantic(_run, args=(universe,),
                                           rounds=1, iterations=1)
    prod = universe.whp.raster.data
    at_risk_prod = prod >= int(WHPClass.MODERATE)
    at_risk_sim = sim_classes >= int(WHPClass.MODERATE)
    both = (at_risk_prod & at_risk_sim).sum()
    either = (at_risk_prod | at_risk_sim).sum()
    jaccard = both / max(either, 1)
    coverage = (burn.probability()[at_risk_prod] > 0).mean()

    print_result(
        "ABLATION — Fsim-derived WHP vs fuel-model WHP",
        f"{burn.n_ignitions} ignitions, "
        f"{burn.total_cells_burned:,} cell-burns\n"
        f"burn coverage of production at-risk cells: {coverage:.0%}\n"
        f"at-risk mask Jaccard agreement: {jaccard:.2f}")

    # The shortcut fuel model reproduces the simulation geography far
    # beyond chance (random masks of this size agree at ~0.05-0.1).
    assert jaccard > 0.3
    assert coverage > 0.3
