"""Benchmark fixtures and the machine-readable timing report.

Benchmarks run at a larger scale than tests (150k transceivers,
0.05-degree WHP grid) and print each reproduced table/figure next to the
paper's numbers; the printed output is the source for EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only -s

Every benchmark session also writes ``BENCH_runtime.json`` at the repo
root: per-stage wall times, index/cache counters, the runtime config
(workers, chunk size, cache state), and any named measurements recorded
via :func:`record_timing` — the perf trajectory future PRs diff against.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro import obs
from repro.data import SyntheticUS, default_universe
from repro.runtime import STATS, get_config

_SESSION_T0 = time.perf_counter()

#: Named measurements (section -> payload) merged into BENCH_runtime.json.
RUNTIME_BENCH: dict[str, dict] = {}

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_runtime.json"


@pytest.fixture(scope="session")
def universe() -> SyntheticUS:
    """The benchmark-scale universe (built once per session)."""
    u = default_universe()
    # Touch the heavy components so individual benchmarks measure the
    # analysis, not the one-time synthetic-US construction.
    u.population
    u.whp
    u.cells
    return u


def print_result(title: str, body: str) -> None:
    """Uniform section printing for the benchmark harness."""
    print(f"\n===== {title} =====")
    print(body)


def record_timing(section: str, **payload) -> None:
    """Record a named measurement for ``BENCH_runtime.json``."""
    RUNTIME_BENCH[section] = payload


def pytest_sessionfinish(session, exitstatus) -> None:
    """Dump the session's runtime stats as machine-readable JSON.

    Schema ``bench-runtime/2``: ISO-8601 UTC timestamp, git SHA, and
    cpu count replace the bare ``generated_unix`` float of schema 1
    (``repro history --bench`` ingests both).  When a run ledger is
    armed (``REPRO_LEDGER_DIR``), the same measurements are appended
    there as a bench-kind manifest, so benchmark sessions and CLI runs
    share one perf history — the ``repro gate`` CI baseline.
    """
    cfg = get_config()
    snapshot = STATS.snapshot()
    counters = snapshot["counters"]
    generated_iso = obs.utc_now_iso()
    report = {
        "schema": "bench-runtime/2",
        "generated_iso": generated_iso,
        "git_sha": obs.git_sha(),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "workers": cfg.workers,
            "chunk_size": cfg.chunk_size,
            "cache_enabled": cfg.cache_enabled,
            "cache_dir": str(cfg.cache_dir) if cfg.cache_dir else None,
        },
        "stages_seconds": snapshot["timers"],
        "stage_calls": snapshot["timer_calls"],
        "counters": counters,
        "cache": {
            "hits": counters.get("cache.hits", 0),
            "misses": counters.get("cache.misses", 0),
            "disk_hits": counters.get("cache.disk_hits", 0),
        },
        "sections": RUNTIME_BENCH,
    }
    try:
        BENCH_JSON_PATH.write_text(json.dumps(report, indent=2,
                                              sort_keys=True) + "\n")
    except OSError:
        pass

    ledger_dir = obs.resolve_ledger_dir()
    if ledger_dir is None:
        return
    manifest = obs.RunManifest(
        run_id=obs.new_run_id(),
        kind="bench",
        command="bench",
        started=generated_iso,
        duration_s=round(time.perf_counter() - _SESSION_T0, 6),
        config=report["config"],
        timers=snapshot["timers"],
        timer_calls=snapshot["timer_calls"],
        counters=counters,
        extra={"sections": RUNTIME_BENCH,
               "exit_status": int(exitstatus)},
        **obs.environment(),
    )
    try:
        obs.Ledger(ledger_dir).append(manifest)
    except OSError:
        pass
