"""Benchmark fixtures.

Benchmarks run at a larger scale than tests (150k transceivers,
0.05-degree WHP grid) and print each reproduced table/figure next to the
paper's numbers; the printed output is the source for EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.data import SyntheticUS, default_universe


@pytest.fixture(scope="session")
def universe() -> SyntheticUS:
    """The benchmark-scale universe (built once per session)."""
    u = default_universe()
    # Touch the heavy components so individual benchmarks measure the
    # analysis, not the one-time synthetic-US construction.
    u.population
    u.whp
    u.cells
    return u


def print_result(title: str, body: str) -> None:
    """Uniform section printing for the benchmark harness."""
    print(f"\n===== {title} =====")
    print(body)
