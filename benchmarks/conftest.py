"""Benchmark fixtures and the machine-readable timing report.

Benchmarks run at a larger scale than tests (150k transceivers,
0.05-degree WHP grid) and print each reproduced table/figure next to the
paper's numbers; the printed output is the source for EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only -s

Every benchmark session also writes ``BENCH_runtime.json`` at the repo
root: per-stage wall times, index/cache counters, the runtime config
(workers, chunk size, cache state), and any named measurements recorded
via :func:`record_timing` — the perf trajectory future PRs diff against.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.data import SyntheticUS, default_universe
from repro.runtime import STATS, get_config

#: Named measurements (section -> payload) merged into BENCH_runtime.json.
RUNTIME_BENCH: dict[str, dict] = {}

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_runtime.json"


@pytest.fixture(scope="session")
def universe() -> SyntheticUS:
    """The benchmark-scale universe (built once per session)."""
    u = default_universe()
    # Touch the heavy components so individual benchmarks measure the
    # analysis, not the one-time synthetic-US construction.
    u.population
    u.whp
    u.cells
    return u


def print_result(title: str, body: str) -> None:
    """Uniform section printing for the benchmark harness."""
    print(f"\n===== {title} =====")
    print(body)


def record_timing(section: str, **payload) -> None:
    """Record a named measurement for ``BENCH_runtime.json``."""
    RUNTIME_BENCH[section] = payload


def pytest_sessionfinish(session, exitstatus) -> None:
    """Dump the session's runtime stats as machine-readable JSON."""
    cfg = get_config()
    snapshot = STATS.snapshot()
    counters = snapshot["counters"]
    report = {
        "schema": "bench-runtime/1",
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "workers": cfg.workers,
            "chunk_size": cfg.chunk_size,
            "cache_enabled": cfg.cache_enabled,
            "cache_dir": str(cfg.cache_dir) if cfg.cache_dir else None,
        },
        "stages_seconds": snapshot["timers"],
        "stage_calls": snapshot["timer_calls"],
        "counters": counters,
        "cache": {
            "hits": counters.get("cache.hits", 0),
            "misses": counters.get("cache.misses", 0),
            "disk_hits": counters.get("cache.disk_hits", 0),
        },
        "sections": RUNTIME_BENCH,
    }
    try:
        BENCH_JSON_PATH.write_text(json.dumps(report, indent=2,
                                              sort_keys=True) + "\n")
    except OSError:
        pass
