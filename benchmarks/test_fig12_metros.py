"""Figure 12: metro areas with the most at-risk transceivers (§3.7)."""

from conftest import print_result

from repro.core import report
from repro.core.metro import metro_risk_analysis


def test_fig12_metros(benchmark, universe):
    rows = benchmark.pedantic(metro_risk_analysis, args=(universe,),
                              rounds=1, iterations=1)
    print_result("FIGURE 12 — metro ranking",
                 report.render_figure12(rows))

    names = [r.metro for r in rows]
    assert "Los Angeles" in names[:3]
    ny = next(r for r in rows if r.metro == "New York City")
    assert ny.total < rows[0].total / 5
