"""§3.8: extending the very-high WHP regions by half a mile."""

from conftest import print_result

from repro.core import report
from repro.core.extension import extend_very_high


def test_s38_extension(benchmark, universe):
    result = benchmark.pedantic(extend_very_high, args=(universe,),
                                rounds=1, iterations=1)
    print_result("S3.8 — very-high extension",
                 report.render_extension(result))

    assert result.vh_after > 2 * result.vh_before      # paper: 6.7x
    assert result.total_after > result.total_before
    assert result.validation_after.accuracy \
        >= result.validation_before.accuracy           # paper: 46->62%
