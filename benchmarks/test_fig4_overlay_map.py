"""Figure 4: cell transceivers in wildfire perimeters 2000-2018."""

from conftest import print_result

from repro.viz.figures import figure4


def test_fig4_overlay_map(benchmark, universe):
    art = benchmark.pedantic(figure4, args=(universe,),
                             rounds=1, iterations=1)
    body = art.ascii_art + (
        f"\nscaled total: {art.data['scaled_total']:,} | paper: >27,000")
    print_result("FIGURE 4 — transceivers in perimeters", body)
    assert art.data["scaled_total"] > 10_000
