"""Ablation: WHP raster resolution sweep.

The real product is 270 m; our default is 0.05 degrees.  The analyses
are designed to be resolution-independent — the class calibration and
the headline at-risk total should hold as the grid coarsens.
"""

from conftest import print_result

from repro.core.hazard import hazard_analysis
from repro.core.report import format_table
from repro.data import SyntheticUS, UniverseConfig


def _sweep():
    rows = []
    for res in (0.2, 0.1, 0.05):
        u = SyntheticUS(UniverseConfig(n_transceivers=60_000,
                                       whp_resolution_deg=res))
        summary = hazard_analysis(u)
        rows.append([f"{res:.2f} deg", f"{summary.at_risk_total:,}",
                     summary.states[0].state,
                     f"{summary.class_counts['Very High']:,}"])
    return rows


def test_ablation_resolution(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_result("ABLATION — WHP resolution sweep", format_table(
        ["Resolution", "At-risk total", "Top state", "VH count"], rows))

    totals = [int(r[1].replace(",", "")) for r in rows]
    # at-risk total stays in a band across resolutions (calibration
    # is resolution-independent by construction)
    assert max(totals) < 2.0 * min(totals)
    assert all(r[2] == "CA" for r in rows)
