"""Figure 15: WHP with ecoregions, SLC-Denver corridor (§3.9)."""

from conftest import print_result

from repro.viz.figures import figure15


def test_fig15_whp_ecoregions(benchmark, universe):
    art = benchmark.pedantic(figure15, args=(universe,),
                             rounds=1, iterations=1)
    print_result("FIGURE 15 — corridor WHP window", art.ascii_art)
    # the Wasatch front ecoregion contains at-risk infrastructure
    at_risk = dict(art.data)
    assert at_risk.get("342B", 0) + at_risk.get("341A", 0) \
        + at_risk.get("M331E", 0) > 0
