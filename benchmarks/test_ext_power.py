"""Extension: power-dependency analysis (§3.11 follow-on work)."""

from conftest import print_result

from repro.core.power import fire_power_impact, power_grid_for, psps_exposure
from repro.core.report import format_table


def _run(universe):
    grid = power_grid_for(universe)
    impacts = [fire_power_impact(universe, year, grid=grid)
               for year in (2017, 2018, 2019)]
    exposure = psps_exposure(universe, grid=grid)
    return impacts, exposure


def test_ext_power(benchmark, universe):
    impacts, exposure = benchmark.pedantic(_run, args=(universe,),
                                           rounds=1, iterations=1)
    rows = [[i.year, i.sites_direct, i.sites_indirect,
             f"{i.indirect_ratio:.1f}x", i.substations_hit,
             i.lines_cut] for i in impacts]
    body = format_table(["Year", "Direct", "Indirect", "Ind/Dir",
                         "Substations", "Lines cut"], rows)
    body += (f"\nstanding PSPS exposure: {exposure.sites_exposed} of "
             f"{exposure.sites_total} sites "
             f"({exposure.exposed_share:.0%}) hang off lines/feeders "
             f"crossing high+ WHP terrain")
    print_result("EXTENSION — power dependency (S3.11)", body)

    # The paper's §3.2 story: the power channel reaches beyond the
    # perimeters in every big season.
    assert all(i.sites_indirect > 0 for i in impacts)
