"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

ARGS = ["-n", "20000", "--whp-res", "0.1"]


def _run(*argv: str) -> str:
    buffer = io.StringIO()
    code = main([*ARGS, *argv], stream=buffer)
    assert code == 0
    return buffer.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.transceivers == 60_000
        assert args.command == "fig7"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_table1(self):
        out = _run("table1")
        assert "2018" in out and "Paper" in out

    def test_table2(self):
        assert "AT&T" in _run("table2")

    def test_table3(self):
        assert "LTE" in _run("table3")

    def test_fig5(self):
        assert "Oct 28" in _run("fig5")

    def test_fig7(self):
        out = _run("fig7")
        assert "Very High" in out and "261,569" in out

    def test_fig8(self):
        assert "CA" in _run("fig8")

    def test_fig9(self):
        assert "per 1000" in _run("fig9")

    def test_fig10(self):
        assert "Very Dense" in _run("fig10")

    def test_fig12(self):
        assert "Los Angeles" in _run("fig12")

    def test_ecoregions(self):
        assert "+240%" in _run("ecoregions")

    def test_validate(self):
        assert "accuracy" in _run("validate", "--oversample", "2")

    def test_extend(self):
        assert "->" in _run("extend")

    def test_power(self):
        assert "substations" in _run("power", "--year", "2019")

    def test_coverage(self):
        assert "coverage" in _run("coverage")

    def test_map(self):
        out = _run("map", "--figure", "6", "--width", "60")
        assert len(out.splitlines()) > 5


class TestObservabilityFlags:
    """The --trace / --log-json / --metrics / --profile / --mem
    surfaces and the `repro trace` subcommand."""

    def test_trace_writes_chrome_trace(self, tmp_path):
        import json

        from repro import runtime

        path = tmp_path / "trace.json"
        saved = runtime.get_config()
        try:
            # --no-cache so the join bodies (and their spans) actually
            # run even when earlier tests warmed the global cache
            out = _run("--no-cache", "--trace", str(path), "fig7")
        finally:
            runtime.set_config(saved)
            runtime.set_cache(None)
        assert "Very High" in out            # the stage still renders
        assert f"-> {path}" in out
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "stage.fig7" in names
        # one span per artifact the stage built (memo hits emit events,
        # not spans, so these appear exactly once)
        assert "artifact.whp_classes" in names
        assert "classify_cells" in names
        spans = [e for e in events if e["ph"] == "X"]
        assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
                   for e in spans)
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)

    def test_trace_all_one_span_per_artifact_build(self, tmp_path):
        """`repro all --trace` ships a valid trace where each artifact
        build appears exactly once per parameterization (the session
        memo guarantees a second request is a hit, not a new span)."""
        import json
        from collections import Counter

        path = tmp_path / "all.json"
        _run("--trace", str(path), "all")
        doc = json.loads(path.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        builds = Counter()
        for e in spans:
            if e["name"].startswith("artifact."):
                args = e["args"]
                params = tuple(sorted((k, v) for k, v in args.items()
                                      if k not in ("span_id", "parent_id")))
                builds[(e["name"], params)] += 1
        assert builds, "repro all must build artifacts"
        dupes = {k: n for k, n in builds.items() if n != 1}
        assert not dupes
        # every registered stage that ran got a stage span
        stage_names = {e["name"] for e in spans
                       if e["name"].startswith("stage.")}
        assert {"stage.table1", "stage.fig7", "stage.validate"} \
            <= stage_names

    def test_trace_subcommand_prints_tree(self):
        out = _run("trace", "fig7", "--min-ms", "0")
        assert "stage.fig7" in out
        assert "artifact." in out
        assert "%" in out                    # share-of-parent column

    def test_trace_subcommand_writes_out_file(self, tmp_path):
        import json

        path = tmp_path / "t.json"
        out = _run("trace", "fig7", "--out", str(path))
        assert f"-> {path}" in out
        assert json.loads(path.read_text())["traceEvents"]

    def test_log_json_streams_spans(self, tmp_path):
        import json

        path = tmp_path / "spans.jsonl"
        _run("--log-json", str(path), "fig7")
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert any(r["name"] == "stage.fig7" for r in records)
        assert all("type" in r for r in records)

    def test_metrics_exposition(self, tmp_path):
        path = tmp_path / "metrics.prom"
        _run("--metrics", str(path), "fig7")
        text = path.read_text()
        assert "# TYPE repro_stage_seconds_total counter" in text
        assert 'repro_stage_seconds_total{stage="cli.fig7"}' in text

    def test_profile_dumps_pstats(self, tmp_path):
        import pstats

        path = tmp_path / "prof.pstats"
        out = _run("--profile", str(path), "fig7")
        assert "profile: 1 stages" in out
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_mem_flag_attaches_rss_attrs(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        _run("--mem", "--trace", str(path), "fig7")
        doc = json.loads(path.read_text())
        arts = [e for e in doc["traceEvents"]
                if e.get("name", "").startswith("artifact.")]
        assert arts
        assert any("rss_kb_after" in e["args"] for e in arts)

    def test_tracing_off_leaves_no_spans(self):
        from repro import obs

        _run("fig7")
        assert not obs.is_enabled()
