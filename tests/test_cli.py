"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

ARGS = ["-n", "20000", "--whp-res", "0.1"]


def _run(*argv: str) -> str:
    buffer = io.StringIO()
    code = main([*ARGS, *argv], stream=buffer)
    assert code == 0
    return buffer.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.transceivers == 60_000
        assert args.command == "fig7"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_table1(self):
        out = _run("table1")
        assert "2018" in out and "Paper" in out

    def test_table2(self):
        assert "AT&T" in _run("table2")

    def test_table3(self):
        assert "LTE" in _run("table3")

    def test_fig5(self):
        assert "Oct 28" in _run("fig5")

    def test_fig7(self):
        out = _run("fig7")
        assert "Very High" in out and "261,569" in out

    def test_fig8(self):
        assert "CA" in _run("fig8")

    def test_fig9(self):
        assert "per 1000" in _run("fig9")

    def test_fig10(self):
        assert "Very Dense" in _run("fig10")

    def test_fig12(self):
        assert "Los Angeles" in _run("fig12")

    def test_ecoregions(self):
        assert "+240%" in _run("ecoregions")

    def test_validate(self):
        assert "accuracy" in _run("validate", "--oversample", "2")

    def test_extend(self):
        assert "->" in _run("extend")

    def test_power(self):
        assert "substations" in _run("power", "--year", "2019")

    def test_coverage(self):
        assert "coverage" in _run("coverage")

    def test_map(self):
        out = _run("map", "--figure", "6", "--width", "60")
        assert len(out.splitlines()) > 5
