"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

ARGS = ["-n", "20000", "--whp-res", "0.1"]


def _run(*argv: str) -> str:
    buffer = io.StringIO()
    code = main([*ARGS, *argv], stream=buffer)
    assert code == 0
    return buffer.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.transceivers == 60_000
        assert args.command == "fig7"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_table1(self):
        out = _run("table1")
        assert "2018" in out and "Paper" in out

    def test_table2(self):
        assert "AT&T" in _run("table2")

    def test_table3(self):
        assert "LTE" in _run("table3")

    def test_fig5(self):
        assert "Oct 28" in _run("fig5")

    def test_fig7(self):
        out = _run("fig7")
        assert "Very High" in out and "261,569" in out

    def test_fig8(self):
        assert "CA" in _run("fig8")

    def test_fig9(self):
        assert "per 1000" in _run("fig9")

    def test_fig10(self):
        assert "Very Dense" in _run("fig10")

    def test_fig12(self):
        assert "Los Angeles" in _run("fig12")

    def test_ecoregions(self):
        assert "+240%" in _run("ecoregions")

    def test_validate(self):
        assert "accuracy" in _run("validate", "--oversample", "2")

    def test_extend(self):
        assert "->" in _run("extend")

    def test_power(self):
        assert "substations" in _run("power", "--year", "2019")

    def test_coverage(self):
        assert "coverage" in _run("coverage")

    def test_map(self):
        out = _run("map", "--figure", "6", "--width", "60")
        assert len(out.splitlines()) > 5


class TestVersionFlag:
    def test_version_prints_version_and_sha(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith(f"repro {__version__} (")


class TestLedgerCLI:
    """The run ledger: recording, history, compare, and the gate."""

    SMALL = ["-n", "2000", "--no-cache"]

    def _ledgered(self, ledger_dir, *argv):
        buffer = io.StringIO()
        code = main(["--ledger-dir", str(ledger_dir), *argv],
                    stream=buffer)
        return code, buffer.getvalue()

    def _record_run(self, ledger_dir, *extra):
        code, out = self._ledgered(ledger_dir, *self.SMALL, *extra,
                                   "fig7")
        assert code == 0
        assert "ledger: run " in out

    def test_disabled_by_default_writes_nothing(self, tmp_path,
                                                monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        out = _run("fig7")
        assert "ledger:" not in out
        assert not (tmp_path / ".repro").exists()

    def test_run_appends_manifest_with_provenance(self, tmp_path):
        from repro import __version__
        from repro.obs import Ledger

        self._record_run(tmp_path / "led")
        (run,) = Ledger(tmp_path / "led").runs()
        assert run.kind == "cli" and run.command == "fig7"
        assert run.version == __version__
        assert run.universe["n_transceivers"] == 2000
        assert run.config["cache_enabled"] is False
        assert "cli.fig7" in run.timers
        assert run.outputs["fig7"]
        assert any(a.startswith("hazard") for a in run.artifacts)
        for rec in run.artifacts.values():
            assert len(rec["sha256"]) == 64 and rec["seconds"] >= 0

    def test_identical_runs_have_identical_checksums(self, tmp_path):
        from repro.obs import Ledger

        led = tmp_path / "led"
        self._record_run(led)
        self._record_run(led)
        a, b = Ledger(led).runs()
        assert a.outputs == b.outputs
        assert {k: v["sha256"] for k, v in a.artifacts.items()} == \
            {k: v["sha256"] for k, v in b.artifacts.items()}

    def test_history_and_compare_read_the_ledger_back(self, tmp_path):
        led = tmp_path / "led"
        self._record_run(led)
        self._record_run(led)
        code, out = self._ledgered(led, "history")
        assert code == 0
        assert "total s" in out and out.count("fig7") >= 2
        code, out = self._ledgered(led, "history", "fig7")
        assert code == 0 and "fig7 s" in out
        code, out = self._ledgered(led, "compare", "-2", "-1")
        assert code == 0
        assert "cli.fig7" in out
        assert "drift: none" in out

    def test_unwritable_ledger_dir_does_not_sink_the_run(self):
        code, out = self._ledgered("/proc/nope/led", *self.SMALL,
                                   "fig7")
        assert code == 0
        assert "Very High" in out
        assert "ledger: unwritable" in out
        assert "run not recorded" in out

    def test_missing_ledger_is_a_clean_error(self, tmp_path,
                                             monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        buffer = io.StringIO()
        assert main(["history"], stream=buffer) == 2
        assert "no ledger found" in buffer.getvalue()

    def test_gate_flags_injected_slowdown_as_regression(
            self, tmp_path, monkeypatch):
        """The acceptance scenario: a 2x slowdown injected into an
        artifact build must trip the gate, while the healthy baseline
        passes it."""
        import dataclasses
        import statistics
        import time as time_mod

        from repro import session as session_mod
        from repro.obs import Ledger

        led = tmp_path / "led"
        for _ in range(3):
            self._record_run(led)
        code, out = self._ledgered(led, "gate", "--baseline", "5")
        assert code == 0 and "OK" in out

        median = statistics.median(
            r.timers["cli.fig7"] for r in Ledger(led).runs())
        spec = session_mod.get_artifact_spec("hazard")

        def slow_build(session, **params):
            time_mod.sleep(max(median, 0.1))
            return spec.build(session, **params)

        monkeypatch.setitem(
            session_mod._ARTIFACTS, "hazard",
            dataclasses.replace(spec, build=slow_build))
        self._record_run(led)
        monkeypatch.undo()

        code, out = self._ledgered(led, "gate", "--baseline", "5")
        assert code == 1
        assert "REGRESSION" in out
        assert "cli.fig7" in out or "artifact.hazard" in out
        assert "drift" not in out.lower()

    def test_gate_flags_changed_seed_as_drift_not_regression(
            self, tmp_path):
        """The other acceptance half: different results at healthy
        speed are drift, and only --fail-on-drift makes that fatal."""
        led = tmp_path / "led"
        for _ in range(3):
            self._record_run(led)
        self._record_run(led, "--seed", "424242")

        code, out = self._ledgered(led, "gate", "--baseline", "5")
        assert code == 0
        assert "REGRESSION" not in out
        assert "drift: output fig7" in out

        code, _ = self._ledgered(led, "gate", "--baseline", "5",
                                 "--fail-on-drift")
        assert code == 1

        code, out = self._ledgered(led, "compare", "-2", "-1")
        assert code == 0
        assert "~ output fig7: content changed" in out
        assert ("~ artifact whp_classes(hazard='wildfire'): "
                "content changed") in out


class TestObservabilityFlags:
    """The --trace / --log-json / --metrics / --profile / --mem
    surfaces and the `repro trace` subcommand."""

    def test_trace_writes_chrome_trace(self, tmp_path):
        import json

        from repro import runtime

        path = tmp_path / "trace.json"
        saved = runtime.get_config()
        try:
            # --no-cache so the join bodies (and their spans) actually
            # run even when earlier tests warmed the global cache
            out = _run("--no-cache", "--trace", str(path), "fig7")
        finally:
            runtime.set_config(saved)
            runtime.set_cache(None)
        assert "Very High" in out            # the stage still renders
        assert f"-> {path}" in out
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "stage.fig7" in names
        # one span per artifact the stage built (memo hits emit events,
        # not spans, so these appear exactly once)
        assert "artifact.whp_classes" in names
        assert "classify_cells" in names
        spans = [e for e in events if e["ph"] == "X"]
        assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
                   for e in spans)
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)

    def test_trace_all_one_span_per_artifact_build(self, tmp_path):
        """`repro all --trace` ships a valid trace where each artifact
        build appears exactly once per parameterization (the session
        memo guarantees a second request is a hit, not a new span)."""
        import json
        from collections import Counter

        path = tmp_path / "all.json"
        _run("--trace", str(path), "all")
        doc = json.loads(path.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        builds = Counter()
        for e in spans:
            if e["name"].startswith("artifact."):
                args = e["args"]
                params = tuple(sorted((k, v) for k, v in args.items()
                                      if k not in ("span_id", "parent_id")))
                builds[(e["name"], params)] += 1
        assert builds, "repro all must build artifacts"
        dupes = {k: n for k, n in builds.items() if n != 1}
        assert not dupes
        # every registered stage that ran got a stage span
        stage_names = {e["name"] for e in spans
                       if e["name"].startswith("stage.")}
        assert {"stage.table1", "stage.fig7", "stage.validate"} \
            <= stage_names

    def test_trace_subcommand_prints_tree(self):
        out = _run("trace", "fig7", "--min-ms", "0")
        assert "stage.fig7" in out
        assert "artifact." in out
        assert "%" in out                    # share-of-parent column

    def test_trace_subcommand_writes_out_file(self, tmp_path):
        import json

        path = tmp_path / "t.json"
        out = _run("trace", "fig7", "--out", str(path))
        assert f"-> {path}" in out
        assert json.loads(path.read_text())["traceEvents"]

    def test_log_json_streams_spans(self, tmp_path):
        import json

        path = tmp_path / "spans.jsonl"
        _run("--log-json", str(path), "fig7")
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert any(r["name"] == "stage.fig7" for r in records)
        assert all("type" in r for r in records)

    def test_metrics_exposition(self, tmp_path):
        path = tmp_path / "metrics.prom"
        _run("--metrics", str(path), "fig7")
        text = path.read_text()
        assert "# TYPE repro_stage_seconds_total counter" in text
        assert 'repro_stage_seconds_total{stage="cli.fig7"}' in text

    def test_profile_dumps_pstats(self, tmp_path):
        import pstats

        path = tmp_path / "prof.pstats"
        out = _run("--profile", str(path), "fig7")
        assert "profile: 1 stages" in out
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_mem_flag_attaches_rss_attrs(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        _run("--mem", "--trace", str(path), "fig7")
        doc = json.loads(path.read_text())
        arts = [e for e in doc["traceEvents"]
                if e.get("name", "").startswith("artifact.")]
        assert arts
        assert any("rss_kb_after" in e["args"] for e in arts)

    def test_tracing_off_leaves_no_spans(self):
        from repro import obs

        _run("fig7")
        assert not obs.is_enabled()
