"""Tests for repro.data.wildfires."""

import numpy as np
import pytest

from repro.data.historical_stats import year_stats
from repro.data.whp import WHPClass
from repro.data.wildfires import (
    SCRIPTED_LA_FIRES_2019,
    generate_2019_season,
    generate_fire_season,
    scripted_2019_fires,
    star_polygon,
)


class TestStarPolygon:
    def test_area_matches_target(self, rng):
        for acres in (100.0, 10_000.0, 300_000.0):
            poly = star_polygon(-110.0, 40.0, acres, rng)
            assert poly.area_acres() == pytest.approx(acres, rel=0.02)

    def test_contains_center(self, rng):
        poly = star_polygon(-110.0, 40.0, 5_000.0, rng)
        assert poly.contains(-110.0, 40.0)

    def test_rejects_nonpositive_area(self, rng):
        with pytest.raises(ValueError):
            star_polygon(-110.0, 40.0, 0.0, rng)

    def test_irregular_outline(self, rng):
        poly = star_polygon(-110.0, 40.0, 50_000.0, rng,
                            roughness=0.45)
        c = poly.centroid()
        from repro.geo.projection import haversine_m
        radii = haversine_m(np.full(len(poly.exterior), c.lon),
                            np.full(len(poly.exterior), c.lat),
                            poly.exterior[:, 0], poly.exterior[:, 1])
        assert radii.max() / radii.min() > 1.2


class TestSeasonGeneration:
    @pytest.fixture(scope="class")
    def season(self, whp):
        return generate_fire_season(2014, whp, seed=99)

    def test_total_acreage_matches_record(self, season):
        assert season.total_acres() \
            == pytest.approx(year_stats(2014).acres_burned * 1e6,
                             rel=1e-6)

    def test_fire_count_hundreds(self, season):
        assert 150 <= len(season) <= 2000

    def test_heavy_tail(self, season):
        sizes = sorted((f.acres for f in season.fires), reverse=True)
        top10_share = sum(sizes[:max(1, len(sizes) // 10)]) \
            / sum(sizes)
        assert top10_share > 0.5

    def test_dates_within_year(self, season):
        for fire in season.fires:
            assert 1 <= fire.start_doy <= 365
            assert fire.start_doy <= fire.end_doy <= 365
            assert fire.duration_days >= 1

    def test_ignitions_prefer_hazard(self, whp, season):
        """Most perimeter centroids are in burnable cells."""
        classes = np.array([
            whp.classify(f.polygon.centroid().lon,
                         f.polygon.centroid().lat)
            for f in season.fires])
        assert (classes >= int(WHPClass.LOW)).mean() > 0.6

    def test_deterministic(self, whp):
        a = generate_fire_season(2013, whp, seed=7)
        b = generate_fire_season(2013, whp, seed=7)
        assert [f.acres for f in a.fires] == [f.acres for f in b.fires]

    def test_custom_total_acres(self, whp):
        season = generate_fire_season(2013, whp, seed=7,
                                      total_acres=1e6,
                                      n_perimeter_fires=50)
        assert season.total_acres() == pytest.approx(1e6, rel=1e-6)
        assert len(season) == 50


class TestScripted2019:
    def test_four_fires(self):
        fires = scripted_2019_fires()
        assert {f.name for f in fires} \
            == {"Kincade", "Getty", "Saddle Ridge", "Tick"}

    def test_real_acreages(self):
        by_name = {f.name: f for f in scripted_2019_fires()}
        assert by_name["Kincade"].acres == pytest.approx(77_758)
        assert by_name["Getty"].acres == pytest.approx(745)

    def test_polygon_areas_match_acres(self):
        for fire in scripted_2019_fires():
            assert fire.polygon.area_acres() \
                == pytest.approx(fire.acres, rel=0.02)

    def test_la_fires_near_los_angeles(self):
        from repro.data.cities import city_by_name
        la = city_by_name("Los Angeles")
        for fire in scripted_2019_fires():
            if fire.name in SCRIPTED_LA_FIRES_2019:
                c = fire.polygon.centroid()
                assert abs(c.lon - la.lon) < 0.5
                assert abs(c.lat - la.lat) < 0.5

    def test_2019_season_includes_scripted(self, whp):
        season = generate_2019_season(whp, seed=1)
        names = {f.name for f in season.fires}
        assert set(SCRIPTED_LA_FIRES_2019) <= names
        assert "Kincade" in names

    def test_2019_total_matches_record(self, whp):
        season = generate_2019_season(whp, seed=1)
        assert season.total_acres() \
            == pytest.approx(year_stats(2019).acres_burned * 1e6,
                             rel=1e-6)
