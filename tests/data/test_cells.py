"""Tests for repro.data.cells."""

import numpy as np
import pytest

from repro.data.cells import (
    PAPER_TRANSCEIVER_COUNT,
    PROVIDER_GROUPS,
    CellUniverse,
    generate_cells,
)
from repro.data.providers import provider_market_shares
from repro.data.radios import RadioType


class TestGeneration:
    def test_exact_count(self, universe):
        assert len(universe.cells) == universe.config.n_transceivers

    def test_rejects_nonpositive(self, universe):
        with pytest.raises(ValueError):
            generate_cells(universe.population, 0)

    def test_universe_scale(self, cells):
        assert cells.universe_scale \
            == pytest.approx(PAPER_TRANSCEIVER_COUNT / len(cells))

    def test_per_site_bounds(self, cells):
        _, counts = np.unique(cells.site_ids, return_counts=True)
        assert counts.min() >= 1
        assert counts.max() <= 12

    def test_mean_per_site(self, universe, cells):
        mean = len(cells) / cells.n_sites()
        assert mean == pytest.approx(universe.config.mean_per_site,
                                     rel=0.15)

    def test_transceivers_share_site_location(self, cells):
        """Co-located transceivers are within jitter distance."""
        site = cells.site_ids[0]
        mask = cells.site_ids == site
        lons = cells.lons[mask]
        lats = cells.lats[mask]
        assert lons.max() - lons.min() < 0.02
        assert lats.max() - lats.min() < 0.02

    def test_provider_shares_close_to_market(self, cells):
        shares = provider_market_shares()
        names = cells.group_names()
        for i, group in enumerate(PROVIDER_GROUPS):
            measured = float((names == group).mean())
            assert measured == pytest.approx(shares[group], abs=0.04), \
                group

    def test_plmns_resolve_to_assigned_group(self, cells):
        from repro.data.cells import _groups_from_plmns
        rederived = _groups_from_plmns(cells.mcc[:2000], cells.mnc[:2000])
        np.testing.assert_array_equal(rederived,
                                      cells.provider_group[:2000])

    def test_radio_codes_valid(self, cells):
        assert set(np.unique(cells.radio)) <= {
            int(RadioType.GSM), int(RadioType.UMTS),
            int(RadioType.CDMA), int(RadioType.LTE)}

    def test_deterministic(self, universe):
        a = generate_cells(universe.population, 2000, seed=42)
        b = generate_cells(universe.population, 2000, seed=42)
        np.testing.assert_allclose(a.lons, b.lons)
        np.testing.assert_array_equal(a.mnc, b.mnc)

    def test_different_seeds_differ(self, universe):
        a = generate_cells(universe.population, 2000, seed=1)
        b = generate_cells(universe.population, 2000, seed=2)
        assert not np.allclose(a.lons, b.lons)

    def test_locations_in_conus(self, cells):
        box = cells.index().bbox
        assert box.min_lon > -126 and box.max_lon < -66
        assert box.min_lat > 24 and box.max_lat < 50


class TestContainer:
    def test_column_length_validation(self):
        with pytest.raises(ValueError):
            CellUniverse(
                lons=np.zeros(3), lats=np.zeros(3),
                site_ids=np.zeros(2, dtype=np.int64),
                mcc=np.zeros(3, dtype=np.int32),
                mnc=np.zeros(3, dtype=np.int32),
                provider_group=np.zeros(3, dtype=np.int8),
                radio=np.zeros(3, dtype=np.int8))

    def test_subset(self, cells):
        sub = cells.subset(np.arange(10))
        assert len(sub) == 10
        np.testing.assert_allclose(sub.lons, cells.lons[:10])

    def test_subset_mask(self, cells):
        mask = cells.radio == int(RadioType.LTE)
        sub = cells.subset(mask)
        assert len(sub) == int(mask.sum())

    def test_index_cached(self, cells):
        idx1 = cells.index()
        idx2 = cells.index()
        assert idx1 is idx2

    def test_group_names(self, cells):
        names = cells.group_names()
        assert set(np.unique(names)) <= set(PROVIDER_GROUPS)


class TestCsvIO:
    def test_roundtrip(self, universe, tmp_path):
        small = generate_cells(universe.population, 500, seed=3)
        path = tmp_path / "cells.csv"
        small.to_csv(path)
        loaded = CellUniverse.from_csv(path)
        assert len(loaded) == 500
        np.testing.assert_allclose(loaded.lons, small.lons, atol=1e-6)
        np.testing.assert_array_equal(loaded.mcc, small.mcc)
        np.testing.assert_array_equal(loaded.radio, small.radio)
        # provider groups are re-derived from PLMNs on load
        np.testing.assert_array_equal(loaded.provider_group,
                                      small.provider_group)

    def test_header(self, universe, tmp_path):
        small = generate_cells(universe.population, 10, seed=3)
        path = tmp_path / "cells.csv"
        small.to_csv(path)
        header = path.read_text().splitlines()[0]
        assert header == "radio,mcc,net,area,cell,lon,lat"
