"""Tests for repro.data.population."""

import numpy as np
import pytest

from repro.data.cities import city_by_name
from repro.data.population import CONUS_POPULATION, PopulationSurface
from repro.geo.geometry import BBox


@pytest.fixture(scope="module")
def pop():
    return PopulationSurface(resolution_deg=0.2)  # coarse, fast


class TestSurface:
    def test_normalized_total(self, pop):
        assert pop.raster.data.sum() == pytest.approx(CONUS_POPULATION,
                                                      rel=1e-6)

    def test_nonnegative(self, pop):
        assert (pop.raster.data >= 0).all()

    def test_ocean_is_zero(self, pop):
        # Atlantic, Pacific, Gulf
        for lon, lat in ((-70.0, 35.0), (-126.0, 40.0), (-90.0, 26.5)):
            assert pop.density_at(lon, lat) == 0.0

    def test_cities_denser_than_wilderness(self, pop):
        la = city_by_name("Los Angeles")
        urban = pop.density_at(la.lon, la.lat)
        wild = pop.density_at(-117.0, 39.0)  # central Nevada
        assert urban > 50 * wild

    def test_metro_mass_near_anchor(self, pop):
        """Most of a metro's population lies within ~1 degree."""
        chi = city_by_name("Chicago")
        box = BBox(chi.lon - 1, chi.lat - 1, chi.lon + 1, chi.lat + 1)
        near = pop.population_in_bbox(box)
        assert near > 0.5 * chi.metro_pop

    def test_wildland_front_voided(self, pop):
        """The San Gabriel front holds fewer people than the inland
        fringe at the same distance from downtown (due east, toward
        Riverside)."""
        la = city_by_name("Los Angeles")
        d = np.hypot(0.15, 0.35)
        front = pop.density_at(la.lon + 0.15, la.lat + 0.35)
        inland = pop.density_at(la.lon + d, la.lat)
        assert front < inland

    def test_road_distance_raster_available(self, pop):
        assert pop.road_distance is not None
        assert pop.road_distance.grid.shape == pop.grid.shape

    def test_population_in_bbox_disjoint(self, pop):
        assert pop.population_in_bbox(BBox(0, 0, 1, 1)) == 0.0

    def test_population_in_bbox_total(self, pop):
        total = pop.population_in_bbox(pop.grid.bbox)
        assert total == pytest.approx(CONUS_POPULATION, rel=1e-6)


class TestSampling:
    def test_sample_points_on_land(self, pop, rng):
        lons, lats = pop.sample_points(500, rng, exponent=0.85)
        dens = pop.density_at(lons, lats)
        # jitter can push a coastal point into a zero cell; rare
        assert (dens > 0).mean() > 0.95

    def test_sample_points_shape(self, pop, rng):
        lons, lats = pop.sample_points(17, rng)
        assert lons.shape == (17,) and lats.shape == (17,)

    def test_exponent_flattens(self, pop):
        """Lower exponent spreads samples into low-density cells."""
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        lons_h, lats_h = pop.sample_points(4000, rng1, exponent=1.0)
        lons_l, lats_l = pop.sample_points(4000, rng2, exponent=0.5)
        med_h = np.median(pop.density_at(lons_h, lats_h))
        med_l = np.median(pop.density_at(lons_l, lats_l))
        assert med_l < med_h

    def test_deterministic_given_seed(self, pop):
        a = pop.sample_points(50, np.random.default_rng(9))
        b = pop.sample_points(50, np.random.default_rng(9))
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])
