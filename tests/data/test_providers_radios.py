"""Tests for repro.data.providers and repro.data.radios."""

import numpy as np
import pytest

from repro.data.providers import (
    MAJOR_PROVIDERS,
    provider_market_shares,
    provider_registry,
    resolve_provider,
    rural_affinity,
)
from repro.data.radios import RadioType, draw_radio_types, technology_mix


class TestRegistry:
    def test_major_providers_present(self):
        registry = provider_registry()
        for name in MAJOR_PROVIDERS:
            assert name in registry

    def test_46_regional_carriers(self):
        registry = provider_registry()
        regional = [p for p in registry.values()
                    if p.name not in MAJOR_PROVIDERS]
        assert len(regional) == 46

    def test_no_duplicate_plmns(self):
        seen = set()
        for p in provider_registry().values():
            for plmn in p.plmns:
                key = (plmn.mcc, plmn.mnc)
                assert key not in seen, key
                seen.add(key)

    def test_majors_have_many_plmns(self):
        """The paper's point: majors own many ids via acquisitions."""
        registry = provider_registry()
        for name in MAJOR_PROVIDERS:
            assert len(registry[name].plmns) >= 8, name

    def test_shares_sum_to_one(self):
        assert sum(provider_market_shares().values()) \
            == pytest.approx(1.0)

    def test_share_ordering_matches_paper(self):
        shares = provider_market_shares()
        assert shares["AT&T"] > shares["T-Mobile"] > shares["Sprint"]
        assert shares["Sprint"] > shares["Others"]


class TestResolution:
    def test_flagship_ids(self):
        assert resolve_provider(310, 410) == "AT&T"
        assert resolve_provider(310, 260) == "T-Mobile"
        assert resolve_provider(310, 120) == "Sprint"
        assert resolve_provider(311, 480) == "Verizon"

    def test_legacy_ids_resolve_to_acquirer(self):
        assert resolve_provider(310, 660) == "T-Mobile"  # MetroPCS
        assert resolve_provider(311, 390) == "Verizon"   # Alltel
        assert resolve_provider(310, 680) == "AT&T"      # Dobson

    def test_unknown(self):
        assert resolve_provider(208, 1) == "Unknown"  # Orange France

    def test_regional_resolution(self):
        registry = provider_registry()
        regional = next(p for p in registry.values()
                        if p.name not in MAJOR_PROVIDERS)
        plmn = regional.plmns[0]
        assert resolve_provider(plmn.mcc, plmn.mnc) == regional.name


class TestAffinity:
    def test_sprint_most_urban(self):
        assert rural_affinity("Sprint") < rural_affinity("T-Mobile") \
            < rural_affinity("AT&T")

    def test_unknown_group_gets_default(self):
        assert rural_affinity("nope") == rural_affinity("Others")


class TestTechnologyMix:
    def test_mix_sums_to_one(self):
        for group in (*MAJOR_PROVIDERS, "Others"):
            assert sum(technology_mix(group)) == pytest.approx(1.0)

    def test_cdma_split(self):
        """CDMA only on the Verizon/Sprint side; GSM only on AT&T/TMO."""
        assert technology_mix("AT&T")[2] == 0.0
        assert technology_mix("T-Mobile")[2] == 0.0
        assert technology_mix("Verizon")[0] == 0.0
        assert technology_mix("Sprint")[0] == 0.0

    def test_draw_respects_zero_entries(self, rng):
        groups = np.array(["Verizon"] * 2000)
        radios = draw_radio_types(groups, np.full(2000, 0.5), rng)
        assert not (radios == int(RadioType.GSM)).any()

    def test_no_5g_in_snapshot(self, rng):
        groups = np.array(["AT&T"] * 2000)
        radios = draw_radio_types(groups, np.zeros(2000), rng)
        assert not (radios == int(RadioType.NR5G)).any()

    def test_rural_lte_tilt(self, rng):
        groups = np.array(["AT&T"] * 20000)
        rural = draw_radio_types(groups, np.ones(20000),
                                 np.random.default_rng(1))
        urban = draw_radio_types(groups, np.zeros(20000),
                                 np.random.default_rng(1))
        lte_rural = (rural == int(RadioType.LTE)).mean()
        lte_urban = (urban == int(RadioType.LTE)).mean()
        assert lte_rural > lte_urban + 0.05

    def test_draw_matches_base_mix(self, rng):
        groups = np.array(["T-Mobile"] * 50000)
        radios = draw_radio_types(groups, np.zeros(50000), rng)
        gsm, umts, cdma, lte = technology_mix("T-Mobile")
        assert (radios == int(RadioType.LTE)).mean() \
            == pytest.approx(lte, abs=0.02)
        assert (radios == int(RadioType.UMTS)).mean() \
            == pytest.approx(umts, abs=0.02)
