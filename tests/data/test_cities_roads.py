"""Tests for repro.data.cities and repro.data.roads."""

import networkx as nx
import numpy as np
import pytest

from repro.data.cities import (
    COUNTY_BBOXES,
    PAPER_METROS,
    WILDLAND_FRONTS,
    city_by_name,
    conus_cities,
)
from repro.data.roads import distance_to_roads_deg, road_graph, road_segments
from repro.data.states import StateAssigner


class TestCities:
    def test_count(self):
        assert len(conus_cities()) >= 70

    def test_unique_names(self):
        names = [c.name for c in conus_cities()]
        assert len(set(names)) == len(names)

    def test_unique_county_names(self):
        counties = [c.county_name for c in conus_cities()]
        assert len(set(counties)) == len(counties)

    def test_lookup(self):
        la = city_by_name("Los Angeles")
        assert la.state == "CA"
        assert la.county_pop == 10_100_000

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            city_by_name("Gotham")

    def test_paper_metros_exist(self):
        for name in PAPER_METROS:
            city_by_name(name)

    def test_cities_are_in_their_states(self):
        assigner = StateAssigner()
        mismatches = []
        for c in conus_cities():
            got = assigner.assign(c.lon, c.lat)
            if got != c.state:
                mismatches.append((c.name, got, c.state))
        # simplified borders may misplace the odd coastal city
        assert len(mismatches) <= 3, mismatches

    def test_county_bboxes_contain_anchor(self):
        for c in conus_cities():
            box = c.county_bbox
            if box is None:
                continue
            min_lon, min_lat, max_lon, max_lat = box
            assert min_lon <= c.lon <= max_lon, c.name
            assert min_lat <= c.lat <= max_lat, c.name

    def test_county_pop_not_exceeding_metro_much(self):
        for c in conus_cities():
            assert c.county_pop <= c.metro_pop * 1.6, c.name

    def test_wildland_fronts_reference_cities(self):
        names = {c.name for c in conus_cities()}
        for city in WILDLAND_FRONTS:
            assert city in names

    def test_front_parameters_sane(self):
        for dlon, dlat, sigma, boost in WILDLAND_FRONTS.values():
            assert 0 < sigma < 0.5
            assert 0 < boost <= 1.0
            assert abs(dlon) < 1.0 and abs(dlat) < 1.0

    def test_county_bbox_tables_consistent(self):
        county_names = {c.county_name for c in conus_cities()}
        for name in COUNTY_BBOXES:
            assert name in county_names, name


class TestRoads:
    def test_graph_connected(self):
        assert nx.is_connected(road_graph())

    def test_every_city_is_node(self):
        g = road_graph()
        for c in conus_cities():
            assert c.name in g

    def test_edge_lengths_positive(self):
        g = road_graph()
        for _, _, data in g.edges(data=True):
            assert data["length_m"] > 0

    def test_degree_at_least_k(self):
        g = road_graph()
        assert min(dict(g.degree()).values()) >= 3

    def test_segments_match_edges(self):
        assert len(road_segments()) == road_graph().number_of_edges()

    def test_distance_zero_on_city(self):
        la = city_by_name("Los Angeles")
        d = distance_to_roads_deg(np.array([la.lon]), np.array([la.lat]))
        assert d[0] < 1e-6

    def test_distance_positive_off_network(self):
        # middle of Nevada wilderness
        d = distance_to_roads_deg(np.array([-117.0]), np.array([39.0]))
        assert d[0] > 0.05
