"""Tests for repro.data.dirs (the FCC case-study simulator)."""

import numpy as np
import pytest

from repro.data.dirs import (
    DIRS_REGION,
    DIRS_REPORT_DAYS,
    DirsDailyReport,
    simulate_dirs,
)
from repro.data.cells import CellUniverse


@pytest.fixture(scope="module")
def sim(universe):
    return universe.dirs


@pytest.fixture(scope="session")
def universe():
    # module-level copy to avoid import shadowing of the session fixture
    from repro.data import small_universe
    return small_universe()


class TestSimulation:
    def test_eight_report_days(self, sim):
        assert len(sim.reports) == 8
        assert [r.doy for r in sim.reports] == list(DIRS_REPORT_DAYS)

    def test_power_dominates_at_peak(self, sim):
        """The paper's central §3.2 finding: >80% of the peak-day
        outages are power, not damage."""
        peak = sim.peak()
        assert peak.sites_out_power / max(peak.sites_out_total, 1) > 0.6

    def test_peak_late_in_window(self, sim):
        peak = sim.peak()
        assert peak.doy in (300, 301, 302)  # around 28 October

    def test_outages_decline_after_peak(self, sim):
        totals = [r.sites_out_total for r in sim.reports]
        peak_i = int(np.argmax(totals))
        assert totals[-1] < totals[peak_i]

    def test_damage_monotone_nondecreasing(self, sim):
        dmg = [r.sites_out_damage for r in sim.reports]
        assert all(b >= a for a, b in zip(dmg, dmg[1:]))

    def test_region_sites_positive(self, sim):
        assert sim.n_region_sites > 0

    def test_out_never_exceeds_region(self, sim):
        for r in sim.reports:
            assert r.sites_out_total <= sim.n_region_sites

    def test_scaled_reports(self, sim):
        scaled = sim.scaled_reports(10.0)
        assert len(scaled) == 8
        assert scaled[0]["power"] \
            == round(sim.reports[0].sites_out_power * 10)

    def test_empty_region(self):
        """A universe with no sites in California produces zero outages."""
        empty = CellUniverse(
            lons=np.array([-80.0]), lats=np.array([30.0]),
            site_ids=np.array([0], dtype=np.int64),
            mcc=np.array([310], dtype=np.int32),
            mnc=np.array([410], dtype=np.int32),
            provider_group=np.array([0], dtype=np.int8),
            radio=np.array([3], dtype=np.int8))
        sim = simulate_dirs(empty, [])
        assert all(r.sites_out_total == 0 for r in sim.reports)

    def test_deterministic(self, universe):
        a = simulate_dirs(universe.cells, universe.fire_season(2019).fires,
                          seed=5)
        b = simulate_dirs(universe.cells, universe.fire_season(2019).fires,
                          seed=5)
        assert [r.sites_out_total for r in a.reports] \
            == [r.sites_out_total for r in b.reports]

    def test_higher_psps_fraction_more_outages(self, universe):
        fires = universe.fire_season(2019).fires
        low = simulate_dirs(universe.cells, fires, seed=5,
                            psps_site_fraction=0.005)
        high = simulate_dirs(universe.cells, fires, seed=5,
                             psps_site_fraction=0.05)
        assert high.peak().sites_out_total > low.peak().sites_out_total

    def test_region_bbox_is_california(self):
        assert DIRS_REGION.contains(-122.4, 38.5)   # wine country
        assert DIRS_REGION.contains(-118.2, 34.3)   # LA
        assert not DIRS_REGION.contains(-100.0, 35.0)


class TestReportType:
    def test_total(self):
        r = DirsDailyReport(doy=300, sites_out_power=10,
                            sites_out_backhaul=3, sites_out_damage=2)
        assert r.sites_out_total == 15
