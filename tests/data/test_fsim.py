"""Tests for repro.data.fsim (burn-probability simulation)."""

import numpy as np
import pytest

from repro.data.fsim import (
    FsimConfig,
    derive_whp_classes,
    run_fsim,
)
from repro.data.whp import WHPClass


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def burn(universe):
    return run_fsim(universe.whp,
                    FsimConfig(n_ignitions=600, max_steps=40))


class TestSimulation:
    def test_counts_shape(self, universe, burn):
        assert burn.burn_counts.data.shape == universe.whp.grid.shape

    def test_some_burning_happened(self, burn):
        assert burn.total_cells_burned > 0
        assert burn.burn_counts.data.sum() == burn.total_cells_burned

    def test_probability_bounds(self, burn):
        p = burn.probability()
        assert (p >= 0).all()
        # a cell burns at most once per fire
        assert p.max() <= 1.0

    def test_no_burning_on_water(self, universe, burn):
        water = universe.whp.fuel.data <= 0
        assert burn.burn_counts.data[water].sum() == 0

    def test_burns_concentrate_in_fuel(self, universe, burn):
        fuel = universe.whp.fuel.data
        land = fuel > 0
        hi = land & (fuel > np.percentile(fuel[land], 80))
        lo = land & (fuel < np.percentile(fuel[land], 20))
        assert burn.burn_counts.data[hi].mean() \
            > burn.burn_counts.data[lo].mean()

    def test_deterministic(self, universe):
        cfg = FsimConfig(n_ignitions=100, max_steps=20, seed=5)
        a = run_fsim(universe.whp, cfg)
        b = run_fsim(universe.whp, cfg)
        np.testing.assert_array_equal(a.burn_counts.data,
                                      b.burn_counts.data)

    def test_more_ignitions_more_burns(self, universe):
        few = run_fsim(universe.whp,
                       FsimConfig(n_ignitions=50, max_steps=20))
        many = run_fsim(universe.whp,
                        FsimConfig(n_ignitions=400, max_steps=20))
        assert many.total_cells_burned > few.total_cells_burned

    def test_wind_strength_zero_ok(self, universe):
        burn = run_fsim(universe.whp,
                        FsimConfig(n_ignitions=50, max_steps=20,
                                   wind_strength=0.0))
        assert burn.total_cells_burned >= 50  # at least ignition cells


class TestDerivedClasses:
    def test_shape_and_values(self, universe, burn):
        classes = derive_whp_classes(universe.whp, burn)
        assert classes.shape == universe.whp.grid.shape
        assert set(np.unique(classes)) <= {int(c) for c in WHPClass}

    def test_nonburnable_preserved(self, universe, burn):
        classes = derive_whp_classes(universe.whp, burn)
        prod_nb = universe.whp.raster.data == int(WHPClass.NON_BURNABLE)
        assert (classes[prod_nb] == int(WHPClass.NON_BURNABLE)).all()

    def test_agreement_beats_chance(self, universe, burn):
        classes = derive_whp_classes(universe.whp, burn)
        prod = universe.whp.raster.data
        both = ((prod >= 3) & (classes >= 3)).sum()
        either = ((prod >= 3) | (classes >= 3)).sum()
        assert both / max(either, 1) > 0.25
