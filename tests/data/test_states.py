"""Tests for repro.data.states."""

import numpy as np
import pytest

from repro.data.states import (
    SOUTHEASTERN_STATES,
    WESTERN_STATES,
    StateAssigner,
    conus_bbox,
    conus_states,
)

KNOWN_POINTS = {
    # city-center spot checks: (lon, lat) -> state
    (-118.24, 34.05): "CA",
    (-122.33, 47.61): "WA",
    (-112.07, 33.45): "AZ",
    (-104.99, 39.74): "CO",
    (-95.37, 29.76): "TX",
    (-81.38, 28.54): "FL",
    (-87.63, 41.88): "IL",
    (-74.01, 40.71): "NY",
    (-71.06, 42.36): "MA",
    (-84.39, 33.75): "GA",
    (-90.05, 35.15): "TN",
    (-111.89, 40.76): "UT",
    (-116.20, 43.62): "ID",
    (-100.0, 46.8): "ND",
}


@pytest.fixture(scope="module")
def assigner():
    return StateAssigner()


class TestStateTable:
    def test_49_entries(self):
        assert len(conus_states()) == 49  # 48 states + DC

    def test_unique_fips(self):
        fips = [s.fips for s in conus_states().values()]
        assert len(set(fips)) == len(fips)

    def test_population_total_reasonable(self):
        total = sum(s.population for s in conus_states().values())
        assert 3.1e8 < total < 3.4e8

    def test_propensity_in_range(self):
        for s in conus_states().values():
            assert 0.0 <= s.whp_propensity <= 1.0
            assert 0.0 <= s.wui_intermix <= 1.0

    def test_western_states_higher_propensity(self):
        states = conus_states()
        west = np.mean([states[a].whp_propensity for a in WESTERN_STATES])
        midwest = np.mean([states[a].whp_propensity
                           for a in ("IL", "IN", "OH", "IA")])
        assert west > midwest + 0.3

    def test_all_geometries_in_conus_bbox(self):
        box = conus_bbox()
        for s in conus_states().values():
            sb = s.bbox
            assert sb.min_lon >= box.min_lon - 0.5
            assert sb.max_lon <= box.max_lon + 0.5
            assert sb.min_lat >= box.min_lat - 0.5
            assert sb.max_lat <= box.max_lat + 0.5

    def test_region_sets_are_state_abbrs(self):
        states = conus_states()
        for a in WESTERN_STATES | SOUTHEASTERN_STATES:
            assert a in states


class TestAssignment:
    def test_known_points(self, assigner):
        for (lon, lat), expected in KNOWN_POINTS.items():
            assert assigner.assign(lon, lat) == expected, (lon, lat)

    def test_assign_many_matches_scalar(self, assigner):
        lons = np.array([p[0] for p in KNOWN_POINTS])
        lats = np.array([p[1] for p in KNOWN_POINTS])
        got = assigner.assign_many(lons, lats)
        want = [KNOWN_POINTS[(lon, lat)]
                for lon, lat in zip(lons.tolist(), lats.tolist())]
        assert got.tolist() == want

    def test_total_assignment(self, assigner, rng):
        """Every CONUS point gets some state (fallback included)."""
        lons = rng.uniform(-124, -68, 2000)
        lats = rng.uniform(26, 48, 2000)
        got = assigner.assign_many(lons, lats)
        assert (got != "").all()

    def test_state_centers_assign_to_themselves(self, assigner):
        for abbr, state in conus_states().items():
            poly = state.geometry.polygons[0]
            c = poly.centroid()
            if poly.contains(c.lon, c.lat):
                assert assigner.assign(c.lon, c.lat) == abbr, abbr
