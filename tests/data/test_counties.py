"""Tests for repro.data.counties."""

import pytest

from repro.data.counties import PopCategory, categorize_population


class TestCategories:
    @pytest.mark.parametrize("pop,expected", [
        (0, PopCategory.RURAL),
        (200_000, PopCategory.RURAL),       # boundary: strictly greater
        (200_001, PopCategory.POP_M),
        (500_000, PopCategory.POP_M),
        (500_001, PopCategory.POP_H),
        (1_500_000, PopCategory.POP_H),
        (1_500_001, PopCategory.POP_VH),
        (10_100_000, PopCategory.POP_VH),
    ])
    def test_boundaries(self, pop, expected):
        assert categorize_population(pop) == expected


class TestLayer:
    def test_named_counties_first(self, counties):
        assert counties.n_named > 80
        named = counties.counties[:counties.n_named]
        assert all(c.anchor_city is not None for c in named)

    def test_paper_top_counties_exist(self, counties):
        for name in ("Los Angeles", "Cook", "Harris", "Maricopa",
                     "San Diego", "Miami-Dade", "Clark",
                     "Philadelphia"):
            county = counties.by_name(name)
            assert county.category == PopCategory.POP_VH \
                or county.population > 1_000_000, name

    def test_by_name_unknown(self, counties):
        with pytest.raises(KeyError):
            counties.by_name("Atlantis")

    def test_very_dense_count_near_paper(self, counties):
        """Paper: 23 counties above 1.5M people."""
        n = len(counties.very_dense())
        assert 15 <= n <= 35

    def test_la_county_is_biggest(self, counties):
        vd = counties.very_dense()
        biggest = max(vd, key=lambda c: c.population)
        assert biggest.name == "Los Angeles"

    def test_pop_share_in_categories(self, counties):
        """Paper: the three categories hold ~65% of US population."""
        pops = counties.populations()
        cats = counties.categories()
        share = pops[cats >= int(PopCategory.POP_M)].sum() / pops.sum()
        assert 0.5 < share < 0.85

    def test_assignment_priority_named(self, counties):
        """A point in LA county assigns to it, not an overlapping tile."""
        la = counties.by_name("Los Angeles")
        idx = counties.assign(la.bbox.center.lon, la.bbox.center.lat)
        assert counties.counties[idx].name == "Los Angeles"

    def test_assign_many_matches_scalar(self, counties, rng):
        lons = rng.uniform(-120, -75, 300)
        lats = rng.uniform(28, 45, 300)
        many = counties.assign_many(lons, lats)
        for i in range(0, 300, 20):
            assert many[i] == counties.assign(lons[i], lats[i])

    def test_most_land_points_assigned(self, counties, cells):
        idx = counties.assign_many(cells.lons[:3000], cells.lats[:3000])
        assert (idx >= 0).mean() > 0.92

    def test_ocean_unassigned(self, counties):
        assert counties.assign(-70.0, 33.0) == -1

    def test_subdivided_tiles_not_very_dense_unanchored(self, counties):
        """Unanchored leaf tiles stay below the subdivision cut unless
        they are at minimum size."""
        for c in counties.counties[counties.n_named:]:
            if c.population > 1_500_000:
                assert c.bbox.width <= 0.35 / 2 + 1e-9, c.name

    def test_categories_array_matches(self, counties):
        cats = counties.categories()
        for i in (0, len(cats) // 2, len(cats) - 1):
            assert cats[i] == int(counties.counties[i].category)
