"""Tests for repro.data.ecoregions and repro.data.historical_stats."""

import pytest

from repro.data.ecoregions import (
    ecoregion_at,
    slc_denver_ecoregions,
    slc_denver_window,
)
from repro.data.historical_stats import (
    HISTORICAL_YEARS,
    STUDY_YEARS,
    year_stats,
)


class TestEcoregions:
    def test_thirteen_regions(self):
        """The paper: 'This region contains 13 different ecoregions.'"""
        assert len(slc_denver_ecoregions()) == 13

    def test_deltas_span_paper_extremes(self):
        deltas = [r.delta_2040_pct for r in slc_denver_ecoregions()]
        assert max(deltas) == pytest.approx(240.0)
        assert min(deltas) == pytest.approx(-119.0)

    def test_partition_no_gaps(self, rng):
        """Every point in the window belongs to exactly one region."""
        window = slc_denver_window()
        lons = rng.uniform(window.min_lon + 0.01, window.max_lon - 0.01,
                           500)
        lats = rng.uniform(window.min_lat + 0.01, window.max_lat - 0.01,
                           500)
        for lon, lat in zip(lons, lats):
            count = sum(r.polygon.contains(lon, lat)
                        for r in slc_denver_ecoregions())
            # boundaries can double count (contains is edge-inclusive)
            assert count >= 1, (lon, lat)

    def test_interior_points_unique(self, rng):
        window = slc_denver_window()
        lons = rng.uniform(window.min_lon + 0.01, window.max_lon - 0.01,
                           300)
        lats = rng.uniform(window.min_lat + 0.01, window.max_lat - 0.01,
                           300)
        multi = 0
        for lon, lat in zip(lons, lats):
            count = sum(r.polygon.contains(lon, lat)
                        for r in slc_denver_ecoregions())
            if count > 1:
                multi += 1
        assert multi / 300 < 0.05  # only boundary hits

    def test_i80_corridor_region_has_max_increase(self):
        """I-80 through southern Wyoming crosses the +240% region."""
        region = ecoregion_at(-109.0, 41.4)
        assert region is not None
        assert region.delta_2040_pct == pytest.approx(240.0)

    def test_i70_rockies_decrease(self):
        region = ecoregion_at(-106.5, 39.6)
        assert region is not None
        assert region.delta_2040_pct == pytest.approx(-119.0)

    def test_outside_window_none(self):
        assert ecoregion_at(-100.0, 35.0) is None

    def test_unique_codes(self):
        codes = [r.code for r in slc_denver_ecoregions()]
        assert len(set(codes)) == len(codes)


class TestHistoricalStats:
    def test_study_years(self):
        assert STUDY_YEARS == tuple(range(2000, 2019))

    def test_all_years_present(self):
        for year in range(2000, 2020):
            assert year in HISTORICAL_YEARS

    def test_paper_table1_values(self):
        assert year_stats(2018).n_fires == 58_083
        assert year_stats(2018).acres_burned == pytest.approx(8.767)
        assert year_stats(2007).n_fires == 85_705
        assert year_stats(2010).acres_burned == pytest.approx(3.422)

    def test_unknown_year(self):
        with pytest.raises(KeyError):
            year_stats(1995)

    def test_magnitudes(self):
        for stats in HISTORICAL_YEARS.values():
            assert 40_000 < stats.n_fires < 100_000
            assert 3.0 < stats.acres_burned < 11.0
