"""Tests for repro.data.whp."""

import numpy as np
import pytest

from repro.data.whp import (
    AT_RISK_CLASSES,
    DEFAULT_TARGET_SHARES,
    WHP_CLASS_NAMES,
    WHPClass,
)


class TestClasses:
    def test_ordering(self):
        assert WHPClass.VERY_HIGH > WHPClass.HIGH > WHPClass.MODERATE \
            > WHPClass.LOW > WHPClass.VERY_LOW > WHPClass.NON_BURNABLE

    def test_at_risk_classes(self):
        assert AT_RISK_CLASSES == (WHPClass.MODERATE, WHPClass.HIGH,
                                   WHPClass.VERY_HIGH)

    def test_names_complete(self):
        for cls in WHPClass:
            assert cls in WHP_CLASS_NAMES

    def test_target_shares_from_paper(self):
        assert DEFAULT_TARGET_SHARES[WHPClass.VERY_HIGH] \
            == pytest.approx(26_307 / 5_364_949)


class TestRaster(object):
    def test_every_class_present(self, whp):
        values = set(np.unique(whp.raster.data).tolist())
        for cls in WHPClass:
            if cls == WHPClass.NON_BURNABLE:
                continue
            assert int(cls) in values, cls

    def test_water_is_nonburnable(self, whp):
        # Atlantic and Pacific
        assert whp.classify(-70.0, 35.0) == int(WHPClass.NON_BURNABLE)
        assert whp.classify(-126.0, 40.0) == int(WHPClass.NON_BURNABLE)

    def test_urban_cores_nonburnable(self, whp):
        # Manhattan and downtown Chicago
        assert whp.classify(-74.0, 40.72) == int(WHPClass.NON_BURNABLE)
        assert whp.classify(-87.63, 41.88) == int(WHPClass.NON_BURNABLE)

    def test_fuel_zero_on_water(self, whp):
        assert whp.fuel.sample(-70.0, 35.0) == 0.0

    def test_class_mask_consistency(self, whp):
        mask = whp.class_mask(WHPClass.MODERATE)
        assert mask.sum() == (whp.raster.data
                              == int(WHPClass.MODERATE)).sum()

    def test_at_risk_mask_is_union(self, whp):
        union = np.zeros(whp.grid.shape, dtype=bool)
        for cls in AT_RISK_CLASSES:
            union |= whp.class_mask(cls)
        np.testing.assert_array_equal(whp.at_risk_mask(), union)

    def test_class_area_ordering(self, whp):
        """VH covers less area than H, which covers less than M."""
        vh = whp.raster.class_area_sqm(int(WHPClass.VERY_HIGH))
        h = whp.raster.class_area_sqm(int(WHPClass.HIGH))
        m = whp.raster.class_area_sqm(int(WHPClass.MODERATE))
        assert vh < h < m

    def test_classify_outside_grid(self, whp):
        assert whp.classify(10.0, 10.0) == int(WHPClass.NON_BURNABLE)


class TestCalibration:
    def test_transceiver_shares_near_paper(self, universe, whp, cells):
        """The weight-share calibration holds within sampling noise."""
        classes = whp.classify(cells.lons, cells.lats)
        for cls in AT_RISK_CLASSES:
            measured = float((classes == int(cls)).mean())
            target = DEFAULT_TARGET_SHARES[cls]
            assert measured == pytest.approx(target, rel=0.6), cls

    def test_total_at_risk_share(self, whp, cells):
        classes = whp.classify(cells.lons, cells.lats)
        at_risk = float((classes >= int(WHPClass.MODERATE)).mean())
        assert 0.05 < at_risk < 0.13  # paper: 8.03%

    def test_west_hazard_exceeds_midwest(self, whp):
        """Figure 6's geography: hazard concentrated west/southeast."""
        grid = whp.grid
        def at_risk_fraction(lon0, lon1, lat0, lat1):
            rows0, cols0 = grid.rowcol(lon0, lat1)
            rows1, cols1 = grid.rowcol(lon1, lat0)
            window = whp.raster.data[int(rows0):int(rows1),
                                     int(cols0):int(cols1)]
            return (window >= int(WHPClass.MODERATE)).mean()
        west = at_risk_fraction(-122, -112, 34, 44)
        midwest = at_risk_fraction(-95, -85, 38, 44)
        assert west > 3 * midwest

    def test_ignition_weights_shape(self, whp):
        w = whp.ignition_weights()
        assert w.shape == whp.grid.shape
        assert (w >= 0).all()
        assert w.sum() > 0

    def test_ignition_zero_on_nonburnable(self, whp):
        w = whp.ignition_weights()
        nb = whp.raster.data == int(WHPClass.NON_BURNABLE)
        assert w[nb].max() == 0.0

    def test_ignition_penalizes_population(self, whp):
        """Among at-risk cells, ignition weight is lower where
        placement weight is higher."""
        w = whp.ignition_weights()
        hazard = whp.raster.data == int(WHPClass.MODERATE)
        weights = whp.placement_weight.data
        dense = hazard & (weights >= np.percentile(weights[hazard], 90))
        sparse = hazard & (weights <= np.percentile(weights[hazard], 20))
        assert w[dense].mean() < w[sparse].mean()

    def test_wildland_front_hazard(self, whp):
        """The Wasatch front east of Salt Lake City is at-risk."""
        from repro.data.cities import city_by_name
        slc = city_by_name("Salt Lake City")
        cls = whp.classify(slc.lon + 0.2, slc.lat)
        assert cls >= int(WHPClass.MODERATE)
