"""Tests for repro.data.powergrid."""

import networkx as nx
import numpy as np
import pytest

from repro.data.powergrid import build_power_grid
from repro.data.wildfires import star_polygon


@pytest.fixture(scope="module")
def grid(universe):
    return build_power_grid(universe.population, universe.cells,
                            n_substations=120, seed=3)


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


class TestBuild:
    def test_rejects_tiny(self, universe):
        with pytest.raises(ValueError):
            build_power_grid(universe.population, universe.cells,
                             n_substations=1)

    def test_substation_count(self, grid):
        assert grid.n_substations == 120

    def test_graph_connected(self, grid):
        assert nx.is_connected(grid.graph)

    def test_lines_match_graph(self, grid):
        assert grid.n_lines == grid.graph.number_of_edges()

    def test_every_site_assigned(self, grid, universe):
        site_ids = set(np.unique(universe.cells.site_ids).tolist())
        assert set(grid.site_substation) == site_ids

    def test_assignment_is_nearest(self, grid, universe):
        cells = universe.cells
        site_ids, first = np.unique(cells.site_ids, return_index=True)
        for k in range(0, len(site_ids), 500):
            lon, lat = cells.lons[first[k]], cells.lats[first[k]]
            d2 = (grid.substation_lons - lon) ** 2 \
                + (grid.substation_lats - lat) ** 2
            assert grid.site_substation[int(site_ids[k])] \
                == int(np.argmin(d2))

    def test_line_segments(self, grid):
        segs = grid.line_segments()
        assert len(segs) == grid.n_lines

    def test_deterministic(self, universe):
        a = build_power_grid(universe.population, universe.cells,
                             n_substations=50, seed=9)
        b = build_power_grid(universe.population, universe.cells,
                             n_substations=50, seed=9)
        np.testing.assert_allclose(a.substation_lons, b.substation_lons)


class TestFailurePropagation:
    def test_no_failures_no_dead(self, grid):
        assert grid.dead_sites(set(), set()) == set()

    def test_dead_substation_kills_its_sites(self, grid):
        sub = next(iter(grid.site_substation.values()))
        dead = grid.dead_sites({sub}, set())
        expected = set(grid.sites_of_substation(sub))
        assert expected <= dead

    def test_cutting_all_lines_kills_everything(self, grid):
        dead = grid.dead_sites(set(), set(range(grid.n_lines)))
        # only the largest remaining component (single nodes) stays
        # energized; with all lines cut, all but one node is islanded
        assert len(dead) >= len(grid.site_substation) * 0.5

    def test_substations_in_polygon(self, grid, rng):
        lon = float(grid.substation_lons[0])
        lat = float(grid.substation_lats[0])
        poly = star_polygon(lon, lat, 100_000.0, rng)
        assert 0 in grid.substations_in_polygon(poly)

    def test_lines_crossing_mask(self, grid, universe):
        whp = universe.whp
        all_mask = np.ones(whp.grid.shape, dtype=bool)
        crossing = grid.lines_crossing_mask(whp, all_mask)
        assert len(crossing) == grid.n_lines
        none = grid.lines_crossing_mask(
            whp, np.zeros(whp.grid.shape, dtype=bool))
        assert len(none) == 0

    def test_feeder_cut_sites_full_mask(self, grid, universe):
        whp = universe.whp
        all_mask = np.ones(whp.grid.shape, dtype=bool)
        cut = grid.feeder_cut_sites(universe.cells, whp, all_mask)
        assert len(cut) == len(grid.site_substation)
