"""Tests for repro.data.universe."""

import pytest

from repro.data import SyntheticUS, UniverseConfig, small_universe


class TestConfig:
    def test_frozen(self):
        cfg = UniverseConfig()
        with pytest.raises(Exception):
            cfg.seed = 1

    def test_defaults(self):
        cfg = UniverseConfig()
        assert cfg.n_transceivers == 150_000
        assert cfg.whp_resolution_deg == 0.05


class TestLaziness:
    def test_components_lazy(self):
        u = SyntheticUS(UniverseConfig(n_transceivers=100))
        assert u._population is None
        assert u._cells is None

    def test_component_cached(self):
        u = SyntheticUS(UniverseConfig(n_transceivers=100))
        assert u.population is u.population

    def test_fire_seasons_cached(self, universe):
        assert universe.fire_season(2005) is universe.fire_season(2005)

    def test_small_universe_cached_globally(self):
        assert small_universe() is small_universe()

    def test_validation_cells_cached(self, universe):
        a = universe.validation_cells(2)
        assert universe.validation_cells(2) is a
        assert len(a) == 2 * universe.config.n_transceivers


class TestConsistency:
    def test_universe_scale(self, universe):
        assert universe.universe_scale \
            == pytest.approx(5_364_949 / len(universe.cells))

    def test_2019_season_has_scripted_fires(self, universe):
        names = {f.name for f in universe.fire_season(2019).fires}
        assert "Kincade" in names and "Saddle Ridge" in names

    def test_historical_season_no_scripted(self, universe):
        names = {f.name for f in universe.fire_season(2018).fires}
        assert "Kincade" not in names

    def test_seed_isolation(self):
        a = SyntheticUS(UniverseConfig(n_transceivers=500, seed=1,
                                       whp_resolution_deg=0.2))
        b = SyntheticUS(UniverseConfig(n_transceivers=500, seed=2,
                                       whp_resolution_deg=0.2))
        assert not (a.cells.lons == b.cells.lons).all()
