"""Golden regression tests: the paper-facing headline numbers.

Runtime refactors (parallelism, caching, index changes) must not move a
single reproduced number.  These tests pin the exact values produced at
the default test seed/size (``small_universe()``: 20k transceivers,
seed 20190722, 0.1° WHP grid) — Table 1's in-perimeter counts, the
Figure 7 WHP class counts behind Tables 2–3, and the §3.3
population-served estimate.

If a PR changes these values *intentionally* (a new generator, a
recalibration), update the constants here in the same commit and say so
in the commit message; any unexplained drift is a correctness bug in
the join engine.
"""

from __future__ import annotations

import pytest

from repro.core import (
    hazard_analysis,
    historical_analysis,
    population_served_at_risk,
    provider_risk_analysis,
    technology_risk_analysis,
    total_in_perimeters,
)

# (raw, scaled-to-5.36M) transceivers inside fire perimeters per year.
GOLDEN_TABLE1 = {
    2018: (0, 0),
    2017: (19, 5_097),
    2016: (0, 0),
    2015: (9, 2_414),
    2014: (2, 536),
    2013: (23, 6_170),
    2012: (15, 4_024),
    2011: (0, 0),
    2010: (25, 6_706),
    2009: (2, 536),
    2008: (40, 10_730),
    2007: (0, 0),
    2006: (17, 4_560),
    2005: (3, 805),
    2004: (14, 3_755),
    2003: (9, 2_414),
    2002: (13, 3_487),
    2001: (5, 1_341),
    2000: (1, 268),
}

GOLDEN_FIG4_UNION_SCALED = 47_748

# Figure 7 / §3.3 scaled class counts (paper: 261,569 / 142,968 / 26,307).
GOLDEN_CLASS_COUNTS = {
    "Very Low": 1_447_195,
    "Low": 861_879,
    "Moderate": 249_738,
    "High": 135_197,
    "Very High": 21_728,
}
GOLDEN_CLASS_COUNTS_RAW = {
    "Very Low": 5_395,
    "Low": 3_213,
    "Moderate": 931,
    "High": 504,
    "Very High": 81,
}
GOLDEN_AT_RISK_TOTAL = 406_663

#: §3.3 "more than 85 million people" (at test scale: ~58.5M).
GOLDEN_POPULATION_SERVED = 58_544_359

GOLDEN_TOP_STATES = ["CA", "FL", "TX", "UT", "AZ"]

# Table 2: provider -> (moderate, high, very high), scaled.
GOLDEN_PROVIDER_RISK = {
    "AT&T": (101_129, 57_673, 6_974),
    "T-Mobile": (67_867, 32_458, 6_974),
    "Sprint": (25_484, 15_022, 3_219),
    "Verizon": (43_456, 22_265, 3_219),
    "Others": (11_803, 7_779, 1_341),
}

# Table 3: technology -> total at-risk, scaled.
GOLDEN_TECHNOLOGY_RISK = {
    "CDMA": 45_601,
    "GSM": 30_580,
    "LTE": 242_496,
    "UMTS": 87_985,
}


@pytest.fixture(scope="module")
def hazard(universe):
    return hazard_analysis(universe)


class TestTable1Golden:
    def test_per_year_counts_pinned(self, universe):
        rows = historical_analysis(universe)
        got = {r.year: (r.transceivers_in_perimeters,
                        r.transceivers_in_perimeters_scaled)
               for r in rows}
        assert got == GOLDEN_TABLE1

    def test_union_pinned(self, universe):
        scaled, union = total_in_perimeters(universe)
        assert scaled == GOLDEN_FIG4_UNION_SCALED
        assert union.sum() <= sum(raw for raw, _ in GOLDEN_TABLE1.values())


class TestHazardGolden:
    def test_class_counts_pinned(self, hazard):
        assert hazard.class_counts == GOLDEN_CLASS_COUNTS
        assert hazard.class_counts_raw == GOLDEN_CLASS_COUNTS_RAW
        assert hazard.at_risk_total == GOLDEN_AT_RISK_TOTAL

    def test_top_states_pinned(self, hazard):
        assert [s.state for s in hazard.states[:5]] == GOLDEN_TOP_STATES

    def test_population_served_pinned(self, universe, hazard):
        assert population_served_at_risk(universe, hazard) \
            == GOLDEN_POPULATION_SERVED


class TestProviderTechnologyGolden:
    def test_table2_pinned(self, universe):
        rows = provider_risk_analysis(universe)
        got = {r.provider: (r.moderate, r.high, r.very_high)
               for r in rows}
        assert got == GOLDEN_PROVIDER_RISK

    def test_table3_pinned(self, universe):
        rows = technology_risk_analysis(universe)
        assert {r.technology: r.total for r in rows} \
            == GOLDEN_TECHNOLOGY_RISK


class TestGoldenSurvivesRuntimeModes:
    """The same numbers come out of every execution mode."""

    def test_parallel_and_cached_table1_identical(self, universe,
                                                  tmp_path):
        from repro.runtime import (
            ResultCache,
            configure,
            get_config,
            set_cache,
            set_config,
            shutdown_pools,
        )
        from repro.runtime import config as runtime_config
        from repro.runtime import dispatch as runtime_dispatch

        previous = get_config()
        orig_floor = runtime_config.MIN_PARALLEL_POINTS
        orig_knobs = (runtime_dispatch.OVERLAY_WORK_FACTOR,
                      runtime_dispatch.CLASSIFY_WORK_FACTOR,
                      runtime_dispatch.CPU_COUNT_OVERRIDE)
        # Drop every adaptive-dispatch gate so the persistent-pool path
        # genuinely executes (it would correctly stay serial otherwise).
        runtime_config.MIN_PARALLEL_POINTS = 64
        runtime_dispatch.OVERLAY_WORK_FACTOR = 1
        runtime_dispatch.CLASSIFY_WORK_FACTOR = 1
        runtime_dispatch.CPU_COUNT_OVERRIDE = 8
        configure(workers=4, chunk_size=4_096, cache_enabled=True)
        set_cache(ResultCache(max_entries=64, disk_dir=tmp_path))
        try:
            for _ in range(2):          # second pass served by the cache
                rows = historical_analysis(universe)
                got = {r.year: (r.transceivers_in_perimeters,
                                r.transceivers_in_perimeters_scaled)
                       for r in rows}
                assert got == GOLDEN_TABLE1
        finally:
            runtime_config.MIN_PARALLEL_POINTS = orig_floor
            (runtime_dispatch.OVERLAY_WORK_FACTOR,
             runtime_dispatch.CLASSIFY_WORK_FACTOR,
             runtime_dispatch.CPU_COUNT_OVERRIDE) = orig_knobs
            set_config(previous)
            set_cache(None)
            shutdown_pools()
