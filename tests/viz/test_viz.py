"""Tests for repro.viz (ASCII renderers and figure artifacts)."""

import numpy as np
import pytest

from repro.geo.geometry import BBox
from repro.geo.raster import GridSpec
from repro.viz import ascii as viz
from repro.viz import figures


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


class TestDensityMap:
    def test_dimensions(self):
        out = viz.density_map(np.array([-100.0]), np.array([35.0]),
                              BBox(-110, 30, -90, 40), width=40)
        lines = out.splitlines()
        assert all(len(l) == 40 for l in lines)
        assert len(lines) >= 1

    def test_empty_points(self):
        out = viz.density_map(np.array([]), np.array([]),
                              BBox(-110, 30, -90, 40), width=20)
        assert set("".join(out.splitlines())) == {" "}

    def test_dense_cell_darker(self):
        lons = np.array([-100.0] * 100 + [-95.0])
        lats = np.array([35.0] * 100 + [35.0])
        out = viz.density_map(lons, lats, BBox(-110, 30, -90, 40),
                              width=40)
        ramp = viz.DENSITY_RAMP
        chars = set("".join(out.splitlines()))
        # densest char present, and it's later in the ramp than the
        # single-point char
        nonblank = sorted((ramp.index(c) for c in chars if c != " "))
        assert len(nonblank) >= 2
        assert nonblank[-1] > nonblank[0]

    def test_points_outside_ignored(self):
        out = viz.density_map(np.array([0.0]), np.array([0.0]),
                              BBox(-110, 30, -90, 40), width=20)
        assert set("".join(out.splitlines())) == {" "}


class TestClassMap:
    def test_symbols_rendered(self):
        grid = GridSpec(BBox(-110, 30, -90, 40), 0.5)
        data = np.zeros(grid.shape, dtype=np.int8)
        data[:, : grid.width // 2] = 1
        out = viz.class_map(data, grid, {0: ".", 1: "#"}, width=40)
        assert "#" in out and "." in out

    def test_window_restriction(self):
        grid = GridSpec(BBox(-110, 30, -90, 40), 0.5)
        data = np.zeros(grid.shape, dtype=np.int8)
        out = viz.class_map(data, grid, {0: "."},
                            bbox=BBox(-105, 33, -100, 37), width=20)
        assert set("".join(out.splitlines())) == {"."}

    def test_outside_grid_blank(self):
        grid = GridSpec(BBox(-110, 30, -90, 40), 0.5)
        data = np.zeros(grid.shape, dtype=np.int8)
        out = viz.class_map(data, grid, {0: "."},
                            bbox=BBox(-130, 30, -90, 40), width=40)
        assert " " in "".join(out.splitlines())


class TestBarChart:
    def test_basic(self):
        out = viz.bar_chart(["a", "bb"], [10, 5], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            viz.bar_chart(["a"], [1, 2])

    def test_zero_values(self):
        out = viz.bar_chart(["a"], [0.0])
        assert "█" not in out


class TestFigureArtifacts:
    @pytest.mark.parametrize("fn", [
        figures.figure2, figures.figure3, figures.figure4,
        figures.figure5, figures.figure6, figures.figure8,
        figures.figure9, figures.figure10, figures.figure12,
        figures.figure14,
    ])
    def test_figure_produces_artifact(self, universe, fn):
        art = fn(universe)
        assert art.ascii_art
        assert art.data is not None
        assert art.figure.isdigit()

    def test_figure7_three_panels(self, universe):
        art = figures.figure7(universe, width=40)
        assert art.ascii_art.count("[") == 3

    def test_figure11_counts_nested(self, universe):
        art = figures.figure11(universe, width=40)
        assert art.data["vh_both"] <= art.data["vh_pop"] \
            <= art.data["all"]

    def test_figure13_windows(self, universe):
        art = figures.figure13(universe, width=30)
        assert "Orlando" in art.ascii_art

    def test_figure15_window(self, universe):
        art = figures.figure15(universe, width=40)
        assert len(art.data) == 13
