"""Tests for repro.viz.image (PPM export)."""

import numpy as np
import pytest

from repro.geo.geometry import BBox
from repro.viz.image import (
    WHP_PALETTE,
    class_image,
    density_image,
    save_class_image,
    save_density_image,
    write_ppm,
)


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


class TestWritePpm:
    def test_header_and_size(self, tmp_path):
        pixels = np.zeros((4, 6, 3), dtype=np.uint8)
        path = tmp_path / "img.ppm"
        write_ppm(pixels, path)
        data = path.read_bytes()
        assert data.startswith(b"P6\n6 4\n255\n")
        assert len(data) == len(b"P6\n6 4\n255\n") + 4 * 6 * 3

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(np.zeros((4, 6)), tmp_path / "x.ppm")

    def test_clips_out_of_range(self, tmp_path):
        pixels = np.full((2, 2, 3), 300.0)
        path = tmp_path / "img.ppm"
        write_ppm(pixels, path)
        body = path.read_bytes().split(b"255\n", 1)[1]
        assert set(body) == {255}


class TestClassImage:
    def test_palette_applied(self):
        data = np.array([[0, 5], [3, 4]], dtype=np.int8)
        pixels = class_image(data, WHP_PALETTE)
        assert tuple(pixels[0, 1]) == WHP_PALETTE[5]
        assert tuple(pixels[1, 0]) == WHP_PALETTE[3]

    def test_unmapped_background(self):
        data = np.array([[99]])
        pixels = class_image(data, WHP_PALETTE, background=(1, 2, 3))
        assert tuple(pixels[0, 0]) == (1, 2, 3)


class TestDensityImage:
    def test_hot_cell_brighter(self):
        lons = np.array([-100.0] * 50 + [-95.0])
        lats = np.array([35.0] * 51)
        pixels = density_image(lons, lats, BBox(-110, 30, -90, 40),
                               width=50)
        # the crowded cell is brighter than the single-point cell
        assert int(pixels.max()) > int(pixels.min())

    def test_empty_is_background(self):
        pixels = density_image(np.array([]), np.array([]),
                               BBox(-110, 30, -90, 40), width=20)
        assert (pixels == pixels[0, 0]).all()


class TestSavers:
    def test_save_whp_map(self, universe, tmp_path):
        whp = universe.whp
        path = save_class_image(whp.raster.data, whp.grid,
                                tmp_path / "whp.ppm")
        assert path.exists()
        assert path.read_bytes().startswith(b"P6\n")

    def test_save_transceiver_map(self, universe, tmp_path):
        cells = universe.cells
        path = save_density_image(cells.lons, cells.lats,
                                  universe.population.grid.bbox,
                                  tmp_path / "cells.ppm", width=300)
        assert path.exists()
        header = path.read_bytes()[:20].decode("ascii", "ignore")
        assert "300" in header
