"""Tests for run manifests: fingerprints, environment, serialization."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    checksum_text,
    environment,
    fingerprint,
    git_sha,
    new_run_id,
    utc_now_iso,
    version_string,
)


@dataclasses.dataclass
class _Result:
    counts: dict
    values: object
    label: str


class TestFingerprint:
    def test_deterministic_for_equal_content(self):
        a = _Result(counts={"x": 1, "y": 2},
                    values=np.arange(10, dtype=np.float64), label="s")
        b = _Result(counts={"y": 2, "x": 1},
                    values=np.arange(10, dtype=np.float64), label="s")
        assert fingerprint(a) == fingerprint(b)

    def test_content_changes_change_the_hash(self):
        base = _Result(counts={"x": 1}, values=np.arange(4), label="s")
        for mutant in (
            _Result(counts={"x": 2}, values=np.arange(4), label="s"),
            _Result(counts={"x": 1}, values=np.arange(5), label="s"),
            _Result(counts={"x": 1}, values=np.arange(4), label="t"),
        ):
            assert fingerprint(base) != fingerprint(mutant)

    def test_dtype_and_shape_are_part_of_the_identity(self):
        a = np.zeros(4, dtype=np.int64)
        b = np.zeros(4, dtype=np.float64)
        c = np.zeros((2, 2), dtype=np.int64)
        assert len({fingerprint(a), fingerprint(b),
                    fingerprint(c)}) == 3

    def test_array_and_list_differ(self):
        assert fingerprint(np.array([1, 2, 3])) != \
            fingerprint([1, 2, 3])

    def test_primitives_and_containers(self):
        assert fingerprint((1, "a", None, 2.5)) == \
            fingerprint((1, "a", None, 2.5))
        assert fingerprint({1, 2, 3}) == fingerprint({3, 2, 1})
        assert fingerprint([1, 2]) != fingerprint([2, 1])
        assert fingerprint(True) != fingerprint(1)

    def test_checksum_text(self):
        assert checksum_text("abc") == checksum_text("abc")
        assert checksum_text("abc") != checksum_text("abd")
        assert len(checksum_text("x")) == 64


class TestEnvironment:
    def test_git_sha_in_this_repo(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40
                               and all(c in "0123456789abcdef"
                                       for c in sha))

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafe" * 10)
        assert git_sha() == "cafe" * 10

    def test_environment_fields(self):
        env = environment()
        assert set(env) == {"version", "git_sha", "python", "machine",
                            "cpu_count"}
        assert env["cpu_count"] >= 1
        assert env["version"]

    def test_version_string(self):
        from repro import __version__
        assert version_string().startswith(f"repro {__version__} (")

    def test_utc_now_iso_and_run_id(self):
        stamp = utc_now_iso()
        assert "T" in stamp and stamp.endswith("+00:00")
        assert new_run_id() != new_run_id()
        assert len(new_run_id()) == 12


def _manifest(**overrides) -> RunManifest:
    base = dict(
        run_id="abc123def456", kind="cli", command="fig7",
        started="2026-08-06T12:00:00+00:00", duration_s=1.25,
        version="1.0.0", git_sha="f" * 40, python="3.11.1",
        machine="x86_64", cpu_count=8,
        argv=["-n", "2000", "fig7"],
        config={"workers": 2, "chunk_size": 65536,
                "cache_enabled": True, "cache_dir": None},
        universe={"n_transceivers": 2000, "seed": 7,
                  "whp_resolution_deg": 0.1},
        timers={"cli.fig7": 1.2, "artifact.hazard": 1.1},
        timer_calls={"cli.fig7": 1, "artifact.hazard": 1},
        counters={"session.misses": 3, "index.candidates": 1000},
        artifacts={"hazard": {"seconds": 1.1, "sha256": "ab" * 32}},
        outputs={"fig7": "cd" * 32},
    )
    base.update(overrides)
    return RunManifest(**base)


class TestRunManifest:
    def test_round_trip_dict_and_json(self):
        m = _manifest()
        assert RunManifest.from_dict(m.to_dict()) == m
        assert RunManifest.from_json(m.to_json()) == m
        assert m.schema == MANIFEST_SCHEMA

    def test_to_json_is_canonical(self):
        a = _manifest(timers={"a": 1.0, "b": 2.0})
        b = _manifest(timers={"b": 2.0, "a": 1.0})
        assert a.to_json() == b.to_json()
        doc = json.loads(a.to_json())
        assert list(doc["timers"]) == ["a", "b"]

    def test_unknown_fields_survive_in_extra(self):
        d = _manifest().to_dict()
        d["future_field"] = {"x": 1}
        m = RunManifest.from_dict(d)
        assert m.extra["future_field"] == {"x": 1}

    def test_total_seconds_prefers_cli_timers(self):
        m = _manifest()
        assert m.total_seconds() == pytest.approx(1.2)
        bench = _manifest(kind="bench",
                          timers={"overlay": 2.0, "classify": 3.0})
        assert bench.total_seconds() == pytest.approx(5.0)

    def test_timer_for_resolution_order(self):
        m = _manifest(timers={"cli.fig7": 1.2, "artifact.fig7": 9.0,
                              "raw": 0.5})
        assert m.timer_for("fig7") == pytest.approx(1.2)
        assert m.timer_for("raw") == pytest.approx(0.5)
        assert m.timer_for("absent") is None
