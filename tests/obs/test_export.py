"""Tests for the Chrome trace / Prometheus / JSONL exporters."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.export import (
    JsonlSink,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.trace import Span


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.disable()
    obs.get_tracer().clear()
    yield
    obs.disable()
    obs.get_tracer().clear()


def _sample_spans():
    return [
        Span(name="child", span_id=2, parent_id=1, pid=100,
             start=1.010, duration=0.020, attrs={"n": 3}),
        Span(name="root", span_id=1, parent_id=None, pid=100,
             start=1.000, duration=0.050),
        Span(name="worker.chunk", span_id=3, parent_id=1, pid=200,
             start=1.015, duration=0.010, attrs={"hits": 7}),
        Span(name="cache.hit", span_id=4, parent_id=1, pid=100,
             start=1.001, duration=0.0, kind="instant",
             attrs={"tier": "memory"}),
    ]


class TestChromeTrace:
    def test_structure_and_units(self):
        doc = chrome_trace(_sample_spans(), main_pid=100)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        root = next(e for e in complete if e["name"] == "root")
        child = next(e for e in complete if e["name"] == "child")
        # microsecond integers, zeroed at the earliest span
        assert root["ts"] == 0
        assert root["dur"] == 50_000
        assert child["ts"] == 10_000
        assert child["dur"] == 20_000
        # attrs travel in args alongside the tree links
        assert child["args"]["n"] == 3
        assert child["args"]["parent_id"] == 1

    def test_instants_and_worker_tracks(self):
        doc = chrome_trace(_sample_spans(), main_pid=100)
        events = doc["traceEvents"]
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["name"] == "cache.hit"
        assert instant["s"] == "p"
        # one process_name metadata record per pid; workers are their
        # own Perfetto track
        meta = {e["pid"]: e["args"]["name"] for e in events
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert set(meta) == {100, 200}
        assert "worker" in meta[200]
        chunk = next(e for e in events if e.get("name") == "worker.chunk")
        assert chunk["pid"] == 200

    def test_json_serializable(self):
        doc = chrome_trace(_sample_spans())
        parsed = json.loads(json.dumps(doc))
        assert parsed["traceEvents"]

    def test_write_chrome_trace_from_tracer(self, tmp_path):
        tracer = obs.enable()
        with obs.span("outer"):
            with obs.span("inner", k="v"):
                pass
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer)
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert {"outer", "inner"} <= names


class TestPrometheus:
    def test_families_and_values(self):
        snapshot = {
            "timers": {"artifact.hazard": 1.25, "cli.fig7": 2.5},
            "timer_calls": {"artifact.hazard": 2, "cli.fig7": 1},
            "counters": {"cache.hits.memory": 7, "index.candidates": 123},
        }
        text = prometheus_text(snapshot)
        lines = text.splitlines()
        assert "# TYPE repro_stage_seconds_total counter" in lines
        assert ('repro_stage_seconds_total{stage="artifact.hazard"} '
                '1.250000') in lines
        assert 'repro_stage_calls_total{stage="cli.fig7"} 1' in lines
        assert 'repro_events_total{counter="cache.hits.memory"} 7' \
            in lines
        assert text.endswith("\n")

    def test_label_escaping(self):
        snapshot = {"timers": {'we"ird\\name': 1.0},
                    "timer_calls": {'we"ird\\name': 1}, "counters": {}}
        text = prometheus_text(snapshot)
        assert '\\"' in text and "\\\\" in text

    def test_counter_label_escaping_round_trips(self):
        """A stage name holding quotes, backslashes, and a newline must
        land as one valid exposition line whose unescaped label equals
        the original name."""
        name = 'stage "q"\\path\nnext'
        snapshot = {"timers": {name: 0.5}, "timer_calls": {name: 1},
                    "counters": {name: 9}}
        text = prometheus_text(snapshot)
        line = next(ln for ln in text.splitlines()
                    if ln.startswith("repro_events_total"))
        label = line[line.index('{counter="') + len('{counter="'):
                     line.rindex('"}')]
        assert "\n" not in line
        unescaped = label.replace(r"\n", "\n").replace(r"\"", '"') \
            .replace("\\\\", "\\")
        assert unescaped == name

    def test_exposition_order_is_sorted_and_stable(self):
        """Label order must not depend on counter insertion order —
        ledger diffs of the exposition would churn otherwise."""
        a = prometheus_text({"timers": {"b": 1.0, "a": 2.0},
                             "timer_calls": {"b": 1, "a": 1},
                             "counters": {"z.last": 1, "a.first": 2}})
        b = prometheus_text({"timers": {"a": 2.0, "b": 1.0},
                             "timer_calls": {"a": 1, "b": 1},
                             "counters": {"a.first": 2, "z.last": 1}})
        assert a == b
        lines = [ln for ln in a.splitlines()
                 if ln.startswith("repro_events_total")]
        assert lines == sorted(lines)


class TestJsonlSink:
    def test_streams_one_line_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = obs.enable()
        tracer.set_sink(JsonlSink(path))
        with obs.span("a", x=1):
            obs.event("hit")
        obs.disable()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["hit", "a"]
        assert records[0]["type"] == "instant"
        assert records[1]["type"] == "span"
        assert records[1]["attrs"] == {"x": 1}

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with JsonlSink(path) as sink:
            sink(Span(name="x", span_id=1, parent_id=None, pid=1,
                      start=0.0, duration=0.1).to_dict())
        assert json.loads(path.read_text())["name"] == "x"

    def test_closes_on_exception_and_keeps_prior_records(self,
                                                         tmp_path):
        """An exception inside the ``with`` body must still close the
        file handle; spans streamed before the failure stay on disk."""
        path = tmp_path / "s.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with JsonlSink(path) as sink:
                sink(Span(name="before", span_id=1, parent_id=None,
                          pid=1, start=0.0, duration=0.1).to_dict())
                raise RuntimeError("boom")
        assert sink._fh.closed
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["before"]

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "s.jsonl")
        sink.close()
        sink.close()                      # second close must not raise
        assert sink._fh.closed

    def test_pid_guard_blocks_inherited_sinks(self, tmp_path,
                                              monkeypatch):
        """A child process that inherited the tracer (fork) — or a
        freshly-imported one under the spawn start method — must never
        write to the parent's sink file handle.  The tracer records
        the installing pid and checks it on every record; simulate the
        foreign process by faking ``os.getpid`` at the check site."""
        from repro.obs import trace as trace_mod

        path = tmp_path / "s.jsonl"
        tracer = obs.enable()
        sink = JsonlSink(path)
        tracer.set_sink(sink)
        with obs.span("parent.span"):
            pass
        parent_pid = trace_mod.os.getpid()
        monkeypatch.setattr(trace_mod.os, "getpid",
                            lambda: parent_pid + 1)
        with obs.span("child.span"):
            pass
        monkeypatch.undo()
        sink.close()
        names = [json.loads(line)["name"]
                 for line in path.read_text().splitlines()]
        assert "parent.span" in names
        assert "child.span" not in names

    def test_spawned_process_cannot_reach_the_parent_sink(self,
                                                          tmp_path):
        """Under the spawn start method the child re-imports the
        module: its tracer must come up with no sink installed, so a
        span recorded there never touches the parent's file."""
        import multiprocessing as mp

        path = tmp_path / "s.jsonl"
        tracer = obs.enable()
        tracer.set_sink(JsonlSink(path))
        ctx = mp.get_context("spawn")
        proc = ctx.Process(target=_spawned_span_worker)
        proc.start()
        proc.join(60)
        assert proc.exitcode == 0
        obs.disable()
        names = [json.loads(line)["name"]
                 for line in path.read_text().splitlines()]
        assert "spawned.child" not in names


def _spawned_span_worker() -> None:
    """Runs in a spawn-context child: record a span there."""
    from repro import obs as child_obs

    child_obs.enable()
    with child_obs.span("spawned.child"):
        pass
    assert child_obs.get_tracer()._sink is None
