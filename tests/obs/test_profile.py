"""Tests for the memory-sampling and cProfile hooks."""

from __future__ import annotations

import pstats

import numpy as np
import pytest

from repro.obs import profile as obs_profile
from repro.obs.profile import (
    StageProfiler,
    disable_memory_sampling,
    enable_memory_sampling,
    memory_probe,
    memory_sampling_enabled,
    rss_kb,
)
from repro.obs.trace import Span, _NULL_SPAN


@pytest.fixture(autouse=True)
def _mem_off():
    yield
    disable_memory_sampling()


def _span() -> Span:
    return Span(name="x", span_id=1, parent_id=None, pid=1, start=0.0)


def test_rss_kb_positive_on_linux():
    value = rss_kb()
    assert value is None or value > 0


def test_probe_noop_when_disabled():
    assert not memory_sampling_enabled()
    sp = _span()
    with memory_probe(sp):
        pass
    assert sp.attrs == {}


def test_probe_attaches_memory_attrs():
    enable_memory_sampling()
    assert memory_sampling_enabled()
    sp = _span()
    with memory_probe(sp):
        blob = np.ones(512 * 1024, dtype=np.uint8)   # 512 KiB
        del blob
    assert sp.attrs["rss_kb_before"] > 0
    assert sp.attrs["rss_kb_after"] > 0
    assert sp.attrs["rss_kb_delta"] == (sp.attrs["rss_kb_after"]
                                        - sp.attrs["rss_kb_before"])
    # tracemalloc was started by enable_memory_sampling, so the Python
    # heap peak over the body is visible too
    assert "py_heap_peak_kb" in sp.attrs


def test_probe_composes_with_null_span():
    enable_memory_sampling()
    with memory_probe(_NULL_SPAN):   # set() is a no-op; must not raise
        pass


def test_disable_stops_owned_tracemalloc():
    import tracemalloc
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        pytest.skip("tracemalloc already owned by the test runner")
    enable_memory_sampling()
    assert tracemalloc.is_tracing()
    disable_memory_sampling()
    assert not tracemalloc.is_tracing()
    assert not obs_profile._TRACEMALLOC_OWNED


def _busy_work():
    return sum(i * i for i in range(10_000))


def test_stage_profiler_dump_and_summary(tmp_path):
    profiler = StageProfiler()
    with profiler.stage("fig7"):
        _busy_work()
    with profiler.stage("table1"):
        _busy_work()
    assert profiler.stages == ["fig7", "table1"]

    out = tmp_path / "profile.pstats"
    profiler.dump(out)
    stats = pstats.Stats(str(out))
    functions = {fn for (_, _, fn) in stats.stats}
    assert "_busy_work" in functions

    assert "_busy_work" in profiler.summary(limit=25)
