"""Tests for the run ledger: round trips, compare, the gate."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.ledger import (
    Ledger,
    compare_runs,
    gate_check,
    ingest_bench,
    resolve_ledger_dir,
)
from repro.obs.manifest import RunManifest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run(run_id="r1", *, started="2026-08-06T00:00:00+00:00",
         timers=None, counters=None, outputs=None,
         artifacts=None, **overrides) -> RunManifest:
    base = dict(
        run_id=run_id, kind="cli", command="fig7", started=started,
        duration_s=1.0, version="1.0.0", git_sha="e" * 40,
        python="3.11.0", machine="x86_64", cpu_count=4,
        timers=timers or {"cli.fig7": 1.0},
        counters=counters or {"index.candidates": 10_000},
        outputs=outputs or {"fig7": "aa" * 32},
        artifacts=artifacts or {"hazard": {"seconds": 0.9,
                                           "sha256": "bb" * 32}},
    )
    base.update(overrides)
    return RunManifest(**base)


class TestLedgerIO:
    def test_append_and_read_back(self, tmp_path):
        ledger = Ledger(tmp_path / "led")
        m = _run()
        ledger.append(m)
        assert ledger.runs() == [m]
        assert ledger.skipped == 0

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(_run("r1"))
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write("{torn write\n\n")
        ledger.append(_run("r2"))
        runs = ledger.runs()
        assert [r.run_id for r in runs] == ["r1", "r2"]
        assert ledger.skipped == 1

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert Ledger(tmp_path / "nope").runs() == []

    def test_resolve_by_index_and_prefix(self, tmp_path):
        ledger = Ledger(tmp_path)
        for rid in ("aaa111", "bbb222", "bbb333"):
            ledger.append(_run(rid))
        runs = ledger.runs()
        assert ledger.resolve("-1", runs).run_id == "bbb333"
        assert ledger.resolve("0", runs).run_id == "aaa111"
        assert ledger.resolve("aaa", runs).run_id == "aaa111"
        with pytest.raises(KeyError):        # ambiguous prefix
            ledger.resolve("bbb", runs)
        with pytest.raises(KeyError):        # no match
            ledger.resolve("zzz", runs)
        with pytest.raises(KeyError):        # out of range
            ledger.resolve("-9", runs)

    def test_resolve_empty_ledger(self, tmp_path):
        with pytest.raises(KeyError):
            Ledger(tmp_path).resolve("-1")


class TestResolveLedgerDir:
    def test_off_by_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        assert resolve_ledger_dir() is None
        assert resolve_ledger_dir(for_reading=True) is None

    def test_cli_flag_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "env"))
        assert resolve_ledger_dir(tmp_path / "flag") == \
            tmp_path / "flag"
        assert resolve_ledger_dir() == tmp_path / "env"

    def test_reading_falls_back_to_conventional_dir(self, monkeypatch,
                                                    tmp_path):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        (tmp_path / ".repro" / "ledger").mkdir(parents=True)
        assert resolve_ledger_dir(for_reading=True) == \
            Path(".repro/ledger")
        # writes still require explicit opt-in
        assert resolve_ledger_dir() is None


_name = st.text(
    st.characters(codec="utf-8",
                  exclude_categories=("Cs", "Cc")),
    min_size=1, max_size=24)
_sha = st.text("0123456789abcdef", min_size=64, max_size=64)
_timers = st.dictionaries(
    _name,
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    max_size=6)
_counters = st.dictionaries(
    _name, st.integers(min_value=0, max_value=2**53), max_size=6)


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(timers=_timers, counters=_counters,
           outputs=st.dictionaries(_name, _sha, max_size=4),
           duration=st.floats(min_value=0.0, max_value=1e5,
                              allow_nan=False, allow_infinity=False))
    def test_manifest_survives_the_ledger_bit_identically(
            self, tmp_path_factory, timers, counters, outputs,
            duration):
        """Checksums, counters, and float timings written by one
        registry must read back exactly — the ledger is the record of
        truth that ``repro compare`` diffs, so lossy round trips would
        fabricate drift."""
        tmp = tmp_path_factory.mktemp("ledger")
        m = _run(timers=timers, counters=counters, outputs=outputs,
                 duration_s=duration,
                 timer_calls={k: 1 for k in timers})
        ledger = Ledger(tmp)
        ledger.append(m)
        (got,) = ledger.runs()
        assert got == m
        assert got.to_json() == m.to_json()

    def test_written_by_another_process_reads_back_identically(
            self, tmp_path):
        """A manifest appended by a *different* interpreter process is
        read back bit-identically here (the cross-process half of the
        round-trip contract)."""
        script = f"""
import sys
sys.path.insert(0, {SRC!r})
from repro.obs.ledger import Ledger
from repro.obs.manifest import RunManifest
m = RunManifest(run_id="child000run0", kind="cli", command="fig7",
                started="2026-08-06T00:00:00+00:00",
                duration_s=0.123456789,
                timers={{"cli.fig7": 0.7071067811865476}},
                counters={{"index.candidates": 12345}},
                outputs={{"fig7": "ab" * 32}})
Ledger({str(tmp_path)!r}).append(m)
print(m.to_json())
"""
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True,
                              check=True)
        expected = proc.stdout.strip()
        (got,) = Ledger(tmp_path).runs()
        assert got.to_json() == expected
        assert got.timers["cli.fig7"] == 0.7071067811865476


class TestIngestBench:
    def _write(self, tmp_path, doc) -> Path:
        path = tmp_path / "BENCH_runtime.json"
        path.write_text(json.dumps(doc))
        return path

    def test_schema_v1(self, tmp_path):
        path = self._write(tmp_path, {
            "schema": "bench-runtime/1",
            "generated_unix": 1754000000.0,
            "python": "3.11.0", "machine": "x86_64",
            "stages_seconds": {"overlay_fires": 2.5},
            "stage_calls": {"overlay_fires": 3},
            "counters": {"index.hits": 42},
            "sections": {"overlay_2017": {"serial_s": 1.0}},
        })
        m = ingest_bench(path)
        assert m.kind == "bench"
        assert m.started.startswith("2025-")       # unix -> ISO UTC
        assert m.git_sha is None
        assert m.timers == {"overlay_fires": 2.5}
        assert m.extra["sections"]["overlay_2017"]["serial_s"] == 1.0
        assert m.extra["bench_schema"] == "bench-runtime/1"

    def test_schema_v2(self, tmp_path):
        path = self._write(tmp_path, {
            "schema": "bench-runtime/2",
            "generated_iso": "2026-08-06T10:00:00+00:00",
            "git_sha": "d" * 40, "cpu_count": 16,
            "python": "3.12.0", "machine": "arm64",
            "stages_seconds": {"overlay_fires": 2.0},
            "stage_calls": {}, "counters": {}, "sections": {},
        })
        m = ingest_bench(path)
        assert m.started == "2026-08-06T10:00:00+00:00"
        assert m.git_sha == "d" * 40
        assert m.cpu_count == 16

    def test_deterministic_run_id(self, tmp_path):
        doc = {"schema": "bench-runtime/2",
               "generated_iso": "2026-08-06T10:00:00+00:00",
               "stages_seconds": {}, "sections": {}}
        path = self._write(tmp_path, doc)
        assert ingest_bench(path).run_id == ingest_bench(path).run_id

    def test_unknown_schema_rejected(self, tmp_path):
        path = self._write(tmp_path, {"schema": "bench-runtime/99"})
        with pytest.raises(ValueError, match="unknown bench schema"):
            ingest_bench(path)


class TestCompareRuns:
    def test_deltas_and_drift_buckets(self):
        a = _run("a", timers={"cli.fig7": 1.0, "gone": 0.2},
                 counters={"c": 10},
                 outputs={"fig7": "aa" * 32, "old": "cc" * 32},
                 artifacts={"hazard": {"seconds": 1, "sha256": "x"}})
        b = _run("b", timers={"cli.fig7": 2.0, "new": 0.3},
                 counters={"c": 15},
                 outputs={"fig7": "bb" * 32, "fresh": "dd" * 32},
                 artifacts={"hazard": {"seconds": 2, "sha256": "y"}})
        diff = compare_runs(a, b)
        timers = {name: (av, bv) for name, av, bv in diff["timers"]}
        assert timers["cli.fig7"] == (1.0, 2.0)
        assert timers["gone"] == (0.2, 0.0)
        assert timers["new"] == (0.0, 0.3)
        assert diff["counters"] == [("c", 10, 15)]
        assert diff["outputs"]["changed"] == ["fig7"]
        assert diff["outputs"]["added"] == ["fresh"]
        assert diff["outputs"]["removed"] == ["old"]
        assert diff["artifacts"]["changed"] == ["hazard"]

    def test_min_seconds_filters_noise(self):
        a = _run("a", timers={"big": 1.0, "tiny": 0.001})
        b = _run("b", timers={"big": 1.1, "tiny": 0.002})
        diff = compare_runs(a, b, min_seconds=0.01)
        assert [name for name, *_ in diff["timers"]] == ["big"]

    def test_identical_runs_show_no_drift(self):
        a, b = _run("a"), _run("b")
        diff = compare_runs(a, b)
        assert diff["outputs"]["changed"] == []
        assert diff["artifacts"]["changed"] == []


class TestGateCheck:
    def _history(self, n=5, seconds=1.0, sha="aa" * 32):
        return [_run(f"base{i}", timers={"cli.fig7": seconds},
                     counters={"index.candidates": 10_000},
                     outputs={"fig7": sha}) for i in range(n)]

    def test_no_baseline_passes_vacuously(self):
        report = gate_check([_run("only")], baseline=5)
        assert report.ok and not report.has_baseline

    def test_timer_regression_flagged(self):
        runs = self._history() + [
            _run("slow", timers={"cli.fig7": 2.0},
                 outputs={"fig7": "aa" * 32})]
        report = gate_check(runs, baseline=5, threshold=1.3)
        assert not report.ok
        (reg,) = report.regressions
        assert reg["name"] == "cli.fig7" and reg["kind"] == "timer"
        assert reg["ratio"] == pytest.approx(2.0)
        assert report.drift == []

    def test_median_absorbs_one_outlier_in_the_baseline(self):
        runs = self._history(4, seconds=1.0) \
            + [_run("spike", timers={"cli.fig7": 30.0},
                    outputs={"fig7": "aa" * 32})] \
            + [_run("now", timers={"cli.fig7": 1.1},
                    outputs={"fig7": "aa" * 32})]
        report = gate_check(runs, baseline=5, threshold=1.3)
        assert report.ok

    def test_drift_is_not_a_regression(self):
        runs = self._history() + [
            _run("seeded", timers={"cli.fig7": 1.0},
                 outputs={"fig7": "ff" * 32},
                 artifacts={"hazard": {"seconds": 0.9,
                                       "sha256": "ee" * 32}})]
        report = gate_check(runs, baseline=5)
        assert report.ok
        kinds = {(d["kind"], d["name"]) for d in report.drift}
        assert ("output", "fig7") in kinds
        assert ("artifact", "hazard") in kinds

    def test_noise_floor_skips_tiny_timers(self):
        runs = [_run(f"b{i}", timers={"cli.fig7": 0.001})
                for i in range(3)] + \
            [_run("now", timers={"cli.fig7": 0.004})]
        report = gate_check(runs, baseline=3, min_seconds=0.05)
        assert report.ok and report.skipped_small == 1

    def test_counter_regression_needs_ratio_and_absolute_floor(self):
        base = [_run(f"b{i}", counters={"index.candidates": 10_000})
                for i in range(3)]
        blown = base + [_run("now",
                             counters={"index.candidates": 20_000})]
        report = gate_check(blown, baseline=3, threshold=1.3)
        assert any(r["kind"] == "counter" for r in report.regressions)
        # over the ratio but under the absolute floor: not flagged
        small = [_run(f"s{i}", counters={"pool.created": 1})
                 for i in range(3)] + \
            [_run("now2", counters={"pool.created": 3})]
        assert gate_check(small, baseline=3).ok

    def test_stage_filter_restricts_the_gate(self):
        runs = self._history() + [
            _run("slow", timers={"cli.fig7": 2.0},
                 outputs={"fig7": "aa" * 32})]
        assert gate_check(runs, baseline=5, stage="table1").ok
        assert not gate_check(runs, baseline=5, stage="fig7").ok
