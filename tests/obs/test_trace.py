"""Tests for the span tracer and the worker → parent transport."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.trace import Span, Tracer, _NULL_SPAN
from repro.runtime import PerfRegistry, set_trace_channel, shutdown_pools
from repro.runtime import config as runtime_config
from repro.runtime import dispatch as runtime_dispatch


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with tracing off and empty."""
    obs.disable()
    obs.get_tracer().clear()
    yield
    obs.disable()
    obs.get_tracer().clear()
    set_trace_channel(None)


class TestSpanBasics:
    def test_disabled_probe_is_shared_noop(self):
        assert obs.span("anything") is _NULL_SPAN
        assert obs.span("other", k=1) is _NULL_SPAN
        with obs.span("ignored") as sp:
            sp.set(attr=1)          # must not raise
        assert obs.get_tracer().finished == []

    def test_disabled_event_records_nothing(self):
        obs.event("cache.hit", key="x")
        assert obs.get_tracer().finished == []

    def test_span_records_name_attrs_duration(self):
        tracer = obs.enable()
        with obs.span("work", n=3) as sp:
            sp.set(extra="y")
        assert len(tracer.finished) == 1
        got = tracer.finished[0]
        assert got.name == "work"
        assert got.attrs == {"n": 3, "extra": "y"}
        assert got.duration >= 0.0
        assert got.kind == "span"

    def test_nesting_links_parent_and_orders_by_completion(self):
        tracer = obs.enable()
        with obs.span("parent") as p:
            with obs.span("child"):
                pass
        child, parent = tracer.finished       # children close first
        assert parent.name == "parent"
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        assert parent.duration >= child.duration
        assert p is parent

    def test_event_is_instant_child_of_open_span(self):
        tracer = obs.enable()
        with obs.span("outer") as outer:
            obs.event("pool.reused", pool="overlay")
        ev = [sp for sp in tracer.finished if sp.kind == "instant"][0]
        assert ev.name == "pool.reused"
        assert ev.parent_id == outer.span_id
        assert ev.duration == 0.0

    def test_span_survives_exception(self):
        tracer = obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        assert tracer.finished[0].name == "boom"
        assert tracer._stack == []

    def test_roots_and_children_helpers(self):
        tracer = obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                pass
            with obs.span("c"):
                pass
        (root,) = tracer.roots()
        assert root.name == "a"
        assert [sp.name for sp in tracer.children_of(root.span_id)] \
            == ["b", "c"]

    def test_wire_roundtrip(self):
        sp = Span(name="x", span_id=3, parent_id=1, pid=42,
                  start=1.5, duration=0.25, attrs={"k": "v"})
        assert Span.from_dict(sp.to_dict()) == sp


class TestAdoption:
    def test_adopt_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        worker.enabled = True
        with worker.span("task"):
            with worker.span("inner"):
                pass
        serialized = worker.export_spans()

        parent = Tracer()
        parent.enabled = True
        with parent.span("join") as join:
            adopted = parent.adopt(serialized)
        inner = next(sp for sp in adopted if sp.name == "inner")
        task = next(sp for sp in adopted if sp.name == "task")
        assert task.parent_id == join.span_id
        assert inner.parent_id == task.span_id
        # fresh local ids, no collision with the parent's own spans
        ids = [sp.span_id for sp in parent.finished]
        assert len(ids) == len(set(ids))

    def test_adopt_child_arriving_before_parent(self):
        """Completion order lists children first; adoption must still
        resolve the child's parent to the remapped id, not the
        fallback."""
        worker = Tracer()
        worker.enabled = True
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        serialized = worker.export_spans()
        assert serialized[0]["name"] == "inner"   # closes first

        parent = Tracer()
        adopted = parent.adopt(serialized, parent_id=None)
        inner = next(sp for sp in adopted if sp.name == "inner")
        outer = next(sp for sp in adopted if sp.name == "outer")
        assert inner.parent_id == outer.span_id


class TestStatsChannel:
    def test_snapshot_delta_carry_spans(self):
        tracer = obs.enable()
        reg = PerfRegistry()
        before = reg.snapshot()
        assert before["span_count"] == 0
        with tracer.span("chunk"):
            reg.count("index.hits", 5)
        delta = reg.delta_since(before)
        assert [d["name"] for d in delta["spans"]] == ["chunk"]
        assert delta["counters"] == {"index.hits": 5}

    def test_merge_adopts_under_active_span(self):
        tracer = obs.enable()
        worker = Tracer()
        worker.enabled = True
        with worker.span("overlay.chunk"):
            pass
        delta = {"timers": {}, "timer_calls": {}, "counters": {},
                 "spans": worker.export_spans()}
        reg = PerfRegistry()
        with tracer.span("overlay_fires") as join:
            reg.merge(delta)
        chunk = next(sp for sp in tracer.finished
                     if sp.name == "overlay.chunk")
        assert chunk.parent_id == join.span_id

    def test_no_channel_no_span_keys(self):
        reg = PerfRegistry()
        snap = reg.snapshot()
        assert "span_count" not in snap
        assert "spans" not in reg.delta_since(snap)


class TestParallelEndToEnd:
    """The real pool path: worker chunk spans come home re-parented."""

    @pytest.fixture(autouse=True)
    def _small_parallel_floor(self, monkeypatch):
        monkeypatch.setattr(runtime_config, "MIN_PARALLEL_POINTS", 64)
        monkeypatch.setattr(runtime_dispatch, "OVERLAY_WORK_FACTOR", 1)
        monkeypatch.setattr(runtime_dispatch, "CPU_COUNT_OVERRIDE", 8)
        shutdown_pools()
        yield
        shutdown_pools()

    def test_worker_chunk_spans_reparent_under_join(self):
        from tests.runtime.test_differential import (
            random_fires,
            random_universe,
        )

        tracer = obs.enable()
        cells = random_universe(0, 3_000)
        fires = random_fires(0, 6)
        from repro.core.overlay import overlay_fires
        overlay_fires(cells, fires, year=2018, workers=4,
                      use_cache=False)

        join = next(sp for sp in tracer.finished
                    if sp.name == "overlay_fires")
        chunks = [sp for sp in tracer.finished
                  if sp.name == "overlay.chunk"]
        fell_back = any(sp.name == "parallel.fallback"
                        for sp in tracer.finished)
        if fell_back:
            pytest.skip("no multiprocessing in this environment")
        assert chunks, "pool path must produce worker chunk spans"
        assert {sp.parent_id for sp in chunks} == {join.span_id}
        assert any(sp.pid != join.pid for sp in chunks), \
            "chunk spans must come from worker pids"
        # per-fire hit counts survive the wire
        total_hits = sum(sp.attrs.get("hits", 0) for sp in chunks)
        assert total_hits > 0
