"""Tests for repro.core.mitigation and repro.core.escape."""

import numpy as np
import pytest

from repro.core.escape import EscapeModel, escape_adjusted_risk
from repro.core.mitigation import (
    MitigationAction,
    mitigation_plan,
    rank_sites,
)
from repro.data.whp import WHPClass


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def ranked(universe):
    return rank_sites(universe)


class TestRankSites:
    def test_sorted_by_score(self, ranked):
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_only_at_risk_sites(self, ranked):
        for site in ranked[:50]:
            assert site.whp_class >= int(WHPClass.MODERATE)

    def test_top_n(self, universe, ranked):
        top = rank_sites(universe, top_n=10)
        assert len(top) == 10
        assert [s.site_id for s in top] \
            == [s.site_id for s in ranked[:10]]

    def test_positive_scores(self, ranked):
        assert all(s.score > 0 for s in ranked)

    def test_tenancy_recorded(self, ranked):
        for s in ranked[:20]:
            assert 1 <= s.n_providers <= 5
            assert s.n_transceivers >= 1

    def test_high_hazard_populous_scores_high(self, ranked):
        """A VH site in a big county outranks an M site in a small one."""
        vh_big = [s for s in ranked
                  if s.whp_class == int(WHPClass.VERY_HIGH)
                  and s.county_population > 1_000_000]
        m_small = [s for s in ranked
                   if s.whp_class == int(WHPClass.MODERATE)
                   and s.county_population < 100_000]
        if vh_big and m_small:
            assert vh_big[0].score > m_small[0].score


class TestMitigationPlan:
    def test_budget_respected(self, universe):
        plan = mitigation_plan(universe, budget_sites=25)
        assert len(plan.hardened) <= 25

    def test_backup_power_always_first(self, universe):
        """§3.2: power is the dominant threat, so every hardened site
        gets backup power."""
        plan = mitigation_plan(universe, budget_sites=25)
        for acts in plan.actions.values():
            assert acts[0] == MitigationAction.BACKUP_POWER

    def test_vh_sites_get_fire_hardening(self, universe):
        plan = mitigation_plan(universe, budget_sites=40)
        for site in plan.hardened:
            acts = plan.actions[site.site_id]
            if site.whp_class == int(WHPClass.VERY_HIGH):
                assert MitigationAction.FIRE_RESISTANT_MATERIALS in acts
            if site.whp_class >= int(WHPClass.HIGH):
                assert MitigationAction.VEGETATION_MANAGEMENT in acts

    def test_coverage_counts(self, universe):
        plan = mitigation_plan(universe, budget_sites=25)
        assert plan.covered_transceivers \
            == sum(s.n_transceivers for s in plan.hardened)
        assert plan.covered_population > 0


class TestEscapeModel:
    def test_exceedance_monotone(self):
        model = EscapeModel()
        sizes = [50, 100, 1_000, 10_000, 300_000, 1e6]
        probs = [model.exceedance(s) for s in sizes]
        assert probs[0] == 1.0
        assert probs[-1] == 0.0
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_radius_from_area(self):
        model = EscapeModel()
        r = model.radius_m(1000.0)
        area_sqm = np.pi * r * r
        assert area_sqm == pytest.approx(1000.0 * 4046.8564224)

    def test_adjusted_superset(self, universe):
        result = escape_adjusted_risk(universe)
        assert result.escape_adjusted_at_risk >= result.static_at_risk
        assert result.added_transceivers \
            == result.escape_adjusted_at_risk - result.static_at_risk

    def test_lower_threshold_reaches_farther(self, universe):
        strict = escape_adjusted_risk(universe, reach_probability=0.2)
        loose = escape_adjusted_risk(universe, reach_probability=0.02)
        assert loose.escape_adjusted_at_risk \
            >= strict.escape_adjusted_at_risk

    def test_escaped_mask_excludes_static(self, universe):
        result = escape_adjusted_risk(universe)
        static = universe.whp.at_risk_mask()
        assert not (result.escaped_mask & static).any()
