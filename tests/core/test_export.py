"""Tests for repro.core.export."""

import json

import pytest

from repro.core.export import export_results, run_all_experiments


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def doc(universe):
    return run_all_experiments(universe, validation_oversample=2)


class TestDocument:
    def test_sections_present(self, doc):
        for key in ("table1", "table2", "table3", "figure5", "figure7",
                    "figure8", "figure10", "figure12", "validation_s34",
                    "extension_s38", "cities_s36", "ecoregions_s39",
                    "config", "library_version"):
            assert key in doc, key

    def test_config_round(self, doc, universe):
        assert doc["config"]["n_transceivers"] \
            == universe.config.n_transceivers

    def test_paper_numbers_embedded(self, doc):
        assert doc["figure7"]["paper_total"] == 430_844
        assert doc["validation_s34"]["paper"]["accuracy_pct"] == 46.0

    def test_table1_19_rows(self, doc):
        assert len(doc["table1"]["rows"]) == 19

    def test_json_serializable(self, doc):
        text = json.dumps(doc)
        assert "figure7" in text

    def test_export_writes_file(self, universe, tmp_path):
        path = tmp_path / "results.json"
        doc = export_results(universe, path, validation_oversample=2)
        loaded = json.loads(path.read_text())
        assert loaded["figure7"]["at_risk_total"] \
            == doc["figure7"]["at_risk_total"]
