"""Tests for repro.core.power and repro.core.coverage."""

import numpy as np
import pytest

from repro.core.coverage import (
    coverage_loss_analysis,
    estimate_site_radii_m,
)
from repro.core.power import (
    fire_power_impact,
    power_grid_for,
    psps_exposure,
)
from repro.data.whp import WHPClass


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def grid(universe):
    return power_grid_for(universe, n_substations=200)


class TestPowerImpact:
    def test_cached_grid(self, universe, grid):
        assert power_grid_for(universe, n_substations=200) is grid

    def test_2019_impact(self, universe, grid):
        impact = fire_power_impact(universe, 2019, grid=grid)
        assert impact.year == 2019
        assert impact.sites_total_affected \
            >= max(impact.sites_direct, impact.sites_indirect)
        assert impact.sites_total_affected \
            <= impact.sites_direct + impact.sites_indirect

    def test_indirect_channel_exists(self, universe, grid):
        """Across a big season, power-mediated outages appear beyond
        the perimeters — the §3.2/§3.11 finding."""
        impact = fire_power_impact(universe, 2017, grid=grid)
        assert impact.sites_indirect > 0

    def test_counts_nonnegative(self, universe, grid):
        impact = fire_power_impact(universe, 2010, grid=grid)
        assert impact.sites_direct >= 0
        assert impact.lines_cut >= 0
        assert impact.substations_hit >= 0


class TestPspsExposure:
    def test_shares(self, universe, grid):
        exposure = psps_exposure(universe, grid=grid)
        assert 0.0 <= exposure.exposed_share <= 1.0
        assert exposure.n_lines_at_risk <= exposure.n_lines_total
        assert exposure.sites_exposed <= exposure.sites_total

    def test_lower_floor_more_exposure(self, universe, grid):
        high = psps_exposure(universe, grid=grid,
                             hazard_floor=WHPClass.VERY_HIGH)
        moderate = psps_exposure(universe, grid=grid,
                                 hazard_floor=WHPClass.MODERATE)
        assert moderate.sites_exposed >= high.sites_exposed
        assert moderate.n_lines_at_risk >= high.n_lines_at_risk


class TestCoverage:
    @pytest.fixture(scope="class")
    def result(self, universe):
        return coverage_loss_analysis(universe)

    def test_radii_bounds(self, universe):
        radii = estimate_site_radii_m(universe)
        assert (radii >= 1_500.0).all()
        assert (radii <= 40_000.0).all()
        assert len(radii) == universe.cells.n_sites()

    def test_urban_radii_smaller(self, universe):
        from repro.data.cities import city_by_name
        cells = universe.cells
        site_ids, first = np.unique(cells.site_ids, return_index=True)
        radii = estimate_site_radii_m(universe)
        la = city_by_name("Los Angeles")
        d = np.hypot(cells.lons[first] - la.lon,
                     cells.lats[first] - la.lat)
        urban = radii[d < 0.3]
        rural = radii[d > 5.0]
        if len(urban) and len(rural):
            assert np.median(urban) < np.median(rural)

    def test_most_population_covered(self, result):
        assert result.covered_share_before > 0.7

    def test_loss_is_consistent(self, result):
        assert result.population_covered_after \
            <= result.population_covered_before
        assert result.population_lost \
            == pytest.approx(result.population_covered_before
                             - result.population_covered_after, rel=0.01)

    def test_loss_small_but_positive(self, result):
        """Losing at-risk sites strands a small share of the country —
        redundant urban coverage absorbs most of it (the paper's point
        that rural/WUI users bear the coverage risk)."""
        assert 0.0 < result.lost_share < 0.25

    def test_higher_floor_less_loss(self, universe, result):
        vh_only = coverage_loss_analysis(universe,
                                         hazard_floor=WHPClass.VERY_HIGH)
        assert vh_only.sites_lost <= result.sites_lost
        assert vh_only.population_lost <= result.population_lost + 1e4
