"""Tests for repro.core.validation and repro.core.extension (§3.4/§3.8)."""

import numpy as np
import pytest

from repro.core.extension import extend_very_high
from repro.core.validation import ValidationResult, validate_whp_2019


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def result(universe):
    # large oversample: in-perimeter membership is a ~1e-4 tail event
    return validate_whp_2019(universe, oversample=24)


@pytest.fixture(scope="module")
def extension(universe):
    return extend_very_high(universe)


class TestValidation:
    def test_counts_consistent(self, result):
        assert result.predicted_at_risk + result.missed \
            == result.in_perimeter_total
        assert result.missed_in_la_fires <= result.missed
        assert result.missed_in_la_fires <= result.in_la_fires_total

    def test_accuracy_in_unit_interval(self, result):
        assert 0.0 <= result.accuracy <= 1.0

    def test_accuracy_below_one(self, result):
        """The paper's point: static WHP misses a large share."""
        assert result.accuracy < 0.85

    def test_la_fires_contribute_misses(self, result):
        """Misses concentrate in the Saddle Ridge/Tick footprints."""
        assert result.missed_in_la_fires > 0

    def test_excluding_la_improves(self, result):
        assert result.accuracy_excluding_la >= result.accuracy - 0.05

    def test_scaled(self, result):
        assert result.scaled(100) == round(100 * result.universe_scale)

    def test_oversample_shrinks_scale(self, universe):
        v4 = validate_whp_2019(universe, oversample=4)
        assert v4.universe_scale \
            == pytest.approx(universe.universe_scale / 4)

    def test_override_superset_mask(self, universe):
        """An everything-at-risk override yields perfect accuracy."""
        full = np.ones(universe.whp.grid.shape, dtype=bool)
        v = validate_whp_2019(universe, at_risk_mask_override=full,
                              oversample=4)
        assert v.accuracy == pytest.approx(1.0)

    def test_override_empty_mask(self, universe):
        empty = np.zeros(universe.whp.grid.shape, dtype=bool)
        v = validate_whp_2019(universe, at_risk_mask_override=empty,
                              oversample=4)
        assert v.predicted_at_risk == 0

    def test_zero_denominator_nan(self):
        r = ValidationResult(0, 0, 0, 0, 0, 1.0)
        assert np.isnan(r.accuracy)


class TestExtension:
    def test_monotone_growth(self, extension):
        assert extension.vh_after >= extension.vh_before
        assert extension.total_after >= extension.total_before

    def test_vh_growth_substantial(self, extension):
        """Paper: 26,307 -> 176,275 (6.7x)."""
        assert extension.vh_after > 2 * extension.vh_before

    def test_accuracy_never_decreases(self, extension):
        assert extension.validation_after.accuracy \
            >= extension.validation_before.accuracy - 1e-9

    def test_accuracy_gain_property(self, extension):
        assert extension.accuracy_gain == pytest.approx(
            extension.validation_after.accuracy
            - extension.validation_before.accuracy)

    def test_total_growth_bounded(self, extension):
        """The paper calls the growth 'an acceptable trade-off':
        total at-risk grows, but far less than the VH class does."""
        total_ratio = extension.total_after / extension.total_before
        assert total_ratio < 2.0

    def test_radius_recorded(self, extension):
        assert extension.radius_miles == 0.5

    def test_larger_radius_grows_more(self, universe, extension):
        bigger = extend_very_high(universe, radius_miles=1.0)
        assert bigger.vh_after >= extension.vh_after
