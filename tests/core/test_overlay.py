"""Tests for repro.core.overlay."""

import numpy as np
import pytest

from repro.core.overlay import (
    classify_cells,
    overlay_fires,
    overlay_fires_bruteforce,
)
from repro.data.wildfires import star_polygon, FirePerimeter


@pytest.fixture(scope="module")
def season(universe):
    return universe.fire_season(2017)


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


class TestOverlay:
    def test_index_matches_bruteforce(self, universe, season):
        fast = overlay_fires(universe.cells, season.fires[:60])
        slow = overlay_fires_bruteforce(universe.cells, season.fires[:60])
        np.testing.assert_array_equal(fast.in_perimeter_mask,
                                      slow.in_perimeter_mask)
        assert fast.per_fire_counts == slow.per_fire_counts

    def test_empty_fire_list(self, universe):
        result = overlay_fires(universe.cells, [], year=2001)
        assert result.n_in_perimeter == 0
        assert result.year == 2001

    def test_year_from_fires(self, universe, season):
        result = overlay_fires(universe.cells, season.fires[:1])
        assert result.year == 2017

    def test_mask_length(self, universe, season):
        result = overlay_fires(universe.cells, season.fires)
        assert len(result.in_perimeter_mask) == len(universe.cells)

    def test_per_fire_counts_complete(self, universe, season):
        result = overlay_fires(universe.cells, season.fires)
        assert len(result.per_fire_counts) == len(season.fires)

    def test_scaled_count(self, universe, season):
        result = overlay_fires(universe.cells, season.fires)
        assert result.scaled_count(10.0) \
            == round(result.n_in_perimeter * 10)

    def test_fire_on_transceiver_cluster(self, universe, rng):
        """A fire drawn around a known transceiver must capture it."""
        cells = universe.cells
        lon, lat = float(cells.lons[0]), float(cells.lats[0])
        fire = FirePerimeter(
            name="test", year=2020, start_doy=200, end_doy=210,
            acres=50_000.0,
            polygon=star_polygon(lon, lat, 50_000.0, rng))
        result = overlay_fires(cells, [fire], year=2020)
        assert result.in_perimeter_mask[0]

    def test_union_semantics(self, universe, rng):
        """Two overlapping fires count a transceiver once in the mask."""
        cells = universe.cells
        lon, lat = float(cells.lons[0]), float(cells.lats[0])
        fires = [
            FirePerimeter("a", 2020, 200, 210, 30_000.0,
                          star_polygon(lon, lat, 30_000.0, rng)),
            FirePerimeter("b", 2020, 200, 210, 30_000.0,
                          star_polygon(lon, lat, 30_000.0, rng)),
        ]
        result = overlay_fires(cells, fires)
        assert result.per_fire_counts["a"] >= 1
        assert result.per_fire_counts["b"] >= 1
        # mask counts it once
        assert result.n_in_perimeter < (result.per_fire_counts["a"]
                                        + result.per_fire_counts["b"]) \
            or result.per_fire_counts["a"] == 0


class TestClassify:
    def test_classify_matches_whp(self, universe):
        classes = classify_cells(universe.cells, universe.whp)
        direct = universe.whp.classify(universe.cells.lons,
                                       universe.cells.lats)
        np.testing.assert_array_equal(classes, direct)

    def test_classify_dtype(self, universe):
        classes = classify_cells(universe.cells, universe.whp)
        assert classes.dtype == np.int8
