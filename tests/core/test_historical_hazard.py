"""Tests for repro.core.historical and repro.core.hazard."""

import numpy as np
import pytest

from repro.core.hazard import hazard_analysis, population_served_at_risk
from repro.core.historical import historical_analysis, total_in_perimeters
from repro.data.historical_stats import year_stats
from repro.data.whp import WHPClass


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def table1(universe):
    return historical_analysis(universe)


@pytest.fixture(scope="module")
def summary(universe):
    return hazard_analysis(universe)


class TestTable1:
    def test_nineteen_years(self, table1):
        assert len(table1) == 19
        assert table1[0].year == 2018 and table1[-1].year == 2000

    def test_input_columns_from_record(self, table1):
        for row in table1:
            stats = year_stats(row.year)
            assert row.n_fires == stats.n_fires
            assert row.acres_burned_millions == stats.acres_burned

    def test_scaled_counts_consistent(self, table1, universe):
        scale = universe.universe_scale
        for row in table1:
            assert row.transceivers_in_perimeters_scaled \
                == round(row.transceivers_in_perimeters * scale)

    def test_per_macre_ratio(self, table1):
        for row in table1:
            expected = (row.transceivers_in_perimeters_scaled
                        / row.acres_burned_millions)
            assert row.transceivers_per_m_acres \
                == pytest.approx(expected)

    def test_paper_shape_every_year_nonzero_range(self, table1):
        """Paper: at least ~180 transceivers every year, max ~5k.
        At synthetic scale the shape claim is a wide nonzero band."""
        scaled = [r.transceivers_in_perimeters_scaled for r in table1]
        assert max(scaled) > 500
        assert max(scaled) < 60_000

    def test_no_tight_acreage_correlation(self, table1):
        """Paper: no simple relationship between acres and at-risk."""
        acres = [r.acres_burned_millions for r in table1]
        counts = [r.transceivers_in_perimeters_scaled for r in table1]
        r = abs(np.corrcoef(acres, counts)[0, 1])
        assert r < 0.85

    def test_total_magnitude(self, universe):
        total, mask = total_in_perimeters(universe)
        # paper: "over 27,000"; synthetic shape: same order of magnitude
        assert 8_000 < total < 120_000
        assert mask.sum() > 0


class TestHazard:
    def test_class_counts_scaled(self, summary, universe):
        scale = universe.universe_scale
        for name, scaled in summary.class_counts.items():
            raw = summary.class_counts_raw[name]
            assert scaled == round(raw * scale)

    def test_at_risk_total_near_paper(self, summary):
        """Paper: 430,844 at-risk transceivers."""
        assert summary.at_risk_total == pytest.approx(430_844, rel=0.25)

    def test_moderate_largest_class(self, summary):
        assert summary.class_counts["Moderate"] \
            > summary.class_counts["High"] \
            > summary.class_counts["Very High"]

    def test_california_leads(self, summary):
        assert summary.states[0].state == "CA"

    def test_top3_contains_fl_tx(self, summary):
        top5 = {s.state for s in summary.states[:5]}
        assert "FL" in top5
        assert "TX" in top5

    def test_top_states_method(self, summary):
        top = summary.top_states(7)
        assert len(top) == 7 and top[0] == "CA"

    def test_top_states_by_class(self, summary):
        top_m = summary.top_states(5, WHPClass.MODERATE)
        assert "CA" in top_m[:3]

    def test_per_capita_ranking(self, summary):
        """Paper Figure 9: UT leads the VH per-capita ranking."""
        top = summary.top_states_per_capita(6, WHPClass.VERY_HIGH)
        assert "UT" in top or "CA" in top[:2]

    def test_state_totals_sum(self, summary):
        total = sum(s.total for s in summary.states)
        # state sums equal national (same scaled rounding, small slack)
        assert total == pytest.approx(summary.at_risk_total, rel=0.02)

    def test_per_thousand(self, summary):
        ca = next(s for s in summary.states if s.state == "CA")
        assert ca.per_thousand() \
            == pytest.approx(1000 * ca.total / ca.population)


class TestPopulationServed:
    def test_magnitude(self, universe, summary):
        served = population_served_at_risk(universe, summary)
        # paper: >85M
        assert 40e6 < served < 220e6

    def test_without_summary(self, universe):
        assert population_served_at_risk(universe) > 0
