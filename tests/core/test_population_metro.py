"""Tests for repro.core.population_impact and repro.core.metro."""

import pytest

from repro.core.metro import (
    CITY_GROUPS,
    city_very_high_counts,
    metro_risk_analysis,
)
from repro.core.population_impact import population_impact_analysis
from repro.data.cities import PAPER_METROS


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def impact(universe):
    return population_impact_analysis(universe)


@pytest.fixture(scope="module")
def metros(universe):
    return metro_risk_analysis(universe)


class TestFigure10:
    def test_matrix_shape(self, impact):
        assert set(impact.matrix) == {"Moderate", "High", "Very High"}
        for row in impact.matrix.values():
            assert len(row) == 3

    def test_counts_nonnegative(self, impact):
        for row in impact.matrix.values():
            for v in row.values():
                assert v >= 0

    def test_vh_pop_subset_of_all(self, impact):
        assert impact.at_risk_in_vh_pop_counties \
            <= impact.at_risk_in_pop_counties

    def test_panel_masks_nested(self, impact):
        assert not (impact.panel_vh_pop_mask
                    & ~impact.panel_all_mask).any()
        assert not (impact.panel_vh_both_mask
                    & ~impact.panel_vh_pop_mask).any()

    def test_vh_pop_counties_near_paper(self, impact):
        """Paper: 23 counties above 1.5M."""
        assert 15 <= impact.n_vh_pop_counties <= 35

    def test_at_risk_in_vh_pop_magnitude(self, impact):
        """Paper: 57,504 at-risk in very-dense counties."""
        assert 20_000 < impact.at_risk_in_vh_pop_counties < 200_000

    def test_matrix_consistent_with_headline(self, impact):
        vh_col = sum(row["Very Dense (>1.5M)"]
                     for row in impact.matrix.values())
        assert vh_col == pytest.approx(
            impact.at_risk_in_vh_pop_counties, rel=0.02)


class TestFigure12:
    def test_all_paper_metros(self, metros):
        assert {m.metro for m in metros} == set(PAPER_METROS)

    def test_sorted_descending(self, metros):
        totals = [m.total for m in metros]
        assert totals == sorted(totals, reverse=True)

    def test_la_in_top3(self, metros):
        """Paper §3.7: LA among the metros with most at-risk assets."""
        assert "Los Angeles" in [m.metro for m in metros[:3]]

    def test_ny_low(self, metros):
        """NYC has (almost) no at-risk infrastructure."""
        ny = next(m for m in metros if m.metro == "New York City")
        assert ny.total < metros[0].total / 5

    def test_moderate_dominates_most_metros(self, metros):
        """Paper: 'Most areas have more transceivers in moderate hazard
        areas than high' — check it holds in aggregate."""
        moderate = sum(m.moderate for m in metros)
        very_high = sum(m.very_high for m in metros)
        assert moderate > very_high


class TestCityVeryHigh:
    def test_groups_complete(self, universe):
        counts = city_very_high_counts(universe)
        assert set(counts) == set(CITY_GROUPS)

    def test_nonnegative(self, universe):
        for v in city_very_high_counts(universe).values():
            assert v >= 0

    def test_western_cities_lead(self, universe):
        """LA/SD/Bay Area/Miami dominate; Vegas/NYC tiny (paper: 10/81)."""
        counts = city_very_high_counts(universe)
        west = (counts["Los Angeles"] + counts["San Diego"]
                + counts["San Francisco/San Jose"] + counts["Miami"])
        small = counts["Las Vegas"] + counts["New York City"]
        assert west > small
