"""Tests for repro.core.report renderers."""

import pytest

from repro.core import report
from repro.core.case_study import case_study_analysis
from repro.core.extension import extend_very_high
from repro.core.future import future_risk_analysis
from repro.core.hazard import hazard_analysis
from repro.core.historical import historical_analysis
from repro.core.metro import metro_risk_analysis
from repro.core.population_impact import population_impact_analysis
from repro.core.provider_risk import provider_risk_analysis
from repro.core.technology import technology_risk_analysis
from repro.core.validation import validate_whp_2019


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


class TestFormatTable:
    def test_alignment(self):
        out = report.format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_mismatched_row_ok(self):
        out = report.format_table(["x"], [["hello"]])
        assert "hello" in out


class TestRenderers:
    def test_table1(self, universe):
        out = report.render_table1(historical_analysis(universe))
        assert "2018" in out and "2000" in out
        assert "Paper" in out

    def test_table2(self, universe):
        out = report.render_table2(provider_risk_analysis(universe))
        assert "AT&T" in out and "%" in out

    def test_table3(self, universe):
        out = report.render_table3(technology_risk_analysis(universe))
        assert "LTE" in out and "CDMA" in out

    def test_figure5(self, universe):
        out = report.render_figure5(case_study_analysis(universe))
        assert "Oct 28" in out and "peak" in out

    def test_figure7(self, universe):
        out = report.render_figure7(hazard_analysis(universe))
        assert "Very High" in out and "261,569" in out

    def test_figure8(self, universe):
        out = report.render_figure8(hazard_analysis(universe))
        assert "CA" in out

    def test_figure9(self, universe):
        out = report.render_figure9(hazard_analysis(universe))
        assert "per 1000" in out

    def test_figure10(self, universe):
        out = report.render_figure10(
            population_impact_analysis(universe))
        assert "Very Dense" in out and "57,504" in out

    def test_figure12(self, universe):
        out = report.render_figure12(metro_risk_analysis(universe))
        assert "Los Angeles" in out

    def test_validation(self, universe):
        out = report.render_validation(
            validate_whp_2019(universe, oversample=2))
        assert "accuracy" in out and "LA fires" in out

    def test_extension(self, universe):
        out = report.render_extension(extend_very_high(universe))
        assert "->" in out and "paper" in out

    def test_ecoregions(self, universe):
        out = report.render_ecoregions(future_risk_analysis(universe))
        assert "I-80" in out and "+240%" in out
