"""Tests for repro.core.provider_risk and repro.core.technology."""

import pytest

from repro.core.provider_risk import (
    provider_risk_analysis,
    regional_carriers_at_risk,
)
from repro.core.technology import technology_risk_analysis
from repro.data.cells import PROVIDER_GROUPS
from repro.data.whp import WHPClass


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def table2(universe):
    return provider_risk_analysis(universe)


@pytest.fixture(scope="module")
def table3(universe):
    return technology_risk_analysis(universe)


class TestTable2:
    def test_all_groups_present(self, table2):
        assert [r.provider for r in table2] == list(PROVIDER_GROUPS)

    def test_att_most_at_risk(self, table2):
        """Paper: 'AT&T has the most at-risk infrastructure.'"""
        by_name = {r.provider: r for r in table2}
        att = by_name["AT&T"].total_at_risk
        for name in ("T-Mobile", "Sprint", "Verizon", "Others"):
            assert att > by_name[name].total_at_risk, name

    def test_moderate_exceeds_vh_for_everyone(self, table2):
        """Paper: each provider has most infrastructure in moderate and
        least in very high."""
        for r in table2:
            assert r.moderate > r.very_high

    def test_percentages_bounded(self, table2):
        """Paper: moderate percentages 3.9-5.5%, VH 0.31-0.59%."""
        for r in table2:
            assert 2.0 < r.pct(WHPClass.MODERATE) < 8.0, r.provider
            assert 0.1 < r.pct(WHPClass.VERY_HIGH) < 1.5, r.provider

    def test_sprint_least_exposed_share(self, table2):
        """Sprint's urban footprint gives it the smallest at-risk %."""
        by_name = {r.provider: r for r in table2}
        sprint_pct = sum(by_name["Sprint"].pct(c) for c in
                         (WHPClass.MODERATE, WHPClass.HIGH,
                          WHPClass.VERY_HIGH))
        att_pct = sum(by_name["AT&T"].pct(c) for c in
                      (WHPClass.MODERATE, WHPClass.HIGH,
                       WHPClass.VERY_HIGH))
        assert sprint_pct < att_pct

    def test_fleet_sizes_sum_to_universe(self, table2, universe):
        total = sum(r.fleet_size for r in table2)
        assert total == pytest.approx(5_364_949, rel=0.01)

    def test_zero_fleet_pct(self):
        from repro.core.provider_risk import ProviderRisk
        r = ProviderRisk("x", 0, 0, 0, 0)
        assert r.pct(WHPClass.MODERATE) == 0.0


class TestRegionalCarriers:
    def test_near_46(self, universe):
        """Paper footnote: 46 smaller providers have at-risk assets."""
        n = regional_carriers_at_risk(universe)
        assert 30 <= n <= 46


class TestTable3:
    def test_four_technologies(self, table3):
        assert [r.technology for r in table3] \
            == ["CDMA", "GSM", "LTE", "UMTS"]

    def test_lte_leads_every_class(self, table3):
        """Paper: LTE has the largest at-risk count in each class."""
        by_tech = {r.technology: r for r in table3}
        lte = by_tech["LTE"]
        for tech in ("CDMA", "GSM", "UMTS"):
            assert lte.very_high >= by_tech[tech].very_high
            assert lte.high > by_tech[tech].high
            assert lte.moderate > by_tech[tech].moderate

    def test_totals(self, table3):
        for r in table3:
            assert r.total == r.very_high + r.high + r.moderate

    def test_umts_second(self, table3):
        """Paper Table 3: UMTS is the second-largest at-risk type."""
        by_tech = {r.technology: r.total for r in table3}
        assert by_tech["UMTS"] > by_tech["CDMA"]
        assert by_tech["UMTS"] > by_tech["GSM"]
