"""Tests for repro.core.case_study and repro.core.future."""

import pytest

from repro.core.case_study import DOY_LABELS, case_study_analysis
from repro.core.future import future_risk_analysis


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


@pytest.fixture(scope="module")
def summary(universe):
    return case_study_analysis(universe)


@pytest.fixture(scope="module")
def exposures(universe):
    return future_risk_analysis(universe)


class TestCaseStudy:
    def test_eight_days(self, summary):
        assert len(summary.days) == 8
        assert summary.days[0] == "Oct 25"
        assert summary.days[-1] == "Nov 1"

    def test_labels_cover_window(self):
        assert set(DOY_LABELS) == set(range(298, 306))

    def test_power_dominates_peak(self, summary):
        """The §3.2 headline: >80% of peak outages are power loss."""
        assert summary.peak_power_share > 0.6

    def test_peak_is_maximum(self, summary):
        assert summary.peak_total == max(summary.totals())

    def test_peak_around_oct28(self, summary):
        assert summary.peak_day in ("Oct 27", "Oct 28", "Oct 29")

    def test_final_below_peak(self, summary):
        assert summary.final_total < summary.peak_total

    def test_damage_persists(self, summary):
        """Damaged sites are still out at the end of the window
        (paper: 21 of the 110 still out on 1 Nov were damaged)."""
        assert summary.final_damaged <= summary.final_total

    def test_series_lengths(self, summary):
        assert len(summary.power) == len(summary.backhaul) \
            == len(summary.damage) == 8

    def test_totals_sum(self, summary):
        totals = summary.totals()
        for i in range(8):
            assert totals[i] == (summary.power[i] + summary.backhaul[i]
                                 + summary.damage[i])


class TestFuture:
    def test_thirteen_rows(self, exposures):
        assert len(exposures) == 13

    def test_sorted_by_delta(self, exposures):
        deltas = [r.delta_2040_pct for r in exposures]
        assert deltas == sorted(deltas, reverse=True)
        assert deltas[0] == pytest.approx(240.0)
        assert deltas[-1] == pytest.approx(-119.0)

    def test_at_risk_subset(self, exposures):
        for r in exposures:
            assert 0 <= r.at_risk_transceivers <= r.transceivers

    def test_corridor_has_infrastructure(self, exposures):
        """SLC and Denver anchor the window: transceivers exist."""
        assert sum(r.transceivers for r in exposures) > 0

    def test_projection_scales_with_delta(self, exposures):
        for r in exposures:
            if r.delta_2040_pct > 0:
                assert r.projected_at_risk_2040 \
                    >= r.at_risk_transceivers
            else:
                assert r.projected_at_risk_2040 \
                    <= r.at_risk_transceivers

    def test_decreasing_region_clamped_at_zero(self, exposures):
        worst = exposures[-1]
        assert worst.projected_at_risk_2040 >= 0

    def test_increasing_flag(self, exposures):
        assert exposures[0].increasing
        assert not exposures[-1].increasing

    def test_front_range_most_infrastructure(self, exposures):
        """Denver's Front Range ecoregion holds the most transceivers
        in the window."""
        most = max(exposures, key=lambda r: r.transceivers)
        assert most.code in ("M331H", "342B", "341A")
