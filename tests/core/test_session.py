"""Tests for the AnalysisSession artifact graph and stage registry.

The contract under test: every shared artifact is computed **exactly
once per session** no matter how many analyses consume it, sessions
never leak artifacts across universes, and the stage/artifact
registries stay unique and acyclic.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.cli import main
from repro.core import hazard as hazard_mod
from repro.core import overlay as overlay_mod
from repro.core import validation as validation_mod
from repro.core.hazard import hazard_analysis
from repro.core.power import power_grid_for
from repro.data import SyntheticUS, UniverseConfig
from repro.session import (
    AnalysisSession,
    check_registry,
    get_artifact_spec,
    get_stage,
    iter_artifacts,
    iter_stages,
    session_of,
    stages_in_all,
)


def _fresh_universe(seed: int = 7, n: int = 6000) -> SyntheticUS:
    return SyntheticUS(UniverseConfig(n_transceivers=n, seed=seed))


class TestMemoization:
    def test_artifact_computed_once(self):
        universe = _fresh_universe()
        session = session_of(universe)
        first = session.artifact("whp_classes")
        second = session.artifact("whp_classes")
        assert first is second

    def test_functional_api_shares_session_memo(self):
        universe = _fresh_universe()
        assert hazard_analysis(universe) is hazard_analysis(universe)

    def test_canonical_params_share_one_entry(self):
        """Explicitly passing a declared default hits the same memo."""
        universe = _fresh_universe()
        session = session_of(universe)
        spec = get_artifact_spec("season_overlay")
        default_year = spec.signature.parameters["year"].default
        a = session.artifact("season_overlay")
        b = session.artifact("season_overlay", year=default_year)
        assert a is b
        assert session.artifact("season_overlay", year=2005) is not a

    def test_power_grid_identity(self):
        universe = _fresh_universe()
        grid = power_grid_for(universe, n_substations=150)
        assert power_grid_for(universe, n_substations=150) is grid
        assert power_grid_for(universe, n_substations=151) is not grid

    def test_invalidate_and_is_materialized(self):
        universe = _fresh_universe()
        session = session_of(universe)
        session.artifact("whp_classes")
        assert session.is_materialized("whp_classes")
        assert session.invalidate("whp_classes") == 1
        assert not session.is_materialized("whp_classes")

    def test_runtime_edges_recorded(self):
        universe = _fresh_universe()
        session = session_of(universe)
        session.artifact("hazard")
        assert ("hazard", "whp_classes") in session.edges


class TestSessionIsolation:
    def test_sessions_are_per_universe(self):
        u1 = _fresh_universe(seed=11)
        u2 = _fresh_universe(seed=12)
        assert session_of(u1) is session_of(u1)
        assert session_of(u1) is not session_of(u2)

    def test_different_seeds_never_share_artifacts(self):
        u1 = _fresh_universe(seed=11)
        u2 = _fresh_universe(seed=12)
        c1 = session_of(u1).artifact("whp_classes")
        c2 = session_of(u2).artifact("whp_classes")
        assert c1 is not c2
        assert not np.array_equal(c1, c2)

    def test_explicit_session_binds_universe(self):
        session = AnalysisSession(_fresh_universe())
        assert session_of(session.universe) is session

    def test_universe_xor_config(self):
        with pytest.raises(ValueError):
            AnalysisSession(_fresh_universe(),
                            config=UniverseConfig(n_transceivers=10))


class TestRegistry:
    def test_artifact_names_unique(self):
        names = [spec.name for spec in iter_artifacts()]
        assert len(names) == len(set(names))

    def test_stage_names_unique(self):
        names = [stage.name for stage in iter_stages()]
        assert len(names) == len(set(names))

    def test_check_registry_topological(self):
        order = check_registry()
        position = {name: i for i, name in enumerate(order)}
        for spec in iter_artifacts():
            for dep in spec.deps:
                assert position[dep] < position[spec.name]

    def test_all_ordering_matches_legacy_cli(self):
        assert [s.name for s in stages_in_all()] == [
            "table1", "table2", "table3", "fig5", "fig7", "fig8",
            "fig9", "fig10", "fig12", "ecoregions", "validate",
            "extend", "power", "coverage"]

    def test_stage_renders_resolve(self):
        universe = _fresh_universe()
        session = session_of(universe)
        text = get_stage("fig7").run(session, None)
        assert "Very High" in text

    def test_unknown_artifact_raises(self):
        with pytest.raises(KeyError, match="unknown artifact"):
            session_of(_fresh_universe()).artifact("nope")


class TestComputeOnceAcrossRepr0All:
    """The tentpole guarantee, measured over one full ``repro all``."""

    @pytest.fixture(scope="class")
    def spy_log(self):
        """Run ``repro all`` once with classify/overlay/hazard spies."""
        mp = pytest.MonkeyPatch()
        log = {"classify": [], "overlay": [], "hazard": []}

        real_classify = overlay_mod.classify_cells
        real_overlay = overlay_mod.overlay_fires
        real_hazard = hazard_mod._compute_hazard

        def classify_spy(cells, whp, **kw):
            log["classify"].append(id(cells))
            return real_classify(cells, whp, **kw)

        def overlay_spy(cells, fires, **kw):
            log["overlay"].append((id(cells), kw.get("year")))
            return real_overlay(cells, fires, **kw)

        def hazard_spy(session, *args, **kwargs):
            log["hazard"].append(id(session))
            return real_hazard(session, *args, **kwargs)

        mp.setattr(overlay_mod, "classify_cells", classify_spy)
        mp.setattr(overlay_mod, "overlay_fires", overlay_spy)
        mp.setattr(validation_mod, "overlay_fires", overlay_spy)
        mp.setattr(hazard_mod, "_compute_hazard", hazard_spy)
        try:
            buffer = io.StringIO()
            assert main(["-n", "6000", "all"], stream=buffer) == 0
            log["output"] = buffer.getvalue()
        finally:
            mp.undo()
        return log

    def test_classify_cells_runs_exactly_once(self, spy_log):
        assert len(spy_log["classify"]) == 1

    def test_each_season_overlay_runs_exactly_once(self, spy_log):
        calls = spy_log["overlay"]
        assert len(calls) == len(set(calls)), (
            "overlay_fires re-ran for a (cells, year) pair")
        years = [year for _, year in calls]
        assert 2018 in years and 2019 in years

    def test_figs_789_share_one_hazard_summary(self, spy_log):
        assert len(spy_log["hazard"]) == 1
        for fig in ("fig7", "fig8", "fig9"):
            assert f"===== {fig} =====" in spy_log["output"]


class TestListSubcommand:
    def test_list_prints_registry(self):
        buffer = io.StringIO()
        assert main(["list"], stream=buffer) == 0
        out = buffer.getvalue()
        for stage in iter_stages():
            assert stage.name in out
        assert "whp_classes" in out
        assert "Paper" in out
