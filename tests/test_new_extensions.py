"""Tests for the extension modules added beyond the paper's core:

ring self-intersection validation (and the integrity of all embedded
geometry), wind-elongated fire perimeters, the seed-sensitivity
harness, county exposure ranking, the per-county DIRS breakdown, and
the markdown report renderer.
"""

import numpy as np
import pytest

from repro.core.case_study import outage_by_county
from repro.core.county_exposure import county_exposure_analysis
from repro.core.export import render_markdown_report, run_all_experiments
from repro.core.sensitivity import MetricDistribution, seed_sweep
from repro.data.ecoregions import slc_denver_ecoregions
from repro.data.states import conus_states
from repro.data.wildfires import star_polygon
from repro.geo.predicates import ring_self_intersects


@pytest.fixture(scope="session")
def universe():
    from repro.data import small_universe
    return small_universe()


class TestGeometryIntegrity:
    def test_bowtie_detected(self):
        assert ring_self_intersects([(0, 0), (1, 1), (1, 0), (0, 1)])

    def test_square_clean(self):
        assert not ring_self_intersects([(0, 0), (1, 0), (1, 1), (0, 1)])

    def test_all_state_polygons_simple(self):
        """Every embedded state ring is a simple polygon."""
        bad = []
        for abbr, state in conus_states().items():
            for poly in state.geometry:
                if ring_self_intersects(poly.exterior):
                    bad.append(abbr)
        assert not bad, bad

    def test_all_ecoregions_simple(self):
        for region in slc_denver_ecoregions():
            assert not ring_self_intersects(region.polygon.exterior), \
                region.code

    def test_generated_perimeters_simple(self, universe):
        for fire in universe.fire_season(2012).fires[:40]:
            assert not ring_self_intersects(fire.polygon.exterior), \
                fire.name


class TestWindElongation:
    def test_area_preserved(self, rng):
        iso = star_polygon(-118.0, 34.0, 20_000.0,
                           np.random.default_rng(1))
        windy = star_polygon(-118.0, 34.0, 20_000.0,
                             np.random.default_rng(1),
                             elongation=3.0, bearing_deg=225.0)
        assert windy.area_acres() == pytest.approx(iso.area_acres(),
                                                   rel=0.02)

    def test_stretch_along_bearing(self):
        rng = np.random.default_rng(2)
        windy = star_polygon(-118.0, 34.0, 20_000.0, rng,
                             roughness=0.0, elongation=4.0,
                             bearing_deg=0.0)  # stretched north-south
        box = windy.bbox
        from repro.geo.projection import meters_per_degree
        mx, my = meters_per_degree(34.0)
        ns = box.height * my
        ew = box.width * mx
        assert ns > 2.5 * ew

    def test_rejects_compression(self, rng):
        with pytest.raises(ValueError):
            star_polygon(-118.0, 34.0, 1_000.0, rng, elongation=0.5)

    def test_default_isotropic(self, rng):
        poly = star_polygon(-118.0, 34.0, 1_000.0, rng)
        assert poly.area_acres() == pytest.approx(1_000.0, rel=0.02)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def report(self):
        return seed_sweep(n_transceivers=10_000, n_seeds=2,
                          validation_oversample=2)

    def test_seeds_distinct(self, report):
        assert len(set(report.seeds)) == 2

    def test_metrics_present(self, report):
        assert set(report.metrics) == {
            "at_risk_total", "very_high", "in_perimeters",
            "validation_accuracy_pct"}

    def test_at_risk_stable(self, report):
        """The calibrated headline metric varies little across seeds."""
        assert report.metrics["at_risk_total"].rel_std < 0.2

    def test_top_state_recorded(self, report):
        assert len(report.top_state_per_seed) == 2
        assert all(s for s in report.top_state_per_seed)

    def test_render(self, report):
        out = report.render()
        assert "at-risk total" in out and "seeds" in out

    def test_distribution_math(self):
        d = MetricDistribution("x", (10.0, 20.0))
        assert d.mean == 15.0
        assert d.std == 5.0
        assert d.rel_std == pytest.approx(1 / 3)


class TestCountyExposure:
    @pytest.fixture(scope="class")
    def rows(self, universe):
        return county_exposure_analysis(universe, top_n=25)

    def test_sorted(self, rows):
        values = [r.transceiver_exposures for r in rows]
        assert values == sorted(values, reverse=True)

    def test_years_touched_bounds(self, rows):
        for r in rows:
            assert 1 <= r.years_touched <= 19

    def test_exposures_positive(self, rows):
        assert all(r.transceiver_exposures > 0 for r in rows)

    def test_fire_states_dominate(self, rows):
        """Exposed counties come overwhelmingly from fire country."""
        from repro.data.states import SOUTHEASTERN_STATES, WESTERN_STATES
        fire_states = WESTERN_STATES | SOUTHEASTERN_STATES | {"TX", "OK"}
        share = sum(r.state in fire_states for r in rows) / len(rows)
        assert share > 0.6


class TestOutageByCounty:
    def test_ranked_output(self, universe):
        rows = outage_by_county(universe)
        assert rows
        values = [v for _, v in rows]
        assert values == sorted(values, reverse=True)

    def test_california_counties(self, universe):
        """The DIRS event affects only the activation region (CA)."""
        counties = universe.counties
        for name, _ in outage_by_county(universe):
            county = counties.by_name(name)
            assert county.state == "CA", name


class TestMarkdownReport:
    def test_renders_sections(self, universe):
        doc = run_all_experiments(universe, validation_oversample=2)
        md = render_markdown_report(doc)
        for heading in ("Figure 7", "Table 1", "S3.4", "S3.8",
                        "Table 2", "S3.6"):
            assert heading in md
        assert "261,569" in md  # paper anchor embedded
