"""The scenario library: named bundles end-to-end.

Covers the catalog surface (every registered bundle runs against the
shared universe and lands real impact numbers), determinism of the
ensemble, the session-artifact route the CLI stage uses, and the
ledger-compare labeling of cross-hazard runs as config changes.
"""

from __future__ import annotations

import pytest

from repro.core import report
from repro.hazard import (
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.hazard.scenarios import ensemble_impacts
from repro.obs.ledger import compare_runs
from repro.obs.manifest import RunManifest
from repro.session import session_of


class TestCatalog:

    def test_the_shipped_bundles(self):
        assert set(scenario_names()) == {
            "2025-la-style", "grid-ignition-season", "wui-expansion"}

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="grid-ignition-season"):
            get_scenario("volcano-winter")

    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_every_bundle_runs_end_to_end(self, universe, name):
        result = run_scenario(universe, name, members=2)
        assert result.name == name
        assert result.n_members == 2
        for m in result.members:
            assert m.n_events > 0
            assert m.total_acres > 0
            assert m.impacted >= 0
        text = report.render_scenario(result)
        assert name in text
        assert "mean" in text

    def test_compound_bundle_mixes_hazards(self, universe):
        """2025-la-style members carry grid fires AND wind swaths."""
        result = run_scenario(universe, "2025-la-style", members=1)
        scenario = get_scenario("2025-la-style")
        expected = scenario.hazard.n_events \
            + scenario.extra_hazards[0].n_events
        assert result.members[0].n_events == expected


class TestDeterminismAndPooling:

    def test_run_twice_identical(self, universe):
        a = run_scenario(universe, "grid-ignition-season", members=3)
        b = run_scenario(universe, "grid-ignition-season", members=3)
        assert [m.impacted for m in a.members] \
            == [m.impacted for m in b.members]

    def test_pooled_matches_serial(self, universe):
        scenario = get_scenario("grid-ignition-season")
        member_events = [
            scenario.hazard.ensemble_member(universe, scenario.year, m)
            for m in range(3)]
        serial = ensemble_impacts(universe, member_events,
                                  scenario.year, workers=1)
        pooled = ensemble_impacts(universe, member_events,
                                  scenario.year, workers=2)
        assert serial == pooled

    def test_member_count_validation(self, universe):
        with pytest.raises(ValueError):
            run_scenario(universe, "grid-ignition-season", members=0)


class TestSessionArtifact:

    def test_scenario_is_memoized_per_parameterization(self, universe):
        session = session_of(universe)
        one = session.artifact("scenario",
                               scenario="grid-ignition-season",
                               members=2)
        again = session.artifact("scenario",
                                 scenario="grid-ignition-season",
                                 members=2)
        assert one is again
        other = session.artifact("scenario",
                                 scenario="grid-ignition-season",
                                 members=3)
        assert other is not one


def _manifest(run_id: str, universe_dict: dict,
              outputs: dict) -> RunManifest:
    return RunManifest(run_id=run_id, kind="cli", command="scenario",
                       started="2026-08-08T00:00:00+00:00",
                       duration_s=1.0, universe=universe_dict,
                       outputs=outputs)


class TestCompareLabelsCrossHazardRuns:

    def test_context_bucket_flags_hazard_change(self):
        a = _manifest("a" * 8, {"hazard": "wildfire", "seed": 42},
                      {"fig7": "aaa"})
        b = _manifest("b" * 8, {"hazard": "grid_fire", "seed": 42},
                      {"fig7": "bbb"})
        diff = compare_runs(a, b)
        assert ("hazard", "wildfire", "grid_fire") in diff["context"]
        text = report.render_compare(diff)
        assert "config changes:" in text
        assert "hazard: 'wildfire' -> 'grid_fire'" in text
        assert "drift (expected" in text

    def test_same_context_stays_plain_drift(self):
        a = _manifest("a" * 8, {"hazard": "wildfire"}, {"fig7": "aaa"})
        b = _manifest("b" * 8, {"hazard": "wildfire"}, {"fig7": "bbb"})
        diff = compare_runs(a, b)
        assert diff["context"] == []
        text = report.render_compare(diff)
        assert "config changes:" not in text
        assert "drift:" in text

    def test_old_manifests_without_keys_never_flag(self):
        a = _manifest("a" * 8, {"seed": 42}, {})
        b = _manifest("b" * 8, {"seed": 42, "hazard": None}, {})
        assert compare_runs(a, b)["context"] == []
