"""Differential pins: the wildfire path through the protocol is the
old path, byte for byte.

The refactor's acceptance bar is that extracting the Hazard protocol
changed *zero* wildfire output bytes.  These tests pin the mechanism
that guarantees it — object identity, not mere equality: the wildfire
instance hands the engine the very same season list and WHP raster the
pre-protocol code used, so every downstream memo key, cache token, and
golden number is untouched.
"""

from __future__ import annotations

import numpy as np

from repro.core.overlay import classify_cells, overlay_fires
from repro.hazard import WildfireHazard, get_hazard
from repro.session import session_of
from repro.stream.incident import run_scripted_incident


class TestObjectIdentity:

    def test_intensity_is_the_universe_whp(self, universe):
        assert WildfireHazard().intensity(universe) is universe.whp

    def test_event_set_is_the_memoized_season_list(self, universe):
        events = WildfireHazard().event_set(universe, 2019).events
        assert events is universe.fire_season(2019).fires

    def test_registry_default_is_plain_wildfire(self, universe):
        hz = get_hazard("wildfire")
        assert isinstance(hz, WildfireHazard)
        assert hz.event_set(universe, 2019).events \
            is universe.fire_season(2019).fires

    def test_acreage_multiplier_regenerates(self, universe):
        grown = WildfireHazard(acreage_multiplier=1.5)
        events = grown.event_set(universe, 2018).events
        base = universe.fire_season(2018).fires
        assert events is not base
        assert sum(e.acres for e in events) > sum(f.acres for f in base)


class TestArtifactEquivalence:

    def test_whp_classes_artifact_equals_direct_classify(self, universe):
        session = session_of(universe)
        via_artifact = session.artifact("whp_classes")
        direct = classify_cells(universe.cells, universe.whp)
        np.testing.assert_array_equal(via_artifact, direct)

    def test_season_overlay_artifact_equals_direct_join(self, universe):
        session = session_of(universe)
        via_artifact = session.artifact("season_overlay", year=2019)
        direct = overlay_fires(universe.cells,
                               universe.fire_season(2019).fires,
                               year=2019)
        assert via_artifact.n_in_perimeter == direct.n_in_perimeter
        assert via_artifact.per_fire_counts == direct.per_fire_counts
        np.testing.assert_array_equal(via_artifact.in_perimeter_mask,
                                      direct.in_perimeter_mask)

    def test_hazard_param_is_part_of_the_memo_key(self, universe):
        session = session_of(universe)
        wildfire = session.artifact("whp_classes", hazard="wildfire")
        wind = session.artifact("whp_classes", hazard="wind")
        assert wildfire is session.artifact("whp_classes")
        assert wind is not wildfire
        assert not np.array_equal(wind, wildfire)


class TestStreamEquivalence:

    def test_stream_final_matches_batch_overlay(self, universe):
        """The incident stream's folded final state equals one batch
        join over the final fronts — for the non-wildfire hazard too,
        proving the fold is hazard-agnostic."""
        hz = get_hazard("grid_fire")
        result = run_scripted_incident(universe, n_ticks=3,
                                       hazard="grid_fire")
        year, background, growth = hz.incident(universe, 3)
        batch = overlay_fires(universe.cells, background + growth[-1],
                              year=year)
        assert result.final.n_in_perimeter == batch.n_in_perimeter
        assert result.final.per_fire_counts == batch.per_fire_counts
