"""Shared Hazard protocol conformance suite.

Every registered hazard instance must satisfy the same contract the
engine layers rely on: deterministic event generation under the
universe seed, intensity surfaces whose classes stay in the ordinal
0-5 vocabulary with stable content tokens, and — where the instance
declares ``monotone_growth`` — per-tick fronts that only ever grow.
The suite is parameterized over the registry, so a new hazard gets
the contract checked by showing up.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.hazard import (
    Hazard,
    get_hazard,
    hazard_names,
    iter_hazards,
    register_hazard,
)

ALL_HAZARDS = sorted(hazard_names())


def _event_token(events) -> str:
    """Order-sensitive digest of names + exterior-ring bytes."""
    h = hashlib.sha256()
    for e in events:
        h.update(e.name.encode())
        h.update(np.int64(e.year).tobytes())
        h.update(np.ascontiguousarray(
            e.polygon.exterior, dtype=np.float64).tobytes())
    return h.hexdigest()


class TestRegistry:

    def test_builtin_instances_registered(self):
        assert {"wildfire", "grid_fire", "wind"} <= set(hazard_names())

    def test_get_hazard_passes_instances_through(self):
        hz = get_hazard("wildfire")
        assert get_hazard(hz) is hz

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="wildfire"):
            get_hazard("volcano")

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError):
            register_hazard(get_hazard("wildfire"))

    def test_iter_yields_hazard_instances(self):
        for hz in iter_hazards():
            assert isinstance(hz, Hazard)
            assert hz.name


@pytest.mark.parametrize("name", ALL_HAZARDS)
class TestEventDeterminism:
    """Same (universe, year, member) → byte-identical events."""

    def test_event_set_deterministic(self, universe, name):
        hz = get_hazard(name)
        a = hz.event_set(universe)
        b = hz.event_set(universe)
        assert a.year == b.year
        assert _event_token(a.events) == _event_token(b.events)

    def test_ensemble_members_deterministic(self, universe, name):
        hz = get_hazard(name)
        year = hz.default_year
        one = _event_token(hz.ensemble_member(universe, year, 1))
        again = _event_token(hz.ensemble_member(universe, year, 1))
        assert one == again

    def test_ensemble_members_independent(self, universe, name):
        hz = get_hazard(name)
        year = hz.default_year
        tokens = {_event_token(hz.ensemble_member(universe, year, m))
                  for m in range(3)}
        assert len(tokens) == 3, "members must differ"

    def test_events_carry_the_protocol_fields(self, universe, name):
        hz = get_hazard(name)
        events = hz.event_set(universe).events
        assert events, f"{name} generated an empty season"
        for e in events[:10]:
            assert isinstance(e.name, str) and e.name
            assert e.polygon.exterior.shape[1] == 2
            assert e.acres > 0


@pytest.mark.parametrize("name", ALL_HAZARDS)
class TestIntensitySurface:
    """The surface the tiled classifier samples."""

    def test_classes_stay_in_ordinal_vocabulary(self, universe, name):
        surface = get_hazard(name).intensity(universe)
        cells = universe.cells
        classes = np.asarray(surface.classify(cells.lons[:2000],
                                              cells.lats[:2000]))
        assert classes.min() >= 0
        assert classes.max() <= 5

    def test_content_token_stable(self, universe, name):
        hz = get_hazard(name)
        t1 = hz.intensity(universe).content_token()
        t2 = hz.intensity(universe).content_token()
        assert isinstance(t1, bytes) and len(t1) >= 16
        assert t1 == t2


@pytest.mark.parametrize("name", ALL_HAZARDS)
class TestGrowthContract:
    """monotone_growth=True means fronts only grow; False means the
    stream refuses the hazard instead of producing wrong deltas."""

    def test_growth_matches_declaration(self, universe, name):
        hz = get_hazard(name)
        if not hz.monotone_growth:
            with pytest.raises((NotImplementedError, ValueError)):
                hz.growth_series(universe, n_ticks=4)
            return

        ticks = hz.growth_series(universe, n_ticks=5)
        assert len(ticks) == 5
        for earlier, later in zip(ticks, ticks[1:]):
            later_by_name = {e.name: e for e in later}
            for small in earlier:
                big = later_by_name.get(small.name)
                if big is None or big is small:
                    continue
                assert big.acres >= small.acres
                ring = small.polygon.exterior
                inside = [big.polygon.contains(float(lon), float(lat))
                          for lon, lat in ring[::3]]
                assert all(inside), (
                    f"{name}: front {small.name} escaped its "
                    f"successor between ticks")

    def test_final_tick_is_fully_grown(self, universe, name):
        hz = get_hazard(name)
        if not hz.monotone_growth:
            pytest.skip("no growth model")
        ticks = hz.growth_series(universe, n_ticks=4)
        final_names = {e.name for e in ticks[-1]}
        events = {e.name: e for e in hz.event_set(universe).events}
        tracked = final_names & set(events)
        assert tracked, "growth series tracks no season fire"
        for e in ticks[-1]:
            if e.name in events:
                assert e.acres == pytest.approx(events[e.name].acres)
