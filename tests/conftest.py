"""Shared fixtures.

The synthetic universe is expensive enough to matter at test time, so a
single session-scoped small universe (20k transceivers, 0.1-degree WHP
grid) is shared by every test that can tolerate shared state; tests that
mutate or need different parameters build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticUS, small_universe


@pytest.fixture(scope="session")
def universe() -> SyntheticUS:
    """The shared small synthetic US (treat as read-only)."""
    return small_universe()


@pytest.fixture(scope="session")
def whp(universe):
    return universe.whp


@pytest.fixture(scope="session")
def cells(universe):
    return universe.cells


@pytest.fixture(scope="session")
def counties(universe):
    return universe.counties


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
