"""Tests for the incident engine: growth driver, state, CLI stage."""

from __future__ import annotations

import io
import json

import pytest

from repro.data.wildfires import (
    interpolated_perimeter,
    scripted_2019_fires,
    scripted_2019_growth,
)
from repro.runtime import STATS, shutdown_pools
from repro.stream import (
    IncidentState,
    TickEvent,
    run_scripted_incident,
    write_events_jsonl,
)

from ..runtime.test_differential import random_universe


@pytest.fixture(autouse=True)
def _pools():
    yield
    shutdown_pools()


class TestInterpolatedPerimeter:
    def test_fraction_validation(self):
        fire = scripted_2019_fires()[0]
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                interpolated_perimeter(fire, -120.0, 38.0, bad)

    def test_full_fraction_returns_original(self):
        fire = scripted_2019_fires()[0]
        assert interpolated_perimeter(fire, -120.0, 38.0, 1.0) is fire

    def test_area_scales_quadratically(self):
        fire = scripted_2019_fires()[0]
        half = interpolated_perimeter(fire, -122.0, 38.0, 0.5)
        assert half.acres == pytest.approx(fire.acres * 0.25)
        assert half.name == fire.name

    def test_scaled_ring_contained_in_original(self):
        fire = scripted_2019_fires()[0]
        c = fire.polygon.centroid()
        small = interpolated_perimeter(fire, c.lon, c.lat, 0.5)
        ring = small.polygon.exterior
        assert fire.polygon.contains_many(ring[:, 0],
                                          ring[:, 1]).all()


class TestScriptedGrowth:
    def test_needs_two_ticks(self):
        with pytest.raises(ValueError):
            scripted_2019_growth(1)

    def test_final_tick_bit_identical_to_static(self):
        growth = scripted_2019_growth(8)
        static = scripted_2019_fires()
        assert len(growth[-1]) == len(static)
        for grown, fire in zip(growth[-1], static):
            assert grown.name == fire.name
            assert grown.polygon.exterior.tobytes() \
                == fire.polygon.exterior.tobytes()
            assert grown.acres == fire.acres

    @pytest.mark.parametrize("n_ticks", [2, 5, 8, 12])
    def test_final_tick_stable_across_tick_counts(self, n_ticks):
        final = scripted_2019_growth(n_ticks)[-1]
        static = scripted_2019_fires()
        for grown, fire in zip(final, static):
            assert grown.polygon.exterior.tobytes() \
                == fire.polygon.exterior.tobytes()

    def test_ignition_schedule_follows_start_doy(self):
        """Fires appear in start-day order along the tick axis."""
        growth = scripted_2019_growth(8)
        first_tick = {}
        for t, snap in enumerate(growth):
            for f in snap:
                first_tick.setdefault(f.name, t)
        static = {f.name: f for f in scripted_2019_fires()}
        names = sorted(first_tick, key=first_tick.get)
        doys = [static[n].start_doy for n in names]
        assert doys == sorted(doys)
        # Saddle Ridge (doy 283) burns from tick 0.
        assert first_tick["Saddle Ridge"] == 0

    def test_growth_is_monotone(self):
        """Every snapshot's ring lies inside the next snapshot."""
        growth = scripted_2019_growth(6)
        prev = {}
        for snap in growth:
            for f in snap:
                if f.name in prev:
                    ring = prev[f.name].polygon.exterior
                    if ring.tobytes() \
                            != f.polygon.exterior.tobytes():
                        assert f.polygon.contains_many(
                            ring[:, 0], ring[:, 1]).all(), f.name
                prev[f.name] = f

    def test_acreage_is_nondecreasing(self):
        growth = scripted_2019_growth(8)
        acres = {}
        for snap in growth:
            for f in snap:
                assert f.acres >= acres.get(f.name, 0.0)
                acres[f.name] = f.acres


class TestIncidentState:
    def _fires(self, seed=0, k=3):
        from ..runtime.test_differential import random_fires
        return random_fires(seed, k)

    def test_tick_event_accounting(self):
        cells = random_universe(1, 3_000)
        fires = self._fires(1, 3)
        state = IncidentState(cells, year=2018)
        event = state.ingest(fires)
        assert isinstance(event, TickEvent)
        assert event.tick == 0
        assert event.ignited == tuple(f.name for f in fires)
        assert event.changed == ()
        assert event.cum_impacted \
            == int(state.result.in_perimeter_mask.sum())
        assert event.new_impacted == event.cum_impacted
        assert event.per_fire_new == state.result.per_fire_counts

    def test_unchanged_snapshot_is_noop(self):
        cells = random_universe(2, 2_000)
        fires = self._fires(2, 3)
        state = IncidentState(cells, year=2018)
        state.ingest(fires)
        result_before = state.result
        before = STATS.snapshot()
        event = state.ingest(list(fires))       # same rings, new list
        counters = STATS.delta_since(before)["counters"]
        assert state.result is result_before    # update_overlay no-op
        assert event.changed == () and event.ignited == ()
        assert event.new_impacted == 0
        assert event.new_population == 0.0
        assert counters.get("index.polygon_queries", 0) == 0

    def test_cumulative_fields_accumulate(self):
        cells = random_universe(3, 3_000)
        from ..runtime.test_differential import growth_pair
        prev_fires, grown = growth_pair(3, 3)
        state = IncidentState(cells, year=2018)
        first = state.ingest(prev_fires)
        second = state.ingest(grown)
        assert second.tick == 1
        assert second.ignited == ()
        assert second.changed == tuple(f.name for f in grown)
        assert second.cum_impacted \
            == first.cum_impacted + second.new_impacted
        assert second.new_impacted >= 0
        assert second.dirty_buckets > 0

    def test_events_carry_no_wall_times(self):
        """TickEvent is a pure function of the snapshots."""
        fields = set(TickEvent.__dataclass_fields__)
        assert not any("time" in f or "seconds" in f for f in fields)


class TestScriptedIncident:
    def test_final_state_matches_batch_season(self, universe):
        from repro.core.overlay import overlay_fires

        res = run_scripted_incident(universe, n_ticks=4)
        season = universe.fire_season(2019)
        batch = overlay_fires(universe.cells, season.fires, year=2019,
                              use_cache=False)
        assert res.final.in_perimeter_mask.tobytes() \
            == batch.in_perimeter_mask.tobytes()
        assert res.final.per_fire_counts == batch.per_fire_counts
        assert res.final.n_fires == batch.n_fires
        assert len(res.events) == 4
        assert res.events[-1].cum_impacted == batch.n_in_perimeter

    def test_population_exposure_is_monotone(self, universe):
        res = run_scripted_incident(universe, n_ticks=4)
        cums = [e.cum_population for e in res.events]
        assert all(b >= a for a, b in zip(cums, cums[1:]))
        assert cums[-1] > 0


class TestJsonlExport:
    def _events(self):
        cells = random_universe(4, 1_500)
        from ..runtime.test_differential import growth_pair
        prev_fires, grown = growth_pair(4, 2)
        state = IncidentState(cells, year=2018)
        state.ingest(prev_fires)
        state.ingest(grown)
        return state.events

    def test_roundtrip_and_schema(self, tmp_path):
        events = self._events()
        path = tmp_path / "events.jsonl"
        write_events_jsonl(events, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(events)
        for line, event in zip(lines, events):
            doc = json.loads(line)
            assert doc["schema"] == "stream-event/1"
            assert doc["tick"] == event.tick
            assert doc["cum_impacted"] == event.cum_impacted

    def test_export_is_byte_deterministic(self, tmp_path):
        events = self._events()
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_events_jsonl(events, a)
        write_events_jsonl(events, b)
        assert a.read_bytes() == b.read_bytes()


class TestStreamCli:
    def _run(self, *argv: str) -> str:
        from repro.cli import main
        buffer = io.StringIO()
        code = main(["-n", "20000", "--whp-res", "0.1", *argv],
                    stream=buffer)
        assert code == 0
        return buffer.getvalue()

    def test_stream_stage_renders_ticks(self):
        out = self._run("stream", "--ticks", "3")
        assert "incident stream" in out
        assert "Dirty" in out and "Tick" in out

    def test_stream_stage_exports_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        out = self._run("stream", "--ticks", "3", "--jsonl", str(path))
        assert "incident stream" in out
        docs = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert len(docs) == 3
        assert [d["tick"] for d in docs] == [0, 1, 2]
        cums = [d["cum_impacted"] for d in docs]
        assert cums == sorted(cums)
