"""Differential suite: folded delta ticks == batch == bruteforce.

The incremental engine's contract is *exactness*: after any monotone
growth sequence, folding :func:`update_overlay` over the ticks yields
the same bits a from-scratch :func:`overlay_fires` (and the
index-free bruteforce) produces on the final perimeters — per tick,
across seeds × worker counts, on every dispatch path (serial, pool,
shared-memory), and at every scale stratum the pipeline runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.overlay import (
    FireDelta,
    empty_overlay,
    overlay_fires,
    overlay_fires_bruteforce,
    update_overlay,
)
from repro.data.wildfires import interpolated_perimeter
from repro.runtime import config as runtime_config
from repro.runtime import dispatch as runtime_dispatch
from repro.runtime import shutdown_pools

from ..runtime.test_differential import (
    assert_identical,
    random_fires,
    random_universe,
)


@pytest.fixture(autouse=True)
def _small_parallel_floor(monkeypatch):
    """Drop every dispatch floor so tiny ticks exercise the pool."""
    monkeypatch.setattr(runtime_config, "MIN_PARALLEL_POINTS", 64)
    monkeypatch.setattr(runtime_dispatch, "OVERLAY_WORK_FACTOR", 1)
    monkeypatch.setattr(runtime_dispatch, "DELTA_WORK_FACTOR", 1)
    monkeypatch.setattr(runtime_dispatch, "CPU_COUNT_OVERRIDE", 8)
    yield
    shutdown_pools()


def growth_snapshots(seed: int, k: int, n_ticks: int = 4):
    """Monotone growth snapshots with staggered ignitions.

    Fire ``i`` ignites at tick ``i % n_ticks`` and grows linearly to
    its full perimeter by the final tick (scaled about its generation
    center, so containment is exact).
    """
    rng = np.random.default_rng(seed + 1000)
    fires, centers = [], []
    for i in range(k):
        lon = rng.uniform(-111.0, -105.0)
        lat = rng.uniform(34.0, 40.0)
        acres = float(rng.uniform(50_000, 2_000_000))
        from repro.data.wildfires import FirePerimeter, star_polygon
        poly = star_polygon(lon, lat, acres, rng)
        fires.append(FirePerimeter(
            name=f"Fire-{seed}-{i}", year=2018, start_doy=150 + i,
            end_doy=160 + i, acres=acres, polygon=poly))
        centers.append((lon, lat))

    snapshots = []
    for t in range(n_ticks):
        snap = []
        for i, (fire, (lon, lat)) in enumerate(zip(fires, centers)):
            ignition = i % n_ticks
            if t < ignition:
                continue
            if ignition == n_ticks - 1 or t == n_ticks - 1:
                frac = 1.0
            else:
                frac = 0.3 + 0.7 * (t - ignition) \
                    / (n_ticks - 1 - ignition)
            snap.append(interpolated_perimeter(fire, lon, lat, frac))
        snapshots.append(snap)
    return snapshots


def fold(cells, snapshots, workers):
    """Fold the snapshots through update_overlay, tick by tick."""
    state = empty_overlay(cells, 2018, keep_hits=True)
    tokens = {}
    per_tick = []
    for snap in snapshots:
        deltas = []
        for fire in snap:
            token = fire.polygon.exterior.tobytes()
            if tokens.get(fire.name) != token:
                deltas.append(FireDelta(fire=fire))
                tokens[fire.name] = token
        state = update_overlay(cells, state, deltas, workers=workers)
        per_tick.append(state)
    return per_tick


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("workers", [1, 4])
def test_fold_matches_batch_every_tick(seed, workers):
    """Each folded tick equals the batch join on that tick's fires."""
    cells = random_universe(seed, 3_000)
    snapshots = growth_snapshots(seed, 5, n_ticks=4)
    per_tick = fold(cells, snapshots, workers)
    for snap, state in zip(snapshots, per_tick):
        batch = overlay_fires(cells, snap, year=2018, workers=1,
                              use_cache=False)
        assert state.in_perimeter_mask.tobytes() \
            == batch.in_perimeter_mask.tobytes()
        assert state.per_fire_counts == batch.per_fire_counts
        assert state.n_fires == batch.n_fires


@pytest.mark.parametrize("seed", [0, 3])
@pytest.mark.parametrize("workers", [1, 4])
def test_fold_matches_bruteforce_final(seed, workers):
    cells = random_universe(seed, 2_000)
    snapshots = growth_snapshots(seed, 4, n_ticks=3)
    final = fold(cells, snapshots, workers)[-1]
    reference = overlay_fires_bruteforce(cells, snapshots[-1],
                                         year=2018)
    assert_identical(final, reference)


@pytest.mark.parametrize("workers", [1, 4])
def test_fold_per_fire_hits_match_batch(workers):
    """The answered footprints themselves are bit-identical."""
    cells = random_universe(5, 3_000)
    snapshots = growth_snapshots(5, 4, n_ticks=3)
    final = fold(cells, snapshots, workers)[-1]
    batch = overlay_fires(cells, snapshots[-1], year=2018, workers=1,
                          use_cache=False, keep_hits=True)
    assert set(final.per_fire_hits) == set(batch.per_fire_hits)
    for name, hits in batch.per_fire_hits.items():
        got = final.per_fire_hits[name]
        assert got.dtype == hits.dtype
        assert np.array_equal(got, hits)


def test_fold_through_shared_memory(monkeypatch):
    """Delta ticks shipped via the shm pool still match serial."""
    monkeypatch.setattr(runtime_dispatch, "SHM_MIN_POINTS", 128)
    cells = random_universe(8, 4_000)
    snapshots = growth_snapshots(8, 6, n_ticks=3)
    shutdown_pools()                    # force shm-initialized workers
    parallel = fold(cells, snapshots, workers=4)[-1]
    shutdown_pools()
    serial = fold(cells, snapshots, workers=1)[-1]
    assert_identical(parallel, serial)


@pytest.mark.parametrize("workers", [1, 4])
def test_scripted_incident_matches_batch_season(universe, workers):
    """Seed stratum: the scripted 2019 replay == the season join."""
    from repro.stream import run_scripted_incident

    res = run_scripted_incident(universe, n_ticks=3, workers=workers)
    season = universe.fire_season(2019)
    batch = overlay_fires(universe.cells, season.fires, year=2019,
                          workers=1, use_cache=False)
    assert res.final.in_perimeter_mask.tobytes() \
        == batch.in_perimeter_mask.tobytes()
    assert res.final.per_fire_counts == batch.per_fire_counts
    assert res.final.n_fires == batch.n_fires


@pytest.fixture(scope="module")
def paper_sampled_cells():
    """Deterministic 1% stratified draw of the paper universe."""
    from repro.data.universe import universe_for_scale

    return universe_for_scale("paper").cells.stratified_sample(0.01)


def test_fold_matches_batch_paper_sampled(paper_sampled_cells):
    """Paper-sampled stratum, serial and pooled folds."""
    cells = paper_sampled_cells
    snapshots = growth_snapshots(7, 6, n_ticks=3)
    serial = fold(cells, snapshots, workers=1)[-1]
    shutdown_pools()
    parallel = fold(cells, snapshots, workers=4)[-1]
    batch = overlay_fires(cells, snapshots[-1], year=2018, workers=1,
                          use_cache=False)
    assert serial.in_perimeter_mask.tobytes() \
        == batch.in_perimeter_mask.tobytes()
    assert parallel.in_perimeter_mask.tobytes() \
        == batch.in_perimeter_mask.tobytes()
    assert serial.per_fire_counts == batch.per_fire_counts \
        == parallel.per_fire_counts


def test_unknown_fire_name_treated_as_ignition():
    """A delta for a name absent from prev runs a full query."""
    cells = random_universe(10, 1_500)
    fires = random_fires(10, 3)
    prev = overlay_fires(cells, fires[:2], year=2018, workers=1,
                         use_cache=False, keep_hits=True)
    updated = update_overlay(cells, prev,
                             [FireDelta(fire=fires[2])], workers=1)
    batch = overlay_fires(cells, fires, year=2018, workers=1,
                          use_cache=False)
    assert updated.in_perimeter_mask.tobytes() \
        == batch.in_perimeter_mask.tobytes()
    assert updated.per_fire_counts == batch.per_fire_counts
    assert updated.n_fires == 3


def test_empty_delta_list_returns_prev_object():
    cells = random_universe(11, 500)
    fires = random_fires(11, 2)
    prev = overlay_fires(cells, fires, year=2018, workers=1,
                         use_cache=False, keep_hits=True)
    assert update_overlay(cells, prev, [], workers=4) is prev
