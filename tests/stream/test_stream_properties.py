"""Property tests: random monotone growth never breaks exactness.

Hypothesis drives randomized ignition schedules and growth ladders;
for every generated incident, folding :func:`update_overlay` over the
ticks must equal the batch :func:`overlay_fires` on the final
perimeters — and, on these small universes, the index-free bruteforce
oracle too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.overlay import (
    FireDelta,
    empty_overlay,
    overlay_fires,
    overlay_fires_bruteforce,
    update_overlay,
)
from repro.data.wildfires import (
    FirePerimeter,
    interpolated_perimeter,
    star_polygon,
)
from repro.runtime import config as runtime_config
from repro.runtime import dispatch as runtime_dispatch
from repro.runtime import shutdown_pools

from ..runtime.test_differential import assert_identical, random_universe


@pytest.fixture(autouse=True, scope="module")
def _small_parallel_floor():
    saved = (runtime_config.MIN_PARALLEL_POINTS,
             runtime_dispatch.DELTA_WORK_FACTOR,
             runtime_dispatch.CPU_COUNT_OVERRIDE)
    runtime_config.MIN_PARALLEL_POINTS = 64
    runtime_dispatch.DELTA_WORK_FACTOR = 1
    runtime_dispatch.CPU_COUNT_OVERRIDE = 8
    yield
    (runtime_config.MIN_PARALLEL_POINTS,
     runtime_dispatch.DELTA_WORK_FACTOR,
     runtime_dispatch.CPU_COUNT_OVERRIDE) = saved
    shutdown_pools()


incidents = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**16),
    "n_fires": st.integers(min_value=1, max_value=4),
    "n_ticks": st.integers(min_value=2, max_value=5),
    "ignitions": st.lists(st.integers(min_value=0, max_value=4),
                          min_size=4, max_size=4),
})


def build_incident(spec):
    """Snapshots of a randomized incident from a hypothesis spec."""
    rng = np.random.default_rng(spec["seed"])
    n_ticks = spec["n_ticks"]
    fires, centers, ignitions = [], [], []
    for i in range(spec["n_fires"]):
        lon = rng.uniform(-111.0, -105.0)
        lat = rng.uniform(34.0, 40.0)
        acres = float(rng.uniform(100_000, 2_000_000))
        poly = star_polygon(lon, lat, acres, rng)
        fires.append(FirePerimeter(
            name=f"H-{i}", year=2018, start_doy=150, end_doy=160,
            acres=acres, polygon=poly))
        centers.append((lon, lat))
        ignitions.append(spec["ignitions"][i] % n_ticks)

    snapshots = []
    for t in range(n_ticks):
        snap = []
        for fire, (lon, lat), ignition in zip(fires, centers,
                                              ignitions):
            if t < ignition:
                continue
            if ignition == n_ticks - 1 or t == n_ticks - 1:
                frac = 1.0
            else:
                frac = 0.25 + 0.75 * (t - ignition) \
                    / (n_ticks - 1 - ignition)
            snap.append(interpolated_perimeter(fire, lon, lat, frac))
        snapshots.append(snap)
    return snapshots


def fold(cells, snapshots, workers):
    state = empty_overlay(cells, 2018, keep_hits=True)
    tokens = {}
    for snap in snapshots:
        deltas = []
        for fire in snap:
            token = fire.polygon.exterior.tobytes()
            if tokens.get(fire.name) != token:
                deltas.append(FireDelta(fire=fire))
                tokens[fire.name] = token
        state = update_overlay(cells, state, deltas, workers=workers)
    return state


@pytest.mark.parametrize("workers", [1, 4])
@given(spec=incidents)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_fold_equals_batch_equals_bruteforce(spec, workers):
    cells = random_universe(spec["seed"] % 7, 1_200)
    snapshots = build_incident(spec)
    folded = fold(cells, snapshots, workers)
    batch = overlay_fires(cells, snapshots[-1], year=2018, workers=1,
                          use_cache=False)
    reference = overlay_fires_bruteforce(cells, snapshots[-1],
                                         year=2018)
    assert folded.in_perimeter_mask.tobytes() \
        == batch.in_perimeter_mask.tobytes()
    assert folded.per_fire_counts == batch.per_fire_counts
    assert folded.n_fires == batch.n_fires
    assert_identical(batch, reference)


@given(spec=incidents)
@settings(max_examples=10, deadline=None)
def test_delta_query_matches_batch_query(spec):
    """query_polygon_delta == query_polygon under any growth ladder."""
    cells = random_universe(spec["seed"] % 5, 1_500)
    index = cells.index()
    snapshots = build_incident(spec)
    prev_hits = {}
    for snap in snapshots:
        for fire in snap:
            want = index.query_polygon(fire.polygon)
            prev = prev_hits.get(fire.name)
            if prev is None:
                got = want
            else:
                got = index.query_polygon_delta(fire.polygon, prev)
            assert np.array_equal(got, want)
            prev_hits[fire.name] = got
