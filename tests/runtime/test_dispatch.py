"""Tests for the adaptive serial/parallel dispatcher.

The dispatcher's contract is one-sided: parallel must never be chosen
where it would lose.  These tests pin the serial decisions below every
gate (work floor, crossover, fire count, core budget) and the resolved
worker counts above them — plus an end-to-end regression proving that a
sub-crossover overlay with ``workers=4`` never touches the pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import config as runtime_config
from repro.runtime import dispatch
from repro.runtime.stats import STATS


@pytest.fixture(autouse=True)
def _stable_knobs(monkeypatch):
    """Pin the floor and pretend the machine has 8 cores."""
    monkeypatch.setattr(runtime_config, "MIN_PARALLEL_POINTS", 1_000)
    monkeypatch.setattr(dispatch, "CPU_COUNT_OVERRIDE", 8)


class TestCpuBudget:
    def test_override_wins(self, monkeypatch):
        monkeypatch.setattr(dispatch, "CPU_COUNT_OVERRIDE", 3)
        assert dispatch.cpu_budget() == 3

    def test_override_floor_is_one(self, monkeypatch):
        monkeypatch.setattr(dispatch, "CPU_COUNT_OVERRIDE", 0)
        assert dispatch.cpu_budget() == 1

    def test_no_override_uses_machine(self, monkeypatch):
        monkeypatch.setattr(dispatch, "CPU_COUNT_OVERRIDE", None)
        assert dispatch.cpu_budget() >= 1


class TestOverlayWorkers:
    def test_serial_when_one_requested(self):
        assert dispatch.overlay_workers(1, 10**9, 10**3) == 1

    def test_serial_below_point_floor(self):
        assert dispatch.overlay_workers(4, 999, 10**6) == 1

    def test_serial_below_fire_floor(self):
        assert dispatch.overlay_workers(4, 10**9, 1) == 1

    def test_serial_below_crossover(self):
        floor = runtime_config.MIN_PARALLEL_POINTS
        work = floor * dispatch.OVERLAY_WORK_FACTOR
        n_points = 10 * floor
        n_fires = (work - 1) // n_points      # just under the crossover
        assert n_points * n_fires < work
        assert dispatch.overlay_workers(4, n_points, n_fires) == 1

    def test_parallel_at_crossover(self):
        floor = runtime_config.MIN_PARALLEL_POINTS
        work = floor * dispatch.OVERLAY_WORK_FACTOR
        n_points = 10 * floor
        n_fires = -(-work // n_points)        # just over the crossover
        assert dispatch.overlay_workers(4, n_points, n_fires) == 4

    def test_never_more_than_cpu_budget(self, monkeypatch):
        monkeypatch.setattr(dispatch, "CPU_COUNT_OVERRIDE", 2)
        assert dispatch.overlay_workers(16, 10**9, 10**4) == 2

    def test_never_more_than_fires(self):
        floor = runtime_config.MIN_PARALLEL_POINTS
        n_points = floor * dispatch.OVERLAY_WORK_FACTOR
        assert dispatch.overlay_workers(8, n_points, 3) == 3


class TestClassifyWorkers:
    def test_serial_when_one_requested(self):
        assert dispatch.classify_workers(1, 10**9, 4096) == 1

    def test_serial_below_point_floor(self):
        assert dispatch.classify_workers(4, 999, 64) == 1

    def test_serial_below_crossover(self):
        floor = runtime_config.MIN_PARALLEL_POINTS
        n_points = floor * dispatch.CLASSIFY_WORK_FACTOR - 1
        assert dispatch.classify_workers(4, n_points, 4096) == 1

    def test_parallel_at_crossover(self):
        floor = runtime_config.MIN_PARALLEL_POINTS
        n_points = floor * dispatch.CLASSIFY_WORK_FACTOR
        assert dispatch.classify_workers(4, n_points, 4096) == 4

    def test_never_more_than_chunks(self):
        floor = runtime_config.MIN_PARALLEL_POINTS
        n_points = floor * dispatch.CLASSIFY_WORK_FACTOR
        assert dispatch.classify_workers(8, n_points, n_points) == 1

    def test_never_more_than_cpu_budget(self, monkeypatch):
        monkeypatch.setattr(dispatch, "CPU_COUNT_OVERRIDE", 2)
        floor = runtime_config.MIN_PARALLEL_POINTS
        n_points = floor * dispatch.CLASSIFY_WORK_FACTOR
        assert dispatch.classify_workers(8, n_points, 4096) == 2


class TestDispatchEndToEnd:
    def test_small_overlay_never_touches_pool(self):
        """workers=4 on a sub-crossover join stays strictly serial."""
        from repro.core.overlay import overlay_fires
        from repro.data.cells import CellUniverse
        from repro.data.wildfires import FirePerimeter, star_polygon

        rng = np.random.default_rng(0)
        n = 2_000
        cells = CellUniverse(
            lons=rng.uniform(-112.0, -104.0, n),
            lats=rng.uniform(33.0, 41.0, n),
            site_ids=np.arange(n, dtype=np.int64),
            mcc=np.full(n, 310, dtype=np.int32),
            mnc=np.zeros(n, dtype=np.int32),
            provider_group=np.zeros(n, dtype=np.int8),
            radio=np.zeros(n, dtype=np.int8),
        )
        fires = []
        for i in range(4):
            poly = star_polygon(rng.uniform(-111, -105),
                                rng.uniform(34, 40), 200_000.0, rng)
            fires.append(FirePerimeter(
                name=f"F{i}", year=2018, start_doy=150, end_doy=160,
                acres=200_000.0, polygon=poly))

        before = STATS.snapshot()
        overlay_fires(cells, fires, year=2018, workers=4,
                      use_cache=False)
        delta = STATS.delta_since(before)["counters"]
        assert delta.get("parallel.pool_runs", 0) == 0
        assert delta.get("pool.created", 0) == 0
        assert delta.get("parallel.fallbacks", 0) == 0
