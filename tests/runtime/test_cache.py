"""Tests for the content-addressed result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    ResultCache,
    RuntimeConfig,
    array_token,
    cache_key,
    configure,
    get_cache,
    get_config,
    set_cache,
    set_config,
)
from repro.runtime.stats import STATS


@pytest.fixture(autouse=True)
def _isolate_global_cache():
    """Never leak a test cache (or config) into other tests."""
    previous = get_config()
    yield
    set_config(previous)
    set_cache(None)


class TestKeys:
    def test_deterministic(self):
        a = np.arange(10, dtype=float)
        assert cache_key(b"x", a, 3, "s") == cache_key(b"x", a, 3, "s")

    def test_sensitive_to_array_content(self):
        a = np.arange(10, dtype=float)
        b = a.copy()
        b[3] += 1e-9
        assert cache_key(a) != cache_key(b)

    def test_sensitive_to_dtype_and_shape(self):
        a = np.zeros(4, dtype=np.float64)
        assert cache_key(a) != cache_key(a.astype(np.float32))
        assert cache_key(a) != cache_key(a.reshape(2, 2))

    def test_sensitive_to_scalar_params(self):
        base = (b"overlay", np.arange(5))
        assert cache_key(*base, 2018) != cache_key(*base, 2019)
        assert cache_key(*base, 0.1) != cache_key(*base, 0.05)

    def test_nested_structure_is_flattened_unambiguously(self):
        assert cache_key((1, 2), 3) != cache_key(1, (2, 3))

    def test_array_token_differs_from_bytes_of_other_dtype(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([1, 2, 3], dtype=np.int32)
        assert array_token(a) != array_token(b)


class TestResultCache:
    def test_memory_round_trip(self):
        cache = ResultCache(max_entries=8)
        payload = {"mask": np.array([True, False]),
                   "counts": np.array([4], dtype=np.int64)}
        cache.put("k", payload)
        got = cache.get("k")
        assert got is not None
        assert (got["mask"] == payload["mask"]).all()
        assert (got["counts"] == payload["counts"]).all()

    def test_miss_returns_none_and_counts(self):
        cache = ResultCache(max_entries=8)
        before = STATS.get("cache.misses")
        assert cache.get("absent") is None
        assert STATS.get("cache.misses") == before + 1

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        for name in ("a", "b", "c"):
            cache.put(name, {"x": np.array([1])})
        assert cache.get("a") is None       # evicted, oldest
        assert cache.get("b") is not None
        assert cache.get("c") is not None

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"x": np.array([1])})
        cache.put("b", {"x": np.array([2])})
        cache.get("a")                       # 'a' is now most recent
        cache.put("c", {"x": np.array([3])})
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_disk_round_trip_across_instances(self, tmp_path):
        payload = {"mask": np.arange(32) % 3 == 0,
                   "names": np.array(["Kincade", "Tick"], dtype=np.str_)}
        ResultCache(max_entries=4, disk_dir=tmp_path).put("k", payload)
        fresh = ResultCache(max_entries=4, disk_dir=tmp_path)
        got = fresh.get("k")
        assert got is not None
        assert (got["mask"] == payload["mask"]).all()
        assert list(got["names"]) == ["Kincade", "Tick"]

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        (tmp_path / "bad.npz").write_bytes(b"not a zipfile")
        cache = ResultCache(max_entries=4, disk_dir=tmp_path)
        assert cache.get("bad") is None

    def test_clear_disk(self, tmp_path):
        cache = ResultCache(max_entries=4, disk_dir=tmp_path)
        cache.put("k", {"x": np.array([1])})
        assert list(tmp_path.glob("*.npz"))
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.npz"))
        assert cache.get("k") is None

    def test_zero_entries_disables_memory_tier(self):
        cache = ResultCache(max_entries=0)
        cache.put("k", {"x": np.array([1])})
        assert len(cache) == 0


class TestGlobalWiring:
    def test_get_cache_built_from_config(self, tmp_path):
        configure(cache_dir=tmp_path, memory_cache_entries=5)
        set_cache(None)
        cache = get_cache()
        assert cache.disk_dir == tmp_path
        assert cache.max_entries == 5

    def test_config_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        monkeypatch.setenv("REPRO_CHUNK", "1000")
        monkeypatch.setenv("REPRO_CACHE", "off")
        cfg = RuntimeConfig.from_env()
        assert cfg.workers == 6
        assert cfg.chunk_size == 1000
        assert cfg.cache_enabled is False

    def test_config_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert RuntimeConfig.from_env().workers == 1

    def test_effective_workers_gates_small_inputs(self):
        cfg = RuntimeConfig(workers=8, chunk_size=1000)
        assert cfg.effective_workers(100) == 1
        assert cfg.effective_workers(1_000_000) == 8
        # never more workers than chunks
        assert cfg.effective_workers(10_000) == 8 or \
            cfg.effective_workers(10_000) == 10  # 10 chunks cap
        assert RuntimeConfig(workers=1).effective_workers(10**7) == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(chunk_size=0)
        with pytest.raises(ValueError):
            RuntimeConfig(memory_cache_entries=-1)


class TestOverlayCacheSemantics:
    def test_disabled_cache_never_stores(self, universe):
        from repro.core.overlay import overlay_fires

        set_cache(ResultCache(max_entries=8))
        fires = universe.fire_season(2018).fires
        overlay_fires(universe.cells, fires, year=2018, workers=1,
                      use_cache=False)
        assert len(get_cache()) == 0

    def test_key_distinguishes_universes(self):
        from repro.core.overlay import fires_token
        from tests.runtime.test_differential import (
            random_fires,
            random_universe,
        )

        fires = random_fires(0, 2)
        k1 = cache_key(b"overlay_fires/v1",
                       random_universe(0, 500).content_token(),
                       fires_token(fires), 2018)
        k2 = cache_key(b"overlay_fires/v1",
                       random_universe(1, 500).content_token(),
                       fires_token(fires), 2018)
        k3 = cache_key(b"overlay_fires/v1",
                       random_universe(0, 501).content_token(),
                       fires_token(fires), 2018)
        assert len({k1, k2, k3}) == 3

    def test_fires_token_memoized_per_fire(self):
        from repro.core import overlay
        from tests.runtime.test_differential import random_fires

        fires = random_fires(3, 3)
        t1 = overlay.fires_token(fires)
        # every fire's digest is now memoized on the fire object
        assert all(f in overlay._FIRE_TOKENS for f in fires)
        t2 = overlay.fires_token(fires)
        assert t1 == t2
        assert overlay.fires_token(fires[:-1]) != t1

    def test_universe_and_whp_tokens_memoized(self, universe):
        cells = universe.cells
        assert cells.content_token() is cells.content_token()
        assert universe.whp.content_token() is universe.whp.content_token()
