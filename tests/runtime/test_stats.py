"""Tests for perf instrumentation and its reports."""

from __future__ import annotations

import json

import numpy as np

from repro.core.report import render_stats
from repro.runtime import PerfRegistry, STATS, chunk_spans, parallel_map


class TestPerfRegistry:
    def test_timer_accumulates_and_counts_calls(self):
        reg = PerfRegistry()
        for _ in range(3):
            with reg.timer("stage"):
                pass
        snap = reg.snapshot()
        assert snap["timer_calls"]["stage"] == 3
        assert snap["timers"]["stage"] >= 0.0

    def test_counter_accumulates(self):
        reg = PerfRegistry()
        reg.count("hits", 5)
        reg.count("hits")
        assert reg.get("hits") == 6

    def test_merge_folds_worker_snapshot(self):
        parent = PerfRegistry()
        parent.count("index.candidates", 10)
        parent.add_time("overlay", 1.0)
        worker = PerfRegistry()
        worker.count("index.candidates", 7)
        worker.add_time("overlay", 0.5, calls=2)
        parent.merge(worker.snapshot())
        assert parent.get("index.candidates") == 17
        assert abs(parent.seconds("overlay") - 1.5) < 1e-9

    def test_delta_since(self):
        reg = PerfRegistry()
        reg.count("a", 1)
        before = reg.snapshot()
        reg.count("a", 4)
        reg.count("b", 2)
        delta = reg.delta_since(before)
        assert delta["counters"] == {"a": 4, "b": 2}

    def test_delta_since_keeps_zero_time_stage_with_calls(self):
        """A stage that ran but accumulated exactly 0.0 extra seconds
        must still appear in the delta — its call count moved."""
        reg = PerfRegistry()
        reg.add_time("fast_stage", 0.125, calls=1)
        before = reg.snapshot()
        reg.add_time("fast_stage", 0.0, calls=3)   # e.g. coarse clock
        delta = reg.delta_since(before)
        assert delta["timers"] == {"fast_stage": 0.0}
        assert delta["timer_calls"] == {"fast_stage": 3}

    def test_delta_since_drops_untouched_stages(self):
        reg = PerfRegistry()
        reg.add_time("idle", 1.0)
        before = reg.snapshot()
        reg.add_time("busy", 0.5)
        delta = reg.delta_since(before)
        assert "idle" not in delta["timers"]
        assert delta["timer_calls"] == {"busy": 1}

    def test_reset(self):
        reg = PerfRegistry()
        reg.count("x")
        with reg.timer("t"):
            pass
        reg.reset()
        assert reg.snapshot() == {"timers": {}, "timer_calls": {},
                                  "counters": {}}

    def test_snapshot_is_json_serializable(self):
        reg = PerfRegistry()
        reg.count("x", 3)
        with reg.timer("t"):
            pass
        json.dumps(reg.snapshot())

    def test_snapshot_key_order_ignores_insertion_order(self):
        """Snapshots are key-sorted so serialized manifests compare
        bit-identical no matter which stage ran first."""
        a = PerfRegistry()
        a.add_time("zeta", 1.0)
        a.add_time("alpha", 2.0)
        a.count("z.n", 1)
        a.count("a.n", 2)
        b = PerfRegistry()
        b.count("a.n", 2)
        b.count("z.n", 1)
        b.add_time("alpha", 2.0)
        b.add_time("zeta", 1.0)
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())
        snap = a.snapshot()
        assert list(snap["timers"]) == ["alpha", "zeta"]
        assert list(snap["counters"]) == ["a.n", "z.n"]
        delta = a.delta_since(PerfRegistry().snapshot())
        assert list(delta["timers"]) == ["alpha", "zeta"]

    def test_render_mentions_stages_and_counters(self):
        reg = PerfRegistry()
        reg.add_time("overlay_fires", 0.25)
        reg.count("cache.hits", 3)
        reg.count("cache.misses", 1)
        reg.count("index.candidates", 100)
        reg.count("index.hits", 25)
        text = reg.render()
        assert "overlay_fires" in text
        assert "cache.hits" in text
        assert "75.0%" in text       # cache hit rate
        assert "25.0%" in text       # index selectivity

    def test_render_aligns_long_stage_names(self):
        """Stage names past the historic 32-char column keep the
        seconds column aligned (widths grow with the content)."""
        long_name = "artifact.season_overlay.year_2018_with_validation"
        assert len(long_name) > 32
        reg = PerfRegistry()
        reg.add_time(long_name, 1.5)
        reg.add_time("short", 0.25)
        lines = reg.render().splitlines()
        stage_lines = [ln for ln in lines if "call" in ln]
        # the seconds field ends at the same character on every row
        ends = {ln.index("s  (") for ln in stage_lines}
        assert len(ends) == 1
        assert min(len(ln) for ln in stage_lines) > len(long_name)

    def test_render_aligns_enormous_counters(self):
        """Counters past 999,999,999,999 widen the value column for
        every row instead of overflowing their own."""
        reg = PerfRegistry()
        reg.count("index.candidates", 7_500_000_000_000_123)
        reg.count("index.hits", 42)
        lines = reg.render().splitlines()
        big = next(ln for ln in lines if "candidates" in ln)
        small = next(ln for ln in lines if "index.hits" in ln)
        assert "7,500,000,000,000,123" in big
        # right-aligned in a shared column: both rows end together
        assert len(big) == len(small)
        sel = next(ln for ln in lines if "selectivity" in ln)
        assert len(sel) == len(big)


class TestRenderStats:
    def test_renders_tables(self):
        snap = {"timers": {"overlay_fires": 1.5, "classify_cells": 0.2},
                "timer_calls": {"overlay_fires": 19, "classify_cells": 3},
                "counters": {"cache.hits": 8, "cache.misses": 2,
                             "index.candidates": 1000, "index.hits": 10}}
        text = render_stats(snap)
        assert "overlay_fires" in text and "1.500" in text
        assert "cache hit rate" in text and "80.0%" in text
        assert "index selectivity" in text and "1.0%" in text

    def test_empty_snapshot(self):
        text = render_stats({})
        assert "none timed" in text


class TestInstrumentationHooks:
    def test_index_queries_count(self, universe):
        from repro.geo.geometry import BBox

        index = universe.cells.index()
        before = STATS.get("index.bbox_queries")
        index.query_bbox(BBox(-120.0, 33.0, -115.0, 38.0))
        assert STATS.get("index.bbox_queries") == before + 1

    def test_raster_sampling_counts(self, universe):
        n = 257
        raster = universe.whp.raster   # materialize outside the bracket
        before = STATS.get("raster.samples")
        raster.sample(np.full(n, -105.0), np.full(n, 39.0))
        assert STATS.get("raster.samples") == before + n

    def test_parallel_counters(self):
        spans = chunk_spans(100, 10)
        got = parallel_map(_double, spans, workers=2)
        assert got == [(a * 2, b * 2) for a, b in spans]
        # pool path or fallback, exactly one of the two counters moved
        assert STATS.get("parallel.pool_runs") + \
            STATS.get("parallel.fallbacks") >= 1


def _double(span):
    return (span[0] * 2, span[1] * 2)


class TestChunkSpans:
    def test_partition_covers_range_exactly(self):
        spans = chunk_spans(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_empty(self):
        assert chunk_spans(0, 5) == []

    def test_single_chunk(self):
        assert chunk_spans(4, 100) == [(0, 4)]
