"""Differential tests: parallel == serial == bruteforce.

The runtime's optimization contract is that the sharded/parallel and
cached paths are *bit-identical* to the serial bruteforce reference on
any input.  These tests enforce it on randomized universes across
seeds × worker counts × chunk sizes, including the degenerate inputs
(empty fire list, single-point universe) where chunking logic usually
breaks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.overlay import (
    classify_cells,
    overlay_fires,
    overlay_fires_bruteforce,
)
from repro.data.cells import CellUniverse
from repro.data.wildfires import FirePerimeter, star_polygon
from repro.runtime import config as runtime_config
from repro.runtime import dispatch as runtime_dispatch
from repro.runtime import shutdown_pools


@pytest.fixture(autouse=True)
def _small_parallel_floor(monkeypatch):
    """Let tiny test universes exercise the real parallel path.

    The adaptive dispatcher would (correctly) keep every one of these
    joins serial: the work floor, the work crossover, and the machine's
    core budget all gate the pool.  Patch all three down so the actual
    pool machinery runs; results must still be bit-identical.
    """
    monkeypatch.setattr(runtime_config, "MIN_PARALLEL_POINTS", 64)
    monkeypatch.setattr(runtime_dispatch, "OVERLAY_WORK_FACTOR", 1)
    monkeypatch.setattr(runtime_dispatch, "CLASSIFY_WORK_FACTOR", 1)
    monkeypatch.setattr(runtime_dispatch, "DELTA_WORK_FACTOR", 1)
    monkeypatch.setattr(runtime_dispatch, "CPU_COUNT_OVERRIDE", 8)
    yield
    shutdown_pools()


def random_universe(seed: int, n: int) -> CellUniverse:
    """A bare point universe clustered where the fires will be."""
    rng = np.random.default_rng(seed)
    lons = rng.uniform(-112.0, -104.0, n)
    lats = rng.uniform(33.0, 41.0, n)
    return CellUniverse(
        lons=lons, lats=lats,
        site_ids=np.arange(n, dtype=np.int64),
        mcc=np.full(n, 310, dtype=np.int32),
        mnc=np.zeros(n, dtype=np.int32),
        provider_group=np.zeros(n, dtype=np.int8),
        radio=np.zeros(n, dtype=np.int8),
    )


def random_fires(seed: int, k: int, year: int = 2018) -> list[FirePerimeter]:
    """Irregular star perimeters inside the universe's extent."""
    rng = np.random.default_rng(seed + 1000)
    fires = []
    for i in range(k):
        lon = rng.uniform(-111.0, -105.0)
        lat = rng.uniform(34.0, 40.0)
        acres = float(rng.uniform(50_000, 2_000_000))
        poly = star_polygon(lon, lat, acres, rng)
        fires.append(FirePerimeter(
            name=f"Fire-{seed}-{i}", year=year, start_doy=150 + i,
            end_doy=160 + i, acres=acres, polygon=poly))
    return fires


def assert_identical(a, b):
    """Masks and per-fire counts agree exactly."""
    assert a.in_perimeter_mask.dtype == b.in_perimeter_mask.dtype
    assert (a.in_perimeter_mask == b.in_perimeter_mask).all()
    assert a.per_fire_counts == b.per_fire_counts
    assert a.year == b.year
    assert a.n_fires == b.n_fires


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("chunk_size", [333, 1024, 10_000])
def test_overlay_matches_bruteforce(seed, workers, chunk_size):
    cells = random_universe(seed, 3_000)
    fires = random_fires(seed, 5)
    reference = overlay_fires_bruteforce(cells, fires, year=2018)
    assert reference.n_in_perimeter > 0, "fires must actually hit points"
    result = overlay_fires(cells, fires, year=2018, workers=workers,
                           chunk_size=chunk_size, use_cache=False)
    assert_identical(result, reference)


@pytest.mark.parametrize("workers", [1, 4])
def test_overlay_empty_fire_list(workers):
    cells = random_universe(7, 500)
    result = overlay_fires(cells, [], year=2001, workers=workers,
                           chunk_size=128, use_cache=False)
    reference = overlay_fires_bruteforce(cells, [], year=2001)
    assert_identical(result, reference)
    assert result.n_in_perimeter == 0
    assert result.per_fire_counts == {}
    assert result.year == 2001


@pytest.mark.parametrize("workers", [1, 4])
def test_overlay_single_point(workers):
    fires = random_fires(3, 4)
    # One point dead-center in the first fire, one far outside any.
    inside = fires[0].polygon.centroid()
    for lon, lat, expect in ((inside.lon, inside.lat, None),
                             (-80.0, 27.0, 0)):
        cells = random_universe(0, 1)
        cells.lons[:] = lon
        cells.lats[:] = lat
        reference = overlay_fires_bruteforce(cells, fires, year=2018)
        result = overlay_fires(cells, fires, year=2018, workers=workers,
                               chunk_size=64, use_cache=False)
        assert_identical(result, reference)
        if expect is not None:
            assert result.n_in_perimeter == expect


def test_overlay_chunk_boundaries_do_not_leak():
    """Chunk size 1 (every point its own work unit) still matches."""
    cells = random_universe(11, 150)
    fires = random_fires(11, 3)
    reference = overlay_fires_bruteforce(cells, fires, year=2018)
    result = overlay_fires(cells, fires, year=2018, workers=2,
                           chunk_size=1, use_cache=False)
    assert_identical(result, reference)


@pytest.mark.parametrize("seed", [0, 5])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_cached_result_identical(seed, workers, tmp_path):
    """Cold compute, memory hit, and disk hit all return the same bits."""
    from repro.runtime import ResultCache, set_cache

    cells = random_universe(seed, 2_000)
    fires = random_fires(seed, 4)
    reference = overlay_fires_bruteforce(cells, fires, year=2018)

    set_cache(ResultCache(max_entries=32, disk_dir=tmp_path))
    try:
        cold = overlay_fires(cells, fires, year=2018, workers=workers,
                             chunk_size=512, use_cache=True)
        warm = overlay_fires(cells, fires, year=2018, workers=workers,
                             chunk_size=512, use_cache=True)
        assert_identical(cold, reference)
        assert_identical(warm, reference)
        # Fresh memory tier forces the disk tier to serve the hit.
        set_cache(ResultCache(max_entries=32, disk_dir=tmp_path))
        disk = overlay_fires(cells, fires, year=2018, workers=workers,
                             chunk_size=512, use_cache=True)
        assert_identical(disk, reference)
    finally:
        set_cache(None)


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("chunk_size", [200, 4096])
def test_classify_matches_serial(universe, workers, chunk_size):
    """Sharded raster sampling equals the plain vectorized sample."""
    cells = universe.cells
    reference = universe.whp.classify(cells.lons, cells.lats)
    got = classify_cells(cells, universe.whp, workers=workers,
                         chunk_size=chunk_size, use_cache=False)
    assert got.dtype == reference.dtype
    assert (got == reference).all()


def test_overlay_on_real_universe_seasons(universe):
    """The synthetic-US fire seasons join identically on every path."""
    cells = universe.cells
    for year in (2018, 2019):
        fires = universe.fire_season(year).fires
        reference = overlay_fires_bruteforce(cells, fires, year=year)
        serial = overlay_fires(cells, fires, year=year, workers=1,
                               use_cache=False)
        parallel = overlay_fires(cells, fires, year=year, workers=4,
                                 chunk_size=4_096, use_cache=False)
        assert_identical(serial, reference)
        assert_identical(parallel, reference)


# ----------------------------------------------------------------------
# Counter parity: the worker -> parent stats merge must account for
# every index query, not just produce the right mask.  Each fire is
# evaluated by exactly one worker against the same full-universe index
# the serial loop queries, so the *totals* of every index counter are
# identical by construction -- if the merge drops or double-counts a
# worker delta, this is the test that notices.
# ----------------------------------------------------------------------

def _index_counters(before: dict) -> dict[str, int]:
    """Index-family counter deltas accumulated since ``before``."""
    from repro.runtime import STATS
    counters = STATS.delta_since(before)["counters"]
    return {k: v for k, v in counters.items() if k.startswith("index.")}


def test_overlay_counter_totals_serial_vs_parallel():
    from repro.runtime import STATS

    cells = random_universe(4, 3_000)
    fires = random_fires(4, 8)
    cells.index()                      # memoized build outside the brackets

    before = STATS.snapshot()
    serial = overlay_fires(cells, fires, year=2018, workers=1,
                           use_cache=False)
    serial_counters = _index_counters(before)

    shutdown_pools()                   # force fresh workers (fresh deltas)
    before = STATS.snapshot()
    parallel = overlay_fires(cells, fires, year=2018, workers=4,
                             use_cache=False)
    after = STATS.delta_since(before)["counters"]
    parallel_counters = {k: v for k, v in after.items()
                         if k.startswith("index.")}

    assert_identical(serial, parallel)
    assert serial_counters, "serial run must exercise the index"
    assert serial_counters == parallel_counters
    if after.get("parallel.fallbacks", 0) == 0:
        # the pool genuinely ran: the parity above covered the merge
        assert after.get("parallel.pool_runs", 0) >= 1


def growth_pair(seed: int, k: int):
    """(shrunken, grown) perimeter lists for the same k fires.

    Each shrunken fire is the grown one scaled about its generation
    center, so growth is monotone — the delta-query contract.
    """
    from repro.data.wildfires import interpolated_perimeter

    rng = np.random.default_rng(seed + 1000)
    prev, grown = [], []
    for i in range(k):
        lon = rng.uniform(-111.0, -105.0)
        lat = rng.uniform(34.0, 40.0)
        acres = float(rng.uniform(50_000, 2_000_000))
        poly = star_polygon(lon, lat, acres, rng)
        fire = FirePerimeter(
            name=f"Fire-{seed}-{i}", year=2018, start_doy=150 + i,
            end_doy=160 + i, acres=acres, polygon=poly)
        grown.append(fire)
        prev.append(interpolated_perimeter(fire, lon, lat, 0.6))
    return prev, grown


def test_update_counter_totals_delta_vs_full():
    """The delta tick accounts for exactly the batch join's work."""
    from repro.core.overlay import FireDelta, update_overlay
    from repro.runtime import STATS

    cells = random_universe(6, 3_000)
    prev_fires, grown = growth_pair(6, 6)
    cells.index()

    prev = overlay_fires(cells, prev_fires, year=2018, workers=1,
                         use_cache=False, keep_hits=True)

    before = STATS.snapshot()
    full = overlay_fires(cells, grown, year=2018, workers=1,
                         use_cache=False)
    full_counters = _index_counters(before)

    before = STATS.snapshot()
    updated = update_overlay(cells, prev,
                             [FireDelta(fire=f) for f in grown],
                             workers=1)
    delta_counters = _index_counters(before)

    assert_identical(updated, full)
    for key in ("index.bbox_queries", "index.polygon_queries",
                "index.candidates", "index.hits", "index.pip_hits"):
        assert delta_counters.get(key, 0) \
            == full_counters.get(key, 0), key
    n_prev = sum(len(h) for h in prev.per_fire_hits.values())
    assert delta_counters.get("index.pip_skipped", 0) == n_prev
    assert delta_counters.get("index.pip_tests", 0) + n_prev \
        == full_counters.get("index.pip_tests", 0)
    assert delta_counters.get("index.delta_queries", 0) == len(grown)
    assert full_counters.get("index.delta_queries", 0) == 0


def test_update_counter_totals_serial_vs_parallel():
    """Pool-dispatched delta ticks merge every worker counter back."""
    from repro.core.overlay import FireDelta, update_overlay
    from repro.runtime import STATS

    cells = random_universe(9, 3_000)
    prev_fires, grown = growth_pair(9, 8)
    cells.index()
    prev = overlay_fires(cells, prev_fires, year=2018, workers=1,
                         use_cache=False, keep_hits=True)
    deltas = [FireDelta(fire=f) for f in grown]

    before = STATS.snapshot()
    serial = update_overlay(cells, prev, deltas, workers=1)
    serial_counters = _index_counters(before)

    shutdown_pools()
    before = STATS.snapshot()
    parallel = update_overlay(cells, prev, deltas, workers=4)
    after = STATS.delta_since(before)["counters"]
    parallel_counters = {k: v for k, v in after.items()
                         if k.startswith("index.")}

    assert_identical(serial, parallel)
    for name in serial.per_fire_hits:
        assert np.array_equal(serial.per_fire_hits[name],
                              parallel.per_fire_hits[name])
    assert serial_counters, "serial tick must exercise the index"
    assert serial_counters == parallel_counters
    if after.get("parallel.fallbacks", 0) == 0:
        assert after.get("parallel.pool_runs", 0) >= 1


def test_classify_counter_totals_serial_vs_parallel(universe):
    from repro.runtime import STATS

    cells = universe.cells

    before = STATS.snapshot()
    serial = classify_cells(cells, universe.whp, workers=1,
                            use_cache=False)
    serial_samples = STATS.delta_since(before)["counters"] \
        .get("raster.samples", 0)

    shutdown_pools()
    before = STATS.snapshot()
    parallel = classify_cells(cells, universe.whp, workers=4,
                              chunk_size=4_096, use_cache=False)
    parallel_samples = STATS.delta_since(before)["counters"] \
        .get("raster.samples", 0)

    assert (serial == parallel).all()
    assert serial_samples == len(cells)
    assert parallel_samples == serial_samples
