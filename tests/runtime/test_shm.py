"""Shared-memory fast path: attach-not-rebuild, counters, lifecycle.

The zero-copy contract of PR 6: once a universe is packed into a
shared segment, pool workers *attach* to the parent's arrays and adopt
the pre-built CSR index — ``pool.worker_index_builds`` stays 0 for the
life of the warm pool, under both ``fork`` and ``spawn`` start methods.
The tiled raster sampler rides along here because its invariant is the
same shape: a pure execution-strategy change whose counters must stay
in exact agreement with the untiled path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.overlay import classify_cells, overlay_fires
from repro.geo import raster as raster_mod
from repro.runtime import STATS, configure, get_config, shutdown_pools
from repro.runtime import config as runtime_config
from repro.runtime import dispatch as runtime_dispatch
from repro.runtime import pool as runtime_pool
from repro.runtime import shm as runtime_shm

from .test_differential import assert_identical, random_fires, random_universe


@pytest.fixture(autouse=True)
def _shm_floor(monkeypatch):
    """Small universes must reach the pool *and* the shm path."""
    monkeypatch.setattr(runtime_config, "MIN_PARALLEL_POINTS", 64)
    monkeypatch.setattr(runtime_dispatch, "OVERLAY_WORK_FACTOR", 1)
    monkeypatch.setattr(runtime_dispatch, "CLASSIFY_WORK_FACTOR", 1)
    monkeypatch.setattr(runtime_dispatch, "CPU_COUNT_OVERRIDE", 8)
    monkeypatch.setattr(runtime_dispatch, "SHM_MIN_POINTS", 0)
    yield
    shutdown_pools()
    runtime_shm.release_segments()


def _overlay_counters(before) -> dict[str, int]:
    return STATS.delta_since(before)["counters"]


# ----------------------------------------------------------------------
# The headline regression: zero index builds through a warm pool.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_warm_pool_attaches_instead_of_building(start_method, monkeypatch):
    monkeypatch.setattr(runtime_pool, "START_METHOD_OVERRIDE", start_method)
    cells = random_universe(21, 3_000)

    before = STATS.snapshot()
    first = overlay_fires(cells, random_fires(21, 6), year=2018,
                          workers=4, use_cache=False)
    cold = _overlay_counters(before)
    if cold.get("parallel.fallbacks", 0):
        pytest.skip(f"pool path unavailable under {start_method}")

    # Even the *cold* join never rebuilds: workers adopt the packed index.
    assert cold.get("pool.worker_index_builds", 0) == 0
    assert cold.get("pool.worker_index_attach", 0) >= 1
    assert cold.get("shm.created", 0) == 1

    before = STATS.snapshot()
    second = overlay_fires(cells, random_fires(22, 6), year=2018,
                           workers=4, use_cache=False)
    warm = _overlay_counters(before)
    if warm.get("parallel.fallbacks", 0):
        pytest.skip(f"pool path unavailable under {start_method}")

    # Warm join: pool reused, segment reused, no builds, no new
    # segments.  A worker idle during the cold join may receive its
    # first task here and do its lazy one-time attach then, so total
    # attaches are bounded by the worker count rather than pinned to 0.
    assert warm.get("pool.reused", 0) >= 1
    assert warm.get("pool.created", 0) == 0
    assert warm.get("pool.worker_index_builds", 0) == 0
    assert (cold.get("pool.worker_index_attach", 0)
            + warm.get("pool.worker_index_attach", 0)) <= 4
    assert warm.get("shm.created", 0) == 0
    assert warm.get("shm.reused", 0) == 1

    # And the shm path is still bit-identical to serial.
    serial = overlay_fires(cells, random_fires(22, 6), year=2018,
                           workers=1, use_cache=False)
    assert_identical(second, serial)
    assert first.n_in_perimeter > 0


def test_shm_disabled_falls_back_to_worker_builds():
    """With shm off, the legacy initializer-pickle path still works —
    and is visible as worker-side index builds."""
    previous = get_config()
    configure(shm_enabled=False)
    try:
        cells = random_universe(23, 3_000)
        before = STATS.snapshot()
        result = overlay_fires(cells, random_fires(23, 6), year=2018,
                               workers=4, use_cache=False)
        counters = _overlay_counters(before)
        if counters.get("parallel.fallbacks", 0):
            pytest.skip("pool path unavailable")
        assert counters.get("pool.worker_index_builds", 0) >= 1
        assert counters.get("pool.worker_index_attach", 0) == 0
        assert counters.get("shm.created", 0) == 0
        serial = overlay_fires(cells, random_fires(23, 6), year=2018,
                               workers=1, use_cache=False)
        assert_identical(result, serial)
    finally:
        from repro.runtime import set_config
        set_config(previous)


def test_classify_through_shm_matches_serial(universe):
    cells = universe.cells
    before = STATS.snapshot()
    got = classify_cells(cells, universe.whp, workers=4,
                         chunk_size=4_096, use_cache=False)
    counters = _overlay_counters(before)
    reference = universe.whp.classify(cells.lons, cells.lats)
    assert (got == reference).all()
    if not counters.get("parallel.fallbacks", 0):
        assert counters.get("shm.created", 0) + \
            counters.get("shm.reused", 0) >= 1


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------

def test_share_attach_round_trip():
    arrays = {
        "a": np.arange(1000, dtype=np.float64),
        "b": np.arange(7, dtype=np.int8),
        "c": np.linspace(0, 1, 33).reshape(3, 11),
    }
    handle = runtime_shm.share_arrays(b"tok-round-trip", arrays)
    if handle is None:
        pytest.skip("shared memory unavailable")
    views = runtime_shm.attach_arrays(handle)
    assert set(views) == set(arrays)
    for name, arr in arrays.items():
        assert views[name].dtype == arr.dtype
        assert views[name].shape == arr.shape
        assert np.array_equal(views[name], arr)
        # every view starts cache-line aligned inside the segment
    for field in handle.fields:
        assert field.offset % runtime_shm.ALIGNMENT == 0

    # same token -> same handle, no new segment
    again = runtime_shm.share_arrays(b"tok-round-trip", {})
    assert again is handle


def test_segment_lru_eviction():
    arrays = {"x": np.arange(64, dtype=np.float64)}
    handles = []
    for i in range(runtime_shm.MAX_SEGMENTS + 2):
        h = runtime_shm.share_arrays(b"tok-%d" % i, arrays)
        if h is None:
            pytest.skip("shared memory unavailable")
        handles.append(h)
    active = runtime_shm.active_segments()
    assert len(active) <= runtime_shm.MAX_SEGMENTS
    assert handles[-1].shm_name in active
    assert handles[0].shm_name not in active


def test_release_segments_clears_registry():
    h = runtime_shm.share_arrays(b"tok-release",
                                 {"x": np.zeros(8)})
    if h is None:
        pytest.skip("shared memory unavailable")
    assert h.shm_name in runtime_shm.active_segments()
    runtime_shm.release_segments()
    assert runtime_shm.active_segments() == []
    # a new share after release starts a fresh segment
    h2 = runtime_shm.share_arrays(b"tok-release", {"x": np.zeros(8)})
    assert h2 is not None and h2.shm_name != h.shm_name


# ----------------------------------------------------------------------
# Tiled raster sampling: counter parity with the untiled path
# ----------------------------------------------------------------------

def test_tiled_sampling_counter_parity(universe, monkeypatch):
    cells = universe.cells
    whp = universe.whp

    before = STATS.snapshot()
    untiled = whp.classify(cells.lons, cells.lats)
    base = STATS.delta_since(before)["counters"]

    monkeypatch.setattr(raster_mod, "SAMPLE_TILE_POINTS", 1_024)
    before = STATS.snapshot()
    tiled = whp.classify(cells.lons, cells.lats)
    small = STATS.delta_since(before)["counters"]

    assert (tiled == untiled).all()
    # identical sample totals, strictly more tiles
    assert small["raster.samples"] == base["raster.samples"]
    assert small["raster.samples"] >= len(cells)
    assert small["raster.tiles"] > base["raster.tiles"]
    expected_tiles_per_pass = -(-len(cells) // 1_024)
    assert small["raster.tiles"] % expected_tiles_per_pass == 0
