"""Scale-stratified differential tests for the batched hot path.

PR 6 rewrote the numerical hot path three ways: a batched 2-D
point-in-ring kernel, CSR candidate-run gathering in the grid index,
and tiled raster sampling.  Each must be *bit-identical* to the legacy
serial arithmetic at every scale the pipeline runs — so the oracle
stack here is explicit:

* ``points_in_ring_serial`` — the original per-edge loop, kept verbatim
  as the reference kernel;
* an exhaustive scan (no index, no bbox prefilter) built on the serial
  kernel with manual hole handling — independent of every fast path;
* the scalar ``point_in_ring`` spot check (which additionally treats
  exact-boundary points as inside; random points never hit that case).

Strata: ``tiny`` (2k clustered random points), ``seed`` (the shared
20k synthetic universe with its real fire season), and
``paper_sampled`` (a deterministic 1% stratified draw of the full
5,364,949-transceiver paper universe).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.overlay import overlay_fires, overlay_fires_bruteforce
from repro.geo.geometry import MultiPolygon
from repro.geo.predicates import (
    point_in_ring,
    points_in_ring,
    points_in_ring_serial,
)
from repro.runtime import config as runtime_config
from repro.runtime import dispatch as runtime_dispatch
from repro.runtime import shutdown_pools

from .test_differential import (
    assert_identical,
    random_fires,
    random_universe,
)

SCALES = ("tiny", "seed", "paper_sampled")


@pytest.fixture(scope="module")
def paper_sampled_cells():
    """Deterministic 1% stratified draw of the 5.36M paper universe."""
    from repro.data.universe import universe_for_scale

    return universe_for_scale("paper").cells.stratified_sample(0.01)


@pytest.fixture
def scaled(request, universe, paper_sampled_cells):
    """(cells, fires) for a named scale stratum."""
    scale = request.param
    if scale == "tiny":
        return random_universe(0, 2_000), random_fires(0, 4)
    if scale == "seed":
        return universe.cells, universe.fire_season(2018).fires
    return paper_sampled_cells, random_fires(7, 6, year=2019)


def _exhaustive_inside(polygon, lons, lats) -> np.ndarray:
    """Full-scan polygon membership on the serial oracle kernel.

    No index, no bbox prefilter, manual hole subtraction — shares no
    code with the batched fast paths beyond the ring representation.
    """
    if isinstance(polygon, MultiPolygon):
        out = np.zeros(len(lons), dtype=bool)
        for poly in polygon.polygons:
            out |= _exhaustive_inside(poly, lons, lats)
        return out
    inside = points_in_ring_serial(lons, lats, polygon.exterior)
    for hole in polygon.holes:
        inside &= ~points_in_ring_serial(lons, lats, hole)
    return inside


def _each_polygon(fires):
    for fire in fires:
        poly = fire.polygon
        if isinstance(poly, MultiPolygon):
            yield from poly.polygons
        else:
            yield poly


@pytest.mark.parametrize("scaled", SCALES, indirect=True)
def test_batch_pip_equals_serial_pip(scaled):
    """The 2-D batched kernel is bitwise the per-edge loop, per ring."""
    cells, fires = scaled
    for poly in _each_polygon(fires):
        for ring in (poly.exterior, *poly.holes):
            batch = points_in_ring(cells.lons, cells.lats, ring)
            serial = points_in_ring_serial(cells.lons, cells.lats, ring)
            assert batch.dtype == serial.dtype
            assert (batch == serial).all()


@pytest.mark.parametrize("scaled", SCALES, indirect=True)
def test_batch_pip_equals_scalar_pip(scaled):
    """Spot-check the batch kernel against the scalar crossing test.

    The scalar test additionally reports exact-boundary points as
    inside; continuous random coordinates never land there, so strict
    equality is the correct assertion for these samples.
    """
    cells, fires = scaled
    rng = np.random.default_rng(99)
    idx = rng.choice(len(cells), size=min(200, len(cells)),
                     replace=False)
    for poly in _each_polygon(fires):
        batch = points_in_ring(cells.lons[idx], cells.lats[idx],
                               poly.exterior)
        for k, i in enumerate(idx):
            scalar = point_in_ring(float(cells.lons[i]),
                                   float(cells.lats[i]), poly.exterior)
            assert batch[k] == scalar


@pytest.mark.parametrize("scaled", SCALES, indirect=True)
def test_index_query_equals_exhaustive_scan(scaled):
    """Grid-index polygon queries == the oracle full scan, per fire."""
    cells, fires = scaled
    index = cells.index()
    for fire in fires:
        hits = np.zeros(len(cells), dtype=bool)
        hits[index.query_polygon(fire.polygon)] = True
        reference = _exhaustive_inside(fire.polygon, cells.lons,
                                       cells.lats)
        assert (hits == reference).all()


@pytest.mark.parametrize("scaled", SCALES, indirect=True)
def test_overlay_parallel_serial_bruteforce_identical(
        scaled, monkeypatch):
    """parallel == serial == bruteforce == exhaustive scan, per scale."""
    monkeypatch.setattr(runtime_config, "MIN_PARALLEL_POINTS", 64)
    monkeypatch.setattr(runtime_dispatch, "OVERLAY_WORK_FACTOR", 1)
    monkeypatch.setattr(runtime_dispatch, "CPU_COUNT_OVERRIDE", 8)
    try:
        cells, fires = scaled
        year = fires[0].year
        reference = overlay_fires_bruteforce(cells, fires, year=year)
        serial = overlay_fires(cells, fires, year=year, workers=1,
                               use_cache=False)
        parallel = overlay_fires(cells, fires, year=year, workers=4,
                                 chunk_size=4_096, use_cache=False)
        assert_identical(serial, reference)
        assert_identical(parallel, reference)
        oracle = np.zeros(len(cells), dtype=bool)
        for fire in fires:
            oracle |= _exhaustive_inside(fire.polygon, cells.lons,
                                         cells.lats)
        assert (reference.in_perimeter_mask == oracle).all()
    finally:
        shutdown_pools()


def test_stratified_sample_is_deterministic_and_stratified():
    cells = random_universe(5, 5_000)
    cells.provider_group[:] = np.arange(5_000, dtype=np.int64) % 3
    cells.radio[:] = np.arange(5_000, dtype=np.int64) % 2
    a = cells.stratified_sample(0.1)
    b = cells.stratified_sample(0.1)
    assert (a.lons == b.lons).all() and (a.site_ids == b.site_ids).all()
    # every (provider_group, radio) stratum survives at ~the fraction
    for g in range(3):
        for r in range(2):
            full = ((cells.provider_group == g)
                    & (cells.radio == r)).sum()
            kept = ((a.provider_group == g) & (a.radio == r)).sum()
            assert kept == -(-full // 10)  # ceil(full / step)
