"""Tests for repro.geo.raster."""

import numpy as np
import pytest

from repro.geo.geometry import BBox, Polygon
from repro.geo.raster import GridSpec, Raster, disk_footprint, rasterize_polygon


@pytest.fixture()
def grid():
    return GridSpec(BBox(-101.0, 34.0, -98.0, 37.0), 0.1)


class TestGridSpec:
    def test_shape(self, grid):
        assert grid.shape == (30, 30)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            GridSpec(BBox(0, 0, 1, 1), 0.0)

    def test_rowcol_corners(self, grid):
        # NW corner cell
        r, c = grid.rowcol(-100.95, 36.95)
        assert (int(r), int(c)) == (0, 0)
        # SE corner cell
        r, c = grid.rowcol(-98.05, 34.05)
        assert (int(r), int(c)) == (29, 29)

    def test_cell_center_roundtrip(self, grid):
        rows = np.array([0, 10, 29])
        cols = np.array([0, 15, 29])
        lons, lats = grid.cell_center(rows, cols)
        r2, c2 = grid.rowcol(lons, lats)
        np.testing.assert_array_equal(r2, rows)
        np.testing.assert_array_equal(c2, cols)

    def test_inside(self, grid):
        rows = np.array([0, -1, 29, 30])
        cols = np.array([0, 0, 29, 29])
        np.testing.assert_array_equal(grid.inside(rows, cols),
                                      [True, False, True, False])

    def test_cell_area_reasonable(self, grid):
        # 0.1 deg cell at ~35.5N is roughly 10km x 11km
        area = grid.cell_area_sqm(15)
        assert 0.8e8 < area < 1.2e8

    def test_cell_areas_decrease_northward(self, grid):
        areas = grid.cell_areas_sqm()
        assert areas[0] < areas[-1]  # row 0 is the northernmost


class TestRaster:
    def test_shape_mismatch_rejected(self, grid):
        with pytest.raises(ValueError):
            Raster(grid, np.zeros((3, 3)))

    def test_sample_inside_outside(self, grid):
        r = Raster(grid, fill=7, dtype=np.int32)
        assert r.sample(-99.5, 35.5) == 7
        assert r.sample(-200.0, 35.5) == 0

    def test_sample_outside_custom(self, grid):
        r = Raster(grid, fill=7, dtype=np.int32)
        assert r.sample(-200.0, 35.5, outside=-1) == -1

    def test_sample_vectorized(self, grid):
        r = Raster(grid)
        r.data[0, 0] = 5.0
        lons, lats = grid.cell_center(np.array([0]), np.array([0]))
        out = r.sample(np.array([lons[0], -200.0]),
                       np.array([lats[0], 0.0]))
        np.testing.assert_allclose(out, [5.0, 0.0])

    def test_class_area(self, grid):
        r = Raster(grid, fill=0, dtype=np.int8)
        r.data[:3, :] = 2
        area = r.class_area_sqm(2)
        expected = sum(grid.cell_area_sqm(i) * grid.width
                       for i in range(3))
        assert area == pytest.approx(expected)

    def test_histogram(self, grid):
        r = Raster(grid, fill=1, dtype=np.int8)
        r.data[0, :5] = 3
        h = r.histogram()
        assert h[3] == 5
        assert h[1] == grid.width * grid.height - 5

    def test_dilate_mask_grows(self, grid):
        r = Raster(grid)
        mask = np.zeros(grid.shape, dtype=bool)
        mask[15, 15] = True
        grown = r.dilate_mask(mask, 15_000.0)
        assert grown.sum() > 1
        assert grown[15, 15]

    def test_dilate_zero_radius_is_identity_plus_center(self, grid):
        r = Raster(grid)
        mask = np.zeros(grid.shape, dtype=bool)
        mask[5, 5] = True
        grown = r.dilate_mask(mask, 1.0)  # far below one cell
        assert grown.sum() == 1

    def test_copy_is_independent(self, grid):
        r = Raster(grid, fill=1.0)
        r2 = r.copy()
        r2.data[0, 0] = 99.0
        assert r.data[0, 0] == 1.0


class TestDiskFootprint:
    def test_center_always_true(self):
        assert disk_footprint(0.0, 0.0)[0, 0]

    def test_radius_one(self):
        fp = disk_footprint(1.0, 1.0)
        assert fp.shape == (3, 3)
        assert fp[1, 1] and fp[0, 1] and fp[1, 0]
        assert not fp[0, 0]  # corner is sqrt(2) > 1 away

    def test_anisotropic(self):
        fp = disk_footprint(3.0, 1.0)
        assert fp.shape == (3, 7)


class TestRasterize:
    def test_square_cell_count(self, grid):
        p = Polygon([(-100.0, 35.0), (-99.0, 35.0), (-99.0, 36.0),
                     (-100.0, 36.0)])
        mask = rasterize_polygon(grid, p)
        assert mask.sum() == 100  # 10x10 cells of 0.1 deg

    def test_mask_matches_containment(self, grid):
        p = Polygon([(-100.3, 34.6), (-99.1, 35.2), (-99.5, 36.4),
                     (-100.6, 36.0)])
        mask = rasterize_polygon(grid, p)
        rows, cols = np.nonzero(mask)
        lons, lats = grid.cell_center(rows, cols)
        inside = p.contains_many(lons, lats)
        assert inside.all()

    def test_hole_respected(self, grid):
        hole = [(-99.7, 35.3), (-99.3, 35.3), (-99.3, 35.7),
                (-99.7, 35.7)]
        p = Polygon([(-100.0, 35.0), (-99.0, 35.0), (-99.0, 36.0),
                     (-100.0, 36.0)], holes=[hole])
        mask = rasterize_polygon(grid, p)
        assert mask.sum() == 100 - 16

    def test_polygon_outside_grid(self, grid):
        p = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert rasterize_polygon(grid, p).sum() == 0

    def test_partial_overlap_clipped(self, grid):
        p = Polygon([(-101.5, 34.5), (-100.5, 34.5), (-100.5, 35.5),
                     (-101.5, 35.5)])
        mask = rasterize_polygon(grid, p)
        assert 0 < mask.sum() < 100
