"""Tests for repro.geo.projection."""

import math

import numpy as np
import pytest

from repro.geo.projection import (
    CONUS_ALBERS,
    EARTH_RADIUS_M,
    AlbersEqualArea,
    LocalEquirectangular,
    acres_to_sqmeters,
    destination_point,
    haversine_m,
    meters_per_degree,
    meters_to_miles,
    miles_to_meters,
    sqmeters_to_acres,
)


class TestUnits:
    def test_mile_roundtrip(self):
        assert meters_to_miles(miles_to_meters(3.7)) == pytest.approx(3.7)

    def test_mile_value(self):
        assert miles_to_meters(1.0) == pytest.approx(1609.344)

    def test_acre_roundtrip(self):
        assert sqmeters_to_acres(acres_to_sqmeters(640.0)) \
            == pytest.approx(640.0)

    def test_acre_value(self):
        # one square mile is 640 acres
        sq_mile = miles_to_meters(1.0) ** 2
        assert sqmeters_to_acres(sq_mile) == pytest.approx(640.0, rel=1e-6)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(-100.0, 40.0, -100.0, 40.0) == 0.0

    def test_known_distance_la_to_ny(self):
        # LA to NYC great-circle distance is ~3,940 km
        d = haversine_m(-118.24, 34.05, -74.01, 40.71)
        assert d == pytest.approx(3.94e6, rel=0.02)

    def test_one_degree_latitude(self):
        d = haversine_m(-100.0, 40.0, -100.0, 41.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M / 180.0,
                                  rel=1e-6)

    def test_vectorized_matches_scalar(self):
        lons = np.array([-100.0, -90.0, -80.0])
        lats = np.array([30.0, 40.0, 45.0])
        vec = haversine_m(-95.0, 35.0, lons, lats)
        for i in range(3):
            scalar = haversine_m(-95.0, 35.0, float(lons[i]),
                                 float(lats[i]))
            assert vec[i] == pytest.approx(scalar)

    def test_symmetry(self):
        a = haversine_m(-120.0, 35.0, -80.0, 45.0)
        b = haversine_m(-80.0, 45.0, -120.0, 35.0)
        assert a == pytest.approx(b)


class TestDestinationPoint:
    def test_north_increases_latitude(self):
        lon, lat = destination_point(-100.0, 40.0, 0.0, 10_000.0)
        assert lat > 40.0
        assert lon == pytest.approx(-100.0, abs=1e-9)

    def test_east_increases_longitude(self):
        lon, lat = destination_point(-100.0, 40.0, 90.0, 10_000.0)
        assert lon > -100.0

    def test_distance_consistency(self):
        lon, lat = destination_point(-100.0, 40.0, 37.0, 25_000.0)
        assert haversine_m(-100.0, 40.0, lon, lat) \
            == pytest.approx(25_000.0, rel=1e-6)


class TestMetersPerDegree:
    def test_latitude_constant(self):
        _, my_equator = meters_per_degree(0.0)
        _, my_mid = meters_per_degree(45.0)
        assert my_equator == pytest.approx(my_mid)

    def test_longitude_shrinks_with_latitude(self):
        mx0, _ = meters_per_degree(0.0)
        mx60, _ = meters_per_degree(60.0)
        assert mx60 == pytest.approx(mx0 / 2.0, rel=1e-6)


class TestAlbers:
    def test_roundtrip_scalar(self):
        x, y = CONUS_ALBERS.forward(-120.3, 37.2)
        lon, lat = CONUS_ALBERS.inverse(x, y)
        assert lon == pytest.approx(-120.3, abs=1e-9)
        assert lat == pytest.approx(37.2, abs=1e-9)

    def test_roundtrip_vectorized(self):
        rng = np.random.default_rng(0)
        lons = rng.uniform(-124, -67, 100)
        lats = rng.uniform(25, 49, 100)
        x, y = CONUS_ALBERS.forward(lons, lats)
        lon2, lat2 = CONUS_ALBERS.inverse(x, y)
        np.testing.assert_allclose(lon2, lons, atol=1e-9)
        np.testing.assert_allclose(lat2, lats, atol=1e-9)

    def test_origin_maps_near_axis(self):
        x, _ = CONUS_ALBERS.forward(-96.0, 30.0)
        assert abs(x) < 1e-6

    def test_equal_area_property(self):
        """A 1x1-degree cell's projected area matches its true area."""
        for lat in (28.0, 37.0, 45.0):
            corners_lon = np.array([-100.0, -99.0, -99.0, -100.0])
            corners_lat = np.array([lat, lat, lat + 1.0, lat + 1.0])
            x, y = CONUS_ALBERS.forward(corners_lon, corners_lat)
            # shoelace
            area = 0.5 * abs(
                np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
            mx, my = meters_per_degree(lat + 0.5)
            assert area == pytest.approx(mx * my, rel=0.01)

    def test_rejects_degenerate_parallels(self):
        with pytest.raises(ValueError):
            AlbersEqualArea(lat1=-30.0, lat2=30.0)

    def test_custom_parallels_roundtrip(self):
        proj = AlbersEqualArea(lon0=-100.0, lat0=40.0, lat1=35.0,
                               lat2=45.0)
        x, y = proj.forward(-102.5, 41.0)
        lon, lat = proj.inverse(x, y)
        assert (lon, lat) == (pytest.approx(-102.5), pytest.approx(41.0))


class TestLocalEquirectangular:
    def test_roundtrip(self):
        proj = LocalEquirectangular(-118.0, 34.0)
        x, y = proj.forward(-118.2, 34.3)
        lon, lat = proj.inverse(x, y)
        assert lon == pytest.approx(-118.2)
        assert lat == pytest.approx(34.3)

    def test_origin_is_zero(self):
        proj = LocalEquirectangular(-118.0, 34.0)
        x, y = proj.forward(-118.0, 34.0)
        assert float(x) == 0.0
        assert float(y) == 0.0

    def test_scale_matches_haversine_nearby(self):
        proj = LocalEquirectangular(-118.0, 34.0)
        x, y = proj.forward(-118.01, 34.01)
        d_planar = math.hypot(float(x), float(y))
        d_true = haversine_m(-118.0, 34.0, -118.01, 34.01)
        assert d_planar == pytest.approx(d_true, rel=1e-3)
