"""Tests for repro.geo.buffer."""

import numpy as np
import pytest

from repro.geo.buffer import buffer_point, buffer_polygon
from repro.geo.geometry import Polygon
from repro.geo.projection import miles_to_meters

SQUARE = [(-100.0, 35.0), (-99.0, 35.0), (-99.0, 36.0), (-100.0, 36.0)]


class TestBufferPoint:
    def test_area_matches_circle(self):
        c = buffer_point(-100.0, 35.0, 5_000.0, n_vertices=128)
        assert c.area_sqm() == pytest.approx(np.pi * 5_000.0 ** 2,
                                             rel=0.01)

    def test_contains_center(self):
        c = buffer_point(-100.0, 35.0, 1_000.0)
        assert c.contains(-100.0, 35.0)

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            buffer_point(0, 0, 0.0)

    def test_isotropic_in_meters(self):
        """The circle spans the right distance north and east."""
        from repro.geo.projection import haversine_m
        c = buffer_point(-100.0, 45.0, 10_000.0, n_vertices=256)
        lons = c.exterior[:, 0]
        lats = c.exterior[:, 1]
        d = haversine_m(np.full(len(lons), -100.0),
                        np.full(len(lons), 45.0), lons, lats)
        np.testing.assert_allclose(d, 10_000.0, rtol=0.02)


class TestBufferPolygon:
    def test_grows_area(self):
        p = Polygon(SQUARE)
        b = buffer_polygon(p, miles_to_meters(0.5))
        assert b.area_sqm() > p.area_sqm()

    def test_contains_original_vertices(self):
        p = Polygon(SQUARE)
        b = buffer_polygon(p, 5_000.0)
        for lon, lat in p.exterior:
            assert b.contains(lon, lat)

    def test_expected_area_growth(self):
        """Buffered square area ~ A + perimeter*r + pi r^2."""
        p = Polygon(SQUARE)
        r = 2_000.0
        b = buffer_polygon(p, r, arc_step_deg=5.0)
        from repro.geo.projection import meters_per_degree
        mx, my = meters_per_degree(35.5)
        perimeter = 2 * (mx + my)
        expected = p.area_sqm() + perimeter * r + np.pi * r * r
        assert b.area_sqm() == pytest.approx(expected, rel=0.02)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            buffer_polygon(Polygon(SQUARE), -10.0)

    def test_concave_polygon_buffers(self):
        concave = [(-100, 35), (-99, 35), (-99, 36), (-99.5, 35.5),
                   (-100, 36)]
        p = Polygon(concave)
        b = buffer_polygon(p, 1_000.0)
        assert b.area_sqm() > p.area_sqm()
