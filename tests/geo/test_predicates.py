"""Tests for repro.geo.predicates."""

import numpy as np
import pytest

from repro.geo.predicates import (
    is_ccw,
    on_segment,
    point_in_ring,
    point_segment_distance,
    points_in_ring,
    ring_area_signed,
    segments_intersect,
)

SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
CONCAVE = [(0, 0), (4, 0), (4, 4), (2, 1.5), (0, 4)]  # notch at top


class TestPointInRing:
    def test_center_inside(self):
        assert point_in_ring(0.5, 0.5, SQUARE)

    def test_outside(self):
        assert not point_in_ring(1.5, 0.5, SQUARE)
        assert not point_in_ring(0.5, -0.1, SQUARE)

    def test_boundary_counts_inside(self):
        assert point_in_ring(0.0, 0.5, SQUARE)
        assert point_in_ring(0.5, 1.0, SQUARE)

    def test_vertex_counts_inside(self):
        assert point_in_ring(0.0, 0.0, SQUARE)

    def test_concave_notch_excluded(self):
        # the notch region above (2, 1.5) is outside the polygon
        assert not point_in_ring(2.0, 3.0, CONCAVE)
        assert point_in_ring(2.0, 1.0, CONCAVE)
        assert point_in_ring(0.5, 2.0, CONCAVE)

    def test_closed_ring_accepted(self):
        closed = SQUARE + [SQUARE[0]]
        assert point_in_ring(0.5, 0.5, closed)

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            point_in_ring(0.0, 0.0, [(0, 0), (1, 1)])


class TestPointsInRing:
    def test_matches_scalar_on_grid(self):
        xs, ys = np.meshgrid(np.linspace(-0.5, 1.5, 21),
                             np.linspace(-0.5, 1.5, 21))
        xs = xs.ravel()
        ys = ys.ravel()
        vec = points_in_ring(xs, ys, SQUARE)
        for i in range(len(xs)):
            # skip exact-boundary points where the scalar test treats
            # on-edge as inside but the crossing rule may differ
            on_edge = (abs(xs[i]) < 1e-12 or abs(xs[i] - 1) < 1e-12
                       or abs(ys[i]) < 1e-12 or abs(ys[i] - 1) < 1e-12)
            if on_edge:
                continue
            assert vec[i] == point_in_ring(xs[i], ys[i], SQUARE), \
                (xs[i], ys[i])

    def test_concave(self):
        xs = np.array([2.0, 2.0, 0.5])
        ys = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(
            points_in_ring(xs, ys, CONCAVE), [False, True, True])

    def test_empty_input(self):
        out = points_in_ring(np.array([]), np.array([]), SQUARE)
        assert out.shape == (0,)


class TestSegments:
    def test_crossing(self):
        assert segments_intersect((0, 0), (1, 1), (0, 1), (1, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_touching_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_on_segment(self):
        assert on_segment(0.5, 0.5, 0, 0, 1, 1)
        assert not on_segment(0.5, 0.6, 0, 0, 1, 1)
        assert not on_segment(1.5, 1.5, 0, 0, 1, 1)


class TestDistance:
    def test_perpendicular(self):
        assert point_segment_distance(0.5, 1.0, 0, 0, 1, 0) \
            == pytest.approx(1.0)

    def test_beyond_endpoint_clamps(self):
        assert point_segment_distance(2.0, 0.0, 0, 0, 1, 0) \
            == pytest.approx(1.0)

    def test_degenerate_segment(self):
        assert point_segment_distance(3.0, 4.0, 0, 0, 0, 0) \
            == pytest.approx(5.0)

    def test_vectorized(self):
        d = point_segment_distance(np.array([0.5, 2.0]),
                                   np.array([1.0, 0.0]), 0, 0, 1, 0)
        np.testing.assert_allclose(d, [1.0, 1.0])


class TestAreaWinding:
    def test_ccw_square_positive(self):
        assert ring_area_signed(SQUARE) == pytest.approx(1.0)
        assert is_ccw(SQUARE)

    def test_cw_square_negative(self):
        assert ring_area_signed(SQUARE[::-1]) == pytest.approx(-1.0)
        assert not is_ccw(SQUARE[::-1])

    def test_concave_area(self):
        # big square 16 minus notch triangle area 5
        assert ring_area_signed(CONCAVE) == pytest.approx(11.0)
