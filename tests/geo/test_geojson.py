"""Tests for repro.geo.geojson."""

import numpy as np
import pytest

from repro.geo.geojson import (
    dump_features,
    feature,
    feature_collection,
    geometry_from_geojson,
    geometry_to_geojson,
    load_features,
)
from repro.geo.geometry import LineString, MultiPolygon, Point, Polygon

SQUARE = [(-100.0, 35.0), (-99.0, 35.0), (-99.0, 36.0), (-100.0, 36.0)]


class TestRoundtrips:
    def test_point(self):
        p = Point(-100.5, 35.25)
        out = geometry_from_geojson(geometry_to_geojson(p))
        assert out == p

    def test_linestring(self):
        ls = LineString([(0, 0), (1, 2), (3, 1)])
        out = geometry_from_geojson(geometry_to_geojson(ls))
        np.testing.assert_allclose(out.coords, ls.coords)

    def test_polygon(self):
        p = Polygon(SQUARE)
        out = geometry_from_geojson(geometry_to_geojson(p))
        assert out.area_sqm() == pytest.approx(p.area_sqm())

    def test_polygon_with_hole(self):
        hole = [(-99.7, 35.3), (-99.3, 35.3), (-99.3, 35.7),
                (-99.7, 35.7)]
        p = Polygon(SQUARE, holes=[hole])
        out = geometry_from_geojson(geometry_to_geojson(p))
        assert len(out.holes) == 1
        assert out.area_sqm() == pytest.approx(p.area_sqm())

    def test_multipolygon(self):
        mp = MultiPolygon([Polygon(SQUARE),
                           Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])])
        out = geometry_from_geojson(geometry_to_geojson(mp))
        assert len(out) == 2
        assert out.area_sqm() == pytest.approx(mp.area_sqm())


class TestGeoJSONFormat:
    def test_polygon_ring_closed(self):
        gj = geometry_to_geojson(Polygon(SQUARE))
        ring = gj["coordinates"][0]
        assert ring[0] == ring[-1]

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            geometry_from_geojson({"type": "Wat", "coordinates": []})

    def test_unknown_object_rejected(self):
        with pytest.raises(TypeError):
            geometry_to_geojson("not a geometry")

    def test_feature_wrapping(self):
        f = feature(Point(1, 2), {"name": "x"})
        assert f["type"] == "Feature"
        assert f["properties"]["name"] == "x"

    def test_feature_collection(self):
        fc = feature_collection([feature(Point(1, 2))])
        assert fc["type"] == "FeatureCollection"
        assert len(fc["features"]) == 1


class TestFileIO:
    def test_dump_load(self, tmp_path):
        path = tmp_path / "fires.geojson"
        features = [
            feature(Polygon(SQUARE), {"name": "FIRE-1", "acres": 100.0}),
            feature(Point(-100, 35), {"kind": "ignition"}),
        ]
        dump_features(features, path)
        loaded = load_features(path)
        assert len(loaded) == 2
        geom, props = loaded[0]
        assert props["name"] == "FIRE-1"
        assert isinstance(geom, Polygon)

    def test_load_rejects_non_collection(self, tmp_path):
        path = tmp_path / "bad.geojson"
        path.write_text('{"type": "Feature"}')
        with pytest.raises(ValueError):
            load_features(path)
