"""Tests for repro.geo.geometry."""

import numpy as np
import pytest

from repro.geo.geometry import (
    BBox,
    LineString,
    MultiPolygon,
    Point,
    Polygon,
    simplify_ring,
)
from repro.geo.projection import meters_per_degree

SQUARE = [(-100.0, 35.0), (-99.0, 35.0), (-99.0, 36.0), (-100.0, 36.0)]


class TestBBox:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            BBox(1, 0, 0, 1)

    def test_contains(self):
        box = BBox(-1, -1, 1, 1)
        assert box.contains(0, 0)
        assert box.contains(1, 1)  # boundary inclusive
        assert not box.contains(1.1, 0)

    def test_contains_many(self):
        box = BBox(-1, -1, 1, 1)
        got = box.contains_many([0, 2, -1], [0, 0, 1])
        np.testing.assert_array_equal(got, [True, False, True])

    def test_intersects(self):
        a = BBox(0, 0, 2, 2)
        assert a.intersects(BBox(1, 1, 3, 3))
        assert a.intersects(BBox(2, 2, 3, 3))  # touching counts
        assert not a.intersects(BBox(2.1, 0, 3, 1))

    def test_union(self):
        u = BBox(0, 0, 1, 1).union(BBox(2, -1, 3, 0.5))
        assert (u.min_lon, u.min_lat, u.max_lon, u.max_lat) \
            == (0, -1, 3, 1)

    def test_expand(self):
        e = BBox(0, 0, 1, 1).expand(0.5)
        assert e.min_lon == -0.5 and e.max_lat == 1.5

    def test_center_width_height(self):
        box = BBox(0, 0, 2, 4)
        assert box.center == Point(1, 2)
        assert box.width == 2 and box.height == 4

    def test_of_coords_empty_rejected(self):
        with pytest.raises(ValueError):
            BBox.of_coords([], [])


class TestLineString:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            LineString([(0, 0)])

    def test_bbox(self):
        ls = LineString([(0, 0), (2, 1), (1, 3)])
        assert ls.bbox == BBox(0, 0, 2, 3)

    def test_distance_to(self):
        ls = LineString([(0, 0), (2, 0)])
        assert ls.distance_to(1.0, 1.0) == pytest.approx(1.0)
        assert ls.distance_to(3.0, 0.0) == pytest.approx(1.0)

    def test_immutable_coords(self):
        ls = LineString([(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            ls.coords[0, 0] = 5.0


class TestPolygon:
    def test_normalizes_winding(self):
        ccw = Polygon(SQUARE)
        cw = Polygon(SQUARE[::-1])
        np.testing.assert_allclose(ccw.exterior, cw.exterior)

    def test_contains(self):
        p = Polygon(SQUARE)
        assert p.contains(-99.5, 35.5)
        assert not p.contains(-98.0, 35.5)

    def test_contains_many_matches_scalar(self):
        p = Polygon(SQUARE)
        rng = np.random.default_rng(3)
        lons = rng.uniform(-101, -98, 500)
        lats = rng.uniform(34, 37, 500)
        vec = p.contains_many(lons, lats)
        for i in range(0, 500, 25):
            assert vec[i] == p.contains(lons[i], lats[i])

    def test_hole_excluded(self):
        hole = [(-99.7, 35.3), (-99.3, 35.3), (-99.3, 35.7), (-99.7, 35.7)]
        p = Polygon(SQUARE, holes=[hole])
        assert not p.contains(-99.5, 35.5)
        assert p.contains(-99.9, 35.9)
        vec = p.contains_many([-99.5, -99.9], [35.5, 35.9])
        np.testing.assert_array_equal(vec, [False, True])

    def test_area_one_degree_cell(self):
        p = Polygon(SQUARE)
        mx, my = meters_per_degree(35.5)
        assert p.area_sqm() == pytest.approx(mx * my, rel=0.01)

    def test_area_with_hole_subtracted(self):
        hole = [(-99.75, 35.25), (-99.25, 35.25), (-99.25, 35.75),
                (-99.75, 35.75)]
        full = Polygon(SQUARE).area_sqm()
        holed = Polygon(SQUARE, holes=[hole]).area_sqm()
        assert holed == pytest.approx(full * 0.75, rel=0.01)

    def test_area_acres_conversion(self):
        p = Polygon(SQUARE)
        assert p.area_acres() == pytest.approx(p.area_sqm() / 4046.856,
                                               rel=1e-6)

    def test_centroid_of_square(self):
        c = Polygon(SQUARE).centroid()
        assert c.lon == pytest.approx(-99.5)
        assert c.lat == pytest.approx(35.5)

    def test_bbox(self):
        assert Polygon(SQUARE).bbox == BBox(-100, 35, -99, 36)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_simplified_preserves_square(self):
        p = Polygon(SQUARE)
        s = p.simplified(0.01)
        assert len(s.exterior) >= 3
        assert s.area_sqm() == pytest.approx(p.area_sqm(), rel=0.05)


class TestMultiPolygon:
    def test_requires_polygons(self):
        with pytest.raises(ValueError):
            MultiPolygon([])

    def test_contains_any(self):
        a = Polygon(SQUARE)
        b = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        mp = MultiPolygon([a, b])
        assert mp.contains(-99.5, 35.5)
        assert mp.contains(0.5, 0.5)
        assert not mp.contains(-50, 10)

    def test_bbox_union(self):
        a = Polygon(SQUARE)
        b = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        mp = MultiPolygon([a, b])
        assert mp.bbox == BBox(-100, 0, 1, 36)

    def test_area_sum(self):
        a = Polygon(SQUARE)
        mp = MultiPolygon([a, a])
        assert mp.area_sqm() == pytest.approx(2 * a.area_sqm())

    def test_contains_many(self):
        a = Polygon(SQUARE)
        b = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        mp = MultiPolygon([a, b])
        got = mp.contains_many([-99.5, 0.5, 10.0], [35.5, 0.5, 10.0])
        np.testing.assert_array_equal(got, [True, True, False])


class TestSimplifyRing:
    def test_collinear_points_removed(self):
        ring = [(0, 0), (0.5, 0.0), (1, 0), (1, 1), (0, 1)]
        out = simplify_ring(ring, 0.01)
        assert len(out) == 4

    def test_keeps_detail_above_tolerance(self):
        ring = [(0, 0), (0.5, 0.3), (1, 0), (1, 1), (0, 1)]
        out = simplify_ring(ring, 0.05)
        assert len(out) == 5

    def test_zero_tolerance_noop(self):
        ring = np.array([(0, 0), (0.5, 0.0), (1, 0), (1, 1), (0, 1)],
                        dtype=float)
        out = simplify_ring(ring, 0.0)
        assert len(out) == len(ring)

    def test_minimum_vertices(self):
        theta = np.linspace(0, 2 * np.pi, 50, endpoint=False)
        circle = np.column_stack([np.cos(theta), np.sin(theta)])
        out = simplify_ring(circle, 10.0)  # absurd tolerance
        assert len(out) >= 3
