"""Property-based tests (hypothesis) for the geometry engine."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geo.buffer import buffer_point
from repro.geo.geometry import BBox, Polygon, PreparedPolygon, simplify_ring
from repro.geo.index import STRTree, UniformGridIndex
from repro.geo.predicates import (
    point_in_ring,
    points_in_ring,
    prepare_ring,
    ring_area_signed,
)
from repro.geo.projection import CONUS_ALBERS, haversine_m

# Strategies -----------------------------------------------------------

conus_lon = st.floats(min_value=-124.0, max_value=-67.0,
                      allow_nan=False, allow_infinity=False)
conus_lat = st.floats(min_value=25.0, max_value=49.0,
                      allow_nan=False, allow_infinity=False)


@st.composite
def star_rings(draw):
    """Random star-shaped rings (always simple polygons)."""
    n = draw(st.integers(min_value=3, max_value=24))
    cx = draw(st.floats(min_value=-110, max_value=-90))
    cy = draw(st.floats(min_value=30, max_value=45))
    radii = draw(st.lists(
        st.floats(min_value=0.05, max_value=2.0), min_size=n, max_size=n))
    theta = np.linspace(0, 2 * np.pi, n, endpoint=False)
    r = np.asarray(radii)
    return np.column_stack([cx + r * np.cos(theta),
                            cy + r * np.sin(theta)])


# Projection properties ------------------------------------------------

@given(conus_lon, conus_lat)
@settings(max_examples=200, deadline=None)
def test_albers_roundtrip(lon, lat):
    x, y = CONUS_ALBERS.forward(lon, lat)
    lon2, lat2 = CONUS_ALBERS.inverse(x, y)
    assert abs(lon2 - lon) < 1e-8
    assert abs(lat2 - lat) < 1e-8


@given(conus_lon, conus_lat, conus_lon, conus_lat)
@settings(max_examples=100, deadline=None)
def test_haversine_symmetry_and_triangle(lon1, lat1, lon2, lat2):
    d12 = haversine_m(lon1, lat1, lon2, lat2)
    d21 = haversine_m(lon2, lat2, lon1, lat1)
    assert abs(d12 - d21) < 1e-6
    assert d12 >= 0.0
    # triangle inequality through a midpoint
    mid_lon = (lon1 + lon2) / 2
    mid_lat = (lat1 + lat2) / 2
    via = haversine_m(lon1, lat1, mid_lon, mid_lat) \
        + haversine_m(mid_lon, mid_lat, lon2, lat2)
    assert via >= d12 - 1e-6


# Geometry properties ---------------------------------------------------

@given(star_rings())
@settings(max_examples=100, deadline=None)
def test_polygon_normalization_invariants(ring):
    p = Polygon(ring)
    # exterior is CCW after normalization
    assert ring_area_signed(p.exterior) > 0
    # centroid of a star polygon is inside its bbox
    c = p.centroid()
    assert p.bbox.contains(c.lon, c.lat)
    # area non-negative
    assert p.area_sqm() >= 0


@given(star_rings())
@settings(max_examples=60, deadline=None)
def test_winding_does_not_change_area(ring):
    a = Polygon(ring).area_sqm()
    b = Polygon(ring[::-1]).area_sqm()
    assert abs(a - b) <= 1e-6 * max(a, 1.0)


@given(star_rings(), st.floats(min_value=0.001, max_value=0.2))
@settings(max_examples=60, deadline=None)
def test_simplify_never_gains_vertices(ring, tol):
    out = simplify_ring(ring, tol)
    assert 3 <= len(out) <= len(ring)


@given(star_rings())
@settings(max_examples=60, deadline=None)
def test_contains_many_matches_scalar(ring):
    p = Polygon(ring)
    box = p.bbox.expand(0.5)
    rng = np.random.default_rng(0)
    lons = rng.uniform(box.min_lon, box.max_lon, 64)
    lats = rng.uniform(box.min_lat, box.max_lat, 64)
    vec = p.contains_many(lons, lats)
    scalar = np.array([p.contains(lon, lat)
                       for lon, lat in zip(lons, lats)])
    # allow disagreement only exactly on edges (measure-zero; the random
    # draws essentially never land there)
    assert (vec == scalar).all()


@given(star_rings())
@settings(max_examples=40, deadline=None)
def test_points_in_ring_subset_of_bbox(ring):
    box = Polygon(ring).bbox
    rng = np.random.default_rng(1)
    lons = rng.uniform(box.min_lon - 1, box.max_lon + 1, 128)
    lats = rng.uniform(box.min_lat - 1, box.max_lat + 1, 128)
    inside = points_in_ring(lons, lats, ring)
    in_box = box.contains_many(lons, lats)
    assert not (inside & ~in_box).any()


# Prepared-geometry properties ------------------------------------------

@given(star_rings(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_prepared_ring_matches_raw_ring(ring, seed):
    """points_in_ring is bit-identical on prepared and raw rings."""
    prepared = prepare_ring(ring)
    assert ring_area_signed(prepared) == ring_area_signed(ring)
    box = Polygon(ring).bbox.expand(0.5)
    rng = np.random.default_rng(seed)
    lons = rng.uniform(box.min_lon, box.max_lon, 96)
    lats = rng.uniform(box.min_lat, box.max_lat, 96)
    raw = points_in_ring(lons, lats, ring)
    fast = points_in_ring(lons, lats, prepared)
    assert (raw == fast).all()


@given(star_rings(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_prepared_polygon_matches_exhaustive_scan(ring, seed):
    """PreparedPolygon agrees with the scalar exhaustive reference."""
    polygon = Polygon(ring)
    prepared = PreparedPolygon.of(polygon)
    box = polygon.bbox.expand(0.5)
    rng = np.random.default_rng(seed)
    lons = rng.uniform(box.min_lon, box.max_lon, 128)
    lats = rng.uniform(box.min_lat, box.max_lat, 128)
    vec = prepared.contains_many(lons, lats)
    scalar = np.array([prepared.contains(lon, lat)
                       for lon, lat in zip(lons, lats)])
    # Independent oracle: the crossing test over every point with no
    # bbox pre-filter (points outside the bbox are outside the ring, so
    # skipping the filter changes nothing).
    exhaustive = points_in_ring(lons, lats, polygon.exterior)
    assert (vec == scalar).all()
    assert (vec == exhaustive).all()


# Buffer properties -----------------------------------------------------

@given(conus_lon, conus_lat,
       st.floats(min_value=100.0, max_value=50_000.0))
@settings(max_examples=60, deadline=None)
def test_buffer_point_area_scales(lon, lat, radius):
    c = buffer_point(lon, lat, radius, n_vertices=64)
    assert c.area_sqm() == np.pi * radius * radius \
        * (1 + np.clip(c.area_sqm() / (np.pi * radius * radius) - 1,
                       -0.05, 0.05))  # within 5% of pi r^2


# Index properties -------------------------------------------------------

@given(st.integers(min_value=1, max_value=500),
       st.floats(min_value=0.05, max_value=2.0))
@settings(max_examples=40, deadline=None)
def test_grid_index_bbox_query_exact(n, cell):
    rng = np.random.default_rng(n)
    lons = rng.uniform(-110, -100, n)
    lats = rng.uniform(30, 40, n)
    idx = UniformGridIndex(lons, lats, cell_deg=cell)
    box = BBox(-107.0, 33.0, -103.0, 37.0)
    got = set(idx.query_bbox(box).tolist())
    want = set(np.nonzero(box.contains_many(lons, lats))[0].tolist())
    assert got == want


# Predicate properties (point-in-polygon correctness) --------------------

@given(star_rings(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_points_in_ring_matches_scalar_predicate(ring, seed):
    """The vectorized crossing test agrees with the scalar one."""
    box = Polygon(ring).bbox.expand(0.5)
    rng = np.random.default_rng(seed)
    lons = rng.uniform(box.min_lon, box.max_lon, 96)
    lats = rng.uniform(box.min_lat, box.max_lat, 96)
    vec = points_in_ring(lons, lats, ring)
    # point_in_ring additionally treats exact-boundary points as inside;
    # random draws land on edges with probability zero, so any
    # disagreement is a real bug.
    scalar = np.array([point_in_ring(lon, lat, ring)
                       for lon, lat in zip(lons, lats)])
    assert (vec == scalar).all()


@given(star_rings(), st.integers(min_value=0, max_value=2**31 - 1),
       st.floats(min_value=0.05, max_value=1.5))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_grid_index_polygon_query_exact(ring, seed, cell):
    """Every index hit is a true hit; no true hit is missed.

    The oracle is the exhaustive scan (``contains_many`` over all
    points) — exactly the bruteforce side of the runtime differential
    suite, here driven by random polygons and bucket sizes.
    """
    polygon = Polygon(ring)
    rng = np.random.default_rng(seed)
    box = polygon.bbox.expand(1.0)
    lons = rng.uniform(box.min_lon, box.max_lon, 300)
    lats = rng.uniform(box.min_lat, box.max_lat, 300)
    idx = UniformGridIndex(lons, lats, cell_deg=cell)
    got = set(idx.query_polygon(polygon).tolist())
    want = set(np.nonzero(polygon.contains_many(lons, lats))[0].tolist())
    assert got - want == set(), "index returned a false hit"
    assert want - got == set(), "index missed a true hit"


@given(st.integers(min_value=1, max_value=120),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None, derandomize=True)
def test_strtree_query_matches_exhaustive_scan(n, seed):
    """STRTree returns exactly the bboxes an exhaustive scan finds."""
    rng = np.random.default_rng(seed)
    boxes = []
    for i in range(n):
        lon = rng.uniform(-120, -70)
        lat = rng.uniform(25, 48)
        w = rng.uniform(0.01, 4.0)
        h = rng.uniform(0.01, 4.0)
        boxes.append((BBox(lon, lat, lon + w, lat + h), i))
    tree = STRTree(boxes)
    query = BBox(-105.0, 33.0, -95.0, 41.0)
    got = set(tree.query(query))
    want = {payload for bbox, payload in boxes if bbox.intersects(query)}
    assert got == want
