"""Tests for repro.geo.index."""

import numpy as np
import pytest

from repro.geo.geometry import BBox, Polygon
from repro.geo.index import STRTree, UniformGridIndex


@pytest.fixture()
def points(rng):
    lons = rng.uniform(-110, -100, 5000)
    lats = rng.uniform(30, 40, 5000)
    return lons, lats


@pytest.fixture()
def index(points):
    return UniformGridIndex(points[0], points[1], cell_deg=0.5)


class TestUniformGridIndex:
    def test_empty(self):
        idx = UniformGridIndex(np.array([]), np.array([]))
        assert len(idx) == 0
        assert len(idx.query_bbox(BBox(0, 0, 1, 1))) == 0

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros(3), np.zeros(4))

    def test_invalid_cell(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros(1), np.zeros(1), cell_deg=0)

    def test_query_bbox_matches_bruteforce(self, points, index):
        lons, lats = points
        box = BBox(-106, 33, -103, 36)
        got = set(index.query_bbox(box).tolist())
        want = set(np.nonzero(box.contains_many(lons, lats))[0].tolist())
        assert got == want

    def test_query_bbox_disjoint(self, index):
        assert len(index.query_bbox(BBox(0, 0, 1, 1))) == 0

    def test_query_polygon_matches_bruteforce(self, points, index):
        lons, lats = points
        poly = Polygon([(-108, 31), (-102, 33), (-104, 39), (-109, 37)])
        got = set(index.query_polygon(poly).tolist())
        want = set(np.nonzero(poly.contains_many(lons, lats))[0].tolist())
        assert got == want

    def test_query_radius(self, points, index):
        lons, lats = points
        got = set(index.query_radius(-105.0, 35.0, 1.0).tolist())
        d = np.hypot(lons + 105.0, lats - 35.0)
        want = set(np.nonzero(d <= 1.0)[0].tolist())
        assert got == want

    def test_all_points_in_full_bbox(self, points, index):
        lons, lats = points
        box = BBox(lons.min(), lats.min(), lons.max(), lats.max())
        assert len(index.query_bbox(box)) == len(lons)

    def test_single_point(self):
        idx = UniformGridIndex(np.array([-100.0]), np.array([40.0]))
        assert idx.query_bbox(BBox(-101, 39, -99, 41)).tolist() == [0]

    def test_bucket_range_clamped_to_grid(self, index):
        """An oversized query bbox clamps on all four window edges."""
        big = BBox(-500.0, -500.0, 500.0, 500.0)
        c0, c1, r0, r1 = index._bucket_range(big)
        assert c0 == 0 and r0 == 0
        assert c1 == index._ncols - 1
        assert r1 == index._nrows - 1
        # and the clamped window still returns every point
        assert len(index.query_bbox(big)) == len(index)

    def test_csr_layout_invariants(self, points, index):
        """Bucket pointers partition the point set exactly."""
        ptr = index._bucket_ptr
        assert ptr[0] == 0 and ptr[-1] == len(index)
        assert (np.diff(ptr) > 0).all()      # only occupied buckets stored
        assert len(index._uniq_keys) == len(ptr) - 1
        assert (np.diff(index._uniq_keys) > 0).all()
        assert sorted(index._order.tolist()) == list(range(len(index)))

    def test_bbox_queries_counted_before_early_returns(self, index):
        """Disjoint and empty-bucket queries still count as queries."""
        from repro.runtime.stats import STATS

        before = STATS.snapshot()
        index.query_bbox(BBox(10.0, 10.0, 11.0, 11.0))   # disjoint
        empty_idx = UniformGridIndex(np.array([]), np.array([]))
        empty_idx.query_bbox(BBox(0, 0, 1, 1))           # empty index
        delta = STATS.delta_since(before)
        assert delta["counters"].get("index.bbox_queries", 0) == 2


class TestQueryPolygonDelta:
    """The dirty-bucket delta path vs the batch polygon query."""

    OUTER = [(-108.0, 31.0), (-102.0, 33.0), (-104.0, 39.0),
             (-109.0, 37.0)]

    def _nested(self, fraction=0.6):
        pts = np.asarray(self.OUTER, dtype=float)
        center = pts.mean(axis=0)
        inner = center + fraction * (pts - center)
        return Polygon([tuple(p) for p in inner]), Polygon(self.OUTER)

    def test_bit_identical_to_batch(self, index):
        inner, outer = self._nested()
        prev = index.query_polygon(inner)
        assert len(prev) > 0
        got = index.query_polygon_delta(outer, prev)
        want = index.query_polygon(outer)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)     # values AND order

    def test_empty_prev_matches_batch(self, index):
        _, outer = self._nested()
        got = index.query_polygon_delta(
            outer, np.empty(0, dtype=np.int64))
        want = index.query_polygon(outer)
        assert np.array_equal(got, want)

    def test_identity_growth(self, index):
        """prev == the polygon's own answer: result unchanged."""
        _, outer = self._nested()
        prev = index.query_polygon(outer)
        got = index.query_polygon_delta(outer, prev)
        assert np.array_equal(got, prev)

    def test_disjoint_polygon(self, index):
        poly = Polygon([(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)])
        got = index.query_polygon_delta(
            poly, np.empty(0, dtype=np.int64))
        assert len(got) == 0

    def test_counter_parity_with_batch(self, index):
        from repro.runtime.stats import STATS

        inner, outer = self._nested()
        prev = index.query_polygon(inner)

        before = STATS.snapshot()
        index.query_polygon(outer)
        full = STATS.delta_since(before)["counters"]

        before = STATS.snapshot()
        index.query_polygon_delta(outer, prev)
        delta = STATS.delta_since(before)["counters"]

        for key in ("index.bbox_queries", "index.polygon_queries",
                    "index.candidates", "index.hits",
                    "index.pip_hits"):
            assert delta.get(key, 0) == full.get(key, 0), key
        # Only the unanswered candidates pay a point-in-polygon test;
        # the skipped tests are exactly the answered footprint.
        assert delta.get("index.pip_skipped", 0) == len(prev)
        assert delta.get("index.pip_tests", 0) + len(prev) \
            == full.get("index.pip_tests", 0)
        assert delta.get("index.pip_tests", 0) \
            < full.get("index.pip_tests", 0)
        assert delta.get("index.delta_queries", 0) == 1
        assert full.get("index.delta_queries", 0) == 0

    def test_bucket_accounting(self, index):
        from repro.runtime.stats import STATS

        inner, outer = self._nested()
        prev = index.query_polygon(inner)
        before = STATS.snapshot()
        index.query_polygon_delta(outer, prev)
        counters = STATS.delta_since(before)["counters"]
        dirty = counters.get("index.dirty_buckets", 0)
        skipped = counters.get("index.skipped_buckets", 0)
        assert dirty > 0
        # dirty + skipped covers exactly the occupied candidate
        # buckets of the grown perimeter's bbox window.
        _, _, nbuckets = index._candidate_runs(outer.bbox)
        assert dirty + skipped == int(nbuckets.sum())

    def test_random_growth_sequences(self, points, index, rng):
        """Chained delta queries track batch across random growth."""
        lons, lats = points
        for _ in range(5):
            cx = rng.uniform(-108, -102)
            cy = rng.uniform(32, 38)
            pts = np.asarray(self.OUTER, dtype=float)
            pts = np.array([cx, cy]) + 0.4 * (pts - pts.mean(axis=0))
            fractions = sorted(rng.uniform(0.2, 1.0, size=4))
            prev = None
            for f in fractions:
                ring = np.array([cx, cy]) \
                    + f * (pts - np.array([cx, cy]))
                poly = Polygon([tuple(p) for p in ring])
                if prev is None:
                    prev = index.query_polygon(poly)
                else:
                    prev = index.query_polygon_delta(poly, prev)
                want = np.nonzero(
                    poly.contains_many(lons, lats))[0]
                assert np.array_equal(np.sort(prev), want)


class TestQueryRadiusCounters:
    """query_radius on the CSR fast path: counter + result parity."""

    def test_counts_match_bbox_prefilter(self, points, index):
        from repro.runtime.stats import STATS

        lon, lat, r = -105.0, 35.0, 1.0
        before = STATS.snapshot()
        got = index.query_radius(lon, lat, r)
        counters = STATS.delta_since(before)["counters"]

        bbox = BBox(lon - r, lat - r, lon + r, lat + r)
        starts, ends, _ = index._candidate_runs(bbox)
        n_cand = int((ends - starts).sum())
        lons, lats = points
        in_box = int(bbox.contains_many(lons, lats).sum())
        assert counters.get("index.bbox_queries", 0) == 1
        assert counters.get("index.candidates", 0) == n_cand
        assert counters.get("index.hits", 0) == in_box
        assert len(got) <= in_box

    def test_disjoint_radius_counts_query(self, index):
        from repro.runtime.stats import STATS

        before = STATS.snapshot()
        got = index.query_radius(50.0, 50.0, 1.0)
        counters = STATS.delta_since(before)["counters"]
        assert len(got) == 0
        assert counters.get("index.bbox_queries", 0) == 1

    def test_radius_order_matches_bbox_path(self, index):
        """Same output order as filtering the bbox query (the old
        implementation), so the fast path is a drop-in."""
        lon, lat, r = -105.0, 35.0, 2.0
        got = index.query_radius(lon, lat, r)
        cand = index.query_bbox(BBox(lon - r, lat - r,
                                     lon + r, lat + r))
        d = np.hypot(index.lons[cand] - lon, index.lats[cand] - lat)
        assert np.array_equal(got, cand[d <= r])


class TestSTRTree:
    def _boxes(self, rng, n=200):
        out = []
        for i in range(n):
            x = rng.uniform(-110, -100)
            y = rng.uniform(30, 40)
            w = rng.uniform(0.1, 1.0)
            h = rng.uniform(0.1, 1.0)
            out.append((BBox(x, y, x + w, y + h), i))
        return out

    def test_empty(self):
        tree = STRTree([])
        assert tree.query(BBox(0, 0, 1, 1)) == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            STRTree([], node_capacity=1)

    def test_query_matches_bruteforce(self, rng):
        items = self._boxes(rng)
        tree = STRTree(items)
        query = BBox(-106, 33, -104, 36)
        got = set(tree.query(query))
        want = {payload for box, payload in items
                if box.intersects(query)}
        assert got == want

    def test_query_point(self, rng):
        items = self._boxes(rng)
        tree = STRTree(items)
        got = set(tree.query_point(-105.0, 35.0))
        want = {payload for box, payload in items
                if box.contains(-105.0, 35.0)}
        assert got == want

    def test_single_item(self):
        tree = STRTree([(BBox(0, 0, 1, 1), "only")])
        assert tree.query(BBox(0.5, 0.5, 0.6, 0.6)) == ["only"]
        assert tree.query(BBox(2, 2, 3, 3)) == []

    def test_all_returned_for_huge_query(self, rng):
        items = self._boxes(rng, n=100)
        tree = STRTree(items)
        assert len(tree.query(BBox(-120, 20, -90, 50))) == 100
