"""Tests for repro.geo.index."""

import numpy as np
import pytest

from repro.geo.geometry import BBox, Polygon
from repro.geo.index import STRTree, UniformGridIndex


@pytest.fixture()
def points(rng):
    lons = rng.uniform(-110, -100, 5000)
    lats = rng.uniform(30, 40, 5000)
    return lons, lats


@pytest.fixture()
def index(points):
    return UniformGridIndex(points[0], points[1], cell_deg=0.5)


class TestUniformGridIndex:
    def test_empty(self):
        idx = UniformGridIndex(np.array([]), np.array([]))
        assert len(idx) == 0
        assert len(idx.query_bbox(BBox(0, 0, 1, 1))) == 0

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros(3), np.zeros(4))

    def test_invalid_cell(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros(1), np.zeros(1), cell_deg=0)

    def test_query_bbox_matches_bruteforce(self, points, index):
        lons, lats = points
        box = BBox(-106, 33, -103, 36)
        got = set(index.query_bbox(box).tolist())
        want = set(np.nonzero(box.contains_many(lons, lats))[0].tolist())
        assert got == want

    def test_query_bbox_disjoint(self, index):
        assert len(index.query_bbox(BBox(0, 0, 1, 1))) == 0

    def test_query_polygon_matches_bruteforce(self, points, index):
        lons, lats = points
        poly = Polygon([(-108, 31), (-102, 33), (-104, 39), (-109, 37)])
        got = set(index.query_polygon(poly).tolist())
        want = set(np.nonzero(poly.contains_many(lons, lats))[0].tolist())
        assert got == want

    def test_query_radius(self, points, index):
        lons, lats = points
        got = set(index.query_radius(-105.0, 35.0, 1.0).tolist())
        d = np.hypot(lons + 105.0, lats - 35.0)
        want = set(np.nonzero(d <= 1.0)[0].tolist())
        assert got == want

    def test_all_points_in_full_bbox(self, points, index):
        lons, lats = points
        box = BBox(lons.min(), lats.min(), lons.max(), lats.max())
        assert len(index.query_bbox(box)) == len(lons)

    def test_single_point(self):
        idx = UniformGridIndex(np.array([-100.0]), np.array([40.0]))
        assert idx.query_bbox(BBox(-101, 39, -99, 41)).tolist() == [0]

    def test_bucket_range_clamped_to_grid(self, index):
        """An oversized query bbox clamps on all four window edges."""
        big = BBox(-500.0, -500.0, 500.0, 500.0)
        c0, c1, r0, r1 = index._bucket_range(big)
        assert c0 == 0 and r0 == 0
        assert c1 == index._ncols - 1
        assert r1 == index._nrows - 1
        # and the clamped window still returns every point
        assert len(index.query_bbox(big)) == len(index)

    def test_csr_layout_invariants(self, points, index):
        """Bucket pointers partition the point set exactly."""
        ptr = index._bucket_ptr
        assert ptr[0] == 0 and ptr[-1] == len(index)
        assert (np.diff(ptr) > 0).all()      # only occupied buckets stored
        assert len(index._uniq_keys) == len(ptr) - 1
        assert (np.diff(index._uniq_keys) > 0).all()
        assert sorted(index._order.tolist()) == list(range(len(index)))

    def test_bbox_queries_counted_before_early_returns(self, index):
        """Disjoint and empty-bucket queries still count as queries."""
        from repro.runtime.stats import STATS

        before = STATS.snapshot()
        index.query_bbox(BBox(10.0, 10.0, 11.0, 11.0))   # disjoint
        empty_idx = UniformGridIndex(np.array([]), np.array([]))
        empty_idx.query_bbox(BBox(0, 0, 1, 1))           # empty index
        delta = STATS.delta_since(before)
        assert delta["counters"].get("index.bbox_queries", 0) == 2


class TestSTRTree:
    def _boxes(self, rng, n=200):
        out = []
        for i in range(n):
            x = rng.uniform(-110, -100)
            y = rng.uniform(30, 40)
            w = rng.uniform(0.1, 1.0)
            h = rng.uniform(0.1, 1.0)
            out.append((BBox(x, y, x + w, y + h), i))
        return out

    def test_empty(self):
        tree = STRTree([])
        assert tree.query(BBox(0, 0, 1, 1)) == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            STRTree([], node_capacity=1)

    def test_query_matches_bruteforce(self, rng):
        items = self._boxes(rng)
        tree = STRTree(items)
        query = BBox(-106, 33, -104, 36)
        got = set(tree.query(query))
        want = {payload for box, payload in items
                if box.intersects(query)}
        assert got == want

    def test_query_point(self, rng):
        items = self._boxes(rng)
        tree = STRTree(items)
        got = set(tree.query_point(-105.0, 35.0))
        want = {payload for box, payload in items
                if box.contains(-105.0, 35.0)}
        assert got == want

    def test_single_item(self):
        tree = STRTree([(BBox(0, 0, 1, 1), "only")])
        assert tree.query(BBox(0.5, 0.5, 0.6, 0.6)) == ["only"]
        assert tree.query(BBox(2, 2, 3, 3)) == []

    def test_all_returned_for_huge_query(self, rng):
        items = self._boxes(rng, n=100)
        tree = STRTree(items)
        assert len(tree.query(BBox(-120, 20, -90, 50))) == 100
