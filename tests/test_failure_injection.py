"""Failure-injection tests: malformed inputs and hostile edge cases.

A production library fails loudly and specifically on bad inputs rather
than producing silently-wrong geography.  These tests feed each loader
and pipeline deliberately broken data.
"""

import numpy as np
import pytest

from repro.data.cells import CellUniverse
from repro.data.dirs import simulate_dirs
from repro.data.universe import SyntheticUS, UniverseConfig
from repro.geo.geojson import geometry_from_geojson, load_features
from repro.geo.geometry import BBox, LineString, Polygon
from repro.geo.raster import GridSpec


class TestMalformedCsv:
    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("radio,mcc\nLTE,310\n")
        with pytest.raises(KeyError):
            CellUniverse.from_csv(path)

    def test_non_numeric_coordinates(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("radio,mcc,net,area,cell,lon,lat\n"
                        "LTE,310,410,1,1,oops,34.0\n")
        with pytest.raises(ValueError):
            CellUniverse.from_csv(path)

    def test_unknown_radio_maps_to_gsm(self, tmp_path):
        """Unknown radio strings degrade gracefully (code 0 = GSM),
        mirroring how OpenCelliD rows with odd radios are ingested."""
        path = tmp_path / "odd.csv"
        path.write_text("radio,mcc,net,area,cell,lon,lat\n"
                        "WIMAX,310,410,1,1,-100.0,34.0\n")
        cells = CellUniverse.from_csv(path)
        assert cells.radio[0] == 0

    def test_unknown_plmn_becomes_others(self, tmp_path):
        path = tmp_path / "foreign.csv"
        path.write_text("radio,mcc,net,area,cell,lon,lat\n"
                        "LTE,208,1,1,1,-100.0,34.0\n")
        cells = CellUniverse.from_csv(path)
        from repro.data.cells import PROVIDER_GROUPS
        assert PROVIDER_GROUPS[cells.provider_group[0]] == "Others"

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("radio,mcc,net,area,cell,lon,lat\n")
        cells = CellUniverse.from_csv(path)
        assert len(cells) == 0


class TestMalformedGeoJson:
    def test_not_a_collection(self, tmp_path):
        path = tmp_path / "bad.geojson"
        path.write_text('{"type": "Polygon", "coordinates": []}')
        with pytest.raises(ValueError):
            load_features(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.geojson"
        path.write_text("{not json")
        with pytest.raises(Exception):
            load_features(path)

    def test_degenerate_polygon_rejected(self):
        with pytest.raises(ValueError):
            geometry_from_geojson({"type": "Polygon",
                                   "coordinates": [[[0, 0], [1, 1]]]})

    def test_geometry_collection_unsupported(self):
        with pytest.raises(ValueError):
            geometry_from_geojson({"type": "GeometryCollection",
                                   "geometries": []})


class TestDegenerateGeometry:
    def test_collinear_ring_degrades_gracefully(self):
        """A lon/lat-collinear ring never crashes and never claims
        points off its line.  (Its area is small but nonzero: straight
        lines in degree space are curves on the equal-area plane.)"""
        poly = Polygon([(0, 0), (1, 1), (2, 2)])
        assert not poly.contains(0.5, 0.7)
        assert not poly.contains(1.5, 0.5)
        # far smaller than a real triangle spanning the same bbox
        real = Polygon([(0, 0), (2, 0), (2, 2)])
        assert poly.area_sqm() < 0.05 * real.area_sqm()

    def test_self_closing_two_point_ring(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1), (0, 0)])

    def test_linestring_single_point(self):
        with pytest.raises(ValueError):
            LineString([(0, 0)])

    def test_bbox_nan_behavior(self):
        box = BBox(0, 0, 1, 1)
        assert not box.contains(float("nan"), 0.5)

    def test_grid_negative_resolution(self):
        with pytest.raises(ValueError):
            GridSpec(BBox(0, 0, 1, 1), -0.1)


class TestHostileConfigs:
    def test_single_transceiver_universe(self):
        u = SyntheticUS(UniverseConfig(n_transceivers=1,
                                       whp_resolution_deg=0.25))
        assert len(u.cells) == 1

    def test_dirs_with_no_fires(self):
        from repro.data import small_universe
        u = small_universe()
        sim = simulate_dirs(u.cells, [], seed=1)
        assert all(r.sites_out_damage == 0 for r in sim.reports)

    def test_overlay_empty_universe(self):
        from repro.core.overlay import overlay_fires
        from repro.data import small_universe
        empty = CellUniverse(
            lons=np.empty(0), lats=np.empty(0),
            site_ids=np.empty(0, dtype=np.int64),
            mcc=np.empty(0, dtype=np.int32),
            mnc=np.empty(0, dtype=np.int32),
            provider_group=np.empty(0, dtype=np.int8),
            radio=np.empty(0, dtype=np.int8))
        fires = small_universe().fire_season(2010).fires[:5]
        result = overlay_fires(empty, fires)
        assert result.n_in_perimeter == 0
