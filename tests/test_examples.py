"""Smoke tests for the example scripts.

Each example is compiled and imported (not executed — they build their
own universes and are exercised manually / in docs).  This catches API
drift between the library and the examples without the runtime cost.
"""

import importlib.util
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples")
                  .glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), path.name


def test_at_least_six_examples():
    assert len(EXAMPLES) >= 6
