"""Property-based tests (hypothesis) on core data structures.

These exercise invariants across randomized parameters rather than
fixed fixtures: fire-size rescaling, star-polygon areas, county
categorization, DIRS accounting, raster dilation monotonicity, and the
escape model's probability algebra.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.escape import EscapeModel
from repro.data.counties import PopCategory, categorize_population
from repro.data.wildfires import _pareto_sizes, star_polygon
from repro.geo.geometry import BBox
from repro.geo.raster import GridSpec, Raster, disk_footprint


# Fire sizes -------------------------------------------------------------

@given(st.integers(min_value=1, max_value=2000),
       st.floats(min_value=1e4, max_value=1e7),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_pareto_sizes_sum_exact(n, total, seed):
    rng = np.random.default_rng(seed)
    sizes = _pareto_sizes(n, total, rng)
    assert len(sizes) == n
    assert abs(sizes.sum() - total) < 1e-6 * total
    assert (sizes > 0).all()


@given(st.floats(min_value=100.0, max_value=200_000.0),
       st.floats(min_value=-120.0, max_value=-80.0),
       st.floats(min_value=28.0, max_value=47.0),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_star_polygon_area_invariant(acres, lon, lat, seed):
    rng = np.random.default_rng(seed)
    poly = star_polygon(lon, lat, acres, rng)
    assert abs(poly.area_acres() - acres) <= 0.05 * acres
    assert poly.contains(lon, lat)


# County categorization ---------------------------------------------------

@given(st.integers(min_value=0, max_value=20_000_000))
@settings(max_examples=200, deadline=None)
def test_categorize_population_monotone(pop):
    cat = categorize_population(pop)
    bigger = categorize_population(pop + 100_000)
    assert int(bigger) >= int(cat)


@given(st.integers(min_value=0, max_value=20_000_000))
@settings(max_examples=100, deadline=None)
def test_categorize_population_total(pop):
    assert categorize_population(pop) in PopCategory


# Raster dilation ---------------------------------------------------------

@given(st.integers(min_value=0, max_value=19),
       st.integers(min_value=0, max_value=19),
       st.floats(min_value=100.0, max_value=60_000.0))
@settings(max_examples=60, deadline=None)
def test_dilation_is_extensive_and_monotone(row, col, radius):
    grid = GridSpec(BBox(-101.0, 34.0, -99.0, 36.0), 0.1)
    raster = Raster(grid)
    mask = np.zeros(grid.shape, dtype=bool)
    mask[row, col] = True
    grown = raster.dilate_mask(mask, radius)
    # extensive: contains the original
    assert grown[row, col]
    assert (grown | mask).sum() == grown.sum()
    # monotone in radius
    bigger = raster.dilate_mask(mask, radius * 2 + 1)
    assert (bigger | grown).sum() == bigger.sum()


@given(st.floats(min_value=0.0, max_value=6.0),
       st.floats(min_value=0.0, max_value=6.0))
@settings(max_examples=60, deadline=None)
def test_disk_footprint_symmetry(rx, ry):
    fp = disk_footprint(rx, ry)
    assert fp[fp.shape[0] // 2, fp.shape[1] // 2]
    np.testing.assert_array_equal(fp, fp[::-1, :])
    np.testing.assert_array_equal(fp, fp[:, ::-1])


# Escape model ------------------------------------------------------------

@given(st.floats(min_value=0.2, max_value=1.5),
       st.floats(min_value=10.0, max_value=1000.0))
@settings(max_examples=60, deadline=None)
def test_escape_exceedance_bounds(alpha, s_min):
    model = EscapeModel(alpha=alpha, s_min_acres=s_min,
                        s_max_acres=s_min * 1000)
    sizes = np.geomspace(s_min / 2, s_min * 2000, 30)
    probs = [model.exceedance(float(s)) for s in sizes]
    assert all(0.0 <= p <= 1.0 for p in probs)
    assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))


@given(st.floats(min_value=100.0, max_value=1e6))
@settings(max_examples=60, deadline=None)
def test_escape_radius_roundtrip(acres):
    model = EscapeModel()
    r = model.radius_m(acres)
    assert abs(np.pi * r * r - acres * 4046.8564224) \
        <= 1e-6 * acres * 4046.8564224
