"""Property-based tests (hypothesis) for the packed-cells layer.

Two invariants guard the shared-memory fast path:

* pack -> unpack is lossless for every ``CellUniverse`` column at the
  dtypes ``PACK_DTYPES`` chooses (``pack_cells`` refuses any universe
  where narrowing would lose bits, so the round trip is exact by
  construction — these tests confirm the refusal actually fires);
* a grid index rehydrated from packed CSR arrays answers every query
  exactly like a freshly built index over the same coordinates.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.cells import CellUniverse
from repro.data.packed import pack_cells, unpack_cells, unpack_index
from repro.geo.geometry import BBox, Polygon
from repro.geo.index import UniformGridIndex

import pytest

# Strategies -----------------------------------------------------------

_seeds = st.integers(min_value=0, max_value=2**31 - 1)
_sizes = st.integers(min_value=1, max_value=400)


def _universe(seed: int, n: int, wide_ids: bool = False) -> CellUniverse:
    rng = np.random.default_rng(seed)
    site_dtype = np.int64
    site_ids = rng.integers(0, 2**40 if wide_ids else 2**31 - 1, n,
                            dtype=site_dtype)
    return CellUniverse(
        lons=rng.uniform(-124.0, -67.0, n),
        lats=rng.uniform(25.0, 49.0, n),
        site_ids=site_ids,
        mcc=rng.integers(200, 750, n, dtype=np.int32),
        mnc=rng.integers(0, 999, n, dtype=np.int32),
        provider_group=rng.integers(0, 5, n, dtype=np.int8),
        radio=rng.integers(0, 4, n, dtype=np.int8),
    )


# Pack / unpack round trip ---------------------------------------------

@given(_seeds, _sizes, st.booleans())
@settings(max_examples=25, deadline=None)
def test_pack_unpack_lossless(seed, n, wide_ids):
    cells = _universe(seed, n, wide_ids=wide_ids)
    pack = pack_cells(cells, cell_deg=0.5)
    back = unpack_cells(pack)
    for field in ("lons", "lats", "site_ids", "mcc", "mnc",
                  "provider_group", "radio"):
        a = getattr(cells, field)
        b = getattr(back, field)
        assert a.dtype == b.dtype, field
        assert np.array_equal(a, b), field
    # coordinates must stay float64: PIP arithmetic is bit-sensitive
    assert pack.arrays["lons"].dtype == np.float64
    assert pack.arrays["lats"].dtype == np.float64
    # ids narrow to int32 exactly when the values fit
    expected = np.int64 if wide_ids and cells.site_ids.max() >= 2**31 \
        else np.int32
    assert pack.arrays["site_ids"].dtype == expected
    assert len(pack) == len(cells)
    assert pack.token == cells.content_token()


def test_pack_rejects_lossy_columns():
    cells = _universe(0, 10)
    bad = CellUniverse(
        lons=cells.lons, lats=cells.lats, site_ids=cells.site_ids,
        mcc=cells.mcc.astype(np.int64) * 2**33,  # overflows int32
        mnc=cells.mnc, provider_group=cells.provider_group,
        radio=cells.radio)
    with pytest.raises(ValueError, match="mcc"):
        pack_cells(bad, cell_deg=0.5)


# Packed index == fresh index ------------------------------------------

@given(_seeds, st.integers(min_value=2, max_value=300))
@settings(max_examples=25, deadline=None)
def test_packed_index_answers_queries_identically(seed, n):
    cells = _universe(seed, n)
    pack = pack_cells(cells, cell_deg=0.5)
    adopted = unpack_index(pack.arrays)
    fresh = UniformGridIndex(cells.lons, cells.lats, 0.5)

    rng = np.random.default_rng(seed + 17)
    for _ in range(5):
        lon = rng.uniform(-123.0, -68.0)
        lat = rng.uniform(26.0, 48.0)
        w = rng.uniform(0.01, 6.0)
        h = rng.uniform(0.01, 6.0)
        bbox = BBox(lon, lat, lon + w, lat + h)
        assert np.array_equal(np.sort(adopted.query_bbox(bbox)),
                              np.sort(fresh.query_bbox(bbox)))

    # a triangle over the data extent exercises the PIP stage too
    tri = Polygon(np.array([
        [cells.lons.min(), cells.lats.min()],
        [cells.lons.max(), cells.lats.min()],
        [cells.lons.mean(), cells.lats.max()],
        [cells.lons.min(), cells.lats.min()],
    ]))
    assert np.array_equal(np.sort(adopted.query_polygon(tri)),
                          np.sort(fresh.query_polygon(tri)))


@given(_seeds)
@settings(max_examples=10, deadline=None)
def test_packed_index_roundtrip_arrays_exact(seed):
    """to_arrays -> from_arrays preserves every CSR array bitwise."""
    cells = _universe(seed, 64)
    fresh = UniformGridIndex(cells.lons, cells.lats, 0.5)
    adopted = UniformGridIndex.from_arrays(fresh.to_arrays())
    for name in ("lons", "lats", "_order", "_uniq_keys", "_bucket_ptr",
                 "_slons", "_slats"):
        assert np.array_equal(getattr(adopted, name),
                              getattr(fresh, name)), name
    assert adopted.cell_deg == fresh.cell_deg
    assert adopted.bbox == fresh.bbox
