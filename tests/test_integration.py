"""Cross-module integration tests.

These run the paper's pipelines end-to-end on the shared small universe
and check the relationships *between* results — the consistency
properties a reader would assume hold across tables and figures.
"""

import numpy as np
import pytest

from repro import (
    city_very_high_counts,
    hazard_analysis,
    historical_analysis,
    metro_risk_analysis,
    population_impact_analysis,
    provider_risk_analysis,
    technology_risk_analysis,
    total_in_perimeters,
    validate_whp_2019,
)
from repro.data import small_universe


@pytest.fixture(scope="session")
def universe():
    return small_universe()


@pytest.fixture(scope="module")
def hazard(universe):
    return hazard_analysis(universe)


class TestCrossTableConsistency:
    def test_table2_sums_to_figure7(self, universe, hazard):
        """Provider rows partition the universe, so Table 2 column sums
        must equal the Figure 7 class counts."""
        rows = provider_risk_analysis(universe)
        assert sum(r.moderate for r in rows) \
            == pytest.approx(hazard.class_counts["Moderate"], abs=5)
        assert sum(r.very_high for r in rows) \
            == pytest.approx(hazard.class_counts["Very High"], abs=5)

    def test_table3_sums_to_figure7(self, universe, hazard):
        """Radio types partition the universe too."""
        rows = technology_risk_analysis(universe)
        assert sum(r.moderate for r in rows) \
            == pytest.approx(hazard.class_counts["Moderate"], abs=5)
        assert sum(r.high for r in rows) \
            == pytest.approx(hazard.class_counts["High"], abs=5)

    def test_figure10_bounded_by_figure7(self, universe, hazard):
        """County-bucketed at-risk counts cannot exceed the national
        at-risk total."""
        impact = population_impact_analysis(universe)
        assert impact.at_risk_in_pop_counties <= hazard.at_risk_total

    def test_metro_totals_bounded(self, universe, hazard):
        """Metro-assigned at-risk counts are a subset of national."""
        rows = metro_risk_analysis(universe)
        assert sum(r.total for r in rows) <= hazard.at_risk_total * 1.01

    def test_city_vh_bounded_by_vh_class(self, universe, hazard):
        counts = city_very_high_counts(universe)
        assert sum(counts.values()) \
            <= hazard.class_counts["Very High"] * 1.01

    def test_state_population_sums(self, hazard):
        pops = sum(s.population for s in hazard.states)
        assert 3.1e8 < pops < 3.4e8


class TestHeadlineClaims:
    """The abstract's quantitative claims, as loose shape assertions."""

    def test_states_with_largest_risk(self, hazard):
        """'California, Florida and Texas as the three states with the
        largest number of cell transceivers at risk' — allow one
        neighbor swap at synthetic scale."""
        top4 = [s.state for s in hazard.states[:4]]
        assert top4[0] == "CA"
        assert "FL" in top4
        assert "TX" in top4[:4] or "AZ" in top4

    def test_over_400k_at_risk(self, hazard):
        """'over 430,800 cell transceivers are within moderate to very
        high risk areas'."""
        assert hazard.at_risk_total > 300_000

    def test_wide_historical_variability(self, universe):
        rows = historical_analysis(universe)
        counts = [r.transceivers_in_perimeters_scaled for r in rows]
        assert max(counts) > 3 * (np.median(counts) + 1)

    def test_27000_in_perimeters(self, universe):
        total, _ = total_in_perimeters(universe)
        assert total > 10_000  # paper: >27,000

    def test_validation_misses_exist(self, universe):
        """§3.4: WHP alone under-predicts in-perimeter infrastructure."""
        v = validate_whp_2019(universe, oversample=8)
        assert v.missed > 0


class TestDeterminism:
    def test_analyses_are_deterministic(self, universe):
        a = hazard_analysis(universe)
        b = hazard_analysis(universe)
        assert a.class_counts == b.class_counts

    def test_fire_overlay_deterministic(self, universe):
        t1, _ = total_in_perimeters(universe)
        t2, _ = total_in_perimeters(universe)
        assert t1 == t2
