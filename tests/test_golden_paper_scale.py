"""Golden tests at paper scale (env-gated: ``REPRO_PAPER_SCALE=1``).

The seed-scale goldens (:mod:`tests.test_golden_numbers`) pin exact
values at 20k transceivers.  At the full 5,364,949-transceiver paper
universe the *rescaling identities* take over:

* ``universe_scale == 1.0`` — "scaled" and raw counts coincide, so
  every ``*_scaled`` column in Tables 1–3 must equal its raw twin;
* the WHP class counts land on the paper's Figure 7 calibration
  targets (261,569 / 142,968 / 26,307 for Moderate / High / Very
  High) without any rescaling;
* provider and technology *shares* (Tables 2–3) agree with the
  seed-scale distribution — the generators are scale-free in
  distribution, only the counting noise shrinks.

These assertions are tolerance bands, not exact pins: the paper
universe draws 268× more samples from the same distributions, so
point values move while shares and totals stay put.  Run with::

    REPRO_PAPER_SCALE=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_paper_scale.py -q

(~90 s: one-time universe construction dominates.)
"""

from __future__ import annotations

import os

import pytest

from tests.test_golden_numbers import (
    GOLDEN_AT_RISK_TOTAL,
    GOLDEN_PROVIDER_RISK,
    GOLDEN_TECHNOLOGY_RISK,
)

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_PAPER_SCALE"),
    reason="paper-scale goldens are opt-in (REPRO_PAPER_SCALE=1)")

#: Paper Figure 7 / §3.3: transceivers per at-risk WHP class.
PAPER_FIG7_TARGETS = {
    "Moderate": 261_569,
    "High": 142_968,
    "Very High": 26_307,
}
#: Relative tolerance for class counts against the paper's figures.
#: Measured at seed 20190722: within 2.1% on every class.
FIG7_RTOL = 0.10

#: Provider/technology shares may drift this many percentage points
#: from the seed-scale distribution (measured drift: <= 2.6 pp).
SHARE_TOL_PP = 5.0


@pytest.fixture(scope="module")
def paper_universe():
    from repro.data.universe import universe_for_scale

    return universe_for_scale("paper")


@pytest.fixture(scope="module")
def paper_hazard(paper_universe):
    from repro.core import hazard_analysis

    return hazard_analysis(paper_universe)


def test_universe_scale_identity(paper_universe):
    """At paper scale the rescaling factor is exactly 1."""
    cells = paper_universe.cells
    assert len(cells) == 5_364_949
    assert cells.universe_scale == 1.0


def test_table1_scaled_equals_raw(paper_universe):
    """Rescaling identity: every Table 1 row has scaled == raw."""
    from repro.core import historical_analysis

    rows = historical_analysis(paper_universe)
    assert len(rows) == 19
    for r in rows:
        assert r.transceivers_in_perimeters_scaled \
            == r.transceivers_in_perimeters
        # at 5.36M points every tracked season catches transceivers
        assert 100 <= r.transceivers_in_perimeters <= 100_000
    total = sum(r.transceivers_in_perimeters for r in rows)
    assert 20_000 <= total <= 150_000


def test_fig7_class_counts_hit_paper_targets(paper_hazard):
    """The full universe reproduces Figure 7 without rescaling."""
    for name, target in PAPER_FIG7_TARGETS.items():
        got = paper_hazard.class_counts[name]
        assert got == paper_hazard.class_counts_raw[name]
        assert abs(got - target) <= FIG7_RTOL * target, \
            f"{name}: {got} vs paper {target}"
    at_risk = paper_hazard.at_risk_total
    assert abs(at_risk - GOLDEN_AT_RISK_TOTAL) \
        <= 0.15 * GOLDEN_AT_RISK_TOTAL


def test_top_states_stable(paper_hazard):
    """The state ranking's head is scale-invariant."""
    top = [s.state for s in paper_hazard.states[:4]]
    assert top[:3] == ["CA", "FL", "TX"]
    assert "UT" in top


def test_table2_provider_shares_match_seed(paper_universe):
    from repro.core import provider_risk_analysis

    rows = provider_risk_analysis(paper_universe)
    got_totals = {r.provider: r.moderate + r.high + r.very_high
                  for r in rows}
    seed_totals = {p: sum(v) for p, v in GOLDEN_PROVIDER_RISK.items()}
    got_sum = sum(got_totals.values())
    seed_sum = sum(seed_totals.values())
    assert set(got_totals) == set(seed_totals)
    for provider in got_totals:
        got_share = 100.0 * got_totals[provider] / got_sum
        seed_share = 100.0 * seed_totals[provider] / seed_sum
        assert abs(got_share - seed_share) <= SHARE_TOL_PP, provider
    # rescaling identity: fleets sum to the (unscaled) universe size
    assert sum(r.fleet_size for r in rows) == 5_364_949


def test_table3_technology_shares_match_seed(paper_universe):
    from repro.core import technology_risk_analysis

    rows = technology_risk_analysis(paper_universe)
    got = {r.technology: r.total for r in rows}
    got_sum = sum(got.values())
    seed_sum = sum(GOLDEN_TECHNOLOGY_RISK.values())
    assert set(got) == set(GOLDEN_TECHNOLOGY_RISK)
    for tech in got:
        got_share = 100.0 * got[tech] / got_sum
        seed_share = 100.0 * GOLDEN_TECHNOLOGY_RISK[tech] / seed_sum
        assert abs(got_share - seed_share) <= SHARE_TOL_PP, tech


def test_population_served_exceeds_paper_floor(paper_universe,
                                               paper_hazard):
    """§3.3 claims "more than 85 million people"; the full universe
    clears that floor comfortably."""
    from repro.core import population_served_at_risk

    assert population_served_at_risk(paper_universe, paper_hazard) \
        > 85_000_000
