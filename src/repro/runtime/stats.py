"""Lightweight perf instrumentation for the spatial-join runtime.

A process-global :class:`PerfRegistry` accumulates wall-time per named
stage and monotonic counters (index candidates/hits, raster samples,
cache hits/misses).  The hot paths pay one dict update per event; the
registry renders to a human-readable report (``--stats``) and to a
machine-readable snapshot (``BENCH_runtime.json``).

This module must stay import-light (stdlib only): it is imported by the
innermost geometry loops and by worker processes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PerfRegistry", "STATS", "set_trace_channel", "trace_channel"]


#: Optional span transport installed by :func:`repro.obs.enable`.
#: When set, snapshots carry a span high-water mark, deltas carry the
#: spans finished since the mark, and merges adopt worker spans into
#: the parent tracer (re-parented under the span active at the merge
#: site).  ``None`` — the default — keeps every path span-free and
#: adds only a None-check to snapshot/delta/merge.
_TRACE_CHANNEL = None


def set_trace_channel(channel) -> None:
    """Install (or with ``None``, remove) the span transport.

    ``channel`` must provide ``span_count()``, ``export_spans(since)``
    and ``adopt(serialized)`` — :class:`repro.obs.Tracer` does."""
    global _TRACE_CHANNEL
    _TRACE_CHANNEL = channel


def trace_channel():
    return _TRACE_CHANNEL


class PerfRegistry:
    """Accumulates per-stage wall times and named counters."""

    def __init__(self):
        self._timers: dict[str, float] = {}
        self._timer_calls: dict[str, int] = {}
        self._counters: dict[str, int] = {}

    # -- timers --------------------------------------------------------

    @contextmanager
    def timer(self, stage: str):
        """Accumulate wall-clock seconds spent in the ``with`` body."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._timers[stage] = self._timers.get(stage, 0.0) + elapsed
            self._timer_calls[stage] = self._timer_calls.get(stage, 0) + 1

    def add_time(self, stage: str, seconds: float, calls: int = 1) -> None:
        self._timers[stage] = self._timers.get(stage, 0.0) + float(seconds)
        self._timer_calls[stage] = self._timer_calls.get(stage, 0) + calls

    # -- counters ------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + int(n)

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def seconds(self, stage: str) -> float:
        return self._timers.get(stage, 0.0)

    # -- aggregation ---------------------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another registry (e.g. a worker
        process) into this one.  When a trace channel is installed,
        spans riding the snapshot are adopted into the local tracer,
        re-parented under whatever span is open at this merge site."""
        for stage, secs in snapshot.get("timers", {}).items():
            self.add_time(stage, secs,
                          snapshot.get("timer_calls", {}).get(stage, 1))
        for name, n in snapshot.get("counters", {}).items():
            self.count(name, n)
        spans = snapshot.get("spans")
        if spans and _TRACE_CHANNEL is not None:
            _TRACE_CHANNEL.adopt(spans)

    def snapshot(self) -> dict:
        """A JSON-serializable copy of the current state.

        Keys are sorted, so serializing a snapshot (the run-ledger
        manifest, ``BENCH_runtime.json``) yields byte-identical output
        regardless of the order stages and counters first fired in —
        parallel dispatch must not make ledger diffs churn.
        """
        snap = {
            "timers": dict(sorted(self._timers.items())),
            "timer_calls": dict(sorted(self._timer_calls.items())),
            "counters": dict(sorted(self._counters.items())),
        }
        if _TRACE_CHANNEL is not None:
            snap["span_count"] = _TRACE_CHANNEL.span_count()
        return snap

    def delta_since(self, before: dict) -> dict:
        """Snapshot of activity since an earlier :meth:`snapshot`.

        A stage appears in ``timers`` whenever it ran — even when its
        accumulated wall time rounds to exactly 0.0 — so call-count
        activity is never silently dropped; ``timer_calls`` carries the
        matching call deltas.  When a trace channel is active, the
        delta also carries every span finished since ``before`` (the
        worker → parent transport).
        """
        now = self.snapshot()
        timers: dict[str, float] = {}
        timer_calls: dict[str, int] = {}
        for k, v in now["timers"].items():
            dt = v - before["timers"].get(k, 0.0)
            dc = now["timer_calls"].get(k, 0) \
                - before["timer_calls"].get(k, 0)
            if dt > 0.0 or dc > 0:
                timers[k] = dt
                timer_calls[k] = dc
        delta = {
            "timers": timers,
            "timer_calls": timer_calls,
            "counters": {k: v - before["counters"].get(k, 0)
                         for k, v in now["counters"].items()
                         if v - before["counters"].get(k, 0) > 0},
        }
        if _TRACE_CHANNEL is not None:
            delta["spans"] = _TRACE_CHANNEL.export_spans(
                before.get("span_count", 0))
        return delta

    def reset(self) -> None:
        self._timers.clear()
        self._timer_calls.clear()
        self._counters.clear()

    # -- reporting -----------------------------------------------------

    def render(self) -> str:
        """Human-readable report for the CLI ``--stats`` flag.

        Column widths are measured from the content (with the historic
        32/12 minimums), so stage names longer than 32 characters and
        counters past 999,999,999,999 stay aligned instead of
        overflowing their columns.
        """
        lines = ["perf: stage wall times"]
        if not self._timers:
            lines.append("  (no stages timed)")
        stage_w = max([32] + [len(s) for s in self._timers])
        secs_w = max([9] + [len(f"{v:.3f}") for v in
                            self._timers.values()])
        for stage in sorted(self._timers):
            calls = self._timer_calls.get(stage, 1)
            lines.append(f"  {stage:<{stage_w}s} "
                         f"{self._timers[stage]:>{secs_w}.3f}s"
                         f"  ({calls} call{'s' if calls != 1 else ''})")
        lines.append("perf: counters")
        if not self._counters:
            lines.append("  (no counters)")
        name_w = max([32] + [len(n) for n in self._counters])
        val_w = max([12] + [len(f"{v:,d}") for v in
                            self._counters.values()])
        for name in sorted(self._counters):
            lines.append(f"  {name:<{name_w}s} "
                         f"{self._counters[name]:>{val_w},d}")
        hits = self.get("cache.hits")
        misses = self.get("cache.misses")
        if hits + misses:
            lines.append(f"  {'cache hit rate':<{name_w}s} "
                         f"{hits / (hits + misses):>{val_w}.1%}")
        cand = self.get("index.candidates")
        kept = self.get("index.hits")
        if cand:
            lines.append(f"  {'index selectivity':<{name_w}s} "
                         f"{kept / cand:>{val_w}.1%}")
        return "\n".join(lines)


#: Process-global registry used by the package's hot paths.
STATS = PerfRegistry()
