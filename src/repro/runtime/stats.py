"""Lightweight perf instrumentation for the spatial-join runtime.

A process-global :class:`PerfRegistry` accumulates wall-time per named
stage and monotonic counters (index candidates/hits, raster samples,
cache hits/misses).  The hot paths pay one dict update per event; the
registry renders to a human-readable report (``--stats``) and to a
machine-readable snapshot (``BENCH_runtime.json``).

This module must stay import-light (stdlib only): it is imported by the
innermost geometry loops and by worker processes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PerfRegistry", "STATS"]


class PerfRegistry:
    """Accumulates per-stage wall times and named counters."""

    def __init__(self):
        self._timers: dict[str, float] = {}
        self._timer_calls: dict[str, int] = {}
        self._counters: dict[str, int] = {}

    # -- timers --------------------------------------------------------

    @contextmanager
    def timer(self, stage: str):
        """Accumulate wall-clock seconds spent in the ``with`` body."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._timers[stage] = self._timers.get(stage, 0.0) + elapsed
            self._timer_calls[stage] = self._timer_calls.get(stage, 0) + 1

    def add_time(self, stage: str, seconds: float, calls: int = 1) -> None:
        self._timers[stage] = self._timers.get(stage, 0.0) + float(seconds)
        self._timer_calls[stage] = self._timer_calls.get(stage, 0) + calls

    # -- counters ------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + int(n)

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def seconds(self, stage: str) -> float:
        return self._timers.get(stage, 0.0)

    # -- aggregation ---------------------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another registry (e.g. a worker
        process) into this one."""
        for stage, secs in snapshot.get("timers", {}).items():
            self.add_time(stage, secs,
                          snapshot.get("timer_calls", {}).get(stage, 1))
        for name, n in snapshot.get("counters", {}).items():
            self.count(name, n)

    def snapshot(self) -> dict:
        """A JSON-serializable copy of the current state."""
        return {
            "timers": dict(self._timers),
            "timer_calls": dict(self._timer_calls),
            "counters": dict(self._counters),
        }

    def delta_since(self, before: dict) -> dict:
        """Snapshot of activity since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {
            "timers": {k: v - before["timers"].get(k, 0.0)
                       for k, v in now["timers"].items()
                       if v - before["timers"].get(k, 0.0) > 0.0},
            "timer_calls": {k: v - before["timer_calls"].get(k, 0)
                            for k, v in now["timer_calls"].items()
                            if v - before["timer_calls"].get(k, 0) > 0},
            "counters": {k: v - before["counters"].get(k, 0)
                         for k, v in now["counters"].items()
                         if v - before["counters"].get(k, 0) > 0},
        }

    def reset(self) -> None:
        self._timers.clear()
        self._timer_calls.clear()
        self._counters.clear()

    # -- reporting -----------------------------------------------------

    def render(self) -> str:
        """Human-readable report for the CLI ``--stats`` flag."""
        lines = ["perf: stage wall times"]
        if not self._timers:
            lines.append("  (no stages timed)")
        for stage in sorted(self._timers):
            calls = self._timer_calls.get(stage, 1)
            lines.append(f"  {stage:<32s} {self._timers[stage]:9.3f}s"
                         f"  ({calls} call{'s' if calls != 1 else ''})")
        lines.append("perf: counters")
        if not self._counters:
            lines.append("  (no counters)")
        for name in sorted(self._counters):
            lines.append(f"  {name:<32s} {self._counters[name]:>12,d}")
        hits = self.get("cache.hits")
        misses = self.get("cache.misses")
        if hits + misses:
            lines.append(f"  {'cache hit rate':<32s} "
                         f"{hits / (hits + misses):>11.1%}")
        cand = self.get("index.candidates")
        kept = self.get("index.hits")
        if cand:
            lines.append(f"  {'index selectivity':<32s} "
                         f"{kept / cand:>11.1%}")
        return "\n".join(lines)


#: Process-global registry used by the package's hot paths.
STATS = PerfRegistry()
