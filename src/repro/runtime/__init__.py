"""Execution layer for the spatial-join engine.

``repro.runtime`` makes the paper's hot path — point-universe ×
fire-perimeter/raster joins, repeated for every table and figure — run
as fast as the machine allows without changing a single result bit:

* :mod:`.pool` — persistent worker pools (``REPRO_WORKERS``), created
  lazily, keyed by dataset content, and reused across every join of a
  reproduction, with a guaranteed serial fallback;
* :mod:`.dispatch` — the adaptive serial/parallel decision: estimated
  work (points × fires, raster samples) against a measured crossover,
  capped by the machine's core count, so parallel never loses to serial;
* :mod:`.parallel` — one-shot chunked maps (the pre-pool primitive,
  still used for ad-hoc fan-outs);
* :mod:`.cache` — a content-addressed in-memory + on-disk result cache
  keyed by the inputs' bytes, so identical joins are computed once;
* :mod:`.stats` — per-stage wall times and candidate/hit/cache counters
  behind the CLI ``--stats`` report, plus the *trace channel* that lets
  :mod:`repro.obs` ship hierarchical spans from worker processes back
  to the parent through the same snapshot/merge path;
* :mod:`.config` — the process-global knobs wiring it together.

The differential suite in ``tests/runtime/`` proves parallel == serial
== bruteforce on randomized universes.
"""

from .cache import ResultCache, array_token, cache_key, get_cache, set_cache
from .config import (
    RuntimeConfig,
    configure,
    default_cache_dir,
    get_config,
    set_config,
)
from .dispatch import (
    classify_workers,
    cpu_budget,
    delta_workers,
    overlay_workers,
    use_shared_memory,
)
from .parallel import chunk_spans, parallel_map
from .pool import active_pools, get_pool, run_tasks, shutdown_pools
from .shm import (
    ShmField,
    ShmHandle,
    active_segments,
    attach_arrays,
    release_segments,
    share_arrays,
)
from .stats import STATS, PerfRegistry, set_trace_channel, trace_channel

__all__ = [
    "RuntimeConfig", "get_config", "set_config", "configure",
    "default_cache_dir",
    "ResultCache", "cache_key", "array_token", "get_cache", "set_cache",
    "chunk_spans", "parallel_map",
    "active_pools", "get_pool", "run_tasks", "shutdown_pools",
    "cpu_budget", "overlay_workers", "classify_workers",
    "delta_workers", "use_shared_memory",
    "ShmField", "ShmHandle", "share_arrays", "attach_arrays",
    "release_segments", "active_segments",
    "STATS", "PerfRegistry", "set_trace_channel", "trace_channel",
]
