"""Execution layer for the spatial-join engine.

``repro.runtime`` makes the paper's hot path — point-universe ×
fire-perimeter/raster joins, repeated for every table and figure — run
as fast as the machine allows without changing a single result bit:

* :mod:`.parallel` — chunked point partitions mapped over worker
  processes (``REPRO_WORKERS``), with a guaranteed serial fallback;
* :mod:`.cache` — a content-addressed in-memory + on-disk result cache
  keyed by the inputs' bytes, so identical joins are computed once;
* :mod:`.stats` — per-stage wall times and candidate/hit/cache counters
  behind the CLI ``--stats`` report;
* :mod:`.config` — the process-global knobs wiring it together.

The differential suite in ``tests/runtime/`` proves parallel == serial
== bruteforce on randomized universes.
"""

from .cache import ResultCache, array_token, cache_key, get_cache, set_cache
from .config import (
    RuntimeConfig,
    configure,
    default_cache_dir,
    get_config,
    set_config,
)
from .parallel import chunk_spans, parallel_map
from .stats import STATS, PerfRegistry

__all__ = [
    "RuntimeConfig", "get_config", "set_config", "configure",
    "default_cache_dir",
    "ResultCache", "cache_key", "array_token", "get_cache", "set_cache",
    "chunk_spans", "parallel_map",
    "STATS", "PerfRegistry",
]
