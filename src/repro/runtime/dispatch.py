"""Adaptive dispatch: choose serial vs parallel from estimated work.

The old gate ("more than 8k points → fork") made the parallel path a
net loss on every benchmark below full-universe scale: pool creation
plus task shipping costs tens to hundreds of milliseconds, while a
150k-point season overlay finishes serially in under ten.  This module
decides per call whether forking can possibly pay, from three inputs:

* **estimated work** — point-in-polygon work scales with
  ``points × fires`` for the perimeter overlay and with ``points``
  (raster samples) for the WHP classify;
* **the machine** — never resolve more workers than there are CPU
  cores; an oversubscribed pool on a small machine only adds context
  switches to the exact same amount of arithmetic;
* **the crossover** — measured constants expressing how much work a
  fork must amortize before the parallel path breaks even.

The decision is intentionally conservative: below the crossover the
join runs serially on the exact code path the seed implementation used,
so "parallel" can never lose to serial — it simply *is* serial until
the workload is big enough to win.

All knobs are module constants so tests (and unusual deployments) can
patch them; the work floor scales off ``config.MIN_PARALLEL_POINTS``,
which the differential suite already patches to exercise the real pool
machinery on tiny universes.
"""

from __future__ import annotations

import os

from . import config as _config

__all__ = [
    "OVERLAY_WORK_FACTOR",
    "CLASSIFY_WORK_FACTOR",
    "DELTA_WORK_FACTOR",
    "MIN_PARALLEL_FIRES",
    "MIN_PARALLEL_DELTAS",
    "CPU_COUNT_OVERRIDE",
    "SHM_MIN_POINTS",
    "cpu_budget",
    "overlay_workers",
    "classify_workers",
    "delta_workers",
    "use_shared_memory",
]

#: A fork pays off for the perimeter overlay once ``points × fires``
#: exceeds ``MIN_PARALLEL_POINTS × OVERLAY_WORK_FACTOR`` (~100M work
#: units at the default floor — full-universe scale).  Below that the
#: serial join finishes before a pool could even start.
OVERLAY_WORK_FACTOR = 12_288

#: Same crossover for raster classification, in raster samples
#: (~34M points at the default floor).  Sampling is much cheaper per
#: point than point-in-polygon, hence the larger implied universe.
CLASSIFY_WORK_FACTOR = 4_096

#: The delta overlay re-tests only dirty buckets, so per-fire work is a
#: small fraction of a full perimeter join; a fork must amortize over
#: correspondingly more nominal work before it can pay.  4x the overlay
#: crossover keeps typical incident ticks (a handful of grown fronts)
#: on the serial path, where they already finish in milliseconds.
DELTA_WORK_FACTOR = 49_152

#: The overlay shards by fire; fewer perimeters than this cannot feed
#: more than one worker anything useful.
MIN_PARALLEL_FIRES = 2

#: Same for the delta overlay, in changed perimeters per tick.
MIN_PARALLEL_DELTAS = 2

#: Test hook / deployment override for the visible core count.
#: ``None`` means trust ``os.cpu_count()``.
CPU_COUNT_OVERRIDE: int | None = None

#: Below this many points, packing columns into a shared-memory segment
#: costs more than the initializer pickle it replaces; workers then get
#: the dataset the classic way.
SHM_MIN_POINTS = 65_536


def cpu_budget() -> int:
    """Number of CPU cores parallelism may assume."""
    if CPU_COUNT_OVERRIDE is not None:
        return max(1, int(CPU_COUNT_OVERRIDE))
    return os.cpu_count() or 1


def overlay_workers(requested: int, n_points: int, n_fires: int) -> int:
    """Workers to actually use for a perimeter overlay.

    Returns 1 (strictly serial, no pool) unless the estimated work
    clears the crossover *and* the machine has cores to spare.
    """
    floor = _config.MIN_PARALLEL_POINTS
    if requested <= 1 or n_points < floor:
        return 1
    if n_fires < MIN_PARALLEL_FIRES:
        return 1
    if n_points * n_fires < floor * OVERLAY_WORK_FACTOR:
        return 1
    return max(1, min(requested, cpu_budget(), n_fires))


def delta_workers(requested: int, n_points: int, n_deltas: int) -> int:
    """Workers to actually use for a delta (dirty-bucket) overlay tick.

    Mirrors :func:`overlay_workers` with the delta crossover: below it
    the tick runs serially on the exact same delta queries, so a small
    dirty set never pays pool latency.
    """
    floor = _config.MIN_PARALLEL_POINTS
    if requested <= 1 or n_points < floor:
        return 1
    if n_deltas < MIN_PARALLEL_DELTAS:
        return 1
    if n_points * n_deltas < floor * DELTA_WORK_FACTOR:
        return 1
    return max(1, min(requested, cpu_budget(), n_deltas))


def classify_workers(requested: int, n_points: int,
                     chunk_size: int) -> int:
    """Workers to actually use for a raster classification."""
    floor = _config.MIN_PARALLEL_POINTS
    if requested <= 1 or n_points < floor:
        return 1
    if n_points < floor * CLASSIFY_WORK_FACTOR:
        return 1
    n_chunks = -(-n_points // chunk_size)
    return max(1, min(requested, cpu_budget(), n_chunks))


def use_shared_memory(n_points: int) -> bool:
    """Whether a parallel join should ship state via shared memory."""
    if not _config.get_config().shm_enabled:
        return False
    return n_points >= SHM_MIN_POINTS
