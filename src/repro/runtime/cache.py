"""Content-addressed result cache for spatial-join products.

Join results are keyed by a SHA-256 digest over the *content* of their
inputs — the point universe's coordinate bytes, every fire perimeter's
ring bytes, the raster payload, and the analysis parameters — so any
change to seed, size, resolution or parameters produces a different key
while re-running the identical configuration is a hit.  ``python -m
repro all`` recomputes each distinct join once instead of once per
figure.

Two tiers:

* an in-memory LRU (payloads kept as-is, zero deserialization cost),
* an optional on-disk tier (``.npz`` per entry) surviving processes, so
  a warm cache accelerates fresh CLI runs.

Hits and misses are counted in :data:`repro.runtime.stats.STATS` under
``cache.hits`` / ``cache.misses`` (and ``cache.disk_hits``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..obs.trace import event as trace_event
from .stats import STATS

__all__ = ["ResultCache", "cache_key", "array_token", "get_cache",
           "set_cache"]

_FORMAT_VERSION = "1"


def array_token(arr) -> bytes:
    """Digest of a numpy array's dtype, shape and raw bytes."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.digest()


def cache_key(*parts) -> str:
    """SHA-256 hex key over heterogeneous content tokens.

    Accepts ``bytes`` (pre-hashed tokens), strings, numbers, ``None``,
    and (nested) tuples/lists; numpy arrays are digested via
    :func:`array_token`.
    """
    h = hashlib.sha256()
    h.update(_FORMAT_VERSION.encode())

    def feed(part):
        if isinstance(part, bytes):
            h.update(b"B");  h.update(part)
        elif isinstance(part, np.ndarray):
            h.update(b"A");  h.update(array_token(part))
        elif isinstance(part, (tuple, list)):
            h.update(f"T{len(part)}".encode())
            for p in part:
                feed(p)
        else:
            h.update(b"S");  h.update(repr(part).encode())
        h.update(b"\x00")

    for part in parts:
        feed(part)
    return h.hexdigest()


class ResultCache:
    """Two-tier (memory LRU + optional disk) store of array payloads.

    Payloads are flat ``dict[str, np.ndarray]`` — the caller owns the
    encoding of richer result objects into arrays and back.
    """

    def __init__(self, max_entries: int = 128,
                 disk_dir: str | Path | None = None):
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self._memory: OrderedDict[str, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path:
        return self.disk_dir / f"{key}.npz"

    def get(self, key: str) -> dict | None:
        """Payload for ``key`` or None; counts a hit/miss either way."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            STATS.count("cache.hits")
            trace_event("cache.hit", key=key[:12], tier="memory")
            return entry
        if self.disk_dir is not None:
            path = self._disk_path(key)
            if path.exists():
                try:
                    with np.load(path, allow_pickle=False) as npz:
                        entry = {name: npz[name] for name in npz.files}
                except (OSError, ValueError):
                    entry = None      # corrupt/truncated file: treat as miss
                if entry is not None:
                    self._remember(key, entry)
                    STATS.count("cache.hits")
                    STATS.count("cache.disk_hits")
                    trace_event("cache.hit", key=key[:12], tier="disk")
                    return entry
        STATS.count("cache.misses")
        trace_event("cache.miss", key=key[:12])
        return None

    def put(self, key: str, payload: dict) -> None:
        """Store a payload under ``key`` in both tiers."""
        self._remember(key, payload)
        if self.disk_dir is not None:
            try:
                self.disk_dir.mkdir(parents=True, exist_ok=True)
                path = self._disk_path(key)
                tmp = path.with_suffix(".tmp.npz")
                np.savez(tmp, **payload)
                tmp.replace(path)
            except OSError:
                STATS.count("cache.disk_write_errors")

    def _remember(self, key: str, payload: dict) -> None:
        if self.max_entries == 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            STATS.count("cache.evictions")

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and optionally the disk tier)."""
        self._memory.clear()
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for path in self.disk_dir.glob("*.npz"):
                try:
                    path.unlink()
                except OSError:
                    pass


_cache: ResultCache | None = None


def get_cache() -> ResultCache:
    """The process-global cache, built lazily from the runtime config."""
    global _cache
    if _cache is None:
        from .config import get_config
        cfg = get_config()
        _cache = ResultCache(max_entries=cfg.memory_cache_entries,
                             disk_dir=cfg.cache_dir)
    return _cache


def set_cache(cache: ResultCache | None) -> None:
    """Install (or with None, reset) the process-global cache."""
    global _cache
    _cache = cache
