"""Runtime configuration: worker count, chunking, cache knobs.

One process-global :class:`RuntimeConfig` governs how the spatial-join
execution layer behaves.  Everything defaults to the reproducible serial
path; parallelism and caching are opt-in via environment variables
(``REPRO_WORKERS``, ``REPRO_CHUNK``, ``REPRO_CACHE``, ``REPRO_CACHE_DIR``)
or the CLI flags that shadow them.

The serial fallback guarantee: with ``workers <= 1`` no worker process is
ever spawned and results are computed exactly as the seed implementation
did.  The parallel path partitions points into contiguous chunks and is
bit-identical to serial by construction (exact per-point predicates,
order-preserving concatenation) — the differential suite in
``tests/runtime/`` enforces this.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path

__all__ = ["RuntimeConfig", "get_config", "set_config", "configure",
           "default_cache_dir"]

#: Minimum universe size before the parallel path is worth the fork cost.
MIN_PARALLEL_POINTS = 8_192


def default_cache_dir() -> Path:
    """On-disk cache location (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-spatial"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution-layer knobs for the spatial-join runtime."""

    workers: int = 1            # processes; <=1 means strictly serial
    chunk_size: int = 65_536    # points per parallel work unit
    cache_enabled: bool = True  # memoize join results
    cache_dir: Path | None = None   # None -> memory-only cache
    memory_cache_entries: int = 128
    shm_enabled: bool = True    # zero-copy worker state via shared memory

    def __post_init__(self):
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.memory_cache_entries < 0:
            raise ValueError("memory_cache_entries must be >= 0")

    def effective_workers(self, n_points: int) -> int:
        """Workers actually worth using for an ``n_points`` join."""
        if self.workers <= 1 or n_points < MIN_PARALLEL_POINTS:
            return 1
        # No point forking more workers than there are chunks.
        n_chunks = -(-n_points // self.chunk_size)
        return max(1, min(self.workers, n_chunks))

    @classmethod
    def from_env(cls) -> "RuntimeConfig":
        """Build a config from ``REPRO_*`` environment variables."""
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        return cls(
            workers=_env_int("REPRO_WORKERS", 1),
            chunk_size=_env_int("REPRO_CHUNK", 65_536),
            cache_enabled=_env_flag("REPRO_CACHE", True),
            cache_dir=Path(cache_dir) if cache_dir else None,
            shm_enabled=_env_flag("REPRO_SHM", True),
        )


_config = RuntimeConfig.from_env()


def get_config() -> RuntimeConfig:
    return _config


def set_config(config: RuntimeConfig) -> RuntimeConfig:
    """Install a new global config; returns the previous one."""
    global _config
    previous = _config
    _config = config
    return previous


def configure(**overrides) -> RuntimeConfig:
    """Update individual fields of the global config; returns the new one."""
    set_config(replace(_config, **overrides))
    return _config
