"""Persistent worker pools, created lazily and reused across joins.

The PR-1 runtime paid the full ``fork + initializer`` price on every
parallel join: three pool runs per reproduction meant shipping the whole
point universe three times and rebuilding every worker-side index from
scratch.  This module keeps pools alive between calls instead.

A pool is keyed by ``(name, workers, token)`` where ``token`` digests
the dataset the workers were initialized with (e.g. the universe's
coordinate bytes).  The first join for a given dataset creates the pool
and runs the initializer once per worker; every later join — every fire
season of a 19-year historical sweep — reuses the warm workers and
ships only its tiny task list.  Workers keep lazily-built state (their
spatial index) in a module global, so the index is built once per
worker *ever*, not once per chunk per call.

A small LRU bounds resident pools; pools are terminated at eviction and
at interpreter exit.  Any failure — no ``fork``, sandboxed
``multiprocessing``, unpicklable tasks, a worker crash — discards the
pool and reports ``None`` so the caller can fall back to the serial
path; correctness never depends on a pool existing.
"""

from __future__ import annotations

import atexit
import multiprocessing
from collections import OrderedDict
from pickle import PicklingError
from typing import Callable, Sequence

from ..obs.trace import event as trace_event
from ..obs.trace import span as trace_span
from .stats import STATS

__all__ = ["get_pool", "run_tasks", "shutdown_pools", "active_pools"]

#: Resident pool cap.  Each distinct (name, workers, dataset) keeps
#: ``workers`` processes alive; a handful covers a whole reproduction.
MAX_POOLS = 4

#: Force a specific multiprocessing start method ("fork" / "spawn" /
#: "forkserver").  ``None`` keeps the fork-preferred default.  The
#: override participates in the pool key, so flipping it mid-session
#: creates fresh pools instead of reusing ones started the other way.
START_METHOD_OVERRIDE: str | None = None

#: Errors that mean "the pool path is unavailable", not "the task is
#: wrong".  Anything else propagates — a bug in a chunk function must
#: not be silently retried serially.
_POOL_ERRORS = (OSError, ValueError, PicklingError, AttributeError,
                ImportError, EOFError, BrokenPipeError)

_pools: OrderedDict[tuple, multiprocessing.pool.Pool] = OrderedDict()


def _pool_context():
    """Prefer ``fork`` (cheap, copy-on-write arrays); fall back to the
    platform default where fork is unavailable."""
    method = START_METHOD_OVERRIDE or "fork"
    try:
        return multiprocessing.get_context(method)
    except ValueError:
        return multiprocessing.get_context()


def _terminate(pool) -> None:
    try:
        pool.terminate()
        pool.join()
    except Exception:
        pass  # a dying pool must never take the analysis down


def get_pool(name: str, workers: int, token: bytes,
             initializer: Callable | None = None,
             initargs: tuple = ()):
    """Return a live pool for ``(name, workers, token)``, creating it
    lazily.  Raises on creation failure (callers catch and fall back)."""
    key = (name, workers, token, START_METHOD_OVERRIDE)
    pool = _pools.get(key)
    if pool is not None:
        _pools.move_to_end(key)
        STATS.count("pool.reused")
        trace_event("pool.reused", pool=name, workers=workers)
        return pool
    while len(_pools) >= MAX_POOLS:
        evicted_key, evicted = _pools.popitem(last=False)
        _terminate(evicted)
        STATS.count("pool.evicted")
        trace_event("pool.evicted", pool=evicted_key[0],
                    workers=evicted_key[1])
    with trace_span("pool.create", pool=name, workers=workers):
        ctx = _pool_context()
        pool = ctx.Pool(processes=workers, initializer=initializer,
                        initargs=initargs)
    _pools[key] = pool
    STATS.count("pool.created")
    return pool


def discard_pool(name: str, workers: int, token: bytes) -> None:
    """Terminate and forget a pool (e.g. after a failed map)."""
    pool = _pools.pop((name, workers, token, START_METHOD_OVERRIDE), None)
    if pool is not None:
        _terminate(pool)


def run_tasks(name: str, workers: int, token: bytes, fn: Callable,
              tasks: Sequence, initializer: Callable | None = None,
              initargs: tuple = ()) -> list | None:
    """Map ``fn`` over ``tasks`` on the persistent pool.

    Returns the results in task order, or ``None`` when the pool path is
    unavailable (creation or transport failure) — the caller then runs
    its serial path.  A pool that failed mid-map is discarded so the
    next call starts fresh.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    try:
        pool = get_pool(name, workers, token, initializer, initargs)
    except _POOL_ERRORS:
        STATS.count("parallel.fallbacks")
        trace_event("parallel.fallback", pool=name, at="create")
        return None
    try:
        with trace_span("pool.map", pool=name, workers=workers,
                        tasks=len(tasks)):
            results = pool.map(fn, tasks)
    except _POOL_ERRORS:
        discard_pool(name, workers, token)
        STATS.count("parallel.fallbacks")
        trace_event("parallel.fallback", pool=name, at="map")
        return None
    STATS.count("parallel.pool_runs")
    STATS.count("parallel.tasks", len(tasks))
    STATS.count("pool.tasks", len(tasks))
    return results


def active_pools() -> list[tuple]:
    """Keys of currently resident pools (diagnostics / tests)."""
    return list(_pools.keys())


def shutdown_pools() -> None:
    """Terminate every resident pool (atexit, or tests cleaning up)."""
    while _pools:
        _, pool = _pools.popitem(last=False)
        _terminate(pool)


atexit.register(shutdown_pools)
