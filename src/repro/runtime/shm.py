"""Zero-copy array sharing via ``multiprocessing.shared_memory``.

Persistent pools (:mod:`.pool`) stopped re-forking workers per join, but
workers still paid twice per dataset: the packed columns ship through
the initializer pickle, and every worker rebuilds its spatial index from
the raw coordinates.  This module removes both costs.  The parent packs
the dataset once into a single shared-memory segment; workers *attach*
to the segment by name and adopt the arrays (including the pre-built
CSR index) as zero-copy views.  ``pool.worker_index_builds`` drops to 0
after warmup — the contract the regression tier pins.

Lifecycle
---------
* ``share_arrays(token, arrays)`` — parent-side.  Creates (or returns
  the cached) segment for a content token, copies each array to a
  64-byte-aligned offset, and returns a picklable :class:`ShmHandle`
  describing the layout.  Returns ``None`` when shared memory is
  unavailable (``/dev/shm`` missing, permissions, exotic platforms);
  callers then fall back to initializer pickles.
* ``attach_arrays(handle)`` — worker-side.  Opens the segment by name
  and rebuilds the array views.  The attachment is cached per segment.
  Pool workers (fork *and* spawn) inherit the parent's resource
  tracker, so their attach-register is an idempotent no-op there; only
  an attacher with no inherited tracker withdraws its registration,
  lest its private tracker unlink the parent's segment on exit.
* ``release_segments()`` — parent-side (atexit).  Closes and unlinks
  every owned segment.  Only the creating *process* unlinks: forked
  children inherit the registry, and a child's atexit must close its
  mapping without destroying the parent's.

A small LRU bounds resident segments, mirroring the pool registry.
"""

from __future__ import annotations

import atexit
import os
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from .stats import STATS

__all__ = ["ShmField", "ShmHandle", "share_arrays", "attach_arrays",
           "release_segments", "active_segments"]

#: Resident segment cap (one segment per packed dataset).
MAX_SEGMENTS = 4

#: Field offsets are rounded up to this alignment so every array view
#: starts on a cache-line boundary regardless of the preceding dtype.
ALIGNMENT = 64


@dataclass(frozen=True)
class ShmField:
    """Layout of one array inside a segment (picklable)."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShmHandle:
    """Everything a worker needs to adopt a segment's arrays."""

    shm_name: str
    fields: tuple[ShmField, ...]
    nbytes: int


def _align(offset: int) -> int:
    return -(-offset // ALIGNMENT) * ALIGNMENT


# token -> (segment, handle, owner_pid); insertion order is LRU order.
_owned: OrderedDict[bytes, tuple] = OrderedDict()

# shm_name -> (segment, {field name -> array view}); worker-side cache.
_attached: dict[str, tuple] = {}


def share_arrays(token: bytes, arrays: dict[str, np.ndarray]) \
        -> ShmHandle | None:
    """Expose ``arrays`` in one shared segment keyed by ``token``.

    Returns the (cached) handle, or ``None`` when shared memory is
    unavailable on this platform — never raises for environmental
    failures.
    """
    entry = _owned.get(token)
    if entry is not None:
        _owned.move_to_end(token)
        STATS.count("shm.reused")
        return entry[1]

    fields = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = _align(offset)
        fields.append(ShmField(name=name, dtype=arr.dtype.str,
                               shape=arr.shape, offset=offset))
        offset += arr.nbytes
    nbytes = max(offset, 1)

    try:
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
    except (OSError, ValueError):
        STATS.count("shm.failures")
        return None
    try:
        for field, (_, arr) in zip(fields, arrays.items()):
            view = np.ndarray(field.shape, dtype=field.dtype,
                              buffer=seg.buf, offset=field.offset)
            view[...] = arr
    except (OSError, ValueError):
        _destroy(seg, unlink=True)
        STATS.count("shm.failures")
        return None

    while len(_owned) >= MAX_SEGMENTS:
        _, (old_seg, _, owner) = _owned.popitem(last=False)
        _destroy(old_seg, unlink=owner == os.getpid())
        STATS.count("shm.evicted")

    handle = ShmHandle(shm_name=seg.name, fields=tuple(fields),
                       nbytes=nbytes)
    _owned[token] = (seg, handle, os.getpid())
    STATS.count("shm.created")
    STATS.count("shm.bytes", nbytes)
    return handle


def attach_arrays(handle: ShmHandle) -> dict[str, np.ndarray]:
    """Adopt a segment's arrays as zero-copy views (worker-side).

    Raises on failure (a missing segment is a real error the pool layer
    converts into its serial fallback).
    """
    cached = _attached.get(handle.shm_name)
    if cached is not None:
        return cached[1]
    # Attaching registers the name with this process's resource
    # tracker (Python < 3.13 has no track=False).  Pool workers — fork
    # AND spawn: ``spawn_main`` hands children the parent's tracker fd
    # — share the owner's tracker daemon, where the registry is a set:
    # their attach-register is an idempotent no-op, and the owner's
    # eventual ``unlink`` withdraws the single entry.  Unregistering
    # here would strip that entry and turn the owner's unlink into a
    # tracker KeyError.  Only a process with no inherited tracker
    # connection (a standalone attacher) spins up its *own* tracker on
    # attach, which would unlink the segment out from under the owner
    # when the attacher exits — that registration must be withdrawn.
    from multiprocessing import resource_tracker
    shares_tracker = getattr(
        resource_tracker._resource_tracker, "_fd", None) is not None
    seg = shared_memory.SharedMemory(name=handle.shm_name)
    if not shares_tracker:
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    arrays = {
        field.name: np.ndarray(field.shape, dtype=field.dtype,
                               buffer=seg.buf, offset=field.offset)
        for field in handle.fields
    }
    _attached[handle.shm_name] = (seg, arrays)
    STATS.count("shm.attached")
    return arrays


def _destroy(seg, unlink: bool) -> None:
    try:
        seg.close()
    except Exception:
        pass
    if unlink:
        try:
            seg.unlink()
        except Exception:
            pass


def active_segments() -> list[str]:
    """Names of currently owned segments (diagnostics / tests)."""
    return [entry[1].shm_name for entry in _owned.values()]


def release_segments() -> None:
    """Close every mapping; unlink segments this process created."""
    pid = os.getpid()
    while _owned:
        _, (seg, _, owner) = _owned.popitem(last=False)
        _destroy(seg, unlink=owner == pid)
    while _attached:
        _, (seg, _) = _attached.popitem()
        _destroy(seg, unlink=False)


atexit.register(release_segments)
