"""Chunked process-parallel execution with a guaranteed serial fallback.

The spatial joins shard their point universes into contiguous chunks;
each chunk is an independent work unit mapped over a ``multiprocessing``
pool.  Results come back in submission order, so a parallel join is a
plain concatenation of its chunk results — bit-identical to the serial
path by construction.

The serial fallback is load-bearing for reproducibility: with one
worker (or whenever a pool cannot be created — restricted sandboxes,
missing ``fork``), the same chunk functions run in-process in the same
order.  Every degradation is visible in ``STATS`` under
``parallel.fallbacks``.
"""

from __future__ import annotations

import multiprocessing
from pickle import PicklingError
from typing import Callable, Sequence

from ..obs.trace import event as trace_event
from ..obs.trace import span as trace_span
from .stats import STATS

__all__ = ["chunk_spans", "parallel_map"]


def chunk_spans(n: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` spans covering ``range(n)``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [(start, min(start + chunk_size, n))
            for start in range(0, n, chunk_size)]


def _pool_context():
    """Prefer ``fork`` (cheap, copy-on-write arrays); fall back to the
    platform default where fork is unavailable.  Honors the persistent
    pool layer's start-method override so tests exercising spawn cover
    the one-shot path too."""
    from . import pool as _pool

    method = _pool.START_METHOD_OVERRIDE or "fork"
    try:
        return multiprocessing.get_context(method)
    except ValueError:
        return multiprocessing.get_context()


def _serial(fn: Callable, tasks: Sequence,
            initializer: Callable | None, initargs: tuple) -> list:
    if initializer is not None:
        initializer(*initargs)
    return [fn(task) for task in tasks]


def parallel_map(fn: Callable, tasks: Sequence, workers: int,
                 initializer: Callable | None = None,
                 initargs: tuple = ()) -> list:
    """Map ``fn`` over ``tasks``, preserving order.

    ``fn`` and ``initializer`` must be module-level (picklable)
    callables.  With ``workers <= 1`` or fewer than two tasks, runs
    serially in-process.  Any pool failure degrades to the serial path
    rather than erroring — correctness never depends on the pool.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) < 2:
        return _serial(fn, tasks, initializer, initargs)
    workers = min(workers, len(tasks))
    try:
        with trace_span("parallel.map", workers=workers,
                        tasks=len(tasks)):
            ctx = _pool_context()
            with ctx.Pool(processes=workers, initializer=initializer,
                          initargs=initargs) as pool:
                results = pool.map(fn, tasks)
        STATS.count("parallel.pool_runs")
        STATS.count("parallel.tasks", len(tasks))
        return results
    except (OSError, ValueError, PicklingError, AttributeError,
            ImportError):
        STATS.count("parallel.fallbacks")
        trace_event("parallel.fallback", at="one-shot")
        return _serial(fn, tasks, initializer, initargs)
