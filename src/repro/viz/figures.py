"""One entry point per paper figure.

Each ``figureN`` function returns a :class:`FigureArtifact` holding the
plottable data series plus an ASCII rendering, so the benchmarks can
both assert on the data and print something a human can eyeball against
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core import (
    case_study_analysis,
    future_risk_analysis,
    hazard_analysis,
    metro_risk_analysis,
    population_impact_analysis,
    total_in_perimeters,
)
from ..core.overlay import classify_cells
from ..data.ecoregions import slc_denver_window
from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..geo.geometry import BBox
from .ascii import bar_chart, class_map, density_map

__all__ = [
    "FigureArtifact",
    "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "figure9", "figure10", "figure11", "figure12", "figure13",
    "figure14", "figure15",
]

#: Symbols for WHP classes in ASCII maps (paper Figure 6 palette).
WHP_SYMBOLS = {0: " ", 1: ".", 2: ":", 3: "m", 4: "H", 5: "#"}


@dataclass
class FigureArtifact:
    """A reproduced figure: data series + ASCII rendering."""

    figure: str
    title: str
    data: Any
    ascii_art: str = field(repr=False, default="")


def figure2(universe: SyntheticUS, width: int = 110) -> FigureArtifact:
    """All cell transceivers in the conterminous US."""
    cells = universe.cells
    art = density_map(cells.lons, cells.lats,
                      universe.population.grid.bbox, width=width)
    return FigureArtifact("2", "All cell transceivers",
                          {"n": len(cells)}, art)


def figure3(universe: SyntheticUS, width: int = 110) -> FigureArtifact:
    """Wildfire perimeters 2000-2018 (centroid density)."""
    lons, lats, acres = [], [], 0.0
    for year in range(2000, 2019):
        for fire in universe.fire_season(year).fires:
            c = fire.polygon.centroid()
            lons.append(c.lon)
            lats.append(c.lat)
            acres += fire.acres
    art = density_map(np.array(lons), np.array(lats),
                      universe.population.grid.bbox, width=width)
    return FigureArtifact("3", "Wildfire perimeters 2000-2018",
                          {"n_fires": len(lons), "acres": acres}, art)


def figure4(universe: SyntheticUS, width: int = 110) -> FigureArtifact:
    """Transceivers inside wildfire perimeters 2000-2018."""
    scaled, mask = total_in_perimeters(universe)
    cells = universe.cells
    art = density_map(cells.lons[mask], cells.lats[mask],
                      universe.population.grid.bbox, width=width)
    return FigureArtifact("4", "Transceivers in wildfire perimeters",
                          {"scaled_total": scaled,
                           "raw_total": int(mask.sum())}, art)


def figure5(universe: SyntheticUS) -> FigureArtifact:
    """Daily cell-site outages by cause (2019 case study)."""
    summary = case_study_analysis(universe)
    series = {"days": summary.days, "power": summary.power,
              "backhaul": summary.backhaul, "damage": summary.damage}
    art = bar_chart(summary.days, summary.totals())
    return FigureArtifact("5", "Cell site outages during PG&E blackouts",
                          series, art)


def figure6(universe: SyntheticUS, width: int = 110) -> FigureArtifact:
    """The WHP map."""
    whp = universe.whp
    art = class_map(whp.raster.data, whp.grid, WHP_SYMBOLS, width=width)
    return FigureArtifact("6", "Wildfire Hazard Potential",
                          whp.raster.histogram(), art)


def _class_panel(universe: SyntheticUS, whp_class: WHPClass,
                 width: int) -> str:
    cells = universe.cells
    classes = classify_cells(cells, universe.whp)
    mask = classes == int(whp_class)
    return density_map(cells.lons[mask], cells.lats[mask],
                       universe.population.grid.bbox, width=width)


def figure7(universe: SyntheticUS, width: int = 72) -> FigureArtifact:
    """Transceivers in Moderate / High / Very High WHP (three panels)."""
    summary = hazard_analysis(universe)
    panels = "\n\n".join(
        f"[{name}]\n" + _class_panel(universe, cls, width)
        for name, cls in (("Moderate", WHPClass.MODERATE),
                          ("High", WHPClass.HIGH),
                          ("Very High", WHPClass.VERY_HIGH)))
    return FigureArtifact("7", "Transceivers by WHP class",
                          summary.class_counts, panels)


def figure8(universe: SyntheticUS, n: int = 10) -> FigureArtifact:
    """States with the most at-risk transceivers."""
    summary = hazard_analysis(universe)
    top = summary.states[:n]
    art = bar_chart([s.state for s in top], [s.total for s in top])
    return FigureArtifact(
        "8", "States with most at-risk transceivers",
        {s.state: s.total for s in top}, art)


def figure9(universe: SyntheticUS, n: int = 10) -> FigureArtifact:
    """At-risk transceivers per capita by state."""
    summary = hazard_analysis(universe)
    ranked = sorted(summary.states, key=lambda s: s.per_thousand(),
                    reverse=True)[:n]
    art = bar_chart([s.state for s in ranked],
                    [s.per_thousand() for s in ranked])
    return FigureArtifact(
        "9", "At-risk transceivers per thousand people",
        {s.state: s.per_thousand() for s in ranked}, art)


def figure10(universe: SyntheticUS) -> FigureArtifact:
    """WHP class × county density matrix."""
    impact = population_impact_analysis(universe)
    rows = []
    for whp_name, row in impact.matrix.items():
        for cat, count in row.items():
            rows.append((whp_name, cat, count))
    art = bar_chart([f"{w[:9]}/{c.split(' ')[0]}" for w, c, _ in rows],
                    [v for _, _, v in rows])
    return FigureArtifact("10", "Transceivers by WHP and density",
                          impact.matrix, art)


def figure11(universe: SyntheticUS, width: int = 72) -> FigureArtifact:
    """Three map panels: at-risk × population density subsets."""
    impact = population_impact_analysis(universe)
    cells = universe.cells
    bbox = universe.population.grid.bbox
    panels = []
    for title, mask in (
            ("WHP M+ x county >200k", impact.panel_all_mask),
            ("WHP M+ x county >1.5M", impact.panel_vh_pop_mask),
            ("WHP VH x county >1.5M", impact.panel_vh_both_mask)):
        panels.append(f"[{title}: {int(mask.sum())} raw]\n"
                      + density_map(cells.lons[mask], cells.lats[mask],
                                    bbox, width=width))
    counts = {
        "all": int(impact.panel_all_mask.sum()),
        "vh_pop": int(impact.panel_vh_pop_mask.sum()),
        "vh_both": int(impact.panel_vh_both_mask.sum()),
    }
    return FigureArtifact("11", "At-risk transceivers by density subset",
                          counts, "\n\n".join(panels))


def figure12(universe: SyntheticUS) -> FigureArtifact:
    """Metro areas with the most at-risk transceivers."""
    rows = metro_risk_analysis(universe)
    art = bar_chart([r.metro for r in rows], [r.total for r in rows])
    return FigureArtifact("12", "Metro at-risk ranking",
                          {r.metro: r.total for r in rows}, art)


def _metro_window(universe: SyntheticUS, center_lon: float,
                  center_lat: float, half: float, width: int) -> str:
    whp = universe.whp
    bbox = BBox(center_lon - half, center_lat - half,
                center_lon + half, center_lat + half)
    return class_map(whp.raster.data, whp.grid, WHP_SYMBOLS,
                     bbox=bbox, width=width)


def figure13(universe: SyntheticUS, width: int = 64) -> FigureArtifact:
    """WHP windows around SF/Sacramento, LA/SD, Orlando."""
    from ..data.cities import city_by_name

    windows = {
        "San Francisco/Sacramento": ("San Francisco", 2.2),
        "Los Angeles/San Diego": ("Los Angeles", 2.2),
        "Orlando": ("Orlando", 1.6),
    }
    panels = []
    data = {}
    for title, (city_name, half) in windows.items():
        city = city_by_name(city_name)
        art = _metro_window(universe, city.lon + half / 4,
                            city.lat - half / 4, half, width)
        panels.append(f"[{title}]\n{art}")
        data[title] = (city.lon, city.lat, half)
    return FigureArtifact("13", "Metro WHP windows", data,
                          "\n\n".join(panels))


def figure14(universe: SyntheticUS) -> FigureArtifact:
    """Ecoregion 2040 deltas with corridor infrastructure."""
    rows = future_risk_analysis(universe)
    art = bar_chart([r.code for r in rows],
                    [r.transceivers for r in rows])
    return FigureArtifact(
        "14", "Ecoregion fire potential and infrastructure",
        [(r.code, r.delta_2040_pct, r.transceivers) for r in rows], art)


def figure15(universe: SyntheticUS, width: int = 90) -> FigureArtifact:
    """WHP within the SLC-Denver ecoregion window."""
    whp = universe.whp
    art = class_map(whp.raster.data, whp.grid, WHP_SYMBOLS,
                    bbox=slc_denver_window(), width=width)
    rows = future_risk_analysis(universe)
    return FigureArtifact(
        "15", "WHP with ecoregions, SLC-Denver",
        [(r.code, r.at_risk_transceivers) for r in rows], art)
