"""Terminal-renderable maps and charts.

The paper's figures are maps and bar charts; in an offline, matplotlib-
free environment we render them as ASCII: density maps from point sets,
class maps from rasters, and horizontal bar charts from ranked series.
The benchmarks print these so every figure has a visual artifact, not
just numbers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geo.geometry import BBox
from ..geo.raster import GridSpec

__all__ = ["density_map", "class_map", "bar_chart", "DENSITY_RAMP"]

#: Character ramp from empty to dense.
DENSITY_RAMP = " .:-=+*#%@"


def density_map(lons, lats, bbox: BBox, width: int = 100,
                height: int | None = None,
                ramp: str = DENSITY_RAMP) -> str:
    """Render a point cloud as an ASCII density map.

    Each character cell shows the log-scaled point count; the aspect
    ratio accounts for the ~2:1 width of terminal characters.
    """
    lons = np.asarray(lons, dtype=float)
    lats = np.asarray(lats, dtype=float)
    if height is None:
        height = max(1, int(width * bbox.height / bbox.width / 2.2))
    counts = np.zeros((height, width))
    inside = bbox.contains_many(lons, lats)
    if inside.any():
        cols = ((lons[inside] - bbox.min_lon) / bbox.width
                * (width - 1)).astype(int)
        rows = ((bbox.max_lat - lats[inside]) / bbox.height
                * (height - 1)).astype(int)
        np.add.at(counts, (rows, cols), 1)
    if counts.max() > 0:
        levels = np.log1p(counts) / np.log1p(counts.max())
    else:
        levels = counts
    idx = (levels * (len(ramp) - 1)).astype(int)
    return "\n".join("".join(ramp[i] for i in row) for row in idx)


def class_map(data: np.ndarray, grid: GridSpec,
              symbols: dict[int, str], bbox: BBox | None = None,
              width: int = 100) -> str:
    """Render an integer raster as an ASCII class map.

    ``symbols`` maps raster values to single characters; unmapped values
    render as spaces.  The raster is nearest-neighbor resampled into the
    requested character frame.
    """
    if bbox is None:
        bbox = grid.bbox
    height = max(1, int(width * bbox.height / bbox.width / 2.2))
    out_rows = []
    for r in range(height):
        lat = bbox.max_lat - (r + 0.5) * bbox.height / height
        lons = bbox.min_lon + (np.arange(width) + 0.5) * bbox.width / width
        rows, cols = grid.rowcol(lons, np.full(width, lat))
        ok = grid.inside(rows, cols)
        line = []
        for k in range(width):
            if not ok[k]:
                line.append(" ")
                continue
            value = int(data[rows[k], cols[k]])
            line.append(symbols.get(value, " "))
        out_rows.append("".join(line))
    return "\n".join(out_rows)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, unit: str = "") -> str:
    """Horizontal ASCII bar chart (Figure 8/9/12 style)."""
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    vmax = max(values) if values else 0.0
    label_w = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        n = int(round(width * value / vmax)) if vmax > 0 else 0
        lines.append(f"{label.rjust(label_w)} | {'█' * n} "
                     f"{value:,.0f}{unit}")
    return "\n".join(lines)
