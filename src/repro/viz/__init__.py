"""ASCII visualization: terminal-renderable versions of every figure."""

from .ascii import DENSITY_RAMP, bar_chart, class_map, density_map
from .image import (
    WHP_PALETTE,
    class_image,
    density_image,
    save_class_image,
    save_density_image,
    write_ppm,
)
from .figures import (
    FigureArtifact,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)

__all__ = [
    "bar_chart", "class_map", "density_map", "DENSITY_RAMP",
    "write_ppm", "class_image", "density_image", "save_class_image",
    "save_density_image", "WHP_PALETTE",
    "FigureArtifact",
    "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "figure9", "figure10", "figure11", "figure12", "figure13",
    "figure14", "figure15",
]
