"""Binary image export (PPM) for rasters and point maps.

The environment has no plotting stack, but the paper's figures are
maps; this module writes real raster images using the stdlib-only
binary PPM (P6) format, which any image viewer or converter opens.
Palettes follow the paper's color language (Figure 6: hazard in
red/yellow over dark low-risk terrain).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..geo.geometry import BBox
from ..geo.raster import GridSpec

__all__ = ["write_ppm", "class_image", "density_image", "WHP_PALETTE",
           "save_class_image", "save_density_image"]

#: RGB palette for WHP classes, matching the paper's Figure 6 reading:
#: black/green low risk, yellow/red high risk.
WHP_PALETTE: dict[int, tuple[int, int, int]] = {
    0: (12, 12, 16),        # non-burnable / water: near-black
    1: (24, 60, 32),        # very low: dark green
    2: (46, 104, 52),       # low: green
    3: (222, 178, 44),      # moderate: yellow
    4: (232, 120, 30),      # high: orange
    5: (205, 28, 24),       # very high: red
}


def write_ppm(pixels: np.ndarray, path: str | Path) -> None:
    """Write an (H, W, 3) uint8 array as a binary PPM (P6) file."""
    pixels = np.asarray(pixels)
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise ValueError("pixels must be an (H, W, 3) array")
    if pixels.dtype != np.uint8:
        pixels = np.clip(pixels, 0, 255).astype(np.uint8)
    height, width, _ = pixels.shape
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    Path(path).write_bytes(header + pixels.tobytes())


def class_image(data: np.ndarray, palette: dict[int, tuple[int, int, int]],
                background: tuple[int, int, int] = (0, 0, 0)) \
        -> np.ndarray:
    """Color an integer raster through a palette into RGB pixels."""
    height, width = data.shape
    pixels = np.empty((height, width, 3), dtype=np.uint8)
    pixels[:] = background
    for value, color in palette.items():
        pixels[data == value] = color
    return pixels


def density_image(lons, lats, bbox: BBox, width: int = 900,
                  height: int | None = None,
                  color: tuple[int, int, int] = (255, 200, 60),
                  background: tuple[int, int, int] = (10, 10, 14)) \
        -> np.ndarray:
    """Log-scaled point-density heat image (Figure 2/4 style)."""
    lons = np.asarray(lons, dtype=float)
    lats = np.asarray(lats, dtype=float)
    if height is None:
        height = max(1, int(width * bbox.height / bbox.width))
    counts = np.zeros((height, width))
    inside = bbox.contains_many(lons, lats)
    if inside.any():
        cols = ((lons[inside] - bbox.min_lon) / bbox.width
                * (width - 1)).astype(int)
        rows = ((bbox.max_lat - lats[inside]) / bbox.height
                * (height - 1)).astype(int)
        np.add.at(counts, (rows, cols), 1)
    if counts.max() > 0:
        level = np.log1p(counts) / np.log1p(counts.max())
    else:
        level = counts
    pixels = np.empty((height, width, 3), dtype=np.uint8)
    for channel in range(3):
        pixels[:, :, channel] = (
            background[channel]
            + level * (color[channel] - background[channel])
        ).astype(np.uint8)
    return pixels


def save_class_image(data: np.ndarray, grid: GridSpec, path: str | Path,
                     palette: dict | None = None) -> Path:
    """Write a class raster (e.g. the WHP) as a PPM map image."""
    pixels = class_image(data, palette or WHP_PALETTE)
    path = Path(path)
    write_ppm(pixels, path)
    return path


def save_density_image(lons, lats, bbox: BBox, path: str | Path,
                       width: int = 900) -> Path:
    """Write a point cloud (e.g. all transceivers) as a PPM heat map."""
    pixels = density_image(lons, lats, bbox, width=width)
    path = Path(path)
    write_ppm(pixels, path)
    return path
