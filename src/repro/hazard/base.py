"""The ``Hazard`` protocol: what the engine needs from a peril.

The paper's pipeline is wildfire-only by construction, but the engine
underneath it — tiled raster sampling (:func:`classify_cells`), the
point-in-polygon join (:func:`overlay_fires`), the delta-overlay
incident fold (:mod:`repro.stream`) — only ever touches two shapes:

* an **intensity surface**: something ``Raster``-shaped that can
  ``classify(lons, lats)`` points into ordinal severity codes and
  digest itself (``content_token()``) for the content-addressed cache.
  The wildfire instance hands back the WHP model unchanged;
* an **event set**: footprint polygons with a ``name``, a ``year`` and
  a ``polygon`` — exactly the fields the overlay engine hashes and
  queries.  ``FirePerimeter`` satisfies this structurally; non-fire
  hazards ship :class:`FootprintEvent`.

:class:`Hazard` packages the two behind one object plus the optional
streaming contract: a hazard that declares ``monotone_growth`` promises
that :meth:`growth_series` snapshots only ever *grow* each event
(tick ``t``'s polygon contains tick ``t-1``'s), the invariant the
dirty-bucket delta queries rest on.

This module is deliberately import-light (geo + numpy only): the core
engine imports it for typing, and the hazard instances import the data
substrates — never the other way around, so no cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..geo.geometry import Polygon

__all__ = [
    "EventSet",
    "FootprintEvent",
    "Hazard",
    "HazardEvent",
    "IntensitySurface",
]


@runtime_checkable
class IntensitySurface(Protocol):
    """What :func:`~repro.core.overlay.classify_cells` samples.

    ``classify`` returns one ordinal severity code per point (0 =
    unexposed); ``content_token`` digests the surface's geometry and
    payload so cache keys miss cleanly on any change.  ``WhpModel``
    conforms unchanged.
    """

    def classify(self, lons, lats) -> np.ndarray: ...

    def content_token(self) -> bytes: ...


@runtime_checkable
class HazardEvent(Protocol):
    """One footprint event: the fields the overlay engine touches.

    ``FirePerimeter`` satisfies this structurally — the engine hashes
    ``name``/``year``/ring bytes and queries ``polygon``; everything
    else (agency, acreage, dates) is hazard-local color.
    """

    name: str
    year: int
    polygon: Polygon


@dataclass(frozen=True)
class FootprintEvent:
    """A generic hazard footprint for non-fire instances.

    Mirrors ``FirePerimeter``'s engine-facing fields; ``acres`` keeps
    the footprint's area in the same unit the fire path reports, so
    renderers and summaries need no per-hazard branches.
    """

    name: str
    year: int
    start_doy: int
    end_doy: int
    acres: float
    polygon: Polygon
    kind: str = "footprint"

    @property
    def duration_days(self) -> int:
        return max(1, self.end_doy - self.start_doy)


@dataclass
class EventSet:
    """One season's worth of a hazard's events.

    For the wildfire instance ``events`` *is* the season's fire list
    (the same list object ``universe.fire_season(year)`` holds), so the
    per-fire digest memo and every downstream cache key are untouched
    by the protocol indirection.
    """

    year: int
    events: list

    def __len__(self) -> int:
        return len(self.events)

    def total_acres(self) -> float:
        return float(sum(getattr(e, "acres", 0.0) for e in self.events))


class Hazard:
    """Base class for pluggable hazards.

    Subclasses must provide :attr:`name`, :meth:`intensity` and
    :meth:`event_set`; the streaming/ensemble surface is optional:

    * ``monotone_growth`` + :meth:`growth_series` opt the hazard into
      the delta-overlay incident stream (growth must be monotone);
    * :meth:`ensemble_member` yields per-member event lists for the
      scenario ensembles (member 0 defaults to the plain event set).
    """

    #: Registry key and the canonical ``hazard=`` artifact parameter.
    name: str = ""

    #: Season label :meth:`event_set` defaults to.
    default_year: int = 2019

    #: True when :meth:`growth_series` snapshots are monotone per event
    #: (each tick's polygon contains the previous tick's) — the
    #: contract ``query_polygon_delta`` requires.
    monotone_growth: bool = False

    # -- required ------------------------------------------------------

    def intensity(self, universe) -> IntensitySurface:
        """The hazard's intensity surface for a universe."""
        raise NotImplementedError

    def event_set(self, universe, year: int | None = None) -> EventSet:
        """One season of footprint events (deterministic per seed)."""
        raise NotImplementedError

    # -- optional ------------------------------------------------------

    def ensemble_member(self, universe, year: int,
                        member: int) -> list:
        """Event list of one ensemble member (member 0 = the season).

        Members re-seed the hazard's generator, so an N-member ensemble
        is N independent draws of the same season — the fan-out unit
        the scenario library ships through the worker pool.
        """
        if member == 0:
            return self.event_set(universe, year).events
        raise NotImplementedError(
            f"hazard {self.name!r} does not generate ensemble members")

    def growth_series(self, universe, n_ticks: int = 8) -> list[list]:
        """Per-tick event snapshots for the incident stream.

        Only meaningful when the hazard declares ``monotone_growth``;
        the base raises so non-streaming hazards fail loudly.
        """
        raise NotImplementedError(
            f"hazard {self.name!r} has no incident growth model")

    def incident(self, universe, n_ticks: int = 8) \
            -> tuple[int, list, list[list]]:
        """``(year, background_events, growth_ticks)`` for the stream.

        Default: no background, growth straight from
        :meth:`growth_series`.  The wildfire instance overrides this to
        lay the scripted case-study fronts over the static season.
        """
        return (self.default_year, [],
                self.growth_series(universe, n_ticks))

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
