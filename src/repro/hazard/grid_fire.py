"""Grid-ignited fires: ignitions sampled along high-risk power lines.

The paper's case study found power infrastructure *causes* outages;
utility-sparked fires (Camp 2018, Kincade 2019) close the loop — the
grid is also where the worst ignitions start.  This hazard samples
ignition points along the transmission lines of the synthetic power
grid (:mod:`repro.data.powergrid`) that cross at-risk WHP terrain —
exactly the PSPS-candidate set the ``psps`` stage de-energizes — and
grows wind-stretched perimeters from them, elongated *along the line
bearing* (a sparked fire runs with the wind that loads the conductor).

The intensity surface is the WHP model itself: a grid-ignited fire
burns the same fuel.  What changes is *where seasons start*, which is
the point — mitigation stages can now ask what PSPS would have
prevented.

The power grid is fetched through the universe's ambient session
(``session_of(universe).artifact("power_grid")``), so a scenario
ensemble and the ``power``/``psps`` stages share one build.
"""

from __future__ import annotations

import math

import numpy as np

from ..data.wildfires import (
    FirePerimeter,
    _pareto_sizes,
    interpolated_perimeter,
    star_polygon,
)
from ..session import session_of
from .base import EventSet, Hazard

__all__ = ["GridIgnitedFireHazard"]

#: Seed-stream offset separating this hazard's rng from the wildfire
#: generator's (which uses ``config.seed + year``).
_SEED_SALT = 524_287


class GridIgnitedFireHazard(Hazard):
    """Fire seasons ignited along PSPS-candidate power lines."""

    name = "grid_fire"
    default_year = 2019
    monotone_growth = True

    def __init__(self, n_events: int = 48,
                 total_acres: float = 1_200_000.0,
                 elongation_range: tuple[float, float] = (1.5, 3.0)):
        if n_events < 1:
            raise ValueError("need at least one event")
        if total_acres <= 0:
            raise ValueError("total_acres must be positive")
        self.n_events = int(n_events)
        self.total_acres = float(total_acres)
        self.elongation_range = (float(elongation_range[0]),
                                 float(elongation_range[1]))

    # ------------------------------------------------------------------

    def intensity(self, universe):
        return universe.whp

    def _risky_lines(self, universe):
        """PSPS-candidate lines: the grid plus its at-risk crossings."""
        grid = session_of(universe).artifact("power_grid")
        whp = universe.whp
        risky = grid.lines_crossing_mask(whp, whp.at_risk_mask())
        if len(risky) == 0:
            # Degenerate tiny universes may have no at-risk crossing;
            # fall back to the whole line set so seasons stay non-empty.
            risky = np.arange(grid.n_lines, dtype=np.int64)
        return grid, risky

    def event_set(self, universe, year: int | None = None) -> EventSet:
        year = self.default_year if year is None else year
        return EventSet(year=year,
                        events=self.ensemble_member(universe, year, 0))

    def ensemble_member(self, universe, year: int,
                        member: int) -> list:
        """One independent season of grid-sparked fires.

        Deterministic in ``(universe seed, year, member)``: ignition
        lines are drawn weighted by length (long spans in hazardous
        terrain see more wind events), the ignition point is uniform
        along the line, and each perimeter is stretched along the
        line's bearing.
        """
        return [e for e, _ in self._member(universe, year, member)]

    def _member(self, universe, year: int, member: int) \
            -> list[tuple[FirePerimeter, tuple[float, float]]]:
        """``(event, ignition_center)`` pairs for one member.

        The ignition center is the star polygon's kernel point — the
        only point growth interpolation may scale about while keeping
        the front family monotone.
        """
        grid, risky = self._risky_lines(universe)
        rng = np.random.default_rng(
            universe.config.seed + _SEED_SALT + 31 * year
            + 7919 * member)

        ax = grid.substation_lons[grid.lines[risky, 0]]
        ay = grid.substation_lats[grid.lines[risky, 0]]
        bx = grid.substation_lons[grid.lines[risky, 1]]
        by = grid.substation_lats[grid.lines[risky, 1]]
        lengths = np.hypot(bx - ax, by - ay)
        prob = lengths / lengths.sum()

        picks = rng.choice(len(risky), size=self.n_events, p=prob)
        ts = rng.uniform(0.05, 0.95, size=self.n_events)
        sizes = _pareto_sizes(self.n_events, self.total_acres, rng)

        events = []
        for i in range(self.n_events):
            j = picks[i]
            lon = float(ax[j] + ts[i] * (bx[j] - ax[j]))
            lat = float(ay[j] + ts[i] * (by[j] - ay[j]))
            # Line bearing, clockwise from north — the wind direction
            # the perimeter is stretched along.
            bearing = math.degrees(
                math.atan2(float(bx[j] - ax[j]),
                           float(by[j] - ay[j]))) % 360.0
            start = int(min(max(rng.normal(250, 30), 200), 340))
            duration = int(min(max(2 + sizes[i] ** 0.33, 2), 60))
            poly = star_polygon(
                lon, lat, float(sizes[i]), rng,
                elongation=float(rng.uniform(*self.elongation_range)),
                bearing_deg=bearing)
            events.append((FirePerimeter(
                name=f"GRIDFIRE-{year}-{member:02d}-{i:03d}",
                year=year,
                start_doy=start,
                end_doy=min(start + duration, 364),
                acres=float(sizes[i]),
                polygon=poly,
                agency="UTILITY",
                method="SCADA"), (lon, lat)))
        return events

    # -- streaming -----------------------------------------------------

    def growth_series(self, universe, n_ticks: int = 8) -> list[list]:
        """Monotone per-tick fronts for the season's largest fires.

        The top fires (the ones a live incident would track) grow
        linearly from 20% of linear extent to their final perimeter;
        smaller events appear fully grown at their ignition tick.
        Monotone by construction: each front is a scaling of the same
        star polygon about its ignition point.
        """
        if n_ticks < 2:
            raise ValueError("a growth series needs at least 2 ticks")
        pairs = self._member(universe, self.default_year, 0)
        tracked = sorted(pairs, key=lambda pair: pair[0].acres,
                         reverse=True)[:4]
        ticks = []
        for t in range(n_ticks):
            # The last tick must be exactly 1.0 (float accumulation can
            # land a hair above) so the final front is the original,
            # fully-grown perimeter object.
            fraction = 1.0 if t == n_ticks - 1 \
                else 0.2 + 0.8 * t / (n_ticks - 1)
            ticks.append([
                interpolated_perimeter(e, clon, clat, fraction)
                for e, (clon, clat) in tracked])
        return ticks
