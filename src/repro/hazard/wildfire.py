"""The wildfire instance of the :class:`~repro.hazard.base.Hazard`
protocol — the paper's peril, unchanged.

This is a *view*, not a reimplementation: :meth:`intensity` returns
``universe.whp`` itself and :meth:`event_set` wraps the exact
``FireSeason.fires`` list ``universe.fire_season(year)`` memoizes, so
every content token, cache key, and overlay output downstream of the
protocol is bit-identical to the pre-protocol wildfire path.  The
differential tests in ``tests/hazard/`` pin the object identities.

``acreage_multiplier`` exists for scenario variants (the
``wui-expansion`` bundle): a multiplier ≠ 1 regenerates the season
with scaled national acreage instead of returning the universe's
memoized one.
"""

from __future__ import annotations

import numpy as np

from ..data.historical_stats import year_stats
from ..data.wildfires import generate_fire_season, scripted_2019_growth
from .base import EventSet, Hazard

__all__ = ["WildfireHazard"]


class WildfireHazard(Hazard):
    """WHP intensity + GeoMAC-style perimeter seasons."""

    name = "wildfire"
    default_year = 2019
    monotone_growth = True

    def __init__(self, acreage_multiplier: float = 1.0):
        if acreage_multiplier <= 0:
            raise ValueError("acreage_multiplier must be positive")
        self.acreage_multiplier = float(acreage_multiplier)

    # ------------------------------------------------------------------

    def intensity(self, universe):
        return universe.whp

    def event_set(self, universe, year: int | None = None) -> EventSet:
        year = self.default_year if year is None else year
        if self.acreage_multiplier == 1.0:
            season = universe.fire_season(year)
            # The season's own list object: fires_token's per-fire digest
            # memo and every overlay cache key stay byte-identical.
            return EventSet(year=season.year, events=season.fires)
        total = year_stats(year).acres_burned * 1e6 \
            * self.acreage_multiplier
        season = generate_fire_season(
            year, universe.whp,
            seed=universe.config.seed + year,
            total_acres=total)
        return EventSet(year=season.year, events=season.fires)

    def ensemble_member(self, universe, year: int,
                        member: int) -> list:
        """Member 0 is the canonical season; members re-draw it.

        Each member is an independent sample of the same year (same
        national acreage, same ignition field, distinct rng stream),
        scaled by the variant's acreage multiplier.
        """
        if member == 0 and self.acreage_multiplier == 1.0:
            return self.event_set(universe, year).events
        total = year_stats(year).acres_burned * 1e6 \
            * self.acreage_multiplier
        season = generate_fire_season(
            year, universe.whp,
            seed=universe.config.seed + year + 7919 * member,
            total_acres=total)
        return season.fires

    # -- streaming -----------------------------------------------------

    def growth_series(self, universe, n_ticks: int = 8) -> list[list]:
        return scripted_2019_growth(n_ticks)

    def incident(self, universe, n_ticks: int = 8):
        """The scripted 2019 case-study fires over the static season.

        Byte-for-byte the logic ``run_scripted_incident`` hardwired
        before the protocol existed: the growth series' final tick is
        the scripted fires' exact static perimeters, so folding the
        stream reproduces the batch 2019 overlay bit-for-bit.
        """
        growth = self.growth_series(universe, n_ticks)
        scripted_names = {f.name for f in growth[-1]}
        season = universe.fire_season(2019)
        background = [f for f in season.fires
                      if f.name not in scripted_names]
        return season.year, background, growth

    # ------------------------------------------------------------------

    def intensity_histogram(self, universe) -> np.ndarray:
        """Cell counts per WHP class (diagnostic helper)."""
        data = universe.whp.raster.data
        return np.bincount(data.ravel().astype(np.int64), minlength=6)
