"""A deliberately simple wind hazard: the protocol isn't fire-shaped.

Severe-wind events (derechos, Santa Ana outflows, hurricane remnants)
knock out cell sites directly — toppled towers, snapped feeders —
with no fuel model, no burn probability, and *non-monotone* footprints
(a storm swath doesn't grow from a point; it arrives whole).  This
instance exists to prove the :class:`~repro.hazard.base.Hazard`
protocol carries such a peril end-to-end:

* the intensity surface is a :class:`WindFieldSurface` — an int8
  severity raster (0-5, Beaufort-bucketed) on the same grid geometry
  as the WHP raster, built from a latitudinal storm-track gradient
  plus seeded, smoothed noise.  ``classify_cells``' tiled sampling
  runs on it unchanged;
* events are :class:`~repro.hazard.base.FootprintEvent` swaths —
  long, thin, low-roughness polygons elongated along the storm
  bearing — generated where the wind field is severe;
* ``monotone_growth`` stays ``False`` and :meth:`growth_series`
  raises: this hazard cannot enter the delta-overlay stream, and the
  protocol makes that an explicit property instead of a crash.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..data.wildfires import _pareto_sizes, star_polygon
from .base import EventSet, FootprintEvent, Hazard

__all__ = ["WindFieldSurface", "WindFootprintHazard"]


class WindFieldSurface:
    """An int8 wind-severity raster conforming to ``IntensitySurface``."""

    def __init__(self, raster):
        self.raster = raster
        self._token: bytes | None = None

    def classify(self, lons, lats) -> np.ndarray:
        return self.raster.sample(lons, lats, outside=np.int8(0))

    def content_token(self) -> bytes:
        if self._token is None:
            self._token = self.raster.content_token()
        return self._token

    def severe_mask(self) -> np.ndarray:
        return self.raster.data >= 3


class WindFootprintHazard(Hazard):
    """Severe-wind swaths over a synthetic storm-climatology field."""

    name = "wind"
    default_year = 2019
    monotone_growth = False

    def __init__(self, n_events: int = 24,
                 total_acres: float = 2_000_000.0):
        self.n_events = int(n_events)
        self.total_acres = float(total_acres)
        # Per-universe surface cache: the field is a pure function of
        # the universe's WHP grid geometry and seed, and its token keys
        # every classify_cells probe, so build it once per universe.
        from weakref import WeakKeyDictionary
        self._surfaces: "WeakKeyDictionary" = WeakKeyDictionary()

    # ------------------------------------------------------------------

    def intensity(self, universe) -> WindFieldSurface:
        surface = self._surfaces.get(universe)
        if surface is None:
            surface = self._build_surface(universe)
            self._surfaces[universe] = surface
        return surface

    def _build_surface(self, universe) -> WindFieldSurface:
        """Severity classes 0-5 on the WHP raster's grid geometry."""
        from ..geo.raster import Raster
        grid = universe.whp.grid
        rng = np.random.default_rng(universe.config.seed + 40_961)
        rows = np.arange(grid.height, dtype=float)
        _, lats = grid.cell_center(rows, np.zeros_like(rows))
        # Storm-track climatology: winds peak along the mid-latitude
        # jet (~45N) and the Gulf hurricane belt (~30N).
        jet = np.exp(-((lats - 45.0) / 6.0) ** 2)
        gulf = 0.7 * np.exp(-((lats - 30.0) / 4.0) ** 2)
        base = (jet + gulf)[:, None] * np.ones((1, grid.width))
        noise = rng.standard_normal(grid.shape)
        noise = ndimage.uniform_filter(noise, size=9, mode="nearest")
        field = base + 0.6 * noise / max(np.abs(noise).max(), 1e-9)
        # Bucket into 6 ordinal classes; water/out-of-track floors at 0.
        lo, hi = float(field.min()), float(field.max())
        codes = np.clip(((field - lo) / max(hi - lo, 1e-9) * 6.0)
                        .astype(np.int8), 0, 5)
        return WindFieldSurface(Raster(grid, codes))

    # ------------------------------------------------------------------

    def event_set(self, universe, year: int | None = None) -> EventSet:
        year = self.default_year if year is None else year
        return EventSet(year=year,
                        events=self.ensemble_member(universe, year, 0))

    def ensemble_member(self, universe, year: int,
                        member: int) -> list:
        """Storm swaths drawn where the wind field is severe."""
        surface = self.intensity(universe)
        grid = surface.raster.grid
        rng = np.random.default_rng(
            universe.config.seed + 65_537 + 31 * year
            + 7919 * member)
        weights = (surface.raster.data.astype(float) ** 2).ravel()
        prob = weights / weights.sum()
        cell_ids = rng.choice(len(prob), size=self.n_events, p=prob)
        r, c = np.unravel_index(cell_ids, grid.shape)
        lons, lats = grid.cell_center(r, c)
        sizes = _pareto_sizes(self.n_events, self.total_acres, rng,
                              alpha=0.8, min_acres=5_000.0,
                              max_acres=400_000.0)
        events = []
        for i in range(self.n_events):
            start = int(rng.integers(1, 350))
            poly = star_polygon(
                float(lons[i]), float(lats[i]), float(sizes[i]), rng,
                n_vertices=20, roughness=0.15,
                elongation=float(rng.uniform(4.0, 8.0)),
                bearing_deg=float(rng.uniform(40.0, 140.0)))
            events.append(FootprintEvent(
                name=f"WIND-{year}-{member:02d}-{i:03d}",
                year=year,
                start_doy=start,
                end_doy=min(start + 2, 364),
                acres=float(sizes[i]),
                polygon=poly,
                kind="wind-swath"))
        return events
