"""Pluggable hazards: the protocol, its instances, and the scenarios.

The engine layers (:mod:`repro.core`, :mod:`repro.stream`) consume
hazards only through :class:`~repro.hazard.base.Hazard` — an intensity
surface the tiled classifier samples plus an event-set generator the
overlay engine joins — and resolve them by *name* through the
registry, so session artifacts carry a canonical ``hazard=`` parameter
that distinguishes perils in memo keys, ledger labels, and manifests.

Importing this package registers the built-in instances:

=============  ==================================================
``wildfire``   the paper's peril — WHP surface + GeoMAC-style
               seasons, byte-identical to the pre-protocol path
``grid_fire``  ignitions sampled along high-risk power-grid lines
``wind``       severe-wind footprint swaths (non-fire, non-monotone)
=============  ==================================================

plus the named scenarios (``repro scenario NAME``); see
``docs/hazards.md``.
"""

from __future__ import annotations

from .base import (
    EventSet,
    FootprintEvent,
    Hazard,
    HazardEvent,
    IntensitySurface,
)
from .grid_fire import GridIgnitedFireHazard
from .registry import (
    get_hazard,
    hazard_names,
    iter_hazards,
    register_hazard,
)
from .scenarios import (
    MemberImpact,
    Scenario,
    ScenarioResult,
    get_scenario,
    run_scenario,
    scenario_names,
)
from .wildfire import WildfireHazard
from .wind import WindFieldSurface, WindFootprintHazard

__all__ = [
    "EventSet",
    "FootprintEvent",
    "GridIgnitedFireHazard",
    "Hazard",
    "HazardEvent",
    "IntensitySurface",
    "MemberImpact",
    "Scenario",
    "ScenarioResult",
    "WildfireHazard",
    "WindFieldSurface",
    "WindFootprintHazard",
    "get_hazard",
    "get_scenario",
    "hazard_names",
    "iter_hazards",
    "register_hazard",
    "run_scenario",
    "scenario_names",
]

register_hazard(WildfireHazard())
register_hazard(GridIgnitedFireHazard())
register_hazard(WindFootprintHazard())
