"""Named what-if bundles: parameterized hazards run as ensembles.

A :class:`Scenario` is a named, fully-parameterized bundle — a hazard
variant (possibly compound: extra hazards' events ride along in every
member), a season year, and an ensemble size.  Running one draws N
independent members (:meth:`Hazard.ensemble_member`), joins each
member's event list against the transceiver universe, and summarizes
the impact distribution.  The ensemble fans out through the *existing*
pool/shm machinery: each member is exactly the fire-slice task shape
the batch overlay ships to workers, so members run concurrently on the
persistent universe pool with zero new worker code.

Scenarios are session artifacts (``session.artifact("scenario",
scenario=..., members=...)``) and a CLI stage (``repro scenario
NAME``), so every run lands in the run ledger with the scenario name
in its artifact label and manifest.

The catalog:

* ``grid-ignition-season`` — a season of utility-sparked fires along
  PSPS-candidate lines (the :class:`GridIgnitedFireHazard` default);
* ``2025-la-style`` — a compound wind-driven event: few, highly
  elongated grid-ignited fires *plus* severe-wind swaths in the same
  members (cf. the January 2025 LA firestorm's ignition inquiries);
* ``wui-expansion`` — the wildfire hazard with national burned
  acreage grown 60%, a what-if for WUI growth under climate change.

Core-engine imports stay inside functions: this module loads with the
hazard package, before :mod:`repro.core` exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.trace import span as trace_span
from ..runtime.stats import STATS
from ..session import StageOption, artifact, register_stage
from .base import Hazard
from .grid_fire import GridIgnitedFireHazard
from .wildfire import WildfireHazard
from .wind import WindFootprintHazard

__all__ = ["Scenario", "MemberImpact", "ScenarioResult",
           "register_scenario", "get_scenario", "scenario_names",
           "run_scenario", "ensemble_impacts"]


@dataclass(frozen=True)
class Scenario:
    """One named bundle: hazard variant + year + ensemble size."""

    name: str
    help: str
    hazard: Hazard
    year: int
    members: int
    #: Hazards whose member events are appended to every member's list
    #: (compound events: a wind field arriving with the fires).
    extra_hazards: tuple = ()


@dataclass(frozen=True)
class MemberImpact:
    """One ensemble member's impact summary."""

    member: int
    n_events: int
    total_acres: float
    impacted: int


@dataclass
class ScenarioResult:
    """A finished scenario run: the member impact distribution."""

    name: str
    hazard: str
    year: int
    members: list[MemberImpact] = field(default_factory=list)

    @property
    def n_members(self) -> int:
        return len(self.members)

    @property
    def mean_impacted(self) -> float:
        if not self.members:
            return 0.0
        return float(np.mean([m.impacted for m in self.members]))

    @property
    def max_impacted(self) -> int:
        return max((m.impacted for m in self.members), default=0)

    @property
    def min_impacted(self) -> int:
        return min((m.impacted for m in self.members), default=0)


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------

_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    if scenario.name in _SCENARIOS:
        raise ValueError(
            f"scenario {scenario.name!r} registered twice")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise KeyError(
            f"unknown scenario {name!r} (known: {known})") from None


def scenario_names() -> tuple[str, ...]:
    return tuple(sorted(_SCENARIOS))


register_scenario(Scenario(
    name="grid-ignition-season",
    help="a season of utility-sparked fires on PSPS-candidate lines",
    hazard=GridIgnitedFireHazard(),
    year=2019,
    members=6))

register_scenario(Scenario(
    name="2025-la-style",
    help="compound wind-driven event: elongated grid fires + "
         "severe-wind swaths",
    hazard=GridIgnitedFireHazard(n_events=24, total_acres=900_000.0,
                                 elongation_range=(2.5, 4.0)),
    year=2025,
    members=4,
    extra_hazards=(WindFootprintHazard(n_events=12,
                                       total_acres=1_500_000.0),)))

register_scenario(Scenario(
    name="wui-expansion",
    help="wildfire season with national burned acreage grown 60%",
    hazard=WildfireHazard(acreage_multiplier=1.6),
    year=2019,
    members=5))


# ----------------------------------------------------------------------
# Ensemble runner
# ----------------------------------------------------------------------

def ensemble_impacts(universe, member_events: list[list], year: int, *,
                     workers: int | None = None) -> list[int]:
    """Unique-transceiver impact count per member event list.

    Members dispatch as whole tasks through the persistent universe
    pool — the exact task shape (a fire list in, per-fire counts plus
    global hit indices out) the batch overlay shards by fire slices —
    so an N-member ensemble costs one warm pool round-trip.  Pool
    failure falls back to the serial joins, bit-identically.
    """
    from ..core import overlay as ov
    from ..runtime import get_config, run_tasks

    cells = universe.cells
    if workers is None:
        workers = get_config().workers
    eff_workers = max(1, min(workers, len(member_events)))

    results = None
    if eff_workers > 1:
        initializer, initargs = ov._overlay_pool_init(cells)
        results = run_tasks(
            "overlay", eff_workers, cells.content_token(),
            ov._overlay_fires_task, member_events,
            initializer=initializer, initargs=initargs)
    if results is not None:
        impacts = []
        for _, hits, delta in results:
            STATS.merge(delta)
            impacts.append(int(np.unique(hits).size))
        return impacts
    return [ov._overlay_serial(cells, events, year).n_in_perimeter
            for events in member_events]


def run_scenario(universe, name: str, *, members: int | None = None,
                 workers: int | None = None) -> ScenarioResult:
    """Run a named scenario ensemble against a universe."""
    scenario = get_scenario(name)
    n_members = scenario.members if members is None else int(members)
    if n_members < 1:
        raise ValueError("a scenario needs at least one member")

    with trace_span("scenario", scenario=name, members=n_members):
        with STATS.timer("scenario"):
            member_events = []
            for m in range(n_members):
                events = list(scenario.hazard.ensemble_member(
                    universe, scenario.year, m))
                for extra in scenario.extra_hazards:
                    events.extend(extra.ensemble_member(
                        universe, scenario.year, m))
                member_events.append(events)
            impacts = ensemble_impacts(universe, member_events,
                                       scenario.year, workers=workers)

    result = ScenarioResult(name=name, hazard=scenario.hazard.name,
                            year=scenario.year)
    for m, (events, impacted) in enumerate(zip(member_events,
                                               impacts)):
        result.members.append(MemberImpact(
            member=m,
            n_events=len(events),
            total_acres=float(sum(getattr(e, "acres", 0.0)
                                  for e in events)),
            impacted=impacted))
    return result


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("scenario",
          doc="named multi-hazard what-if ensemble (impact distribution)")
def _scenario_artifact(session, scenario: str = "grid-ignition-season",
                       members: int | None = None) -> ScenarioResult:
    return run_scenario(session.universe, scenario, members=members)


def _export_scenario(session, ctx) -> dict:
    result = session.artifact("scenario")
    return {"scenario": {
        "name": result.name,
        "hazard": result.hazard,
        "year": result.year,
        "members": [{
            "member": m.member,
            "n_events": m.n_events,
            "total_acres": round(m.total_acres, 1),
            "impacted": m.impacted,
        } for m in result.members],
        "mean_impacted": result.mean_impacted,
        "max_impacted": result.max_impacted,
    }}


register_stage("scenario",
               help="run a named what-if ensemble "
                    "(see docs/hazards.md for the catalog)",
               paper="§3.11", artifact="scenario",
               render="render_scenario", order=None,
               domain="hazards",
               options=(
                   StageOption("scenario", type=str,
                               default="grid-ignition-season",
                               choices=scenario_names(), nargs="?",
                               help="scenario name (default: "
                                    "grid-ignition-season)"),
                   StageOption("--members", type=int, default=None,
                               help="override the bundle's ensemble "
                                    "size"),
               ),
               params=("scenario", "members"),
               export=_export_scenario)
