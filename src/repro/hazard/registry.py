"""Name → :class:`~repro.hazard.base.Hazard` instance registry.

Stages and session artifacts carry hazards as their *names* — short
strings that canonicalize into memo keys, ledger labels, and run
manifests — and resolve them here at build time.  The three built-in
instances register on package import
(:mod:`repro.hazard.__init__`); scenario variants construct hazards
directly and never need the registry.
"""

from __future__ import annotations

from .base import Hazard

__all__ = ["register_hazard", "get_hazard", "hazard_names",
           "iter_hazards"]

_HAZARDS: dict[str, Hazard] = {}


def register_hazard(hazard: Hazard) -> Hazard:
    """Register a hazard instance under its :attr:`~Hazard.name`."""
    if not hazard.name:
        raise ValueError("hazard must have a non-empty name")
    if hazard.name in _HAZARDS:
        raise ValueError(f"hazard {hazard.name!r} registered twice")
    _HAZARDS[hazard.name] = hazard
    return hazard


def get_hazard(hazard: str | Hazard) -> Hazard:
    """Resolve a hazard name (or pass an instance through).

    Accepting instances lets scenario bundles run parameterized
    variants (e.g. a wind-stretched grid-fire) through the same code
    paths the named stages use.
    """
    if isinstance(hazard, Hazard):
        return hazard
    try:
        return _HAZARDS[hazard]
    except KeyError:
        known = ", ".join(sorted(_HAZARDS))
        raise KeyError(
            f"unknown hazard {hazard!r} (known: {known})") from None


def hazard_names() -> tuple[str, ...]:
    """Registered hazard names, sorted."""
    return tuple(sorted(_HAZARDS))


def iter_hazards() -> tuple[Hazard, ...]:
    """Registered instances, in name order."""
    return tuple(_HAZARDS[name] for name in hazard_names())
