"""A small from-scratch GIS engine.

This subpackage is the substrate that replaces ArcGIS Pro in the original
study: vector geometry with point-in-polygon joins, an equal-area
projection for acreage math, spatial indexes for millions of points,
affine rasters with polygon rasterization and metric dilation, vector
buffering, and GeoJSON I/O.
"""

from .buffer import buffer_point, buffer_polygon
from .geojson import (
    dump_features,
    feature,
    feature_collection,
    geometry_from_geojson,
    geometry_to_geojson,
    load_features,
)
from .geometry import (
    BBox,
    LineString,
    MultiPolygon,
    Point,
    Polygon,
    PreparedPolygon,
    simplify_ring,
)
from .index import STRTree, UniformGridIndex
from .predicates import (
    PreparedRing,
    is_ccw,
    point_in_ring,
    points_in_ring,
    prepare_ring,
    ring_area_signed,
    segments_intersect,
)
from .projection import (
    CONUS_ALBERS,
    EARTH_RADIUS_M,
    AlbersEqualArea,
    LocalEquirectangular,
    acres_to_sqmeters,
    destination_point,
    haversine_m,
    meters_per_degree,
    meters_to_miles,
    miles_to_meters,
    sqmeters_to_acres,
)
from .raster import GridSpec, Raster, disk_footprint, rasterize_polygon

__all__ = [
    "BBox", "LineString", "MultiPolygon", "Point", "Polygon",
    "PreparedPolygon", "PreparedRing", "prepare_ring",
    "simplify_ring",
    "STRTree", "UniformGridIndex",
    "GridSpec", "Raster", "disk_footprint", "rasterize_polygon",
    "buffer_point", "buffer_polygon",
    "point_in_ring", "points_in_ring", "ring_area_signed",
    "segments_intersect", "is_ccw",
    "CONUS_ALBERS", "EARTH_RADIUS_M", "AlbersEqualArea",
    "LocalEquirectangular", "haversine_m", "destination_point",
    "meters_per_degree", "miles_to_meters", "meters_to_miles",
    "acres_to_sqmeters", "sqmeters_to_acres",
    "geometry_to_geojson", "geometry_from_geojson", "feature",
    "feature_collection", "dump_features", "load_features",
]
