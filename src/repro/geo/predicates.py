"""Low-level geometric predicates.

These are the inner loops of the spatial-join engine: point-in-ring tests
(both a scalar version and a numpy-vectorized version used for millions of
transceivers at once), segment intersection, and point-to-segment distance.

All functions operate on plain coordinates; the coordinate system is
whichever the caller uses consistently (lon/lat degrees everywhere in this
package — point-in-polygon is affine-invariant so degrees are fine).

Rings may be given as plain (N, 2) array-likes or as :class:`PreparedRing`
objects.  Preparation front-loads the validation, closure trim, and edge
array construction that every predicate needs, so a ring queried thousands
of times (one fire perimeter against every chunk of a 5M-point universe)
pays that cost exactly once.  Prepared and unprepared paths produce
bit-identical results: preparation only caches arrays, it never changes an
arithmetic expression.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PreparedRing",
    "prepare_ring",
    "point_in_ring",
    "points_in_ring",
    "points_in_ring_serial",
    "on_segment",
    "segments_intersect",
    "point_segment_distance",
    "ring_area_signed",
    "is_ccw",
    "ring_self_intersects",
]

# Closure-trim tolerances, chosen to reproduce np.allclose defaults:
# |first - last| <= atol + rtol * |last|, per coordinate.
_CLOSE_RTOL = 1.0e-5
_CLOSE_ATOL = 1.0e-8


def _coords_close(ax: float, ay: float, bx: float, by: float) -> bool:
    """Scalar equivalent of ``np.allclose([ax, ay], [bx, by])``."""
    return (abs(ax - bx) <= _CLOSE_ATOL + _CLOSE_RTOL * abs(bx)
            and abs(ay - by) <= _CLOSE_ATOL + _CLOSE_RTOL * abs(by))


def _validated_ring(ring) -> np.ndarray:
    """Validate an (N, 2) ring array-like; trim a closing vertex."""
    arr = np.asarray(ring, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("ring must be an (N, 2) array of coordinates")
    if len(arr) >= 2 and _coords_close(arr[0, 0], arr[0, 1],
                                       arr[-1, 0], arr[-1, 1]):
        arr = arr[:-1]
    if len(arr) < 3:
        raise ValueError("ring needs at least 3 distinct vertices")
    return arr


class PreparedRing:
    """A ring with its per-query arrays computed once.

    Holds the open (no duplicated closing vertex) coordinate arrays plus
    the rolled-by-one edge endpoint arrays that every crossing-number and
    shoelace computation needs.  ``edges`` is the same data as a list of
    Python float 4-tuples, which the edge loop in :func:`points_in_ring`
    iterates faster than numpy scalars.
    """

    __slots__ = ("xs", "ys", "x_next", "y_next", "edges", "n")

    def __init__(self, ring):
        if isinstance(ring, PreparedRing):
            raise TypeError("ring is already prepared")
        arr = _validated_ring(ring)
        xs = np.ascontiguousarray(arr[:, 0])
        ys = np.ascontiguousarray(arr[:, 1])
        # Identical element values/order to np.roll(a, -1), much cheaper.
        self.xs = xs
        self.ys = ys
        self.x_next = np.concatenate((xs[1:], xs[:1]))
        self.y_next = np.concatenate((ys[1:], ys[:1]))
        self.edges = list(zip(xs.tolist(), ys.tolist(),
                              self.x_next.tolist(), self.y_next.tolist()))
        self.n = len(xs)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"PreparedRing({self.n} vertices)"


def prepare_ring(ring) -> PreparedRing:
    """Prepare a ring, or return it unchanged if already prepared."""
    if isinstance(ring, PreparedRing):
        return ring
    return PreparedRing(ring)


def _ring_arrays(ring) -> tuple[np.ndarray, np.ndarray]:
    """Return (xs, ys) for a ring given as an (N, 2) array-like.

    A trailing vertex equal to the first is tolerated but not required.
    Prepared rings return their cached arrays without revalidation.
    """
    if isinstance(ring, PreparedRing):
        return ring.xs, ring.ys
    arr = _validated_ring(ring)
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])


def point_in_ring(x: float, y: float, ring) -> bool:
    """Crossing-number point-in-ring test for a single point.

    Points exactly on an edge are treated as inside (a transceiver on a
    fire-perimeter boundary counts as at risk).
    """
    xs, ys = _ring_arrays(ring)
    n = len(xs)
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi, xj, yj = xs[i], ys[i], xs[j], ys[j]
        if on_segment(x, y, xi, yi, xj, yj):
            return True
        if (yi > y) != (yj > y):
            x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
            if x < x_cross:
                inside = not inside
        j = i
    return inside


#: Edge rows per batched crossing-number block.  Together with
#: ``PIP_POINT_BLOCK`` this bounds every 2-D temporary of the batch
#: kernel to ``PIP_EDGE_BLOCK x PIP_POINT_BLOCK`` doubles (~64 MB at the
#: defaults), so a 5M-point candidate set streams through bounded tiles.
PIP_EDGE_BLOCK = 128

#: Points per batched crossing-number block (columns of the 2-D tile).
PIP_POINT_BLOCK = 65_536


def points_in_ring(xs, ys, ring) -> np.ndarray:
    """Vectorized crossing-number test (batched 2-D kernel).

    Evaluates edges x points as bounded 2-D blocks and XOR-reduces the
    crossing parity over the edge axis.  Every element runs the exact
    arithmetic of the per-edge loop in :func:`points_in_ring_serial`
    (``x_cross = (x2-x1)*(py-y1)/(y2-y1)+x1`` then ``px < x_cross``),
    and XOR is order-independent, so the result is bit-identical to the
    serial kernel — the scale-stratified differential tier enforces it.

    Parameters
    ----------
    xs, ys:
        1-D arrays of point coordinates.
    ring:
        (N, 2) array-like of ring vertices, or a :class:`PreparedRing`.

    Returns
    -------
    Boolean array, True where the point is strictly inside or (to floating
    point tolerance of the crossing rule) on the boundary.
    """
    px = np.asarray(xs, dtype=float)
    py = np.asarray(ys, dtype=float)
    ring = prepare_ring(ring)

    inside = np.zeros(px.shape, dtype=bool)
    n = px.size
    if n == 0:
        return inside
    flat_px = px.reshape(-1)
    flat_py = py.reshape(-1)
    flat_inside = inside.reshape(-1)
    for p0 in range(0, n, PIP_POINT_BLOCK):
        p1 = min(n, p0 + PIP_POINT_BLOCK)
        _pip_block(ring, flat_px[p0:p1], flat_py[p0:p1],
                   flat_inside[p0:p1])
    return inside


def _pip_block(ring: PreparedRing, px: np.ndarray, py: np.ndarray,
               out: np.ndarray) -> None:
    """Crossing parity of one point block, accumulated into ``out``."""
    for e0 in range(0, ring.n, PIP_EDGE_BLOCK):
        e1 = min(ring.n, e0 + PIP_EDGE_BLOCK)
        x1 = ring.xs[e0:e1, None]
        y1 = ring.ys[e0:e1, None]
        x2 = ring.x_next[e0:e1, None]
        y2 = ring.y_next[e0:e1, None]
        cond = (y1 > py) != (y2 > py)
        # Horizontal edges divide by zero; ``cond`` is False there, and
        # a comparison against the resulting inf/nan is False too, so
        # the masked value never reaches the parity.
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = (x2 - x1) * (py - y1) / (y2 - y1) + x1
        out ^= np.bitwise_xor.reduce(cond & (px < x_cross), axis=0)


def points_in_ring_serial(xs, ys, ring) -> np.ndarray:
    """Reference crossing-number kernel: per-edge loop over the ring.

    The original vectorized-over-points implementation, kept as the
    differential oracle for :func:`points_in_ring` — the batch kernel
    must reproduce this bit-for-bit on any input.
    """
    px = np.asarray(xs, dtype=float)
    py = np.asarray(ys, dtype=float)
    ring = prepare_ring(ring)

    inside = np.zeros(px.shape, dtype=bool)
    # Loop over edges (rings are small), vectorize over points (millions).
    for x1, y1, x2, y2 in ring.edges:
        cond = (y1 > py) != (y2 > py)
        if not cond.any():
            continue
        x_cross = (x2 - x1) * (py - y1) / (y2 - y1) + x1
        inside ^= cond & (px < x_cross)
    return inside


def on_segment(px: float, py: float, x1: float, y1: float,
               x2: float, y2: float, tol: float = 1e-12) -> bool:
    """True if point (px, py) lies on segment (x1,y1)-(x2,y2)."""
    cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
    scale = max(abs(x2 - x1), abs(y2 - y1), 1.0)
    if abs(cross) > tol * scale * scale:
        return False
    if min(x1, x2) - tol <= px <= max(x1, x2) + tol and \
       min(y1, y2) - tol <= py <= max(y1, y2) + tol:
        return True
    return False


def _orient(ax, ay, bx, by, cx, cy) -> float:
    """Signed area of triangle abc (positive = counter-clockwise)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def segments_intersect(a1, a2, b1, b2) -> bool:
    """True if closed segments a1-a2 and b1-b2 intersect (incl. touching)."""
    ax1, ay1 = a1
    ax2, ay2 = a2
    bx1, by1 = b1
    bx2, by2 = b2
    d1 = _orient(bx1, by1, bx2, by2, ax1, ay1)
    d2 = _orient(bx1, by1, bx2, by2, ax2, ay2)
    d3 = _orient(ax1, ay1, ax2, ay2, bx1, by1)
    d4 = _orient(ax1, ay1, ax2, ay2, bx2, by2)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)):
        return True
    if d1 == 0 and on_segment(ax1, ay1, bx1, by1, bx2, by2):
        return True
    if d2 == 0 and on_segment(ax2, ay2, bx1, by1, bx2, by2):
        return True
    if d3 == 0 and on_segment(bx1, by1, ax1, ay1, ax2, ay2):
        return True
    if d4 == 0 and on_segment(bx2, by2, ax1, ay1, ax2, ay2):
        return True
    return False


def point_segment_distance(px, py, x1, y1, x2, y2):
    """Distance from point(s) to a segment, in coordinate units.

    Accepts scalar or array ``px, py``.
    """
    px = np.asarray(px, dtype=float)
    py = np.asarray(py, dtype=float)
    dx = x2 - x1
    dy = y2 - y1
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0.0:
        d = np.hypot(px - x1, py - y1)
    else:
        t = np.clip(((px - x1) * dx + (py - y1) * dy) / seg_len2, 0.0, 1.0)
        d = np.hypot(px - (x1 + t * dx), py - (y1 + t * dy))
    if d.ndim == 0:
        return float(d)
    return d


def ring_area_signed(ring) -> float:
    """Shoelace signed area of a ring in its own coordinate units squared.

    Positive for counter-clockwise rings.
    """
    if isinstance(ring, PreparedRing):
        xs, ys = ring.xs, ring.ys
        x_next, y_next = ring.x_next, ring.y_next
    else:
        xs, ys = _ring_arrays(ring)
        x_next = np.concatenate((xs[1:], xs[:1]))
        y_next = np.concatenate((ys[1:], ys[:1]))
    return float(np.sum(xs * y_next - x_next * ys) / 2.0)


def is_ccw(ring) -> bool:
    """True if the ring winds counter-clockwise."""
    return ring_area_signed(ring) > 0.0


def ring_self_intersects(ring) -> bool:
    """True if any two non-adjacent edges of the ring intersect.

    O(n^2) over edges — fine for the hand-authored rings (states,
    ecoregions) and generated perimeters this package validates.
    Adjacent edges sharing a vertex are skipped.
    """
    xs, ys = _ring_arrays(ring)
    n = len(xs)
    edges = [((xs[i], ys[i]), (xs[(i + 1) % n], ys[(i + 1) % n]))
             for i in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if j == i + 1 or (i == 0 and j == n - 1):
                continue  # adjacent edges share a vertex
            if segments_intersect(edges[i][0], edges[i][1],
                                  edges[j][0], edges[j][1]):
                return True
    return False
