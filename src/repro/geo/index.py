"""Spatial indexes.

Two classic structures back the spatial-join engine:

* :class:`UniformGridIndex` — buckets millions of points into a uniform
  lon/lat grid so a polygon query touches only candidate buckets.  This is
  the workhorse for "which transceivers fall inside this fire perimeter".
* :class:`STRTree` — a packed (Sort-Tile-Recursive) R-tree over geometry
  bounding boxes, used when the query side is also geometric (e.g. which
  counties intersect a metro window).

Both are static (bulk-loaded) indexes, matching the batch nature of the
paper's analysis, and both store their structure as flat numpy arrays:

* the grid keeps its bucket table in CSR form — sorted unique bucket keys
  plus a prefix-pointer array into the bucket-sorted point order — so a
  query is two ``np.searchsorted`` calls per candidate row instead of a
  Python dict probe per candidate bucket;
* the tree keeps node bboxes as one ``(T, 4)`` float array with implicit
  child ranges, so descending a node tests all its children in one
  vectorized comparison.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..runtime.stats import STATS
from .geometry import BBox, MultiPolygon, Polygon

__all__ = ["UniformGridIndex", "STRTree"]


class UniformGridIndex:
    """A bulk-loaded uniform grid over 2-D points.

    Points are sorted by bucket id once at build time.  Because the sort
    key is ``row * ncols + col``, every bucket — and every *run of
    consecutive buckets within a row* — occupies one contiguous slice of
    the sorted order.  A bbox query therefore gathers, per candidate row,
    a single contiguous slice located with two binary searches over the
    unique-key array (CSR layout), instead of probing a hash table per
    bucket.  Query results are indices into the original point arrays.
    """

    def __init__(self, lons, lats, cell_deg: float = 0.25):
        self.lons = np.ascontiguousarray(lons, dtype=float)
        self.lats = np.ascontiguousarray(lats, dtype=float)
        if self.lons.shape != self.lats.shape or self.lons.ndim != 1:
            raise ValueError("lons/lats must be equal-length 1-D arrays")
        if cell_deg <= 0:
            raise ValueError("cell size must be positive")
        self.cell_deg = float(cell_deg)
        n = len(self.lons)
        self._rank_arr: np.ndarray | None = None
        if n == 0:
            self._order = np.empty(0, dtype=np.int64)
            self._uniq_keys = np.empty(0, dtype=np.int64)
            self._bucket_ptr = np.zeros(1, dtype=np.int64)
            self._ncols = 0
            self._nrows = 0
            self.bbox = None
            self._slons = self.lons
            self._slats = self.lats
            return
        self.bbox = BBox.of_coords(self.lons, self.lats)
        self._ncols = max(1, int(np.ceil(self.bbox.width / cell_deg)) + 1)
        cols = ((self.lons - self.bbox.min_lon) // cell_deg).astype(np.int64)
        rows = ((self.lats - self.bbox.min_lat) // cell_deg).astype(np.int64)
        self._nrows = int(rows.max()) + 1
        keys = rows * self._ncols + cols
        self._order = np.argsort(keys, kind="stable")
        sorted_keys = keys[self._order]
        # CSR bucket table: points of bucket _uniq_keys[i] are
        # _order[_bucket_ptr[i]:_bucket_ptr[i + 1]].
        uniq, starts = np.unique(sorted_keys, return_index=True)
        self._uniq_keys = uniq
        self._bucket_ptr = np.append(starts, n).astype(np.int64)
        # Coordinates in bucket-sorted order: a candidate run is then a
        # contiguous memcpy of these instead of a scattered gather over
        # the original (universe-ordered) arrays.
        self._slons = self.lons[self._order]
        self._slats = self.lats[self._order]

    def __len__(self) -> int:
        return len(self.lons)

    # ------------------------------------------------------------------
    # Flat-array snapshot: everything a worker needs to reconstruct the
    # built index without re-sorting, suitable for zero-copy transport
    # through multiprocessing.shared_memory (see repro.runtime.shm).
    # ------------------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array snapshot of the built index structure.

        Returns a dict of contiguous numpy arrays (plus a small float
        ``meta`` header) from which :meth:`from_arrays` reconstructs the
        index without paying the build-time argsort.
        """
        if self.bbox is None:
            raise ValueError("cannot snapshot an empty index")
        meta = np.array([self.cell_deg, self._ncols, self._nrows,
                         self.bbox.min_lon, self.bbox.min_lat,
                         self.bbox.max_lon, self.bbox.max_lat],
                        dtype=np.float64)
        return {
            "meta": meta,
            "lons": self.lons, "lats": self.lats,
            "order": self._order, "uniq_keys": self._uniq_keys,
            "bucket_ptr": self._bucket_ptr,
            "slons": self._slons, "slats": self._slats,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) \
            -> "UniformGridIndex":
        """Rebuild an index from a :meth:`to_arrays` snapshot.

        The arrays are adopted as-is (they may be views into a shared
        memory segment); queries on the rebuilt index are bit-identical
        to queries on the original.
        """
        self = cls.__new__(cls)
        meta = np.asarray(arrays["meta"], dtype=np.float64)
        self.cell_deg = float(meta[0])
        self._ncols = int(meta[1])
        self._nrows = int(meta[2])
        self.bbox = BBox(float(meta[3]), float(meta[4]),
                         float(meta[5]), float(meta[6]))
        self.lons = arrays["lons"]
        self.lats = arrays["lats"]
        self._order = arrays["order"]
        self._uniq_keys = arrays["uniq_keys"]
        self._bucket_ptr = arrays["bucket_ptr"]
        self._slons = arrays["slons"]
        self._slats = arrays["slats"]
        self._rank_arr = None
        return self

    @property
    def _rank(self) -> np.ndarray:
        """Inverse of ``_order``: original index -> bucket-sorted position.

        Built lazily (one scatter) the first time a delta query needs to
        map previously-answered hits back onto CSR positions, then
        reused for the life of the index.
        """
        rank = self._rank_arr
        if rank is None:
            n = len(self._order)
            rank = np.empty(n, dtype=np.int64)
            rank[self._order] = np.arange(n, dtype=np.int64)
            self._rank_arr = rank
        return rank

    def _bucket_range(self, bbox: BBox):
        """(c0, c1, r0, r1) bucket window, clamped to the grid extent."""
        c0 = int((bbox.min_lon - self.bbox.min_lon) // self.cell_deg)
        c1 = int((bbox.max_lon - self.bbox.min_lon) // self.cell_deg)
        r0 = int((bbox.min_lat - self.bbox.min_lat) // self.cell_deg)
        r1 = int((bbox.max_lat - self.bbox.min_lat) // self.cell_deg)
        return (max(c0, 0), min(c1, self._ncols - 1),
                max(r0, 0), min(r1, self._nrows - 1))

    def _candidate_runs(self, bbox: BBox):
        """``(starts, ends, nbuckets)`` CSR candidate runs, or None.

        Each ``[starts[i], ends[i])`` is one contiguous run of the
        bucket-sorted order covering the candidate buckets of one grid
        row inside ``bbox``; ``nbuckets[i]`` is the number of occupied
        buckets the run spans (the unit the delta path's dirty/skipped
        counters are denominated in).
        """
        if self.bbox is None or not self.bbox.intersects(bbox):
            return None
        c0, c1, r0, r1 = self._bucket_range(bbox)
        if c1 < c0 or r1 < r0:
            return None
        # Buckets [base + c0, base + c1] of one row are consecutive keys,
        # hence one contiguous slice of the sorted order.
        bases = np.arange(r0, r1 + 1, dtype=np.int64) * self._ncols
        lo = np.searchsorted(self._uniq_keys, bases + c0, side="left")
        hi = np.searchsorted(self._uniq_keys, bases + c1, side="right")
        starts = self._bucket_ptr[lo]
        ends = self._bucket_ptr[hi]
        occupied = starts < ends
        if not occupied.any():
            return None
        return starts[occupied], ends[occupied], (hi - lo)[occupied]

    @staticmethod
    def _gather_runs(arr: np.ndarray, starts, ends) -> np.ndarray:
        """Concatenate ``arr[s:e]`` for each CSR run (contiguous copies)."""
        runs = [arr[s:e] for s, e in zip(starts.tolist(), ends.tolist())]
        return runs[0] if len(runs) == 1 else np.concatenate(runs)

    def _bbox_filtered(self, bbox: BBox, starts, ends):
        """``(indices, lons, lats)`` of run candidates inside ``bbox``.

        Candidate coordinates come straight out of the presorted CSR
        runs (contiguous slices, no scattered gather); the value stream
        and the ``index.candidates`` / ``index.hits`` counters are
        identical to the historical per-candidate gather.
        """
        clons = self._gather_runs(self._slons, starts, ends)
        clats = self._gather_runs(self._slats, starts, ends)
        keep = bbox.contains_many(clons, clats)
        cand = self._gather_runs(self._order, starts, ends)
        out = cand[keep]
        STATS.count("index.candidates", len(cand))
        STATS.count("index.hits", len(out))
        return out, clons[keep], clats[keep]

    def query_bbox(self, bbox: BBox) -> np.ndarray:
        """Indices of points inside ``bbox``."""
        STATS.count("index.bbox_queries")
        runs = self._candidate_runs(bbox)
        if runs is None:
            return np.empty(0, dtype=np.int64)
        starts, ends, _ = runs
        out, _, _ = self._bbox_filtered(bbox, starts, ends)
        return out

    def query_polygon(self, polygon: Polygon | MultiPolygon) -> np.ndarray:
        """Indices of points inside the polygon (exact, holes respected).

        The batch point-in-polygon kernel runs directly over the CSR
        candidate coordinates retained by the bbox filter — the original
        point arrays are never re-gathered.
        """
        STATS.count("index.bbox_queries")
        runs = self._candidate_runs(polygon.bbox)
        if runs is None:
            return np.empty(0, dtype=np.int64)
        starts, ends, _ = runs
        cand, clons, clats = self._bbox_filtered(polygon.bbox, starts,
                                                 ends)
        if len(cand) == 0:
            return cand
        keep = polygon.contains_many(clons, clats)
        out = cand[keep]
        STATS.count("index.polygon_queries")
        STATS.count("index.pip_tests", len(cand))
        STATS.count("index.pip_hits", len(out))
        return out

    def query_polygon_delta(self, polygon: Polygon | MultiPolygon,
                            prev_hits: np.ndarray) -> np.ndarray:
        """Indices inside ``polygon``, reusing an answered footprint.

        ``prev_hits`` must be the exact result of an earlier
        :meth:`query_polygon` (or ``query_polygon_delta``) for a
        perimeter *contained in* ``polygon`` — the monotone-growth
        contract of a spreading fire front.  Under it every previous
        hit is still a hit, so the query only has to discover the
        points the grown perimeter newly covers:

        * candidate buckets whose points were **all** answered by
          ``prev_hits`` are *skipped* outright (no gather, no bbox
          test, no point-in-polygon) — ``index.skipped_buckets``;
        * the remaining *dirty* buckets (``index.dirty_buckets``) run
          the normal bbox prefilter, but only their still-unanswered
          candidates pay the point-in-polygon test
          (``index.pip_skipped`` counts the tests avoided).

        The return value is bit-identical — values, order, dtype — to
        ``query_polygon(polygon)``, and the ``index.candidates`` /
        ``index.hits`` / ``index.pip_hits`` counter totals match the
        batch call exactly; ``index.pip_tests`` counts only the tests
        actually run, with ``pip_tests + pip_skipped`` equal to the
        batch total.  If ``prev_hits`` is not a monotone footprint the
        result is undefined.
        """
        prev_hits = np.asarray(prev_hits, dtype=np.int64)
        STATS.count("index.bbox_queries")
        STATS.count("index.delta_queries")
        runs = self._candidate_runs(polygon.bbox)
        if runs is None:
            STATS.count("index.polygon_queries")
            return np.empty(0, dtype=np.int64)
        starts, ends, nbuckets = runs
        # Previously-answered hits as sorted CSR positions: a run's
        # answered count is then one searchsorted pair, and "every
        # candidate answered" == "run fully answered" == skippable.
        prev_pos = np.sort(self._rank[prev_hits])
        lo = np.searchsorted(prev_pos, starts, side="left")
        hi = np.searchsorted(prev_pos, ends, side="left")
        run_len = ends - starts
        full = (hi - lo) == run_len
        n_cand = int(run_len.sum())
        n_full_cand = int(run_len[full].sum())
        STATS.count("index.skipped_buckets", int(nbuckets[full].sum()))
        STATS.count("index.dirty_buckets", int(nbuckets[~full].sum()))
        # Batch-parity accounting: a skipped run's candidates are all
        # previous hits, hence inside the old perimeter, hence inside
        # the grown perimeter's bbox — the batch call would have
        # counted every one as a candidate and a bbox hit.
        STATS.count("index.candidates", n_cand)

        pieces = [prev_pos[s:e] for s, e in
                  zip(lo[full].tolist(), hi[full].tolist())]
        n_bbox_hits = n_full_cand
        n_pip_tests = 0
        dirty_starts, dirty_ends = starts[~full], ends[~full]
        if len(dirty_starts):
            clons = self._gather_runs(self._slons, dirty_starts,
                                      dirty_ends)
            clats = self._gather_runs(self._slats, dirty_starts,
                                      dirty_ends)
            pos = np.concatenate(
                [np.arange(s, e, dtype=np.int64) for s, e in
                 zip(dirty_starts.tolist(), dirty_ends.tolist())])
            keep = polygon.bbox.contains_many(clons, clats)
            pos, clons, clats = pos[keep], clons[keep], clats[keep]
            n_bbox_hits += len(pos)
            # Answered candidates survive without a point-in-polygon
            # test (they are inside the old perimeter); the rest run
            # the exact batch kernel on the same contiguous coords.
            if len(prev_pos):
                ins = np.minimum(np.searchsorted(prev_pos, pos),
                                 len(prev_pos) - 1)
                answered = prev_pos[ins] == pos
            else:
                answered = np.zeros(len(pos), dtype=bool)
            n_pip_tests = int((~answered).sum())
            if n_pip_tests:
                inside = polygon.contains_many(clons[~answered],
                                               clats[~answered])
                pieces.append(pos[~answered][inside])
            pieces.append(pos[answered])
        STATS.count("index.hits", n_bbox_hits)

        out_pos = np.concatenate(pieces) if pieces \
            else np.empty(0, dtype=np.int64)
        out_pos.sort()
        # Batch output order is ascending CSR position (runs are
        # disjoint ascending intervals), so the sorted union reproduces
        # it bit-for-bit.
        out = self._order[out_pos]
        STATS.count("index.polygon_queries")
        STATS.count("index.pip_tests", n_pip_tests)
        STATS.count("index.pip_skipped", len(prev_hits))
        STATS.count("index.pip_hits", len(out))
        return out

    def query_radius(self, lon: float, lat: float, radius_deg: float) \
            -> np.ndarray:
        """Indices of points within ``radius_deg`` (planar degrees).

        Runs on the CSR candidate-run fast path: the distance test
        consumes the contiguous bucket-sorted coordinates the bbox
        prefilter already gathered, instead of re-gathering the
        original point arrays candidate by candidate.
        """
        bbox = BBox(lon - radius_deg, lat - radius_deg,
                    lon + radius_deg, lat + radius_deg)
        STATS.count("index.bbox_queries")
        runs = self._candidate_runs(bbox)
        if runs is None:
            return np.empty(0, dtype=np.int64)
        starts, ends, _ = runs
        cand, clons, clats = self._bbox_filtered(bbox, starts, ends)
        if len(cand) == 0:
            return cand
        d = np.hypot(clons - lon, clats - lat)
        return cand[d <= radius_deg]


class STRTree:
    """Sort-Tile-Recursive packed R-tree over bounding boxes.

    Bulk-loaded from a sequence of (bbox, payload) pairs.  Queries return
    payloads whose bbox intersects the query bbox; exact geometric tests
    are the caller's job.

    Nodes live in flat parallel arrays — ``_bboxes`` is one ``(T, 4)``
    float array ``[min_lon, min_lat, max_lon, max_lat]``, children of an
    internal node are a contiguous range of ``_children`` — so a query
    tests all children of a node with one vectorized bbox comparison
    instead of popping ``_Node`` objects one at a time.
    """

    def __init__(self, items: Sequence[tuple[BBox, object]],
                 node_capacity: int = 8):
        if node_capacity < 2:
            raise ValueError("node capacity must be >= 2")
        self.node_capacity = node_capacity
        items = list(items)
        n = len(items)
        self._payloads = [payload for _, payload in items]
        if n == 0:
            self._root = -1
            self._bboxes = np.empty((0, 4), dtype=float)
            self._child_first = np.empty(0, dtype=np.int64)
            self._child_count = np.empty(0, dtype=np.int64)
            self._item = np.empty(0, dtype=np.int64)
            self._children = np.empty(0, dtype=np.int64)
            return
        leaf_bb = np.array([[b.min_lon, b.min_lat, b.max_lon, b.max_lat]
                            for b, _ in items], dtype=float)
        # Growing node tables; leaves are nodes 0..n-1.
        bbox_chunks = [leaf_bb]
        child_first = [-1] * n
        child_count = [0] * n
        item = list(range(n))
        children_flat: list[np.ndarray] = []
        next_id = n

        level_ids = np.arange(n, dtype=np.int64)
        level_bb = leaf_bb
        while len(level_ids) > 1:
            cap = self.node_capacity
            m = len(level_ids)
            cx = (level_bb[:, 0] + level_bb[:, 2]) / 2.0
            cy = (level_bb[:, 1] + level_bb[:, 3]) / 2.0
            order = np.argsort(cx, kind="stable")
            n_leaves = int(np.ceil(m / cap))
            n_slices = max(1, int(np.ceil(np.sqrt(n_leaves))))
            slice_size = int(np.ceil(m / n_slices))
            parent_ids = []
            parent_rows = []
            for s in range(0, m, slice_size):
                sl = order[s:s + slice_size]
                sl = sl[np.argsort(cy[sl], kind="stable")]
                for i in range(0, len(sl), cap):
                    grp = sl[i:i + cap]
                    gb = level_bb[grp]
                    parent_rows.append((gb[:, 0].min(), gb[:, 1].min(),
                                        gb[:, 2].max(), gb[:, 3].max()))
                    child_first.append(
                        sum(len(c) for c in children_flat))
                    child_count.append(len(grp))
                    item.append(-1)
                    children_flat.append(level_ids[grp])
                    parent_ids.append(next_id)
                    next_id += 1
            level_bb = np.array(parent_rows, dtype=float)
            level_ids = np.array(parent_ids, dtype=np.int64)
            bbox_chunks.append(level_bb)

        self._root = int(level_ids[0])
        self._bboxes = np.concatenate(bbox_chunks, axis=0)
        self._child_first = np.array(child_first, dtype=np.int64)
        self._child_count = np.array(child_count, dtype=np.int64)
        self._item = np.array(item, dtype=np.int64)
        self._children = (np.concatenate(children_flat)
                          if children_flat else np.empty(0, dtype=np.int64))

    def __len__(self) -> int:
        return len(self._payloads)

    def query(self, bbox: BBox) -> list:
        """Payloads whose bbox intersects ``bbox``."""
        if self._root < 0:
            return []
        qx0, qy0, qx1, qy1 = (bbox.min_lon, bbox.min_lat,
                              bbox.max_lon, bbox.max_lat)
        out: list = []
        visited = 1  # root is always tested
        stack: list[int] = []
        rb = self._bboxes[self._root]
        if not (qx0 > rb[2] or qx1 < rb[0] or qy0 > rb[3] or qy1 < rb[1]):
            stack.append(self._root)
        # Emit leaves as they pop off the stack — the same DFS emission
        # order as the pointer-chasing implementation this replaces; only
        # the child bbox tests are batched.
        while stack:
            nid = stack.pop()
            if self._child_count[nid] == 0:
                out.append(self._payloads[self._item[nid]])
                continue
            first = self._child_first[nid]
            ch = self._children[first:first + self._child_count[nid]]
            cb = self._bboxes[ch]
            visited += len(ch)
            ok = ~((qx0 > cb[:, 2]) | (qx1 < cb[:, 0])
                   | (qy0 > cb[:, 3]) | (qy1 < cb[:, 1]))
            stack.extend(int(h) for h in ch[ok])
        STATS.count("strtree.queries")
        STATS.count("strtree.nodes_visited", visited)
        STATS.count("strtree.results", len(out))
        return out

    def query_point(self, lon: float, lat: float) -> list:
        """Payloads whose bbox contains the point."""
        return self.query(BBox(lon, lat, lon, lat))
