"""Spatial indexes.

Two classic structures back the spatial-join engine:

* :class:`UniformGridIndex` — buckets millions of points into a uniform
  lon/lat grid so a polygon query touches only candidate buckets.  This is
  the workhorse for "which transceivers fall inside this fire perimeter".
* :class:`STRTree` — a packed (Sort-Tile-Recursive) R-tree over geometry
  bounding boxes, used when the query side is also geometric (e.g. which
  counties intersect a metro window).

Both are static (bulk-loaded) indexes, matching the batch nature of the
paper's analysis.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..runtime.stats import STATS
from .geometry import BBox, MultiPolygon, Polygon

__all__ = ["UniformGridIndex", "STRTree"]


class UniformGridIndex:
    """A bulk-loaded uniform grid over 2-D points.

    Points are sorted by bucket id once at build time; a query gathers the
    contiguous slices of every candidate bucket.  Query results are indices
    into the original point arrays.
    """

    def __init__(self, lons, lats, cell_deg: float = 0.25):
        self.lons = np.ascontiguousarray(lons, dtype=float)
        self.lats = np.ascontiguousarray(lats, dtype=float)
        if self.lons.shape != self.lats.shape or self.lons.ndim != 1:
            raise ValueError("lons/lats must be equal-length 1-D arrays")
        if cell_deg <= 0:
            raise ValueError("cell size must be positive")
        self.cell_deg = float(cell_deg)
        n = len(self.lons)
        if n == 0:
            self._order = np.empty(0, dtype=np.int64)
            self._starts = {}
            self.bbox = None
            return
        self.bbox = BBox.of_coords(self.lons, self.lats)
        self._ncols = max(1, int(np.ceil(self.bbox.width / cell_deg)) + 1)
        cols = ((self.lons - self.bbox.min_lon) // cell_deg).astype(np.int64)
        rows = ((self.lats - self.bbox.min_lat) // cell_deg).astype(np.int64)
        keys = rows * self._ncols + cols
        self._order = np.argsort(keys, kind="stable")
        sorted_keys = keys[self._order]
        uniq, starts = np.unique(sorted_keys, return_index=True)
        ends = np.append(starts[1:], n)
        self._starts = {int(k): (int(s), int(e))
                        for k, s, e in zip(uniq, starts, ends)}

    def __len__(self) -> int:
        return len(self.lons)

    def _bucket_range(self, bbox: BBox):
        c0 = int((bbox.min_lon - self.bbox.min_lon) // self.cell_deg)
        c1 = int((bbox.max_lon - self.bbox.min_lon) // self.cell_deg)
        r0 = int((bbox.min_lat - self.bbox.min_lat) // self.cell_deg)
        r1 = int((bbox.max_lat - self.bbox.min_lat) // self.cell_deg)
        return max(c0, 0), c1, max(r0, 0), r1

    def query_bbox(self, bbox: BBox) -> np.ndarray:
        """Indices of points inside ``bbox``."""
        if self.bbox is None or not self.bbox.intersects(bbox):
            return np.empty(0, dtype=np.int64)
        c0, c1, r0, r1 = self._bucket_range(bbox)
        chunks = []
        for row in range(r0, r1 + 1):
            base = row * self._ncols
            for col in range(c0, c1 + 1):
                rng = self._starts.get(base + col)
                if rng is not None:
                    chunks.append(self._order[rng[0]:rng[1]])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        cand = np.concatenate(chunks)
        keep = bbox.contains_many(self.lons[cand], self.lats[cand])
        out = cand[keep]
        STATS.count("index.bbox_queries")
        STATS.count("index.candidates", len(cand))
        STATS.count("index.hits", len(out))
        return out

    def query_polygon(self, polygon: Polygon | MultiPolygon) -> np.ndarray:
        """Indices of points inside the polygon (exact, holes respected)."""
        cand = self.query_bbox(polygon.bbox)
        if len(cand) == 0:
            return cand
        keep = polygon.contains_many(self.lons[cand], self.lats[cand])
        out = cand[keep]
        STATS.count("index.polygon_queries")
        STATS.count("index.pip_tests", len(cand))
        STATS.count("index.pip_hits", len(out))
        return out

    def query_radius(self, lon: float, lat: float, radius_deg: float) \
            -> np.ndarray:
        """Indices of points within ``radius_deg`` (planar degrees)."""
        bbox = BBox(lon - radius_deg, lat - radius_deg,
                    lon + radius_deg, lat + radius_deg)
        cand = self.query_bbox(bbox)
        if len(cand) == 0:
            return cand
        d = np.hypot(self.lons[cand] - lon, self.lats[cand] - lat)
        return cand[d <= radius_deg]


class _Node:
    __slots__ = ("bbox", "children", "items")

    def __init__(self, bbox: BBox, children=None, items=None):
        self.bbox = bbox
        self.children = children
        self.items = items


class STRTree:
    """Sort-Tile-Recursive packed R-tree over bounding boxes.

    Bulk-loaded from a sequence of (bbox, payload) pairs.  Queries return
    payloads whose bbox intersects the query bbox; exact geometric tests
    are the caller's job.
    """

    def __init__(self, items: Sequence[tuple[BBox, object]],
                 node_capacity: int = 8):
        if node_capacity < 2:
            raise ValueError("node capacity must be >= 2")
        self.node_capacity = node_capacity
        entries = [_Node(bbox, items=payload) for bbox, payload in items]
        self._root = self._build(entries) if entries else None

    def _build(self, nodes: list[_Node]) -> _Node:
        if len(nodes) == 1:
            return nodes[0]
        while len(nodes) > 1:
            nodes = self._pack_level(nodes)
        return nodes[0]

    def _pack_level(self, nodes: list[_Node]) -> list[_Node]:
        cap = self.node_capacity
        n = len(nodes)
        nodes = sorted(nodes, key=lambda nd: nd.bbox.center.lon)
        n_leaves = int(np.ceil(n / cap))
        n_slices = max(1, int(np.ceil(np.sqrt(n_leaves))))
        slice_size = int(np.ceil(n / n_slices))
        parents: list[_Node] = []
        for s in range(0, n, slice_size):
            chunk = sorted(nodes[s:s + slice_size],
                           key=lambda nd: nd.bbox.center.lat)
            for i in range(0, len(chunk), cap):
                group = chunk[i:i + cap]
                bbox = group[0].bbox
                for g in group[1:]:
                    bbox = bbox.union(g.bbox)
                parents.append(_Node(bbox, children=group))
        return parents

    def query(self, bbox: BBox) -> list:
        """Payloads whose bbox intersects ``bbox``."""
        if self._root is None:
            return []
        out: list = []
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if not node.bbox.intersects(bbox):
                continue
            if node.children is None:
                out.append(node.items)
            else:
                stack.extend(node.children)
        STATS.count("strtree.queries")
        STATS.count("strtree.nodes_visited", visited)
        STATS.count("strtree.results", len(out))
        return out

    def query_point(self, lon: float, lat: float) -> list:
        """Payloads whose bbox contains the point."""
        return self.query(BBox(lon, lat, lon, lat))
