"""Map projections and geodesic helpers.

The analyses in this package need three things from a projection layer:

* great-circle distances between lon/lat points (transceiver-to-city
  distances, metro-radius assignment),
* an equal-area planar projection so polygon areas (burned acreage, WHP
  cell areas) are meaningful, and
* unit conversions between the units the paper reports (miles, acres)
  and SI units.

We model the Earth as a sphere with the authalic radius, which keeps every
formula closed-form and is accurate to ~0.5% against the WGS84 ellipsoid —
far below the uncertainty of the synthetic data.  The equal-area projection
is the spherical Albers equal-area conic with the standard CONUS parameters
(standard parallels 29.5N and 45.5N, origin 23N 96W), i.e. the spherical
analogue of EPSG:5070 used by the USFS WHP product itself.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "EARTH_RADIUS_M",
    "METERS_PER_MILE",
    "SQMETERS_PER_ACRE",
    "ACRES_PER_SQMETER",
    "miles_to_meters",
    "meters_to_miles",
    "sqmeters_to_acres",
    "acres_to_sqmeters",
    "haversine_m",
    "destination_point",
    "LocalEquirectangular",
    "AlbersEqualArea",
    "CONUS_ALBERS",
    "meters_per_degree",
]

#: Authalic (equal-area) Earth radius in meters.
EARTH_RADIUS_M = 6_371_007.2

METERS_PER_MILE = 1_609.344
SQMETERS_PER_ACRE = 4_046.8564224
ACRES_PER_SQMETER = 1.0 / SQMETERS_PER_ACRE


def miles_to_meters(miles: float) -> float:
    """Convert statute miles to meters."""
    return miles * METERS_PER_MILE


def meters_to_miles(meters: float) -> float:
    """Convert meters to statute miles."""
    return meters / METERS_PER_MILE


def sqmeters_to_acres(sqmeters: float) -> float:
    """Convert square meters to acres."""
    return sqmeters * ACRES_PER_SQMETER


def acres_to_sqmeters(acres: float) -> float:
    """Convert acres to square meters."""
    return acres * SQMETERS_PER_ACRE


def haversine_m(lon1, lat1, lon2, lat2):
    """Great-circle distance in meters between lon/lat points (degrees).

    Accepts scalars or numpy arrays (broadcasting applies).
    """
    lon1, lat1, lon2, lat2 = (np.radians(np.asarray(v, dtype=float))
                              for v in (lon1, lat1, lon2, lat2))
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    a = (np.sin(dlat / 2.0) ** 2
         + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2)
    d = 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    if d.ndim == 0:
        return float(d)
    return d


def destination_point(lon: float, lat: float, bearing_deg: float,
                      distance_m: float) -> tuple[float, float]:
    """Point reached from (lon, lat) going ``distance_m`` at ``bearing_deg``.

    Bearing is clockwise from north.  Returns (lon, lat) in degrees.
    """
    lat1 = math.radians(lat)
    lon1 = math.radians(lon)
    brng = math.radians(bearing_deg)
    ang = distance_m / EARTH_RADIUS_M
    lat2 = math.asin(math.sin(lat1) * math.cos(ang)
                     + math.cos(lat1) * math.sin(ang) * math.cos(brng))
    lon2 = lon1 + math.atan2(
        math.sin(brng) * math.sin(ang) * math.cos(lat1),
        math.cos(ang) - math.sin(lat1) * math.sin(lat2))
    return math.degrees(lon2), math.degrees(lat2)


def meters_per_degree(lat: float) -> tuple[float, float]:
    """(meters per degree longitude, meters per degree latitude) at ``lat``."""
    m_per_deg_lat = math.pi * EARTH_RADIUS_M / 180.0
    m_per_deg_lon = m_per_deg_lat * math.cos(math.radians(lat))
    return m_per_deg_lon, m_per_deg_lat


class LocalEquirectangular:
    """A tiny local planar projection around a reference point.

    Suitable for geometry within a few hundred kilometers of the reference
    (fire perimeters, metro extracts).  x/y are meters east/north of the
    reference point.
    """

    def __init__(self, lon0: float, lat0: float):
        self.lon0 = float(lon0)
        self.lat0 = float(lat0)
        self._mx, self._my = meters_per_degree(lat0)

    def forward(self, lon, lat):
        """Project lon/lat degrees to local (x, y) meters."""
        lon = np.asarray(lon, dtype=float)
        lat = np.asarray(lat, dtype=float)
        return (lon - self.lon0) * self._mx, (lat - self.lat0) * self._my

    def inverse(self, x, y):
        """Unproject local (x, y) meters back to lon/lat degrees."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return self.lon0 + x / self._mx, self.lat0 + y / self._my


class AlbersEqualArea:
    """Spherical Albers equal-area conic projection.

    Planar areas computed in this projection equal spherical areas, which
    is exactly the property the acreage and WHP-cell computations need.

    Parameters follow the standard USGS CONUS setup by default.
    """

    def __init__(self, lon0: float = -96.0, lat0: float = 23.0,
                 lat1: float = 29.5, lat2: float = 45.5,
                 radius: float = EARTH_RADIUS_M):
        self.lon0 = float(lon0)
        self.lat0 = float(lat0)
        self.lat1 = float(lat1)
        self.lat2 = float(lat2)
        self.radius = float(radius)

        phi0, phi1, phi2 = (math.radians(v) for v in (lat0, lat1, lat2))
        if math.isclose(lat1, lat2):
            self._n = math.sin(phi1)
        else:
            self._n = (math.sin(phi1) + math.sin(phi2)) / 2.0
        if self._n == 0.0:
            raise ValueError("standard parallels must not straddle the "
                             "equator symmetrically (n would be zero)")
        self._c = math.cos(phi1) ** 2 + 2.0 * self._n * math.sin(phi1)
        self._rho0 = (self.radius
                      * math.sqrt(self._c - 2.0 * self._n * math.sin(phi0))
                      / self._n)

    def forward(self, lon, lat):
        """Project lon/lat degrees to (x, y) meters."""
        lon = np.radians(np.asarray(lon, dtype=float))
        lat = np.radians(np.asarray(lat, dtype=float))
        n = self._n
        arg = np.clip(self._c - 2.0 * n * np.sin(lat), 0.0, None)
        rho = self.radius * np.sqrt(arg) / n
        theta = n * (lon - math.radians(self.lon0))
        x = rho * np.sin(theta)
        y = self._rho0 - rho * np.cos(theta)
        return x, y

    def inverse(self, x, y):
        """Unproject (x, y) meters back to lon/lat degrees."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        n = self._n
        rho = np.sign(n) * np.hypot(x, self._rho0 - y)
        theta = np.arctan2(np.sign(n) * x, np.sign(n) * (self._rho0 - y))
        sin_lat = (self._c - (rho * n / self.radius) ** 2) / (2.0 * n)
        lat = np.degrees(np.arcsin(np.clip(sin_lat, -1.0, 1.0)))
        lon = self.lon0 + np.degrees(theta / n)
        return lon, lat


#: Shared CONUS Albers instance used across the package for area math.
CONUS_ALBERS = AlbersEqualArea()
