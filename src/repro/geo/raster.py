"""Affine rasters over lon/lat space.

The Wildfire Hazard Potential product, the population surface, and the
raster-space buffering in §3.8 of the paper all live on regular lon/lat
grids.  :class:`Raster` wraps a numpy array with an affine geotransform
and provides the operations the analyses need: vectorized point sampling,
polygon rasterization (scanline), per-class statistics, and morphological
dilation for the "extend very-high WHP by half a mile" experiment.

Grid convention: row 0 is the *northernmost* row (image convention, as in
GeoTIFF).  ``transform`` maps (col, row) pixel *centers* to lon/lat.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import ndimage

from ..runtime.stats import STATS
from .geometry import BBox, Polygon
from .projection import meters_per_degree, sqmeters_to_acres

__all__ = ["GridSpec", "Raster", "rasterize_polygon", "disk_footprint"]

# Point-sampling tile size.  Bounding the per-tile working set keeps the
# row/col/mask temporaries (5 int64/bool arrays per tile) out of the
# multi-hundred-MB range at paper scale; each element is processed by the
# exact same arithmetic regardless of tile boundaries.
SAMPLE_TILE_POINTS = 1 << 20


@dataclass(frozen=True)
class GridSpec:
    """Geometry of a regular lon/lat grid.

    ``res`` is the cell size in degrees (square cells in degree space).
    """

    bbox: BBox
    res: float

    def __post_init__(self):
        if self.res <= 0:
            raise ValueError("grid resolution must be positive")

    @property
    def width(self) -> int:
        return max(1, int(round(self.bbox.width / self.res)))

    @property
    def height(self) -> int:
        return max(1, int(round(self.bbox.height / self.res)))

    @property
    def shape(self) -> tuple[int, int]:
        return (self.height, self.width)

    def rowcol(self, lons, lats):
        """Map lon/lat (arrays) to (row, col) indices; may be out of range."""
        lons = np.asarray(lons, dtype=float)
        lats = np.asarray(lats, dtype=float)
        cols = np.floor((lons - self.bbox.min_lon) / self.res).astype(np.int64)
        rows = np.floor((self.bbox.max_lat - lats) / self.res).astype(np.int64)
        return rows, cols

    def cell_center(self, rows, cols):
        """Lon/lat of cell centers for (row, col) arrays."""
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        lons = self.bbox.min_lon + (cols + 0.5) * self.res
        lats = self.bbox.max_lat - (rows + 0.5) * self.res
        return lons, lats

    def inside(self, rows, cols) -> np.ndarray:
        return ((rows >= 0) & (rows < self.height)
                & (cols >= 0) & (cols < self.width))

    def cell_area_sqm(self, row: int) -> float:
        """True area of a cell in the given row (depends on latitude)."""
        _, lat = self.cell_center(row, 0)
        mx, my = meters_per_degree(float(lat))
        return self.res * mx * self.res * my

    def cell_areas_sqm(self) -> np.ndarray:
        """(height,) array of per-row cell areas in square meters."""
        rows = np.arange(self.height)
        _, lats = self.cell_center(rows, np.zeros_like(rows))
        mx = np.pi * 6_371_007.2 / 180.0 * np.cos(np.radians(lats))
        my = np.pi * 6_371_007.2 / 180.0
        return self.res * mx * self.res * my


class Raster:
    """A 2-D data grid with lon/lat georeferencing."""

    def __init__(self, grid: GridSpec, data: np.ndarray | None = None,
                 dtype=np.float64, fill=0):
        self.grid = grid
        if data is None:
            data = np.full(grid.shape, fill, dtype=dtype)
        else:
            data = np.asarray(data)
            if data.shape != grid.shape:
                raise ValueError(
                    f"data shape {data.shape} != grid shape {grid.shape}")
        self.data = data

    def __repr__(self) -> str:
        return (f"Raster({self.grid.height}x{self.grid.width}, "
                f"res={self.grid.res}, dtype={self.data.dtype})")

    def copy(self) -> "Raster":
        return Raster(self.grid, self.data.copy())

    def content_token(self) -> bytes:
        """Digest of the grid geometry and cell payload.

        Used by the runtime result cache to key joins by raster
        *content*, so any change to resolution, extent or values maps to
        a different cache entry.
        """
        h = hashlib.sha256()
        b = self.grid.bbox
        h.update(repr((b.min_lon, b.min_lat, b.max_lon, b.max_lat,
                       self.grid.res)).encode())
        h.update(str(self.data.dtype).encode())
        h.update(self.data.tobytes())
        return h.digest()

    def sample(self, lons, lats, outside=None):
        """Sample raster values at lon/lat points (vectorized).

        Points outside the grid get ``outside`` (default: the raster's
        dtype zero).
        """
        lons = np.asarray(lons, dtype=float)
        scalar = lons.ndim == 0
        lons = np.atleast_1d(lons)
        lats = np.atleast_1d(np.asarray(lats, dtype=float))
        if outside is None:
            outside = np.zeros(1, dtype=self.data.dtype)[0]
        out = np.full(lons.shape, outside, dtype=self.data.dtype)
        flat_lons = lons.reshape(-1)
        flat_lats = lats.reshape(-1)
        flat_out = out.reshape(-1)
        n = flat_lons.size
        for t0 in range(0, n, SAMPLE_TILE_POINTS):
            t1 = min(n, t0 + SAMPLE_TILE_POINTS)
            rows, cols = self.grid.rowcol(flat_lons[t0:t1],
                                          flat_lats[t0:t1])
            ok = self.grid.inside(rows, cols)
            tile = flat_out[t0:t1]
            tile[ok] = self.data[rows[ok], cols[ok]]
            STATS.count("raster.tiles")
        STATS.count("raster.samples", lons.size)
        if scalar:
            return out[0]
        return out

    def mask_where(self, predicate: Callable[[np.ndarray], np.ndarray]) \
            -> np.ndarray:
        """Boolean mask of cells where ``predicate(data)`` holds."""
        return predicate(self.data)

    def class_area_sqm(self, value) -> float:
        """True area covered by cells equal to ``value``."""
        mask = self.data == value
        per_row = mask.sum(axis=1).astype(float)
        return float((per_row * self.grid.cell_areas_sqm()).sum())

    def class_area_acres(self, value) -> float:
        return sqmeters_to_acres(self.class_area_sqm(value))

    def dilate_mask(self, mask: np.ndarray, radius_m: float) -> np.ndarray:
        """Morphologically dilate a boolean mask by a metric radius.

        This implements the paper's §3.8 "extend the very-high WHP
        perimeters by half a mile" on the raster itself: every cell within
        ``radius_m`` of a True cell becomes True.  The structuring element
        is an ellipse in grid space accounting for the lon/lat anisotropy
        at the grid's central latitude.
        """
        if mask.shape != self.grid.shape:
            raise ValueError("mask shape mismatch")
        lat_mid = (self.grid.bbox.min_lat + self.grid.bbox.max_lat) / 2.0
        mx, my = meters_per_degree(lat_mid)
        rx = radius_m / (self.grid.res * mx)   # radius in columns
        ry = radius_m / (self.grid.res * my)   # radius in rows
        footprint = disk_footprint(rx, ry)
        return ndimage.binary_dilation(mask, structure=footprint)

    def histogram(self) -> dict:
        """Value -> cell count for integer rasters."""
        values, counts = np.unique(self.data, return_counts=True)
        return {v.item(): int(c) for v, c in zip(values, counts)}


def disk_footprint(rx: float, ry: float) -> np.ndarray:
    """Boolean elliptical structuring element with radii (cols, rows)."""
    rx = max(float(rx), 0.0)
    ry = max(float(ry), 0.0)
    nx = int(np.ceil(rx))
    ny = int(np.ceil(ry))
    ys, xs = np.mgrid[-ny:ny + 1, -nx:nx + 1]
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        inside = ((xs / rx) ** 2 if rx > 0 else (xs != 0) * np.inf) + \
                 ((ys / ry) ** 2 if ry > 0 else (ys != 0) * np.inf)
    footprint = inside <= 1.0
    footprint[ny, nx] = True
    return footprint


def rasterize_polygon(grid: GridSpec, polygon: Polygon) -> np.ndarray:
    """Scanline-rasterize a polygon onto a grid.

    Returns a boolean mask over ``grid.shape``; a cell is marked when its
    center is inside the polygon.  Holes are respected.
    """
    mask = np.zeros(grid.shape, dtype=bool)
    bbox = polygon.bbox
    row_min, col_min = grid.rowcol(bbox.min_lon, bbox.max_lat)
    row_max, col_max = grid.rowcol(bbox.max_lon, bbox.min_lat)
    row_min = max(int(row_min), 0)
    col_min = max(int(col_min), 0)
    row_max = min(int(row_max), grid.height - 1)
    col_max = min(int(col_max), grid.width - 1)
    if row_min > row_max or col_min > col_max:
        return mask

    # Edge arrays are row-invariant; build them once, not per scanline.
    edge_arrays = []
    for ring in [polygon.exterior, *polygon.holes]:
        xs = ring[:, 0]
        ys = ring[:, 1]
        edge_arrays.append((xs, ys, np.roll(xs, -1), np.roll(ys, -1)))
    # Cell-center longitudes depend only on the column (separable grid),
    # so the scanline x-axis is shared by every row.
    cols = np.arange(col_min, col_max + 1)
    lons, _ = grid.cell_center(np.full_like(cols, row_min), cols)

    for row in range(row_min, row_max + 1):
        _, lat = grid.cell_center(row, 0)
        lat = float(lat)
        crossings: list[float] = []
        hole_crossings: list[list[float]] = []
        for k, (xs, ys, x_next, y_next) in enumerate(edge_arrays):
            cond = (ys > lat) != (y_next > lat)
            if not cond.any():
                if k > 0:
                    hole_crossings.append([])
                continue
            xc = xs[cond] + (x_next[cond] - xs[cond]) * \
                (lat - ys[cond]) / (y_next[cond] - ys[cond])
            if k == 0:
                crossings = sorted(xc.tolist())
            else:
                hole_crossings.append(sorted(xc.tolist()))
        if not crossings:
            continue
        inside = _inside_from_crossings(lons, crossings)
        for hc in hole_crossings:
            if hc:
                inside &= ~_inside_from_crossings(lons, hc)
        mask[row, col_min:col_max + 1] = inside
    return mask


def _inside_from_crossings(xs: np.ndarray, crossings: list[float]) \
        -> np.ndarray:
    """Even-odd test given sorted scanline crossing x-coordinates."""
    counts = np.searchsorted(np.asarray(crossings), xs, side="right")
    return (counts % 2) == 1
