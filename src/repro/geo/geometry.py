"""Vector geometry types.

A deliberately small, immutable geometry model covering what the paper's
analyses need: points, bounding boxes, polylines, and (multi)polygons with
holes.  Coordinates are lon/lat degrees throughout the package; areas are
computed on the CONUS Albers equal-area plane so they are true areas.

The types interoperate with GeoJSON via :mod:`repro.geo.geojson`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .predicates import (
    _validated_ring,
    is_ccw,
    point_in_ring,
    points_in_ring,
    point_segment_distance,
    prepare_ring,
    ring_area_signed,
)
from .projection import CONUS_ALBERS, sqmeters_to_acres

__all__ = [
    "Point",
    "BBox",
    "LineString",
    "Polygon",
    "PreparedPolygon",
    "MultiPolygon",
    "simplify_ring",
]


@dataclass(frozen=True)
class Point:
    """A lon/lat point."""

    lon: float
    lat: float

    def as_tuple(self) -> tuple[float, float]:
        return (self.lon, self.lat)


@dataclass(frozen=True)
class BBox:
    """An axis-aligned lon/lat bounding box."""

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float

    def __post_init__(self):
        if self.min_lon > self.max_lon or self.min_lat > self.max_lat:
            raise ValueError(f"inverted bbox: {self}")

    @classmethod
    def of_coords(cls, lons, lats) -> "BBox":
        lons = np.asarray(lons, dtype=float)
        lats = np.asarray(lats, dtype=float)
        if lons.size == 0:
            raise ValueError("cannot take bbox of empty coordinates")
        return cls(float(lons.min()), float(lats.min()),
                   float(lons.max()), float(lats.max()))

    @property
    def width(self) -> float:
        return self.max_lon - self.min_lon

    @property
    def height(self) -> float:
        return self.max_lat - self.min_lat

    @property
    def center(self) -> Point:
        return Point((self.min_lon + self.max_lon) / 2.0,
                     (self.min_lat + self.max_lat) / 2.0)

    def contains(self, lon: float, lat: float) -> bool:
        return (self.min_lon <= lon <= self.max_lon
                and self.min_lat <= lat <= self.max_lat)

    def contains_many(self, lons, lats) -> np.ndarray:
        lons = np.asarray(lons, dtype=float)
        lats = np.asarray(lats, dtype=float)
        return ((lons >= self.min_lon) & (lons <= self.max_lon)
                & (lats >= self.min_lat) & (lats <= self.max_lat))

    def intersects(self, other: "BBox") -> bool:
        return not (other.min_lon > self.max_lon
                    or other.max_lon < self.min_lon
                    or other.min_lat > self.max_lat
                    or other.max_lat < self.min_lat)

    def expand(self, dlon: float, dlat: float | None = None) -> "BBox":
        """Grow the box by ``dlon`` degrees (and ``dlat``, default same)."""
        if dlat is None:
            dlat = dlon
        return BBox(self.min_lon - dlon, self.min_lat - dlat,
                    self.max_lon + dlon, self.max_lat + dlat)

    def union(self, other: "BBox") -> "BBox":
        return BBox(min(self.min_lon, other.min_lon),
                    min(self.min_lat, other.min_lat),
                    max(self.max_lon, other.max_lon),
                    max(self.max_lat, other.max_lat))


class LineString:
    """An open polyline in lon/lat degrees."""

    def __init__(self, coords: Sequence[Sequence[float]]):
        arr = np.asarray(coords, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2 or len(arr) < 2:
            raise ValueError("LineString needs an (N>=2, 2) coordinate array")
        self.coords = arr
        self.coords.setflags(write=False)

    def __len__(self) -> int:
        return len(self.coords)

    def __repr__(self) -> str:
        return f"LineString({len(self.coords)} vertices)"

    @property
    def bbox(self) -> BBox:
        return BBox.of_coords(self.coords[:, 0], self.coords[:, 1])

    def distance_to(self, lon, lat) -> np.ndarray | float:
        """Min distance in degrees from point(s) to the polyline."""
        lon = np.asarray(lon, dtype=float)
        best = np.full(lon.shape, np.inf)
        for (x1, y1), (x2, y2) in zip(self.coords[:-1], self.coords[1:]):
            d = point_segment_distance(lon, lat, x1, y1, x2, y2)
            best = np.minimum(best, d)
        if best.ndim == 0:
            return float(best)
        return best


class Polygon:
    """A polygon with an exterior ring and optional interior rings (holes).

    The exterior ring is normalized to counter-clockwise winding and holes
    to clockwise, matching GeoJSON conventions.
    """

    def __init__(self, exterior: Sequence[Sequence[float]],
                 holes: Iterable[Sequence[Sequence[float]]] = ()):
        self.exterior = self._normalize(exterior, ccw=True)
        self.holes = tuple(self._normalize(h, ccw=False) for h in holes)
        self._bbox = BBox.of_coords(self.exterior[:, 0], self.exterior[:, 1])
        self._prepared: PreparedPolygon | None = None

    @classmethod
    def from_ccw_ring(cls, exterior) -> "Polygon":
        """Trusted fast constructor: an open CCW exterior, no holes.

        Skips ring validation and winding normalization, so the caller
        must guarantee an (N>=3, 2) float ring that is counter-clockwise
        and has no duplicated closing vertex.  Produces a polygon
        bit-identical to ``Polygon(exterior)`` for such input; generators
        that emit thousands of perimeters (see
        :func:`repro.data.wildfires.star_polygon`) use it to stay off
        the per-ring shoelace/closure checks.
        """
        poly = cls.__new__(cls)
        arr = np.ascontiguousarray(exterior, dtype=float)
        arr.setflags(write=False)
        poly.exterior = arr
        poly.holes = ()
        poly._bbox = BBox.of_coords(arr[:, 0], arr[:, 1])
        poly._prepared = None
        return poly

    @staticmethod
    def _normalize(ring, ccw: bool) -> np.ndarray:
        arr = _validated_ring(ring)
        if is_ccw(arr) != ccw:
            arr = arr[::-1]
        arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        return arr

    def __repr__(self) -> str:
        return (f"Polygon({len(self.exterior)} vertices, "
                f"{len(self.holes)} holes)")

    def __getstate__(self):
        # Prepared edge arrays are cheap to rebuild and only bloat pickles
        # shipped to worker processes; drop them.
        return {"exterior": self.exterior, "holes": self.holes,
                "_bbox": self._bbox}

    def __setstate__(self, state):
        self.exterior = state["exterior"]
        self.holes = state["holes"]
        self._bbox = state["_bbox"]
        self._prepared = None

    @property
    def bbox(self) -> BBox:
        return self._bbox

    @property
    def prepared(self) -> "PreparedPolygon":
        """Prepared form of this polygon, built lazily and cached."""
        if self._prepared is None:
            self._prepared = PreparedPolygon(self.exterior, self.holes,
                                             bbox=self._bbox)
        return self._prepared

    def contains(self, lon: float, lat: float) -> bool:
        """True if the point is inside the polygon (and not in a hole)."""
        return self.prepared.contains(lon, lat)

    def contains_many(self, lons, lats) -> np.ndarray:
        """Vectorized containment test for arrays of points."""
        return self.prepared.contains_many(lons, lats)

    def area_sqm(self) -> float:
        """True (equal-area-projected) polygon area in square meters."""
        total = self._ring_area_sqm(self.exterior)
        for hole in self.holes:
            total -= self._ring_area_sqm(hole)
        return total

    @staticmethod
    def _ring_area_sqm(ring: np.ndarray) -> float:
        x, y = CONUS_ALBERS.forward(ring[:, 0], ring[:, 1])
        return abs(ring_area_signed(np.column_stack([x, y])))

    def area_acres(self) -> float:
        """Polygon area in acres (the unit the paper reports)."""
        return sqmeters_to_acres(self.area_sqm())

    def centroid(self) -> Point:
        """Area-weighted centroid of the exterior ring (lon/lat degrees)."""
        ring = self.prepared.exterior
        xs, ys = ring.xs, ring.ys
        x_next, y_next = ring.x_next, ring.y_next
        cross = xs * y_next - x_next * ys
        area2 = cross.sum()
        if abs(area2) < 1e-15:
            return Point(float(xs.mean()), float(ys.mean()))
        cx = float(((xs + x_next) * cross).sum() / (3.0 * area2))
        cy = float(((ys + y_next) * cross).sum() / (3.0 * area2))
        return Point(cx, cy)

    def simplified(self, tolerance_deg: float) -> "Polygon":
        """Douglas-Peucker simplification of all rings."""
        ext = simplify_ring(self.exterior, tolerance_deg)
        holes = [simplify_ring(h, tolerance_deg) for h in self.holes]
        holes = [h for h in holes if len(h) >= 3]
        return Polygon(ext, holes)


class PreparedPolygon:
    """A polygon with every per-query array precomputed.

    The spatial join tests each fire perimeter against thousands of
    candidate chunks; preparing the rings once (edge arrays, closure trim,
    bbox) turns the per-query cost into pure vectorized arithmetic.
    Results are bit-identical to the unprepared path — preparation caches
    arrays, it never changes an expression.

    Satisfies the same query protocol the spatial indexes rely on
    (``bbox``, ``contains``, ``contains_many``), so a ``PreparedPolygon``
    can be passed anywhere a :class:`Polygon` is queried.
    """

    __slots__ = ("exterior", "holes", "bbox")

    def __init__(self, exterior, holes: Iterable = (),
                 bbox: BBox | None = None):
        self.exterior = prepare_ring(exterior)
        self.holes = tuple(prepare_ring(h) for h in holes)
        if bbox is None:
            bbox = BBox.of_coords(self.exterior.xs, self.exterior.ys)
        self.bbox = bbox

    @classmethod
    def of(cls, polygon: "Polygon") -> "PreparedPolygon":
        return polygon.prepared

    def __repr__(self) -> str:
        return (f"PreparedPolygon({self.exterior.n} vertices, "
                f"{len(self.holes)} holes)")

    def contains(self, lon: float, lat: float) -> bool:
        """True if the point is inside the polygon (and not in a hole)."""
        if not self.bbox.contains(lon, lat):
            return False
        if not point_in_ring(lon, lat, self.exterior):
            return False
        return not any(point_in_ring(lon, lat, h) for h in self.holes)

    def contains_many(self, lons, lats) -> np.ndarray:
        """Vectorized containment test for arrays of points."""
        lons = np.asarray(lons, dtype=float)
        lats = np.asarray(lats, dtype=float)
        result = self.bbox.contains_many(lons, lats)
        if not result.any():
            return result
        idx = np.nonzero(result)[0]
        inside = points_in_ring(lons[idx], lats[idx], self.exterior)
        for hole in self.holes:
            in_hole = points_in_ring(lons[idx], lats[idx], hole)
            inside &= ~in_hole
        result[:] = False
        result[idx[inside]] = True
        return result


class MultiPolygon:
    """An ordered collection of polygons treated as one geometry."""

    def __init__(self, polygons: Iterable[Polygon]):
        self.polygons = tuple(polygons)
        if not self.polygons:
            raise ValueError("MultiPolygon needs at least one polygon")
        bbox = self.polygons[0].bbox
        for p in self.polygons[1:]:
            bbox = bbox.union(p.bbox)
        self._bbox = bbox

    def __len__(self) -> int:
        return len(self.polygons)

    def __iter__(self):
        return iter(self.polygons)

    def __repr__(self) -> str:
        return f"MultiPolygon({len(self.polygons)} polygons)"

    @property
    def bbox(self) -> BBox:
        return self._bbox

    def contains(self, lon: float, lat: float) -> bool:
        return any(p.contains(lon, lat) for p in self.polygons)

    def contains_many(self, lons, lats) -> np.ndarray:
        lons = np.asarray(lons, dtype=float)
        lats = np.asarray(lats, dtype=float)
        result = np.zeros(lons.shape, dtype=bool)
        for p in self.polygons:
            result |= p.contains_many(lons, lats)
        return result

    def area_sqm(self) -> float:
        return sum(p.area_sqm() for p in self.polygons)

    def area_acres(self) -> float:
        return sqmeters_to_acres(self.area_sqm())


def _dp_keep(coords: np.ndarray, tol: float, first: int, last: int,
             keep: np.ndarray) -> None:
    """Recursive Douglas-Peucker marking pass."""
    if last <= first + 1:
        return
    x1, y1 = coords[first]
    x2, y2 = coords[last]
    seg = coords[first + 1:last]
    d = point_segment_distance(seg[:, 0], seg[:, 1], x1, y1, x2, y2)
    i = int(np.argmax(d))
    if d[i] > tol:
        split = first + 1 + i
        keep[split] = True
        _dp_keep(coords, tol, first, split, keep)
        _dp_keep(coords, tol, split, last, keep)


def simplify_ring(ring, tolerance: float) -> np.ndarray:
    """Douglas-Peucker simplification of a closed ring.

    Keeps at least 4 vertices so the result remains a valid ring.  The
    tolerance is in the ring's own coordinate units (degrees here).
    """
    coords = np.asarray(ring, dtype=float)
    if len(coords) >= 2 and np.allclose(coords[0], coords[-1]):
        coords = coords[:-1]
    n = len(coords)
    if n <= 4 or tolerance <= 0:
        return coords.copy()
    # Split the ring at its two extreme vertices so DP has open polylines.
    anchor = 0
    far = int(np.argmax(np.hypot(coords[:, 0] - coords[anchor, 0],
                                 coords[:, 1] - coords[anchor, 1])))
    keep = np.zeros(n, dtype=bool)
    keep[anchor] = keep[far] = True
    lo, hi = sorted((anchor, far))
    _dp_keep(coords, tolerance, lo, hi, keep)
    # Second half wraps around; rotate so it is contiguous.
    rotated = np.roll(coords, -hi, axis=0)
    keep_rot = np.zeros(n, dtype=bool)
    keep_rot[0] = keep_rot[(lo - hi) % n] = True
    _dp_keep(rotated, tolerance, 0, (lo - hi) % n, keep_rot)
    keep |= np.roll(keep_rot, hi)
    out = coords[keep]
    if len(out) < 4:
        # Fall back to quartile vertices to preserve a valid ring.
        idx = np.unique(np.linspace(0, n - 1, 4).astype(int))
        out = coords[idx]
    return out
