"""GeoJSON interchange.

Real GeoMAC perimeters and Census TIGER data ship as GeoJSON/shapefiles;
this module lets users drop real GeoJSON into the pipelines and lets the
synthetic generators export their output for inspection in standard GIS
tools.  Only the geometry types this package models are supported.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .geometry import LineString, MultiPolygon, Point, Polygon

__all__ = [
    "geometry_to_geojson",
    "geometry_from_geojson",
    "feature",
    "feature_collection",
    "dump_features",
    "load_features",
]

Geometry = Point | LineString | Polygon | MultiPolygon


def _ring_coords(ring: np.ndarray) -> list[list[float]]:
    coords = ring.tolist()
    coords.append(coords[0])  # GeoJSON rings are explicitly closed
    return coords


def geometry_to_geojson(geom: Geometry) -> dict[str, Any]:
    """Encode a geometry object as a GeoJSON geometry dict."""
    if isinstance(geom, Point):
        return {"type": "Point", "coordinates": [geom.lon, geom.lat]}
    if isinstance(geom, LineString):
        return {"type": "LineString", "coordinates": geom.coords.tolist()}
    if isinstance(geom, Polygon):
        rings = [_ring_coords(geom.exterior)]
        rings.extend(_ring_coords(h) for h in geom.holes)
        return {"type": "Polygon", "coordinates": rings}
    if isinstance(geom, MultiPolygon):
        polys = []
        for p in geom.polygons:
            rings = [_ring_coords(p.exterior)]
            rings.extend(_ring_coords(h) for h in p.holes)
            polys.append(rings)
        return {"type": "MultiPolygon", "coordinates": polys}
    raise TypeError(f"unsupported geometry type: {type(geom).__name__}")


def geometry_from_geojson(obj: dict[str, Any]) -> Geometry:
    """Decode a GeoJSON geometry dict into a geometry object."""
    gtype = obj.get("type")
    coords = obj.get("coordinates")
    if gtype == "Point":
        return Point(float(coords[0]), float(coords[1]))
    if gtype == "LineString":
        return LineString(coords)
    if gtype == "Polygon":
        return Polygon(coords[0], holes=coords[1:])
    if gtype == "MultiPolygon":
        return MultiPolygon(
            Polygon(rings[0], holes=rings[1:]) for rings in coords)
    raise ValueError(f"unsupported GeoJSON geometry type: {gtype!r}")


def feature(geom: Geometry, properties: dict | None = None) -> dict:
    """Wrap a geometry as a GeoJSON Feature."""
    return {
        "type": "Feature",
        "geometry": geometry_to_geojson(geom),
        "properties": dict(properties or {}),
    }


def feature_collection(features: list[dict]) -> dict:
    """Wrap features as a GeoJSON FeatureCollection."""
    return {"type": "FeatureCollection", "features": list(features)}


def dump_features(features: list[dict], path: str | Path) -> None:
    """Write a FeatureCollection to a ``.geojson`` file."""
    Path(path).write_text(
        json.dumps(feature_collection(features)), encoding="utf-8")


def load_features(path: str | Path) -> list[tuple[Geometry, dict]]:
    """Read a FeatureCollection file into (geometry, properties) pairs."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("type") != "FeatureCollection":
        raise ValueError("expected a GeoJSON FeatureCollection")
    out = []
    for feat in doc.get("features", []):
        out.append((geometry_from_geojson(feat["geometry"]),
                    feat.get("properties", {})))
    return out
