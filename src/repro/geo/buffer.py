"""Polygon buffering.

The paper's §3.8 experiment extends very-high WHP *regions* by half a
mile.  Since WHP is a raster product, the faithful implementation is
raster-space morphological dilation (:meth:`repro.geo.raster.Raster.
dilate_mask`).  This module additionally provides a vector buffer for
simple polygons — used to grow fire perimeters and metro windows — built
by offsetting each edge outward and inserting round joins.

The vector buffer is approximate: for strongly concave inputs the offset
boundary can self-intersect.  That is acceptable for the star-convex
perimeters this package generates, and it is documented behaviour (a full
polygon-offsetting/union engine is out of scope).
"""

from __future__ import annotations

import math

import numpy as np

from .geometry import Polygon
from .projection import meters_per_degree

__all__ = ["buffer_polygon", "buffer_point"]


def buffer_point(lon: float, lat: float, radius_m: float,
                 n_vertices: int = 32) -> Polygon:
    """A circular (in metric space) polygon of ``radius_m`` around a point."""
    if radius_m <= 0:
        raise ValueError("radius must be positive")
    mx, my = meters_per_degree(lat)
    theta = np.linspace(0.0, 2.0 * math.pi, n_vertices, endpoint=False)
    lons = lon + (radius_m / mx) * np.cos(theta)
    lats = lat + (radius_m / my) * np.sin(theta)
    return Polygon(np.column_stack([lons, lats]))


def buffer_polygon(polygon: Polygon, radius_m: float,
                   arc_step_deg: float = 30.0) -> Polygon:
    """Grow a polygon outward by ``radius_m`` (positive buffers only).

    Each exterior edge is offset along its outward normal; convex corners
    get round joins sampled every ``arc_step_deg``.  Holes are dropped
    (a buffered at-risk region should swallow interior voids smaller than
    the buffer anyway, and the synthetic perimeters have none).
    """
    if radius_m <= 0:
        raise ValueError("only positive buffers are supported")
    ring = polygon.exterior  # CCW by Polygon normalization
    c = polygon.centroid()
    mx, my = meters_per_degree(c.lat)

    # Work in local metric coordinates to keep the buffer isotropic.
    xs = (ring[:, 0] - c.lon) * mx
    ys = (ring[:, 1] - c.lat) * my
    n = len(xs)
    out_x: list[float] = []
    out_y: list[float] = []
    arc_step = math.radians(arc_step_deg)

    for i in range(n):
        x0, y0 = xs[i - 1], ys[i - 1]
        x1, y1 = xs[i], ys[i]
        x2, y2 = xs[(i + 1) % n], ys[(i + 1) % n]
        # Outward normals (ring is CCW, so outward = right of direction).
        n1 = _unit_normal(x0, y0, x1, y1)
        n2 = _unit_normal(x1, y1, x2, y2)
        if n1 is None or n2 is None:
            continue
        a1 = math.atan2(n1[1], n1[0])
        a2 = math.atan2(n2[1], n2[0])
        sweep = (a2 - a1) % (2.0 * math.pi)
        if sweep > math.pi:
            # Concave corner: single miter-free join at the bisector.
            bis = ((n1[0] + n2[0]) / 2.0, (n1[1] + n2[1]) / 2.0)
            norm = math.hypot(*bis)
            if norm > 1e-12:
                out_x.append(x1 + radius_m * bis[0] / norm)
                out_y.append(y1 + radius_m * bis[1] / norm)
            continue
        steps = max(1, int(math.ceil(sweep / arc_step)))
        for k in range(steps + 1):
            a = a1 + sweep * k / steps
            out_x.append(x1 + radius_m * math.cos(a))
            out_y.append(y1 + radius_m * math.sin(a))

    if len(out_x) < 3:
        raise ValueError("degenerate polygon cannot be buffered")
    lons = np.asarray(out_x) / mx + c.lon
    lats = np.asarray(out_y) / my + c.lat
    return Polygon(np.column_stack([lons, lats]))


def _unit_normal(x0: float, y0: float, x1: float, y1: float):
    """Outward unit normal of edge (x0,y0)->(x1,y1) of a CCW ring."""
    dx = x1 - x0
    dy = y1 - y0
    norm = math.hypot(dx, dy)
    if norm < 1e-12:
        return None
    return (dy / norm, -dx / norm)
