"""Population-impact analysis: Figures 10–11 and §3.6.

Buckets at-risk transceivers by the population-density category of their
county — moderately dense (200k–500k), dense (500k–1.5M), very dense
(>1.5M) — producing the Figure 10 matrix, the Figure 11 map subsets, and
the paper's headline "57,504 transceivers in the most densely populated
counties".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.counties import POP_CATEGORY_NAMES, PopCategory
from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..session import artifact, register_stage, session_of

__all__ = ["PopulationImpact", "population_impact_analysis"]


@dataclass
class PopulationImpact:
    """WHP class × county density matrix plus the subset masks."""

    # matrix[whp class name][pop category name] -> scaled count
    matrix: dict[str, dict[str, int]]
    at_risk_in_pop_counties: int        # WHP M+ in counties >200k
    at_risk_in_vh_pop_counties: int     # WHP M+ in counties >1.5M
    vh_whp_in_vh_pop_counties: int      # WHP VH in counties >1.5M
    n_vh_pop_counties: int
    # masks over the transceiver universe for Figure 11's three panels
    panel_all_mask: np.ndarray = field(repr=False)
    panel_vh_pop_mask: np.ndarray = field(repr=False)
    panel_vh_both_mask: np.ndarray = field(repr=False)


def population_impact_analysis(universe: SyntheticUS) -> PopulationImpact:
    """Run the §3.6 pipeline."""
    return session_of(universe).artifact("population_impact")


def _compute_population_impact(session) -> PopulationImpact:
    universe = session.universe
    cells = universe.cells
    classes = session.artifact("whp_classes")
    counties = universe.counties
    scale = universe.universe_scale

    county_idx = session.artifact("county_assignment")
    county_cats = counties.categories()
    cat_per_cell = np.full(len(cells), int(PopCategory.RURAL),
                           dtype=np.int8)
    ok = county_idx >= 0
    cat_per_cell[ok] = county_cats[county_idx[ok]]

    at_risk = classes >= int(WHPClass.MODERATE)

    matrix: dict[str, dict[str, int]] = {}
    for whp_class in (WHPClass.MODERATE, WHPClass.HIGH,
                      WHPClass.VERY_HIGH):
        row = {}
        in_class = classes == int(whp_class)
        for cat in (PopCategory.POP_M, PopCategory.POP_H,
                    PopCategory.POP_VH):
            count = int((in_class & (cat_per_cell == int(cat))).sum())
            row[POP_CATEGORY_NAMES[cat]] = int(round(count * scale))
        from ..data.whp import WHP_CLASS_NAMES
        matrix[WHP_CLASS_NAMES[whp_class]] = row

    in_pop = cat_per_cell >= int(PopCategory.POP_M)
    in_vh_pop = cat_per_cell == int(PopCategory.POP_VH)
    panel_all = at_risk & in_pop
    panel_vh_pop = at_risk & in_vh_pop
    panel_vh_both = (classes == int(WHPClass.VERY_HIGH)) & in_vh_pop

    return PopulationImpact(
        matrix=matrix,
        at_risk_in_pop_counties=int(round(panel_all.sum() * scale)),
        at_risk_in_vh_pop_counties=int(round(panel_vh_pop.sum() * scale)),
        vh_whp_in_vh_pop_counties=int(round(panel_vh_both.sum() * scale)),
        n_vh_pop_counties=len(counties.very_dense()),
        panel_all_mask=panel_all,
        panel_vh_pop_mask=panel_vh_pop,
        panel_vh_both_mask=panel_vh_both,
    )


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("population_impact", deps=("whp_classes", "county_assignment"))
def _population_impact_artifact(session) -> PopulationImpact:
    """Figure 10 WHP x county-density matrix plus panel masks."""
    return _compute_population_impact(session)


def _export_figure10(session, ctx) -> dict:
    from ..data import paper_constants as paper
    impact = session.artifact("population_impact")
    return {"figure10": {
        "matrix": impact.matrix,
        "at_risk_in_vh_pop_counties": impact.at_risk_in_vh_pop_counties,
        "n_vh_pop_counties": impact.n_vh_pop_counties,
        "paper": paper.POP_IMPACT,
    }}


register_stage("fig10", help="population impact (Figure 10)",
               paper="Figure 10", artifact="population_impact",
               render="render_figure10", order=80, domain="figures",
               export=_export_figure10)
