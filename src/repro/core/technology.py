"""Technology risk (Table 3, §3.5).

At-risk transceiver counts per radio access technology (CDMA, GSM, LTE,
UMTS) per WHP class.  The paper finds LTE has the largest at-risk count
in every class (widest footprint) and that no 5G transceivers exist in
the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.radios import RadioType
from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..session import artifact, register_stage, session_of

__all__ = ["TechnologyRisk", "technology_risk_analysis"]


@dataclass(frozen=True)
class TechnologyRisk:
    """One row of Table 3 (counts scaled to the paper universe)."""

    technology: str
    very_high: int
    high: int
    moderate: int

    @property
    def total(self) -> int:
        return self.very_high + self.high + self.moderate


def technology_risk_analysis(universe: SyntheticUS) \
        -> list[TechnologyRisk]:
    """Build Table 3 rows in the paper's order (CDMA, GSM, LTE, UMTS)."""
    return session_of(universe).artifact("technology_risk")


def _compute_technology_risk(session) -> list[TechnologyRisk]:
    universe = session.universe
    cells = universe.cells
    classes = session.artifact("whp_classes")
    scale = universe.universe_scale
    rows = []
    for radio in (RadioType.CDMA, RadioType.GSM, RadioType.LTE,
                  RadioType.UMTS):
        mask = cells.radio == int(radio)
        sub = classes[mask]
        rows.append(TechnologyRisk(
            technology=radio.name,
            very_high=int(round((sub == int(WHPClass.VERY_HIGH)).sum()
                                * scale)),
            high=int(round((sub == int(WHPClass.HIGH)).sum() * scale)),
            moderate=int(round((sub == int(WHPClass.MODERATE)).sum()
                               * scale)),
        ))
    return rows


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("technology_risk", deps=("whp_classes",))
def _technology_risk_artifact(session) -> list[TechnologyRisk]:
    """Table 3 rows: per-radio-technology at-risk counts."""
    return _compute_technology_risk(session)


def _export_table3(session, ctx) -> dict:
    from dataclasses import asdict

    from ..data import paper_constants as paper
    return {"table3": {
        "rows": [asdict(r) for r in session.artifact("technology_risk")],
        "paper": {k: list(v)
                  for k, v in paper.TABLE3_TECHNOLOGY_RISK.items()},
    }}


register_stage("table3", help="technology risk (Table 3)",
               paper="Table 3", artifact="technology_risk",
               render="render_table3", order=30, domain="tables",
               export=_export_table3)
