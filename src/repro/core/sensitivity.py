"""Seed-sensitivity harness.

Synthetic-data results carry sampling variance; a reproduction that
reports single-seed numbers without error bars over-claims.  This
module re-runs the headline metrics across universes differing only in
seed and reports mean ± standard deviation, so EXPERIMENTS.md's "stable
across seeds" statements are measured, not asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..data.universe import SyntheticUS, UniverseConfig
from .hazard import hazard_analysis
from .historical import total_in_perimeters
from .validation import validate_whp_2019

__all__ = ["MetricDistribution", "SensitivityReport", "seed_sweep"]


@dataclass(frozen=True)
class MetricDistribution:
    """One metric's distribution over seeds."""

    name: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values)
                         / len(self.values))

    @property
    def rel_std(self) -> float:
        m = self.mean
        return self.std / m if m else float("inf")

    def summary(self) -> str:
        return f"{self.name}: {self.mean:,.0f} ± {self.std:,.0f}"


@dataclass
class SensitivityReport:
    """All swept metrics plus ranking stability."""

    seeds: tuple[int, ...]
    metrics: dict[str, MetricDistribution]
    top_state_per_seed: tuple[str, ...] = field(default_factory=tuple)

    @property
    def top_state_stable(self) -> bool:
        return len(set(self.top_state_per_seed)) == 1

    def render(self) -> str:
        lines = [f"seeds: {list(self.seeds)}"]
        lines.extend(d.summary() for d in self.metrics.values())
        lines.append(f"top state per seed: "
                     f"{list(self.top_state_per_seed)}")
        return "\n".join(lines)


def seed_sweep(n_transceivers: int = 40_000, n_seeds: int = 3,
               base_seed: int = 20_190_722,
               whp_resolution_deg: float = 0.1,
               validation_oversample: int = 8) -> SensitivityReport:
    """Run the headline metrics across ``n_seeds`` universes.

    Metrics: total at-risk (scaled), VH count (scaled), 2000–2018
    in-perimeter total (scaled), 2019 validation accuracy (percent),
    plus the identity of the top at-risk state per seed.
    """
    seeds = tuple(base_seed + 1000 * k for k in range(n_seeds))
    at_risk, very_high, perims, accuracy = [], [], [], []
    top_states = []
    for seed in seeds:
        universe = SyntheticUS(UniverseConfig(
            n_transceivers=n_transceivers, seed=seed,
            whp_resolution_deg=whp_resolution_deg))
        summary = hazard_analysis(universe)
        at_risk.append(float(summary.at_risk_total))
        very_high.append(float(summary.class_counts["Very High"]))
        top_states.append(summary.states[0].state)
        total, _ = total_in_perimeters(universe)
        perims.append(float(total))
        v = validate_whp_2019(universe,
                              oversample=validation_oversample)
        # rare-event accuracy can be NaN at tiny scales (no
        # in-perimeter transceivers drawn); treat as zero coverage
        acc = v.accuracy
        accuracy.append(0.0 if math.isnan(acc) else 100.0 * acc)

    metrics = {
        "at_risk_total": MetricDistribution("at-risk total (scaled)",
                                            tuple(at_risk)),
        "very_high": MetricDistribution("very-high count (scaled)",
                                        tuple(very_high)),
        "in_perimeters": MetricDistribution(
            "in-perimeter total 2000-2018 (scaled)", tuple(perims)),
        "validation_accuracy_pct": MetricDistribution(
            "2019 validation accuracy (%)", tuple(accuracy)),
    }
    return SensitivityReport(seeds=seeds, metrics=metrics,
                             top_state_per_seed=tuple(top_states))
