"""The paper's analyses: one module per result section.

overlay → historical (Table 1, Figs 3-4) → case_study (Fig 5) →
hazard (Figs 6-9) → validation (§3.4) → provider_risk (Table 2) →
technology (Table 3) → population_impact (Figs 10-11) → metro
(Figs 12-13) → extension (§3.8) → future (§3.9, Figs 14-15) →
mitigation (§3.10) → escape (§3.11 extension); report renders all of it.
"""

from .case_study import CaseStudySummary, case_study_analysis, outage_by_county
from .county_exposure import CountyExposure, county_exposure_analysis
from .coverage import (
    CoverageResult,
    coverage_loss_analysis,
    estimate_site_radii_m,
)
from .escape import EscapeModel, EscapeResult, escape_adjusted_risk
from .extension import ExtensionResult, extend_very_high
from .future import EcoregionExposure, future_risk_analysis
from .hazard import (
    HazardSummary,
    StateHazard,
    hazard_analysis,
    population_served_at_risk,
)
from .historical import Table1Row, historical_analysis, total_in_perimeters
from .metro import (
    CITY_GROUPS,
    MetroRisk,
    city_very_high_counts,
    metro_risk_analysis,
)
from .mitigation import (
    MitigationAction,
    MitigationPlan,
    SiteRisk,
    mitigation_plan,
    rank_sites,
)
from .overlay import (
    FireOverlayResult,
    classify_cells,
    overlay_fires,
    overlay_fires_bruteforce,
)
from .population_impact import PopulationImpact, population_impact_analysis
from .power import (
    PowerImpact,
    PspsExposure,
    fire_power_impact,
    power_grid_for,
    psps_exposure,
)
from .provider_risk import (
    ProviderRisk,
    provider_risk_analysis,
    regional_carriers_at_risk,
)
from .sensitivity import (
    MetricDistribution,
    SensitivityReport,
    seed_sweep,
)
from .technology import TechnologyRisk, technology_risk_analysis
from .validation import ValidationResult, validate_whp_2019
from . import report

__all__ = [
    "FireOverlayResult", "overlay_fires", "overlay_fires_bruteforce",
    "classify_cells",
    "Table1Row", "historical_analysis", "total_in_perimeters",
    "CaseStudySummary", "case_study_analysis",
    "HazardSummary", "StateHazard", "hazard_analysis",
    "population_served_at_risk",
    "ValidationResult", "validate_whp_2019",
    "ExtensionResult", "extend_very_high",
    "ProviderRisk", "provider_risk_analysis", "regional_carriers_at_risk",
    "TechnologyRisk", "technology_risk_analysis",
    "PopulationImpact", "population_impact_analysis",
    "MetroRisk", "metro_risk_analysis", "city_very_high_counts",
    "CITY_GROUPS",
    "EcoregionExposure", "future_risk_analysis",
    "MitigationAction", "MitigationPlan", "SiteRisk", "mitigation_plan",
    "rank_sites",
    "EscapeModel", "EscapeResult", "escape_adjusted_risk",
    "CoverageResult", "coverage_loss_analysis", "estimate_site_radii_m",
    "outage_by_county",
    "CountyExposure", "county_exposure_analysis",
    "MetricDistribution", "SensitivityReport", "seed_sweep",
    "PowerImpact", "PspsExposure", "fire_power_impact", "psps_exposure",
    "power_grid_for",
    "report",
]
