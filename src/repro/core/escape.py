"""Escape-probability extension (§3.11 future work).

The paper notes WHP does not model the chance that a fire *escapes*
containment and spreads into lower-risk areas, and points to the highly
optimized tolerance (HOT) framework of Moritz et al. (2005), which
models wildfire sizes as a heavy-tailed (power-law) distribution.

This module implements that extension: given an ignition cell, the fire
burns an area drawn from a truncated power law; the expected *escaped
risk* of a cell is the probability that a fire ignited nearby grows
large enough to reach it.  Applied over the WHP raster this produces an
"escape-adjusted" at-risk mask that extends beyond the static classes —
quantifying how many additional transceivers the static WHP analysis
misses, which is exactly the gap the §3.4 validation exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..geo.projection import acres_to_sqmeters, meters_per_degree
from ..session import artifact, register_stage, session_of

__all__ = ["EscapeModel", "EscapeResult", "escape_adjusted_risk"]


@dataclass(frozen=True)
class EscapeModel:
    """Truncated power-law fire-size model (HOT-style).

    P(size > s) = (s / s_min)^(-alpha) for s in [s_min, s_max] acres.
    """

    alpha: float = 0.6
    s_min_acres: float = 100.0
    s_max_acres: float = 300_000.0

    def exceedance(self, acres: float) -> float:
        """P(fire size > acres), clamped to the support."""
        if acres <= self.s_min_acres:
            return 1.0
        if acres >= self.s_max_acres:
            return 0.0
        return float((acres / self.s_min_acres) ** (-self.alpha))

    def radius_m(self, acres: float) -> float:
        """Radius of a circular fire of the given size."""
        return float(np.sqrt(acres_to_sqmeters(acres) / np.pi))


@dataclass
class EscapeResult:
    """Escape-adjusted risk over the transceiver universe."""

    reach_probability_threshold: float
    escaped_mask: np.ndarray           # cells newly at risk via escape
    static_at_risk: int                # scaled
    escape_adjusted_at_risk: int       # scaled
    added_transceivers: int            # scaled


def escape_adjusted_risk(universe: SyntheticUS,
                         model: EscapeModel | None = None,
                         reach_probability: float = 0.05) -> EscapeResult:
    """Compute the escape-adjusted at-risk set.

    A cell is escape-reachable when a fire igniting in a moderate+ WHP
    cell within distance d reaches it with probability above
    ``reach_probability`` — i.e. d <= radius(s) where
    P(size > s) = reach_probability.  With a power law this is a fixed
    dilation radius, so the computation is a morphological dilation of
    the at-risk mask by the escape radius.
    """
    return session_of(universe).artifact(
        "escape", model=model or EscapeModel(),
        reach_probability=reach_probability)


def _compute_escape(session, model: EscapeModel,
                    reach_probability: float) -> EscapeResult:
    universe = session.universe
    whp = universe.whp
    cells = universe.cells
    scale = universe.universe_scale

    # Size whose exceedance equals the reach probability.
    s_reach = model.s_min_acres * reach_probability ** (-1.0 / model.alpha)
    s_reach = min(s_reach, model.s_max_acres)
    radius = model.radius_m(s_reach)

    at_risk_mask = whp.at_risk_mask()
    grid = whp.grid
    lat_mid = (grid.bbox.min_lat + grid.bbox.max_lat) / 2.0
    mx, my = meters_per_degree(lat_mid)
    from ..geo.raster import disk_footprint
    rx = max(radius / (grid.res * mx), 1.0)
    ry = max(radius / (grid.res * my), 1.0)
    reachable = ndimage.binary_dilation(at_risk_mask,
                                        structure=disk_footprint(rx, ry))
    land = whp.fuel.data > 0
    reachable &= land

    classes = session.artifact("whp_classes")
    static = classes >= int(WHPClass.MODERATE)

    rows, cols = grid.rowcol(cells.lons, cells.lats)
    ok = grid.inside(rows, cols)
    adjusted = static.copy()
    adjusted[ok] |= reachable[rows[ok], cols[ok]]

    return EscapeResult(
        reach_probability_threshold=reach_probability,
        escaped_mask=reachable & ~at_risk_mask,
        static_at_risk=int(round(static.sum() * scale)),
        escape_adjusted_at_risk=int(round(adjusted.sum() * scale)),
        added_transceivers=int(round((adjusted & ~static).sum() * scale)),
    )


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("escape", deps=("whp_classes",))
def _escape_artifact(session, model: EscapeModel | None = None,
                     reach_probability: float = 0.05) -> EscapeResult:
    """Escape-adjusted (HOT power-law) at-risk set."""
    return _compute_escape(session, model or EscapeModel(),
                           reach_probability)


register_stage("escape", help="escape-adjusted risk (HOT model)",
               paper="§3.11", artifact="escape", render="render_escape",
               domain="infrastructure")
