"""Per-county historical fire exposure.

The paper's validation hinted at county-level structure (the 2019
misses clustered north of Los Angeles); this analysis makes it a
first-class output: for each county, how many transceivers sat inside
fire perimeters across 2000–2018, how many fire-years touched it, and
the resulting ranking of chronically-exposed counties — the view an
emergency-communications planner (the paper's stated audience) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.historical_stats import STUDY_YEARS
from ..data.universe import SyntheticUS
from ..session import artifact, register_stage, session_of

__all__ = ["CountyExposure", "county_exposure_analysis"]


@dataclass(frozen=True)
class CountyExposure:
    """One county's historical exposure (scaled counts)."""

    county: str
    state: str
    population: int
    transceiver_exposures: int   # Σ over years of in-perimeter counts
    years_touched: int           # distinct years with any exposure

    @property
    def chronic(self) -> bool:
        """Exposed in at least a quarter of the study years."""
        return self.years_touched >= len(STUDY_YEARS) // 4


def county_exposure_analysis(universe: SyntheticUS,
                             years: tuple[int, ...] = STUDY_YEARS,
                             top_n: int | None = None) \
        -> list[CountyExposure]:
    """Rank counties by historical in-perimeter transceiver exposure."""
    rows = session_of(universe).artifact("county_exposure",
                                         years=tuple(years))
    if top_n is not None:
        rows = rows[:top_n]
    return rows


def _compute_county_exposure(session, years: tuple[int, ...]) \
        -> list[CountyExposure]:
    universe = session.universe
    counties = universe.counties
    scale = universe.universe_scale

    county_idx = session.artifact("county_assignment")
    n_counties = len(counties.counties)
    exposures = np.zeros(n_counties, dtype=np.int64)
    touched = np.zeros(n_counties, dtype=np.int64)

    for year in years:
        result = session.artifact("season_overlay", year=year)
        hit_counties = county_idx[result.in_perimeter_mask]
        hit_counties = hit_counties[hit_counties >= 0]
        if len(hit_counties) == 0:
            continue
        counts = np.bincount(hit_counties, minlength=n_counties)
        exposures += counts
        touched += (counts > 0).astype(np.int64)

    rows = []
    for i in np.nonzero(exposures)[0]:
        county = counties.counties[int(i)]
        rows.append(CountyExposure(
            county=county.name,
            state=county.state,
            population=county.population,
            transceiver_exposures=int(round(exposures[i] * scale)),
            years_touched=int(touched[i]),
        ))
    rows.sort(key=lambda r: r.transceiver_exposures, reverse=True)
    return rows


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("county_assignment",
          doc="county index per transceiver (assign_many)")
def _county_assignment_artifact(session) -> np.ndarray:
    """Shared county index per transceiver (-1 = unassigned)."""
    universe = session.universe
    cells = universe.cells
    return universe.counties.assign_many(cells.lons, cells.lats)


@artifact("county_exposure",
          deps=("season_overlay", "county_assignment"))
def _county_exposure_artifact(
        session,
        years: tuple[int, ...] = STUDY_YEARS) -> list[CountyExposure]:
    """Counties ranked by historical in-perimeter exposure."""
    return _compute_county_exposure(session, years)


register_stage("counties", help="chronically-exposed counties",
               paper="§3.3", artifact="county_exposure",
               render="render_counties", domain="infrastructure")
