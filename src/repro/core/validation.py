"""WHP validation against the 2019 fire season (§3.4).

The paper checks whether the 2018 WHP would have predicted the cell
transceivers that ended up inside 2019 wildfire perimeters: 302 of 656
(46%) were in moderate+ WHP cells, and 288 of the 354 misses lay inside
just two Los Angeles fires (Saddle Ridge and Tick) whose footprints
covered roads and urban fringe that WHP scores as low-risk/non-burnable.
Excluding those two fires, accuracy is 84%.

Being inside a 2019 perimeter is a ~1e-4 event per transceiver, so at
synthetic test scales the raw counts are single digits.  The validation
therefore runs on an oversampled transceiver universe (same generator,
distinct seed) — an unbiased variance-reduction; counts are rescaled by
the matching factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..data.wildfires import SCRIPTED_LA_FIRES_2019
from ..session import StageOption, artifact, register_stage, session_of
from .overlay import overlay_fires

__all__ = ["ValidationResult", "validate_whp_2019"]


@dataclass
class ValidationResult:
    """Outcome of the §3.4 validation (raw counts at oversampled scale)."""

    in_perimeter_total: int          # transceivers inside 2019 fires
    predicted_at_risk: int           # of those, in WHP moderate+
    missed: int
    missed_in_la_fires: int          # misses inside Saddle Ridge/Tick
    in_la_fires_total: int
    universe_scale: float            # scale factor incl. oversampling

    @property
    def accuracy(self) -> float:
        """Fraction of in-perimeter transceivers predicted at-risk."""
        if self.in_perimeter_total == 0:
            return float("nan")
        return self.predicted_at_risk / self.in_perimeter_total

    @property
    def accuracy_excluding_la(self) -> float:
        """Accuracy after discarding the two LA-fringe fires."""
        denom = self.in_perimeter_total - self.in_la_fires_total
        if denom <= 0:
            return float("nan")
        hits_outside = self.predicted_at_risk - (
            self.in_la_fires_total - self.missed_in_la_fires)
        return hits_outside / denom

    def scaled(self, value: int) -> int:
        """Rescale a raw count to the paper's 5.36M universe."""
        return int(round(value * self.universe_scale))


def validate_whp_2019(universe: SyntheticUS,
                      at_risk_floor: WHPClass = WHPClass.MODERATE,
                      at_risk_mask_override: np.ndarray | None = None,
                      oversample: int = 8) -> ValidationResult:
    """Run the validation.

    ``at_risk_mask_override`` lets the §3.8 extension experiment reuse
    the machinery with a dilated at-risk raster mask (boolean over the
    WHP grid).  ``oversample`` multiplies the validation sample size.
    """
    session = session_of(universe)
    if at_risk_mask_override is None:
        return session.artifact("validation",
                                at_risk_floor=at_risk_floor,
                                oversample=oversample)
    return _compute_validation(session, at_risk_floor,
                               at_risk_mask_override, oversample)


def _compute_validation(session, at_risk_floor: WHPClass,
                        at_risk_mask_override: np.ndarray | None,
                        oversample: int) -> ValidationResult:
    universe = session.universe
    cells = universe.validation_cells(oversample)
    season = universe.fire_season(2019)
    overlay = session.artifact("validation_overlay",
                               oversample=oversample)
    in_fire = overlay.in_perimeter_mask

    whp = universe.whp
    if at_risk_mask_override is not None:
        grid = whp.grid
        rows, cols = grid.rowcol(cells.lons, cells.lats)
        ok = grid.inside(rows, cols)
        predicted = np.zeros(len(cells), dtype=bool)
        predicted[ok] = at_risk_mask_override[rows[ok], cols[ok]]
    else:
        classes = whp.classify(cells.lons, cells.lats)
        predicted = classes >= int(at_risk_floor)

    la_fires = [f for f in season.fires
                if f.name in SCRIPTED_LA_FIRES_2019]
    in_la = np.zeros(len(cells), dtype=bool)
    for fire in la_fires:
        in_la |= fire.polygon.contains_many(cells.lons, cells.lats)

    hits = in_fire & predicted
    misses = in_fire & ~predicted
    return ValidationResult(
        in_perimeter_total=int(in_fire.sum()),
        predicted_at_risk=int(hits.sum()),
        missed=int(misses.sum()),
        missed_in_la_fires=int((misses & in_la).sum()),
        in_la_fires_total=int((in_fire & in_la).sum()),
        universe_scale=universe.universe_scale / oversample,
    )


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("validation_overlay")
def _validation_overlay_artifact(session, oversample: int = 8):
    """2019 perimeters joined against the oversampled validation
    universe (shared by the S3.4 validation and the S3.8 extension)."""
    universe = session.universe
    cells = universe.validation_cells(oversample)
    return overlay_fires(cells, universe.fire_season(2019).fires,
                         year=2019)


@artifact("validation", deps=("validation_overlay",))
def _validation_artifact(session,
                         at_risk_floor: WHPClass = WHPClass.MODERATE,
                         oversample: int = 8) -> ValidationResult:
    """S3.4 validation of the WHP against the 2019 fire season."""
    return _compute_validation(session, at_risk_floor, None, oversample)


def _export_validation(session, ctx) -> dict:
    from ..data import paper_constants as paper
    validation = session.artifact(
        "validation", oversample=ctx.get("validation_oversample", 8))
    return {"validation_s34": {
        "in_perimeter_total": validation.in_perimeter_total,
        "accuracy": validation.accuracy,
        "missed_in_la_fires": validation.missed_in_la_fires,
        "missed": validation.missed,
        "paper": paper.VALIDATION_2019,
    }}


register_stage("validate", help="2019 WHP validation (S3.4)",
               paper="§3.4", artifact="validation",
               render="render_validation", order=110, domain="validation",
               options=(StageOption("--oversample", type=int, default=8),),
               params=("oversample",), export=_export_validation)
