"""Coverage-loss analysis (§3.11 alternate approach).

The paper scopes itself to the *physical* threat and notes: "An
alternate approach could be to examine the wildfire threat to cellular
service coverage."  This module implements that approach: each cell
site covers a radius that shrinks with local site density (dense urban
grids are capacity-driven with small cells; rural sites reach tens of
kilometers), people are covered when any site reaches them, and losing
the at-risk sites removes coverage where no surviving neighbor
overlaps.

Outputs the quantities a regulator would ask for: population covered
before/after losing at-risk sites, and population whose *only* coverage
comes from at-risk sites (single-provider-path users — the 911 concern
of §3.10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..geo.projection import meters_per_degree
from ..session import artifact, register_stage, session_of

__all__ = ["CoverageResult", "coverage_loss_analysis",
           "estimate_site_radii_m"]


def estimate_site_radii_m(universe: SyntheticUS,
                          min_radius_m: float = 1_500.0,
                          max_radius_m: float = 40_000.0) -> np.ndarray:
    """Coverage radius per *site* from the local synthetic site density.

    Radius ~ 0.8x the local area-per-site square root, so coverage is
    scale-invariant: sites cover roughly their Voronoi neighborhoods at
    any ``n_transceivers``, with urban macro cells clamped near
    ``min_radius_m`` and remote sites reaching ``max_radius_m``.
    Returns radii aligned with ``np.unique(cells.site_ids)`` order.
    """
    return session_of(universe).artifact("site_radii",
                                         min_radius_m=min_radius_m,
                                         max_radius_m=max_radius_m)


def _compute_site_radii(session, min_radius_m: float,
                        max_radius_m: float) -> np.ndarray:
    from scipy import ndimage

    universe = session.universe
    cells = universe.cells
    site_ids, first = np.unique(cells.site_ids, return_index=True)
    lons = cells.lons[first]
    lats = cells.lats[first]
    pop = universe.population
    grid = pop.grid

    counts = np.zeros(grid.shape)
    rows, cols = grid.rowcol(lons, lats)
    ok = grid.inside(rows, cols)
    np.add.at(counts, (rows[ok], cols[ok]), 1.0)
    smoothed = ndimage.gaussian_filter(counts, sigma=2.0)

    density = smoothed[np.clip(rows, 0, grid.height - 1),
                       np.clip(cols, 0, grid.width - 1)]
    cell_area = grid.cell_area_sqm(grid.height // 2)
    area_per_site = cell_area / np.clip(density, 1e-3, None)
    radius = 0.8 * np.sqrt(area_per_site)
    return np.clip(radius, min_radius_m, max_radius_m)


@dataclass
class CoverageResult:
    """Coverage before/after losing the at-risk sites."""

    population_total: float
    population_covered_before: float
    population_covered_after: float
    population_lost: float
    population_only_at_risk: float  # same as lost; kept for clarity
    sites_total: int
    sites_lost: int

    @property
    def covered_share_before(self) -> float:
        return self.population_covered_before / self.population_total

    @property
    def lost_share(self) -> float:
        return self.population_lost / self.population_total


def coverage_loss_analysis(universe: SyntheticUS,
                           hazard_floor: WHPClass = WHPClass.MODERATE) \
        -> CoverageResult:
    """Population coverage impact of losing every at-risk site.

    Coverage is computed on the population grid: a cell is covered when
    some site's radius reaches its center.  Sites whose WHP class (max
    over their transceivers) is at or above ``hazard_floor`` are
    removed, and the newly-uncovered population counted.
    """
    return session_of(universe).artifact("coverage",
                                         hazard_floor=hazard_floor)


def _compute_coverage(session, hazard_floor: WHPClass) -> CoverageResult:
    universe = session.universe
    cells = universe.cells
    pop = universe.population
    classes = session.artifact("whp_classes")

    site_ids, first = np.unique(cells.site_ids, return_index=True)
    site_lons = cells.lons[first]
    site_lats = cells.lats[first]
    radii = session.artifact("site_radii")

    # Site hazard: max class over the site's transceivers.
    order = np.argsort(cells.site_ids, kind="stable")
    sid_sorted = cells.site_ids[order]
    cls_sorted = classes[order]
    boundaries = np.nonzero(np.diff(sid_sorted))[0] + 1
    site_class = np.array([g.max() for g in
                           np.split(cls_sorted, boundaries)])
    at_risk_site = site_class >= int(hazard_floor)

    covered_before = _coverage_mask(pop, site_lons, site_lats, radii)
    covered_after = _coverage_mask(pop, site_lons[~at_risk_site],
                                   site_lats[~at_risk_site],
                                   radii[~at_risk_site])

    weights = pop.raster.data
    total = float(weights.sum())
    before = float(weights[covered_before].sum())
    after = float(weights[covered_after].sum())
    lost = float(weights[covered_before & ~covered_after].sum())

    return CoverageResult(
        population_total=total,
        population_covered_before=before,
        population_covered_after=after,
        population_lost=lost,
        population_only_at_risk=lost,
        sites_total=len(site_ids),
        sites_lost=int(at_risk_site.sum()),
    )


def _coverage_mask(pop, site_lons, site_lats, radii_m) -> np.ndarray:
    """Boolean population-grid mask of cells within any site's radius.

    Stamps an elliptical footprint per site (lon/lat anisotropy at the
    site's latitude); O(sites × footprint cells).
    """
    grid = pop.grid
    covered = np.zeros(grid.shape, dtype=bool)
    site_lons = np.asarray(site_lons, dtype=float)
    site_lats = np.asarray(site_lats, dtype=float)
    radii_m = np.asarray(radii_m, dtype=float)
    # Ellipse radii and grid windows for every site at once; the loop
    # below only stamps footprints.
    _, m_lat = meters_per_degree(0.0)
    m_lon = m_lat * np.cos(np.radians(site_lats))
    rlons = radii_m / m_lon
    rlats = radii_m / m_lat
    rows0, cols0 = grid.rowcol(site_lons - rlons, site_lats + rlats)
    rows1, cols1 = grid.rowcol(site_lons + rlons, site_lats - rlats)
    for lon, lat, rlon, rlat, row0, col0, row1, col1 in zip(
            site_lons.tolist(), site_lats.tolist(), rlons.tolist(),
            rlats.tolist(), rows0.tolist(), cols0.tolist(),
            rows1.tolist(), cols1.tolist()):
        row0 = max(row0, 0)
        col0 = max(col0, 0)
        row1 = min(row1, grid.height - 1)
        col1 = min(col1, grid.width - 1)
        if row0 > row1 or col0 > col1:
            continue
        rows = np.arange(row0, row1 + 1)
        cols = np.arange(col0, col1 + 1)
        # The grid is separable (lon depends on col only, lat on row
        # only), so the ellipse test is an outer sum of two 1-D terms —
        # no meshgrid, no 2-D center arrays.
        clons, _ = grid.cell_center(0, cols)
        _, clats = grid.cell_center(rows, 0)
        u = ((clons - lon) / rlon) ** 2
        v = ((clats - lat) / rlat) ** 2
        inside = (u[None, :] + v[:, None]) <= 1.0
        covered[row0:row1 + 1, col0:col1 + 1] |= inside
    return covered


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("site_radii")
def _site_radii_artifact(session, min_radius_m: float = 1_500.0,
                         max_radius_m: float = 40_000.0) -> np.ndarray:
    """Per-site coverage radius from local site density."""
    return _compute_site_radii(session, min_radius_m, max_radius_m)


@artifact("coverage", deps=("whp_classes", "site_radii"))
def _coverage_artifact(
        session,
        hazard_floor: WHPClass = WHPClass.MODERATE) -> CoverageResult:
    """S3.11 population-coverage impact of losing at-risk sites."""
    return _compute_coverage(session, hazard_floor)


register_stage("coverage", help="coverage loss (S3.11)",
               paper="§3.11", artifact="coverage",
               render="render_coverage", order=140,
               domain="infrastructure")
