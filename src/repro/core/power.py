"""Power-dependency risk analysis (§3.11 follow-on work).

The paper's strongest empirical finding is that power loss dominates
wildfire-related cell outages (>80% on the 2019 peak day), yet its WHP
analysis scores only the *direct* fire threat at each site.  This module
quantifies the indirect channel the authors left to future work: a cell
site goes dark when a fire damages its substation or forces a Public
Safety Power Shutoff on a line that feeds it — even when the site
itself is nowhere near the fire.

Two analyses:

* :func:`fire_power_impact` — for a fire season, compare sites affected
  *directly* (inside a perimeter) with sites affected *indirectly*
  (upstream substation in a perimeter or feeder line de-energized).
  The paper's §3.2 observation predicts indirect ≫ direct.
* :func:`psps_exposure` — which transmission lines cross high-WHP
  terrain (shutoff candidates), and how many sites/people hang off
  them; the planning quantity behind "providers could work with power
  utilities" (§3.10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.powergrid import PowerGrid, build_power_grid
from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..session import StageOption, artifact, register_stage, session_of

__all__ = ["PowerImpact", "fire_power_impact", "PspsExposure",
           "psps_exposure", "power_grid_for"]


def power_grid_for(universe: SyntheticUS,
                   n_substations: int = 400) -> PowerGrid:
    """Build (and memoize per-session) the synthetic power grid."""
    return session_of(universe).artifact("power_grid",
                                         n_substations=n_substations)


@dataclass
class PowerImpact:
    """Direct vs indirect outage exposure for one fire season."""

    year: int
    sites_direct: int          # sites inside a fire perimeter
    sites_indirect: int        # powered down but outside any perimeter
    sites_total_affected: int
    substations_hit: int
    lines_cut: int
    indirect_ratio: float      # indirect / direct (the §3.2 story)


def fire_power_impact(universe: SyntheticUS, year: int = 2019,
                      grid: PowerGrid | None = None) -> PowerImpact:
    """Quantify direct vs power-mediated site outages for a season.

    A substation inside any perimeter is destroyed; lines crossing the
    at-risk cells covered by fires are de-energized (PSPS during the
    event).  Sites inside perimeters are direct; sites outside that
    lose upstream power are indirect.
    """
    session = session_of(universe)
    if grid is None:
        return session.artifact("power_impact", year=year)
    return _compute_power_impact(session, year, grid)


def _compute_power_impact(session, year: int,
                          grid: PowerGrid) -> PowerImpact:
    universe = session.universe
    cells = universe.cells
    season = universe.fire_season(year)

    # Direct: sites with any transceiver inside a perimeter.
    index = cells.index()
    direct_tx = np.zeros(len(cells), dtype=bool)
    dead_subs: set[int] = set()
    for fire in season.fires:
        hits = index.query_polygon(fire.polygon)
        direct_tx[hits] = True
        dead_subs.update(
            int(s) for s in grid.substations_in_polygon(fire.polygon))
    direct_sites = set(np.unique(cells.site_ids[direct_tx]).tolist())

    # PSPS: de-energize lines crossing at-risk cells that burned.
    whp = universe.whp
    burned_at_risk = np.zeros(whp.grid.shape, dtype=bool)
    from ..geo.raster import rasterize_polygon
    for fire in season.fires:
        if fire.acres < 5_000:
            continue  # small fires do not trigger shutoffs
        burned_at_risk |= rasterize_polygon(whp.grid, fire.polygon)
    burned_at_risk &= whp.at_risk_mask()
    cut_lines = set(int(i) for i in
                    grid.lines_crossing_mask(whp, burned_at_risk))

    dead_sites = grid.dead_sites(dead_subs, cut_lines)
    # Distribution feeders crossing burned hazard cells also cut power
    # (the dominant §3.2 channel: sites far from the fire lose their
    # feed when it runs through de-energized or burned terrain).
    dead_sites |= grid.feeder_cut_sites(cells, whp, burned_at_risk)
    indirect_sites = dead_sites - direct_sites
    total = len(dead_sites | direct_sites)

    return PowerImpact(
        year=year,
        sites_direct=len(direct_sites),
        sites_indirect=len(indirect_sites),
        sites_total_affected=total,
        substations_hit=len(dead_subs),
        lines_cut=len(cut_lines),
        indirect_ratio=(len(indirect_sites) / len(direct_sites)
                        if direct_sites else float("inf")),
    )


@dataclass
class PspsExposure:
    """Standing PSPS exposure of the cell network."""

    n_lines_at_risk: int       # lines crossing high/very-high WHP
    n_lines_total: int
    sites_exposed: int         # sites whose substation feeds via them
    sites_total: int
    exposed_share: float


def psps_exposure(universe: SyntheticUS,
                  grid: PowerGrid | None = None,
                  hazard_floor: WHPClass = WHPClass.HIGH) -> PspsExposure:
    """How much of the network hangs off shutoff-candidate lines.

    A site is exposed when *every* path from its substation to the bulk
    grid traverses an at-risk line — i.e. de-energizing the candidate
    lines leaves it dark.
    """
    session = session_of(universe)
    if grid is None:
        return session.artifact("psps", hazard_floor=hazard_floor)
    return _compute_psps(session, grid, hazard_floor)


def _compute_psps(session, grid: PowerGrid,
                  hazard_floor: WHPClass) -> PspsExposure:
    universe = session.universe
    whp = universe.whp
    mask = whp.raster.data >= int(hazard_floor)
    candidates = set(int(i) for i in grid.lines_crossing_mask(whp, mask))
    dead = grid.dead_sites(set(), candidates)
    dead |= grid.feeder_cut_sites(universe.cells, whp, mask)
    n_sites = len(grid.site_substation)
    return PspsExposure(
        n_lines_at_risk=len(candidates),
        n_lines_total=grid.n_lines,
        sites_exposed=len(dead),
        sites_total=n_sites,
        exposed_share=len(dead) / max(n_sites, 1),
    )


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("power_grid")
def _power_grid_artifact(session, n_substations: int = 400) -> PowerGrid:
    """Synthetic power grid shared by the S3.11 power analyses."""
    universe = session.universe
    return build_power_grid(
        universe.population, universe.cells,
        n_substations=n_substations,
        seed=universe.config.seed + 5)


@artifact("power_impact", deps=("power_grid",))
def _power_impact_artifact(session, year: int = 2019) -> PowerImpact:
    """Direct vs power-mediated site outages for one fire season."""
    return _compute_power_impact(session, year,
                                 session.artifact("power_grid"))


@artifact("psps", deps=("power_grid",))
def _psps_artifact(session,
                   hazard_floor: WHPClass = WHPClass.HIGH) -> PspsExposure:
    """Standing PSPS exposure of the network."""
    return _compute_psps(session, session.artifact("power_grid"),
                         hazard_floor)


register_stage("power", help="power dependency (S3.11)",
               paper="§3.11", artifact="power_impact",
               render="render_power", order=130, domain="infrastructure",
               options=(StageOption("--year", type=int, default=2019),),
               params=("year",))


register_stage("psps", help="PSPS shutoff exposure (S3.10-3.11)",
               paper="§3.10", artifact="psps", render="render_psps",
               domain="infrastructure")
