"""Extending the WHP very-high regions (§3.8).

The paper grows the very-high WHP regions by half a mile to capture
infrastructure just outside the mapped hazard (roadside corridors, urban
fringe), raising validation accuracy from 46% to 62% at the cost of
labeling more infrastructure at-risk (430,844 → 509,693).

We implement the buffer as morphological dilation on the WHP raster —
the faithful operation for a raster product.  The real WHP cell is
270 m, so the paper's half-mile buffer spans ~3 cells; because class
fragmentation scales with the grid, we preserve that buffer-to-cell
ratio when the physical radius degenerates below our (coarser) cell
size.  The radius sweep in the ablation bench explores other buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..geo.projection import miles_to_meters
from ..geo.raster import disk_footprint
from ..session import StageOption, artifact, register_stage, session_of
from .validation import ValidationResult, _compute_validation

__all__ = ["ExtensionResult", "extend_very_high"]


@dataclass
class ExtensionResult:
    """Before/after counts for the §3.8 extension experiment."""

    radius_miles: float
    vh_before: int                # scaled transceivers in VH
    vh_after: int                 # scaled transceivers in VH ∪ dilated
    total_before: int             # scaled at-risk before
    total_after: int              # scaled at-risk after
    validation_before: ValidationResult
    validation_after: ValidationResult

    @property
    def accuracy_gain(self) -> float:
        return (self.validation_after.accuracy
                - self.validation_before.accuracy)


#: Width of the synthetic WUI fringe in degrees.  In the real 270 m WHP
#: a half-mile buffer spans the urban-fringe gap between very-high cells
#: and developed land; our metro kernels stretch that gap to ~0.3
#: degrees, so a half-mile paper buffer maps to one fringe width here
#: (larger radii scale linearly).  This keeps the *semantics* of the
#: experiment — the buffer reaches across the WUI gap — at any grid
#: resolution.
FRINGE_EQUIVALENT_DEG = 0.20
_HALF_MILE_M = 804.672


def _dilate_fringe_equivalent(universe: SyntheticUS, mask: np.ndarray,
                              radius_m: float) -> np.ndarray:
    """Dilate a WHP-grid mask by the fringe-equivalent of a radius.

    The dilation uses the larger of the physical radius and the
    fringe-equivalent radius (radius / 0.5 mi × FRINGE_EQUIVALENT_DEG).
    """
    whp = universe.whp
    from scipy import ndimage

    grid = whp.grid
    lat_mid = (grid.bbox.min_lat + grid.bbox.max_lat) / 2.0
    from ..geo.projection import meters_per_degree
    mx, my = meters_per_degree(lat_mid)
    fringe_cells = (radius_m / _HALF_MILE_M) * FRINGE_EQUIVALENT_DEG \
        / grid.res
    rx = max(radius_m / (grid.res * mx), fringe_cells)
    ry = max(radius_m / (grid.res * my), fringe_cells)
    return ndimage.binary_dilation(mask, structure=disk_footprint(rx, ry))


def extend_very_high(universe: SyntheticUS,
                     radius_miles: float = 0.5) -> ExtensionResult:
    """Run the §3.8 experiment.

    The dilated very-high mask is unioned with the original at-risk
    classes; duplicates (dilated cells already moderate/high) do not
    double count, exactly as in the paper ("we remove any duplicates from
    the extended very high region that overlaps with the high or moderate
    regions").
    """
    return session_of(universe).artifact("extension",
                                         radius_miles=radius_miles)


def _compute_extension(session, radius_miles: float) -> ExtensionResult:
    universe = session.universe
    whp = universe.whp
    cells = universe.cells
    scale = universe.universe_scale
    radius_m = miles_to_meters(radius_miles)

    vh_mask = whp.class_mask(WHPClass.VERY_HIGH)
    vh_extended = _dilate_fringe_equivalent(universe, vh_mask, radius_m)
    # Extended VH never swallows water/outside-CONUS cells.
    land = whp.fuel.data > 0
    vh_extended &= land | vh_mask

    at_risk_before = whp.at_risk_mask()
    at_risk_after = at_risk_before | vh_extended

    classes = session.artifact("whp_classes")
    grid = whp.grid
    rows, cols = grid.rowcol(cells.lons, cells.lats)
    ok = grid.inside(rows, cols)

    in_vh_ext = np.zeros(len(cells), dtype=bool)
    in_vh_ext[ok] = vh_extended[rows[ok], cols[ok]]
    in_at_risk_after = np.zeros(len(cells), dtype=bool)
    in_at_risk_after[ok] = at_risk_after[rows[ok], cols[ok]]

    vh_before = int(round((classes == int(WHPClass.VERY_HIGH)).sum()
                          * scale))
    vh_after = int(round(in_vh_ext.sum() * scale))
    total_before = int(round(
        (classes >= int(WHPClass.MODERATE)).sum() * scale))
    total_after = int(round(in_at_risk_after.sum() * scale))

    validation_before = session.artifact("validation")
    validation_after = _compute_validation(
        session, WHPClass.MODERATE, at_risk_after, 8)

    return ExtensionResult(
        radius_miles=radius_miles,
        vh_before=vh_before,
        vh_after=vh_after,
        total_before=total_before,
        total_after=total_after,
        validation_before=validation_before,
        validation_after=validation_after,
    )


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("extension", deps=("whp_classes", "validation"))
def _extension_artifact(session,
                        radius_miles: float = 0.5) -> ExtensionResult:
    """S3.8 very-high buffer extension before/after counts."""
    return _compute_extension(session, radius_miles)


def _export_extension(session, ctx) -> dict:
    from ..data import paper_constants as paper
    ext = session.artifact("extension")
    return {"extension_s38": {
        "vh_before": ext.vh_before,
        "vh_after": ext.vh_after,
        "total_before": ext.total_before,
        "total_after": ext.total_after,
        "accuracy_before": ext.validation_before.accuracy,
        "accuracy_after": ext.validation_after.accuracy,
        "paper": paper.EXTENSION_HALF_MILE,
    }}


register_stage("extend", help="very-high buffer extension (S3.8)",
               paper="§3.8", artifact="extension",
               render="render_extension", order=120, domain="validation",
               options=(StageOption("--radius-miles", type=float,
                                    default=0.5),),
               params=("radius_miles",), export=_export_extension)
