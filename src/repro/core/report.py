"""Text renderers for the paper's tables and figure series.

Every benchmark prints through these, so EXPERIMENTS.md rows and the
console output stay consistent.  Renderers take the analysis dataclasses
and return plain strings (monospace tables).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..data import paper_constants as paper
from ..data.whp import WHPClass
from .case_study import CaseStudySummary
from .extension import ExtensionResult
from .future import EcoregionExposure
from .hazard import HazardSummary
from .historical import Table1Row
from .metro import MetroRisk
from .population_impact import PopulationImpact
from .provider_risk import ProviderRisk
from .technology import TechnologyRisk
from .validation import ValidationResult

__all__ = [
    "format_table",
    "render_stats",
    "render_span_tree",
    "render_stage_list",
    "render_history",
    "render_compare",
    "render_gate",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_figure5",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "render_figure10",
    "render_figure12",
    "render_validation",
    "render_extension",
    "render_ecoregions",
    "render_power",
    "render_coverage",
    "render_psps",
    "render_escape",
    "render_mitigation",
    "render_counties",
    "render_scenario",
    "render_stream",
]


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a right-aligned monospace table."""
    rows = [[str(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_stats(snapshot: dict) -> str:
    """Render a runtime perf snapshot (``--stats``) as monospace tables.

    ``snapshot`` is :meth:`repro.runtime.PerfRegistry.snapshot` output:
    per-stage wall times plus index/cache/parallel counters.
    """
    timers = snapshot.get("timers", {})
    calls = snapshot.get("timer_calls", {})
    counters = snapshot.get("counters", {})

    stage_rows = [[stage, f"{timers[stage]:.3f}", calls.get(stage, 1)]
                  for stage in sorted(timers, key=timers.get,
                                      reverse=True)]
    if not stage_rows:
        stage_rows = [["(none timed)", "-", "-"]]
    out = ["-- runtime stats --",
           format_table(["Stage", "Seconds", "Calls"], stage_rows)]

    counter_rows = [[name, f"{counters[name]:,}"]
                    for name in sorted(counters)]
    hits, misses = counters.get("cache.hits", 0), \
        counters.get("cache.misses", 0)
    if hits + misses:
        counter_rows.append(["cache hit rate",
                             f"{hits / (hits + misses):.1%}"])
    cand = counters.get("index.candidates", 0)
    if cand:
        counter_rows.append(["index selectivity",
                             f"{counters.get('index.hits', 0) / cand:.1%}"])
    if counter_rows:
        out.append(format_table(["Counter", "Value"], counter_rows))

    art_names = sorted({name.split(".", 2)[2] for name in counters
                        if name.startswith(("session.hit.",
                                            "session.miss."))})
    if art_names:
        art_rows = [[name,
                     f"{counters.get(f'session.hit.{name}', 0):,}",
                     f"{counters.get(f'session.miss.{name}', 0):,}",
                     f"{timers.get(f'artifact.{name}', 0.0):.3f}"]
                    for name in art_names]
        out.append(format_table(
            ["Artifact", "Hits", "Builds", "Seconds"], art_rows))
    return "\n".join(out)


def render_span_tree(spans, *, min_ms: float = 0.0,
                     show_events: bool = False) -> str:
    """Render a span list (``repro trace``) as an indented tree.

    ``spans`` is a sequence of :class:`repro.obs.Span`.  Children sort
    by start time under their parent; durations print in milliseconds
    with each span's share of its root.  Spans shorter than ``min_ms``
    are folded (summarized per parent as ``… n spans below min``);
    instant events are hidden unless ``show_events``.
    """
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    by_parent: dict = {}
    known = {sp.span_id for sp in spans}
    for sp in spans:
        parent = sp.parent_id if sp.parent_id in known else None
        by_parent.setdefault(parent, []).append(sp)
    for children in by_parent.values():
        children.sort(key=lambda sp: sp.start)

    lines = []

    def walk(sp, depth, root_total):
        if sp.kind == "instant" and not show_events:
            return
        label = "* " if sp.kind == "instant" else ""
        ms = sp.duration * 1e3
        share = f" ({sp.duration / root_total:5.1%})" \
            if root_total > 0 and sp.kind != "instant" else ""
        pid_tag = f" [pid {sp.pid}]" if sp.pid != spans[0].pid else ""
        attrs = ", ".join(f"{k}={v}" for k, v in sp.attrs.items())
        attrs = f"  {{{attrs}}}" if attrs else ""
        lines.append(f"{'  ' * depth}{label}{sp.name}  "
                     f"{ms:,.1f}ms{share}{pid_tag}{attrs}")
        folded = 0
        for child in by_parent.get(sp.span_id, ()):
            if child.kind != "instant" and child.duration * 1e3 < min_ms:
                folded += 1
                continue
            walk(child, depth + 1, root_total)
        if folded:
            lines.append(f"{'  ' * (depth + 1)}"
                         f"... {folded} spans under {min_ms:g}ms")

    for root in by_parent.get(None, ()):
        walk(root, 0, root.duration)
    return "\n".join(lines)


#: Display order for stage domains in ``repro list``; unknown domains
#: sort after these, alphabetically.
_DOMAIN_ORDER = ("tables", "figures", "validation", "infrastructure",
                 "engine", "hazards", "analysis")


def render_stage_list(stages) -> str:
    """``repro list``: the stage registry grouped by domain.

    One monospace table per domain (paper tables first, then figures,
    validation, infrastructure, the engine stages, and hazards); the
    ``In 'all'`` column marks stages ``repro all`` skips with ``-``
    and a trailing footnote spells the convention out.
    """
    by_domain: dict = {}
    for stage in stages:
        by_domain.setdefault(stage.domain, []).append(stage)
    ordered = [d for d in _DOMAIN_ORDER if d in by_domain]
    ordered += sorted(set(by_domain) - set(_DOMAIN_ORDER))

    out = []
    any_excluded = False
    for domain in ordered:
        body = []
        for stage in by_domain[domain]:
            deps = ", ".join(stage.deps) if stage.artifact else "-"
            in_all = "yes" if stage.order is not None else "-"
            any_excluded = any_excluded or stage.order is None
            body.append([stage.name, stage.paper, in_all, deps])
        out.append(f"[{domain}]")
        out.append(format_table(["Stage", "Paper", "In 'all'",
                                 "Artifacts"], body))
        out.append("")
    if any_excluded:
        out.append("stages marked '-' run only on demand "
                   "(excluded from 'repro all')")
    return "\n".join(out).rstrip()


def _when(iso: str) -> str:
    """Compact ledger timestamp: drop seconds and the UTC offset."""
    return iso[:16].replace("T", " ")


def _sha7(sha: str | None) -> str:
    return sha[:7] if sha else "-"


def _pct_delta(a: float, b: float) -> str:
    if a <= 0:
        return "-" if b <= 0 else "new"
    return f"{(b - a) / a:+.1%}"


def render_history(runs, *, stage: str | None = None,
                   limit: int = 20) -> str:
    """``repro history``: the ledger's run trend as a table.

    One row per run (oldest first, last ``limit``): id, start time,
    git SHA, kind/command, the tracked wall time — a named stage's
    timer when ``stage`` is given, the run's headline total otherwise
    — and the delta against the previous displayed run.
    """
    runs = list(runs)[-limit:]
    if not runs:
        return "(ledger is empty)"
    col = f"{stage} s" if stage else "total s"
    body, prev = [], None
    for run in runs:
        if stage:
            seconds = run.timer_for(stage)
        else:
            seconds = run.total_seconds()
        cell = f"{seconds:.3f}" if seconds is not None else "-"
        delta = _pct_delta(prev, seconds) \
            if prev is not None and seconds is not None else "-"
        body.append([run.run_id[:8], _when(run.started),
                     _sha7(run.git_sha), run.kind, run.command,
                     cell, delta])
        if seconds is not None:
            prev = seconds
    return format_table(
        ["Run", "When", "SHA", "Kind", "Cmd", col, "Δ%"], body)


def render_compare(diff: dict, *, min_seconds: float = 0.0) -> str:
    """``repro compare``: perf deltas and output drift between runs.

    ``diff`` is :func:`repro.obs.ledger.compare_runs` output.  Four
    sections: a header naming both runs, the timer deltas (rows under
    ``min_seconds`` on both sides are already dropped upstream), the
    counter deltas (only counters that moved), and the drift report —
    stages/artifacts whose content checksum changed, appeared, or
    disappeared between the two runs.
    """
    a, b = diff["a"], diff["b"]
    out = ["-- run comparison --",
           f"A: {a.run_id[:8]}  {_when(a.started)}  "
           f"{_sha7(a.git_sha)}  {a.kind}:{a.command}",
           f"B: {b.run_id[:8]}  {_when(b.started)}  "
           f"{_sha7(b.git_sha)}  {b.kind}:{b.command}"]

    timer_rows = [[name, f"{av:.3f}", f"{bv:.3f}", _pct_delta(av, bv)]
                  for name, av, bv in diff["timers"]]
    if timer_rows:
        out.append(format_table(["Stage", "A s", "B s", "Δ%"],
                                timer_rows))
    counter_rows = [[name, f"{av:,}", f"{bv:,}", f"{bv - av:+,}"]
                    for name, av, bv in diff["counters"] if av != bv]
    if counter_rows:
        out.append(format_table(["Counter", "A", "B", "Δ"],
                                counter_rows))

    context = diff.get("context") or []
    if context:
        out.append("config changes:")
        for key, av, bv in context:
            out.append(f"  {key}: {av!r} -> {bv!r}")

    drift_lines = []
    for kind in ("outputs", "artifacts"):
        buckets = diff[kind]
        for name in buckets["changed"]:
            drift_lines.append(f"  ~ {kind[:-1]} {name}: content changed")
        for name in buckets["added"]:
            drift_lines.append(f"  + {kind[:-1]} {name}: only in B")
        for name in buckets["removed"]:
            drift_lines.append(f"  - {kind[:-1]} {name}: only in A")
    if drift_lines:
        if context:
            out.append("drift (expected: runs joined different "
                       "hazards/scenarios, see config changes):")
        else:
            out.append("drift:")
        out.extend(drift_lines)
    else:
        out.append("drift: none (all shared checksums identical)")
    return "\n".join(out)


def render_gate(report) -> str:
    """``repro gate``: the regression-gate verdict.

    ``report`` is a :class:`repro.obs.ledger.GateReport`.  Regressions
    (timer/counter past threshold x baseline median) and drift
    (checksums changed) are listed separately — drift alone does not
    fail the gate.
    """
    latest = report.latest
    head = (f"gate: run {latest.run_id[:8]} vs median of "
            f"{len(report.baseline_ids)} baseline run"
            f"{'s' if len(report.baseline_ids) != 1 else ''} "
            f"(threshold {report.threshold:g}x)")
    out = [head]
    if not report.has_baseline:
        out.append("  no baseline yet - gate passes vacuously")
        return "\n".join(out)
    for r in report.regressions:
        if r["kind"] == "timer":
            out.append(f"  REGRESSION {r['name']}: {r['latest']:.3f}s "
                       f"vs median {r['median']:.3f}s "
                       f"({r['ratio']:.2f}x)")
        else:
            out.append(f"  REGRESSION {r['name']}: {r['latest']:,} "
                       f"vs median {r['median']:,.0f} "
                       f"({r['ratio']:.2f}x)")
    for d in report.drift:
        out.append(f"  drift: {d['kind']} {d['name']} changed content")
    if report.ok:
        verdict = "OK" if not report.drift else \
            "OK (drift detected, no perf regression)"
        out.append(f"  {verdict}")
    if report.skipped_small:
        out.append(f"  ({report.skipped_small} timers under the "
                   f"noise floor skipped)")
    return "\n".join(out)


def render_table1(rows: list[Table1Row]) -> str:
    """Paper Table 1: historical wildfire statistics."""
    body = []
    for r in rows:
        expected = paper.TABLE1_TRANSCEIVERS_IN_PERIMETERS.get(r.year, "-")
        body.append([r.year, f"{r.n_fires:,}",
                     f"{r.acres_burned_millions:.3f}",
                     f"{r.transceivers_in_perimeters_scaled:,}",
                     f"{r.transceivers_per_m_acres:,.0f}",
                     f"{expected:,}" if expected != "-" else "-"])
    return format_table(
        ["Year", "Fires", "MAcres", "Tx-in-perim (scaled)",
         "Tx/MAcre", "Paper"], body)


def render_table2(rows: list[ProviderRisk]) -> str:
    """Paper Table 2: provider risk."""
    body = []
    for r in rows:
        p = paper.TABLE2_PROVIDER_RISK.get(r.provider)
        body.append([
            r.provider,
            f"{r.moderate:,} ({r.pct(WHPClass.MODERATE):.2f}%)",
            f"{r.high:,} ({r.pct(WHPClass.HIGH):.2f}%)",
            f"{r.very_high:,} ({r.pct(WHPClass.VERY_HIGH):.2f}%)",
            (f"{p['Moderate'][0]:,} ({p['Moderate'][1]:.2f}%)"
             if p else "-"),
        ])
    return format_table(
        ["Provider", "WHP M", "WHP H", "WHP VH", "Paper (M)"], body)


def render_table3(rows: list[TechnologyRisk]) -> str:
    """Paper Table 3: transceiver types at risk."""
    body = []
    for r in rows:
        p = paper.TABLE3_TECHNOLOGY_RISK.get(r.technology)
        body.append([r.technology, f"{r.very_high:,}", f"{r.high:,}",
                     f"{r.moderate:,}", f"{r.total:,}",
                     f"{p[3]:,}" if p else "-"])
    return format_table(
        ["Type", "WHP VH", "WHP H", "WHP M", "Total", "Paper total"],
        body)


def render_season_overlay(result) -> str:
    """One season's raw transceiver × perimeter join (§2.3)."""
    total = len(result.in_perimeter_mask)
    n = result.n_in_perimeter
    pct = 100.0 * n / max(total, 1)
    top = sorted(result.per_fire_counts.items(),
                 key=lambda kv: (-kv[1], kv[0]))[:5]
    table = format_table(["Fire", "Tx inside"],
                         [[name, f"{count:,}"] for name, count in top])
    return (f"{result.year}: {result.n_fires:,} fires, {n:,} of "
            f"{total:,} transceivers in perimeters ({pct:.4f}%)\n"
            + table)


def render_stream(result) -> str:
    """Per-tick incident diff table (delta overlay stream)."""
    rows = []
    for e in result.events:
        labels = [*e.ignited, *(f"{n}+" for n in e.changed)]
        if len(labels) > 4:
            labels = labels[:4] + [f"(+{len(labels) - 4} more)"]
        fires = ", ".join(labels)
        rows.append([
            e.tick,
            fires or "-",
            f"{e.new_impacted:+,}",
            f"{e.cum_impacted:,}",
            f"{e.new_population:+,.0f}",
            f"{e.cum_population:,.0f}",
            f"{e.dirty_buckets:,}",
            f"{e.skipped_buckets:,}",
        ])
    table = format_table(
        ["Tick", "Fires (new, grown+)", "New tx", "Cum tx",
         "New pop", "Cum pop", "Dirty", "Skipped"], rows)
    final = result.final
    return (f"{result.year} incident stream: {result.n_ticks} ticks, "
            f"{final.n_fires:,} fires, "
            f"{final.n_in_perimeter:,} transceivers in perimeters\n"
            + table)


def render_scenario(result) -> str:
    """Scenario ensemble summary: per-member impacts + distribution."""
    rows = [[m.member, f"{m.n_events:,}", f"{m.total_acres:,.0f}",
             f"{m.impacted:,}"] for m in result.members]
    table = format_table(["Member", "Events", "Acres", "Tx impacted"],
                         rows)
    return (f"scenario {result.name!r} ({result.hazard}, "
            f"{result.year}): {result.n_members} members\n"
            + table
            + f"\nimpacted tx: mean {result.mean_impacted:,.1f}, "
              f"min {result.min_impacted:,}, "
              f"max {result.max_impacted:,}")


def render_figure5(summary: CaseStudySummary) -> str:
    """Figure 5 series: daily outages by cause."""
    body = []
    for i, day in enumerate(summary.days):
        total = summary.power[i] + summary.backhaul[i] + summary.damage[i]
        body.append([day, summary.power[i], summary.backhaul[i],
                     summary.damage[i], total])
    table = format_table(["Day", "Power", "Backhaul", "Damage", "Total"],
                         body)
    notes = (f"\npeak {summary.peak_total} on {summary.peak_day} "
             f"({summary.peak_power_share:.0%} power)"
             f" | paper: {paper.DIRS_CASE_STUDY['peak_sites_out']} "
             f"(>{paper.DIRS_CASE_STUDY['power_share_at_peak']:.0%} power)"
             f"\nfinal {summary.final_total} out, "
             f"{summary.final_damaged} damaged | paper: "
             f"{paper.DIRS_CASE_STUDY['final_sites_out']} out, "
             f"{paper.DIRS_CASE_STUDY['final_damaged']} damaged")
    return table + notes


def render_figure7(summary: HazardSummary) -> str:
    """Figure 7 headline counts."""
    body = []
    for name in ("Moderate", "High", "Very High"):
        body.append([name, f"{summary.class_counts[name]:,}",
                     f"{paper.WHP_AT_RISK_COUNTS[name]:,}"])
    body.append(["Total at-risk", f"{summary.at_risk_total:,}",
                 f"{paper.WHP_AT_RISK_TOTAL:,}"])
    return format_table(["WHP class", "Measured (scaled)", "Paper"], body)


def render_figure8(summary: HazardSummary, n: int = 10) -> str:
    """Figure 8: top states by at-risk transceivers."""
    body = []
    for s in summary.states[:n]:
        body.append([s.state, f"{s.moderate:,}", f"{s.high:,}",
                     f"{s.very_high:,}", f"{s.total:,}"])
    table = format_table(["State", "Moderate", "High", "Very High",
                          "Total"], body)
    return (table + "\npaper top moderate states: "
            + ", ".join(paper.TOP_MODERATE_STATES))


def render_figure9(summary: HazardSummary, n: int = 10) -> str:
    """Figure 9: per-capita at-risk by state."""
    ranked = sorted(summary.states,
                    key=lambda s: s.per_thousand(), reverse=True)[:n]
    body = [[s.state, f"{s.per_thousand():.2f}",
             f"{s.per_thousand(WHPClass.VERY_HIGH):.3f}"]
            for s in ranked]
    table = format_table(
        ["State", "At-risk per 1000", "VH per 1000"], body)
    return (table + "\npaper top VH per-capita states: "
            + ", ".join(paper.TOP_VH_PER_CAPITA_STATES))


def render_figure10(impact: PopulationImpact) -> str:
    """Figure 10: WHP × population density matrix."""
    cats = list(next(iter(impact.matrix.values())).keys())
    body = []
    for whp_name, row in impact.matrix.items():
        body.append([whp_name] + [f"{row[c]:,}" for c in cats])
    table = format_table(["WHP class"] + cats, body)
    return (table
            + f"\nat-risk in >1.5M counties: "
              f"{impact.at_risk_in_vh_pop_counties:,} "
              f"(paper {paper.POP_IMPACT['at_risk_in_vh_pop_counties']:,})"
            + f"\nvery-dense counties: {impact.n_vh_pop_counties} "
              f"(paper {paper.POP_IMPACT['n_vh_pop_counties']})")


def render_figure12(rows: list[MetroRisk]) -> str:
    """Figure 12: metro ranking."""
    body = [[r.metro, f"{r.moderate:,}", f"{r.high:,}",
             f"{r.very_high:,}", f"{r.total:,}"] for r in rows]
    return format_table(["Metro", "Moderate", "High", "Very High",
                         "Total"], body)


def render_validation(result: ValidationResult) -> str:
    """§3.4 validation summary."""
    p = paper.VALIDATION_2019
    lines = [
        f"2019 in-perimeter transceivers: {result.in_perimeter_total} "
        f"(scaled {result.scaled(result.in_perimeter_total):,}; "
        f"paper {p['in_perimeter_total']})",
        f"predicted at-risk: {result.predicted_at_risk} "
        f"-> accuracy {result.accuracy:.0%} (paper {p['accuracy_pct']:.0f}%)",
        f"misses inside LA fires: {result.missed_in_la_fires}/"
        f"{result.missed} (paper {p['missed_in_la_fires']}/{p['missed']})",
        f"accuracy excluding LA fires: "
        f"{result.accuracy_excluding_la:.0%} "
        f"(paper {p['accuracy_excluding_la_pct']:.0f}%)",
    ]
    return "\n".join(lines)


def render_extension(result: ExtensionResult) -> str:
    """§3.8 extension summary."""
    p = paper.EXTENSION_HALF_MILE
    lines = [
        f"VH transceivers: {result.vh_before:,} -> {result.vh_after:,} "
        f"(paper {p['vh_before']:,} -> {p['vh_after']:,})",
        f"total at-risk: {result.total_before:,} -> "
        f"{result.total_after:,} "
        f"(paper {p['total_before']:,} -> {p['total_after']:,})",
        f"validation accuracy: "
        f"{result.validation_before.accuracy:.0%} -> "
        f"{result.validation_after.accuracy:.0%} "
        f"(paper 46% -> {p['accuracy_after_pct']:.0f}%)",
    ]
    return "\n".join(lines)


def render_ecoregions(rows: list[EcoregionExposure]) -> str:
    """§3.9 / Figures 14-15 table."""
    body = [[r.code, r.name[:34], f"{r.delta_2040_pct:+.0f}%",
             f"{r.transceivers:,}", f"{r.at_risk_transceivers:,}",
             f"{r.projected_at_risk_2040:,}"] for r in rows]
    return format_table(
        ["Code", "Ecoregion", "Δ2040", "Transceivers", "At-risk",
         "Projected"], body)


def render_power(impact) -> str:
    """§3.11 power-dependency one-liner."""
    return (f"{impact.year}: {impact.sites_direct} sites inside "
            f"perimeters, {impact.sites_indirect} more lose power "
            f"({impact.substations_hit} substations hit, "
            f"{impact.lines_cut} lines cut)")


def render_coverage(r) -> str:
    """§3.11 coverage-loss one-liner."""
    return (f"baseline coverage {r.covered_share_before:.0%}; losing "
            f"{r.sites_lost:,} at-risk sites strands "
            f"{r.population_lost / 1e6:.1f}M people "
            f"({r.lost_share:.2%} of US)")


def render_psps(exposure) -> str:
    """§3.10 PSPS shutoff-exposure one-liner."""
    return (f"{exposure.n_lines_at_risk}/{exposure.n_lines_total} lines "
            f"cross high-WHP terrain; de-energizing them darkens "
            f"{exposure.sites_exposed:,}/{exposure.sites_total:,} sites "
            f"({exposure.exposed_share:.1%})")


def render_escape(result) -> str:
    """HOT escape-model summary."""
    return (f"static at-risk {result.static_at_risk:,} -> "
            f"escape-adjusted {result.escape_adjusted_at_risk:,} "
            f"(+{result.added_transceivers:,} at reach "
            f"p>{result.reach_probability_threshold:g})")


def render_mitigation(sites, n: int = 15) -> str:
    """§3.10 site-hardening ranking (top sites by composite score)."""
    body = [[i + 1, s.site_id, f"{s.score:.2f}", s.whp_class,
             s.n_transceivers, s.n_providers,
             f"{s.county_population:,}"]
            for i, s in enumerate(sites[:n])]
    return format_table(
        ["#", "Site", "Score", "WHP", "Tx", "Providers", "County pop"],
        body)


def render_counties(rows, n: int = 15) -> str:
    """Chronically-exposed counties ranking."""
    body = [[r.county, r.state, f"{r.population:,}",
             f"{r.transceiver_exposures:,}", r.years_touched,
             "chronic" if r.chronic else ""]
            for r in rows[:n]]
    return format_table(
        ["County", "State", "Population", "Exposures", "Years", ""],
        body)
