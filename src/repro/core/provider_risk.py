"""Provider risk (Table 2, §3.5).

Per provider group: transceivers in each at-risk WHP class, both as
scaled absolute counts and as a percentage of that provider's fleet.
Also surfaces the count of distinct regional carriers with at-risk
infrastructure (the paper's footnote: 46 smaller providers).
"""

from __future__ import annotations

from dataclasses import dataclass


from ..data.cells import PROVIDER_GROUPS
from ..data.providers import MAJOR_PROVIDERS, provider_registry
from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..session import artifact, register_stage, session_of

__all__ = ["ProviderRisk", "provider_risk_analysis",
           "regional_carriers_at_risk"]


@dataclass(frozen=True)
class ProviderRisk:
    """One row of Table 2."""

    provider: str
    fleet_size: int                     # scaled universe transceivers
    moderate: int
    high: int
    very_high: int

    def pct(self, whp_class: WHPClass) -> float:
        """Percent of the provider's fleet in the class."""
        count = {WHPClass.MODERATE: self.moderate,
                 WHPClass.HIGH: self.high,
                 WHPClass.VERY_HIGH: self.very_high}[whp_class]
        if self.fleet_size == 0:
            return 0.0
        return 100.0 * count / self.fleet_size

    @property
    def total_at_risk(self) -> int:
        return self.moderate + self.high + self.very_high


def provider_risk_analysis(universe: SyntheticUS) -> list[ProviderRisk]:
    """Build Table 2 rows in the paper's provider order."""
    return session_of(universe).artifact("provider_risk")


def _compute_provider_risk(session) -> list[ProviderRisk]:
    universe = session.universe
    cells = universe.cells
    classes = session.artifact("whp_classes")
    scale = universe.universe_scale
    rows = []
    for code, name in enumerate(PROVIDER_GROUPS):
        mask = cells.provider_group == code
        sub = classes[mask]
        rows.append(ProviderRisk(
            provider=name,
            fleet_size=int(round(mask.sum() * scale)),
            moderate=int(round((sub == int(WHPClass.MODERATE)).sum()
                               * scale)),
            high=int(round((sub == int(WHPClass.HIGH)).sum() * scale)),
            very_high=int(round((sub == int(WHPClass.VERY_HIGH)).sum()
                                * scale)),
        ))
    return rows


def regional_carriers_at_risk(universe: SyntheticUS) -> int:
    """Count distinct regional carriers with at-risk infrastructure.

    The paper's footnote 1 reports 46.  A carrier counts when at least
    one of its transceivers (identified by PLMN) is in a moderate+ cell.
    """
    return session_of(universe).artifact("regional_carriers")


def _compute_regional_carriers(session) -> int:
    universe = session.universe
    cells = universe.cells
    classes = session.artifact("whp_classes")
    at_risk = classes >= int(WHPClass.MODERATE)
    others = cells.provider_group == PROVIDER_GROUPS.index("Others")
    mask = at_risk & others
    plmns = set(zip(cells.mcc[mask].tolist(), cells.mnc[mask].tolist()))
    carriers = set()
    registry = provider_registry()
    plmn_owner = {(p.mcc, p.mnc): prov.name
                  for prov in registry.values() for p in prov.plmns
                  if prov.name not in MAJOR_PROVIDERS}
    for key in plmns:
        owner = plmn_owner.get(key)
        if owner is not None:
            carriers.add(owner)
    return len(carriers)


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("provider_risk", deps=("whp_classes",))
def _provider_risk_artifact(session) -> list[ProviderRisk]:
    """Table 2 rows: per-provider at-risk counts."""
    return _compute_provider_risk(session)


@artifact("regional_carriers", deps=("whp_classes",))
def _regional_carriers_artifact(session) -> int:
    """Footnote 1: distinct regional carriers with at-risk gear."""
    return _compute_regional_carriers(session)


def _export_table2(session, ctx) -> dict:
    from dataclasses import asdict

    from ..data import paper_constants as paper
    return {"table2": {
        "rows": [asdict(r) for r in session.artifact("provider_risk")],
        "regional_carriers": session.artifact("regional_carriers"),
        "paper": {k: {c: list(v) for c, v in d.items()}
                  for k, d in paper.TABLE2_PROVIDER_RISK.items()},
    }}


register_stage("table2", help="provider risk (Table 2)",
               paper="Table 2", artifact="provider_risk",
               render="render_table2", order=20, domain="tables",
               export=_export_table2)
