"""WHP hazard analysis: Figures 6–9 and the §3.3 headline numbers.

Classifies every transceiver by WHP class and aggregates nationally, per
state (Figure 8), and per capita (Figure 9).  Also computes the §3.3
population-served estimate (the paper's ">85 million" figure): the
aggregate population of the counties containing at-risk transceivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.states import StateAssigner, conus_states
from ..data.universe import SyntheticUS
from ..data.whp import AT_RISK_CLASSES, WHP_CLASS_NAMES, WHPClass
from ..runtime.stats import STATS
from ..session import artifact, register_stage, session_of

__all__ = ["HazardSummary", "StateHazard", "hazard_analysis",
           "population_served_at_risk"]


@dataclass(frozen=True)
class StateHazard:
    """Per-state at-risk transceiver counts (scaled to paper universe)."""

    state: str
    moderate: int
    high: int
    very_high: int
    population: int

    @property
    def total(self) -> int:
        return self.moderate + self.high + self.very_high

    def per_thousand(self, whp_class: WHPClass | None = None) -> float:
        """At-risk transceivers per thousand residents (Figure 9)."""
        if whp_class is None:
            count = self.total
        else:
            count = {WHPClass.MODERATE: self.moderate,
                     WHPClass.HIGH: self.high,
                     WHPClass.VERY_HIGH: self.very_high}[whp_class]
        return 1000.0 * count / self.population


@dataclass
class HazardSummary:
    """National + per-state WHP hazard overlay results."""

    class_counts: dict[str, int]          # class name -> scaled count
    class_counts_raw: dict[str, int]      # class name -> raw count
    states: list[StateHazard]             # sorted by total, descending
    classes_per_transceiver: np.ndarray = field(repr=False)

    @property
    def at_risk_total(self) -> int:
        return sum(self.class_counts[WHP_CLASS_NAMES[c]]
                   for c in AT_RISK_CLASSES)

    def top_states(self, n: int = 7,
                   whp_class: WHPClass | None = None) -> list[str]:
        """Figure 8: states ranked by at-risk transceivers."""
        if whp_class is None:
            key = lambda s: s.total
        else:
            key = lambda s: {WHPClass.MODERATE: s.moderate,
                             WHPClass.HIGH: s.high,
                             WHPClass.VERY_HIGH: s.very_high}[whp_class]
        return [s.state for s in
                sorted(self.states, key=key, reverse=True)[:n]]

    def top_states_per_capita(self, n: int = 5,
                              whp_class: WHPClass | None = None) \
            -> list[str]:
        """Figure 9: states ranked by at-risk transceivers per capita."""
        ranked = sorted(self.states,
                        key=lambda s: s.per_thousand(whp_class),
                        reverse=True)
        return [s.state for s in ranked[:n]]


def hazard_analysis(universe: SyntheticUS) -> HazardSummary:
    """Run the Figure 7/8/9 pipeline (one shared result per session)."""
    return session_of(universe).artifact("hazard")


def _compute_hazard(session, hazard: str = "wildfire") -> HazardSummary:
    universe = session.universe
    cells = universe.cells
    classes = session.artifact("whp_classes", hazard=hazard)
    scale = universe.universe_scale

    class_counts_raw = {}
    class_counts = {}
    for whp_class in WHPClass:
        if whp_class == WHPClass.NON_BURNABLE:
            continue
        raw = int((classes == int(whp_class)).sum())
        class_counts_raw[WHP_CLASS_NAMES[whp_class]] = raw
        class_counts[WHP_CLASS_NAMES[whp_class]] = int(round(raw * scale))

    with STATS.timer("hazard.state_assignment"):
        assigner = StateAssigner()
        state_of = assigner.assign_many(cells.lons, cells.lats)
    with STATS.timer("hazard.state_aggregation"):
        states = []
        for abbr, state in conus_states().items():
            in_state = state_of == abbr
            if not in_state.any():
                counts = {c: 0 for c in AT_RISK_CLASSES}
            else:
                sub = classes[in_state]
                counts = {c: int(round((sub == int(c)).sum() * scale))
                          for c in AT_RISK_CLASSES}
            states.append(StateHazard(
                state=abbr,
                moderate=counts[WHPClass.MODERATE],
                high=counts[WHPClass.HIGH],
                very_high=counts[WHPClass.VERY_HIGH],
                population=state.population,
            ))
        states.sort(key=lambda s: s.total, reverse=True)
    return HazardSummary(class_counts=class_counts,
                         class_counts_raw=class_counts_raw,
                         states=states,
                         classes_per_transceiver=classes)


def population_served_at_risk(universe: SyntheticUS,
                              summary: HazardSummary | None = None) -> int:
    """§3.3: aggregate population of counties with at-risk transceivers.

    The paper reports >85M people in "the areas served by these
    transceivers"; we interpret areas as counties (the paper's §3.6 uses
    county population as the service index).
    """
    if summary is None:
        return session_of(universe).artifact("population_served")
    return _population_served(session_of(universe), summary)


def _population_served(session, summary: HazardSummary) -> int:
    universe = session.universe
    at_risk = summary.classes_per_transceiver >= int(WHPClass.MODERATE)
    counties = universe.counties
    county_idx = session.artifact("county_assignment")
    idx = np.unique(county_idx[at_risk])
    idx = idx[idx >= 0]
    pops = counties.populations()
    return int(pops[idx].sum())


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("hazard", deps=("whp_classes",))
def _hazard_artifact(session, hazard: str = "wildfire") -> HazardSummary:
    """National + per-state intensity-class summary (Figures 7-9).

    ``hazard`` selects the intensity surface the per-transceiver
    classes come from; non-wildfire surfaces reuse the same ordinal
    0-5 aggregation (class names stay the WHP vocabulary).
    """
    return _compute_hazard(session, hazard=hazard)


@artifact("population_served", deps=("hazard", "county_assignment"))
def _population_served_artifact(session) -> int:
    """S3.3 population of counties holding at-risk transceivers."""
    return _population_served(session, session.artifact("hazard"))


def _export_figure7(session, ctx) -> dict:
    from ..data import paper_constants as paper
    hazard = session.artifact("hazard")
    return {"figure7": {
        "class_counts": hazard.class_counts,
        "at_risk_total": hazard.at_risk_total,
        "population_served": session.artifact("population_served"),
        "paper_counts": paper.WHP_AT_RISK_COUNTS,
        "paper_total": paper.WHP_AT_RISK_TOTAL,
    }}


def _export_figure8(session, ctx) -> dict:
    from dataclasses import asdict

    from ..data import paper_constants as paper
    hazard = session.artifact("hazard")
    return {"figure8": {
        "states": [asdict(s) for s in hazard.states[:15]],
        "paper_top_moderate": list(paper.TOP_MODERATE_STATES),
    }}


register_stage("fig7", help="WHP hazard counts (Figure 7)",
               paper="Figure 7", artifact="hazard",
               render="render_figure7", order=50, domain="figures",
               export=_export_figure7)
register_stage("fig8", help="top states (Figure 8)",
               paper="Figure 8", artifact="hazard",
               render="render_figure8", order=60, domain="figures",
               export=_export_figure8)
register_stage("fig9", help="per-capita risk (Figure 9)",
               paper="Figure 9", artifact="hazard",
               render="render_figure9", order=70, domain="figures")
