"""Historical analysis: Table 1 and Figures 3–4 (§3.1).

For each year 2000–2018 the pipeline overlays that year's fire perimeters
with the transceiver universe and reports the paper's Table 1 columns:
number of fires, acres burned, transceivers within wildfire perimeters,
and transceivers per million acres burned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.historical_stats import STUDY_YEARS, year_stats
from ..data.universe import SyntheticUS
from ..session import artifact, register_stage, session_of

__all__ = ["Table1Row", "historical_analysis", "total_in_perimeters"]


@dataclass(frozen=True)
class Table1Row:
    """One year of the paper's Table 1."""

    year: int
    n_fires: int
    acres_burned_millions: float
    transceivers_in_perimeters: int          # raw synthetic count
    transceivers_in_perimeters_scaled: int   # rescaled to paper universe
    transceivers_per_m_acres: float          # scaled count / M acres


def historical_analysis(universe: SyntheticUS,
                        years: tuple[int, ...] = STUDY_YEARS) \
        -> list[Table1Row]:
    """Build Table 1 (most-recent year first, as in the paper)."""
    return session_of(universe).artifact("table1", years=tuple(years))


def total_in_perimeters(universe: SyntheticUS,
                        years: tuple[int, ...] = STUDY_YEARS) \
        -> tuple[int, np.ndarray]:
    """Figure 4: union of transceivers inside any perimeter, 2000-2018.

    Returns (scaled count, union mask over the universe).
    """
    return session_of(universe).artifact("perimeter_union",
                                         years=tuple(years))


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("table1", deps=("season_overlay",))
def _table1_artifact(session,
                     years: tuple[int, ...] = STUDY_YEARS) \
        -> list[Table1Row]:
    """Table 1 rows, one per study year (shared season overlays)."""
    universe = session.universe
    rows = []
    scale = universe.universe_scale
    for year in years:
        result = session.artifact("season_overlay", year=year)
        stats = year_stats(year)
        scaled = result.scaled_count(scale)
        rows.append(Table1Row(
            year=year,
            n_fires=stats.n_fires,
            acres_burned_millions=stats.acres_burned,
            transceivers_in_perimeters=result.n_in_perimeter,
            transceivers_in_perimeters_scaled=scaled,
            transceivers_per_m_acres=scaled / stats.acres_burned,
        ))
    return sorted(rows, key=lambda r: -r.year)


@artifact("perimeter_union", deps=("season_overlay",))
def _perimeter_union_artifact(session,
                              years: tuple[int, ...] = STUDY_YEARS) \
        -> tuple[int, np.ndarray]:
    """(scaled count, union mask) of transceivers in any perimeter."""
    universe = session.universe
    union = np.zeros(len(universe.cells), dtype=bool)
    for year in years:
        result = session.artifact("season_overlay", year=year)
        union |= result.in_perimeter_mask
    scaled = int(round(union.sum() * universe.universe_scale))
    return scaled, union


def _export_table1(session, ctx) -> dict:
    from dataclasses import asdict

    from ..data import paper_constants as paper
    rows = session.artifact("table1")
    total, _ = session.artifact("perimeter_union")
    return {"table1": {
        "rows": [asdict(r) for r in rows],
        "total_in_perimeters": total,
        "paper_total": paper.TOTAL_IN_PERIMETERS_2000_2018,
    }}


register_stage("table1", help="historical analysis (Table 1)",
               paper="Table 1", artifact="table1",
               render="render_table1", order=10, domain="tables",
               export=_export_table1)
