"""The 2019 California case study: Figure 5 and the §3.2 findings.

Aggregates the DIRS simulation into the paper's daily stacked series
(sites out by cause) and checks the structural findings: power loss is
the dominant cause (>80% at the peak), outages peak on 28 October, and
damaged sites remain out at the end of the reporting window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.dirs import DirsSimulation
from ..data.universe import SyntheticUS
from ..session import artifact, register_stage, session_of

__all__ = ["CaseStudySummary", "case_study_analysis", "DOY_LABELS",
           "outage_by_county"]

#: Day-of-year -> human label for the 2019 reporting window.
DOY_LABELS = {
    298: "Oct 25", 299: "Oct 26", 300: "Oct 27", 301: "Oct 28",
    302: "Oct 29", 303: "Oct 30", 304: "Oct 31", 305: "Nov 1",
}


@dataclass
class CaseStudySummary:
    """Figure 5 series plus the §3.2 headline numbers (scaled)."""

    days: list[str]
    power: list[int]
    backhaul: list[int]
    damage: list[int]
    peak_total: int
    peak_day: str
    peak_power_share: float
    final_total: int
    final_damaged: int

    def totals(self) -> list[int]:
        return [p + b + d for p, b, d in
                zip(self.power, self.backhaul, self.damage)]


def case_study_analysis(universe: SyntheticUS,
                        sim: DirsSimulation | None = None) \
        -> CaseStudySummary:
    """Aggregate the DIRS simulation into the Figure 5 series."""
    if sim is None:
        return session_of(universe).artifact("case_study")
    return _compute_case_study(universe, sim)


def _compute_case_study(universe: SyntheticUS,
                        sim: DirsSimulation) -> CaseStudySummary:
    scale = universe.universe_scale
    scaled = sim.scaled_reports(scale)

    days = [DOY_LABELS[r["doy"]] for r in scaled]
    power = [r["power"] for r in scaled]
    backhaul = [r["backhaul"] for r in scaled]
    damage = [r["damage"] for r in scaled]
    totals = [p + b + d for p, b, d in zip(power, backhaul, damage)]

    peak_i = max(range(len(totals)), key=lambda i: totals[i])
    final_i = len(totals) - 1
    peak_total = totals[peak_i]
    peak_power_share = (power[peak_i] / peak_total) if peak_total else 0.0

    return CaseStudySummary(
        days=days,
        power=power,
        backhaul=backhaul,
        damage=damage,
        peak_total=peak_total,
        peak_day=days[peak_i],
        peak_power_share=peak_power_share,
        final_total=totals[final_i],
        final_damaged=damage[final_i],
    )


def outage_by_county(universe: SyntheticUS,
                     sim: DirsSimulation | None = None,
                     top_n: int = 10) -> list[tuple[str, int]]:
    """County breakdown of affected sites (the real DIRS reports were
    filed per county across the 37 activated counties).

    Returns (county name, scaled affected-site count) pairs, largest
    first.
    """
    if sim is None:
        sim = universe.dirs
    if sim.ever_out is None or not len(sim.ever_out):
        return []
    counties = universe.counties
    scale = universe.universe_scale
    idx = counties.assign_many(sim.site_lons[sim.ever_out],
                               sim.site_lats[sim.ever_out])
    idx = idx[idx >= 0]
    out: dict[str, int] = {}
    for i in idx.tolist():
        name = counties.counties[i].name
        out[name] = out.get(name, 0) + 1
    ranked = sorted(out.items(), key=lambda kv: -kv[1])[:top_n]
    return [(name, int(round(count * scale))) for name, count in ranked]


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("case_study")
def _case_study_artifact(session) -> CaseStudySummary:
    """Figure 5 daily outage series from the DIRS simulation."""
    universe = session.universe
    return _compute_case_study(universe, universe.dirs)


def _export_figure5(session, ctx) -> dict:
    from ..data import paper_constants as paper
    case = session.artifact("case_study")
    return {"figure5": {
        "days": case.days,
        "power": case.power,
        "backhaul": case.backhaul,
        "damage": case.damage,
        "peak_total": case.peak_total,
        "peak_power_share": case.peak_power_share,
        "paper": paper.DIRS_CASE_STUDY,
    }}


register_stage("fig5", help="2019 case study (Figure 5)",
               paper="Figure 5", artifact="case_study",
               render="render_figure5", order=40, domain="figures",
               export=_export_figure5)
