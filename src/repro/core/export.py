"""Machine-readable experiment export.

Dumps every reproduced table and figure into one JSON document — the
artifact a CI job archives so result drift is diffable across commits.
The document carries the universe configuration, the library version,
and a paper-vs-measured entry per experiment.

The per-experiment entries are assembled by iterating the **stage
registry** (:mod:`repro.session`): every stage that registered an
``export`` hook contributes its entries, pulling shared artifacts
through the ambient session so nothing is computed twice.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from ..data.universe import SyntheticUS
from ..session import iter_stages, session_of

__all__ = ["export_results", "run_all_experiments",
           "render_markdown_report"]


def run_all_experiments(universe: SyntheticUS,
                        validation_oversample: int = 8) -> dict[str, Any]:
    """Run every registered exporter and assemble the results document."""
    from .. import __version__

    session = session_of(universe)
    ctx = {"validation_oversample": validation_oversample}
    doc: dict[str, Any] = {
        "library_version": __version__,
        "config": asdict(universe.config),
        "universe_scale": universe.universe_scale,
    }
    for stage in iter_stages():
        if stage.export is not None:
            doc.update(stage.export(session, ctx))
    return doc


def export_results(universe: SyntheticUS, path: str | Path,
                   validation_oversample: int = 8) -> dict[str, Any]:
    """Run everything and write the JSON document to ``path``."""
    doc = run_all_experiments(universe,
                              validation_oversample=validation_oversample)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True),
                          encoding="utf-8")
    return doc


def render_markdown_report(doc: dict[str, Any]) -> str:
    """Render the results document as a human-readable Markdown report.

    The output mirrors EXPERIMENTS.md's structure so a CI job can
    regenerate that file from :func:`run_all_experiments` output.
    """
    lines = ["# Reproduction results", "",
             f"library {doc['library_version']}, "
             f"n={doc['config']['n_transceivers']:,}, "
             f"seed={doc['config']['seed']}", ""]

    lines.append("## Figure 7 — WHP hazard counts")
    fig7 = doc["figure7"]
    lines.append("| Class | Measured | Paper |")
    lines.append("|---|---|---|")
    for name, paper_count in fig7["paper_counts"].items():
        lines.append(f"| {name} | {fig7['class_counts'][name]:,} "
                     f"| {paper_count:,} |")
    lines.append(f"| Total | {fig7['at_risk_total']:,} "
                 f"| {fig7['paper_total']:,} |")
    lines.append("")

    lines.append("## Table 1 — historical analysis")
    t1 = doc["table1"]
    lines.append(f"Total in perimeters 2000-2018: "
                 f"{t1['total_in_perimeters']:,} "
                 f"(paper >{t1['paper_total']:,})")
    lines.append("")

    lines.append("## S3.4 — validation")
    v = doc["validation_s34"]
    lines.append(f"accuracy {v['accuracy']:.0%} "
                 f"(paper {v['paper']['accuracy_pct']:.0f}%); "
                 f"misses in LA fires {v['missed_in_la_fires']}"
                 f"/{v['missed']} "
                 f"(paper {v['paper']['missed_in_la_fires']}"
                 f"/{v['paper']['missed']})")
    lines.append("")

    lines.append("## S3.8 — extension")
    e = doc["extension_s38"]
    lines.append(f"VH {e['vh_before']:,} -> {e['vh_after']:,} "
                 f"(paper {e['paper']['vh_before']:,} -> "
                 f"{e['paper']['vh_after']:,}); accuracy "
                 f"{e['accuracy_before']:.0%} -> "
                 f"{e['accuracy_after']:.0%} (paper 46% -> 62%)")
    lines.append("")

    lines.append("## Figure 8 — top states")
    states = doc["figure8"]["states"][:7]
    lines.append(", ".join(f"{s['state']} ({s['moderate'] + s['high'] + s['very_high']:,})"
                           for s in states))
    lines.append(f"paper: "
                 f"{', '.join(doc['figure8']['paper_top_moderate'])}")
    lines.append("")

    lines.append("## Table 2 — providers")
    lines.append("| Provider | At-risk | Fleet |")
    lines.append("|---|---|---|")
    for row in doc["table2"]["rows"]:
        total = row["moderate"] + row["high"] + row["very_high"]
        lines.append(f"| {row['provider']} | {total:,} "
                     f"| {row['fleet_size']:,} |")
    lines.append(f"regional carriers at risk: "
                 f"{doc['table2']['regional_carriers']} (paper 46)")
    lines.append("")

    lines.append("## S3.6 — city very-high counts")
    for city, count in doc["cities_s36"]["counts"].items():
        paper_count = doc["cities_s36"]["paper"].get(city, 0)
        lines.append(f"- {city}: {count:,} (paper {paper_count:,})")
    return "\n".join(lines)
