"""Machine-readable experiment export.

Dumps every reproduced table and figure into one JSON document — the
artifact a CI job archives so result drift is diffable across commits.
The document carries the universe configuration, the library version,
and a paper-vs-measured entry per experiment.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from ..data import paper_constants as paper
from ..data.universe import SyntheticUS
from .case_study import case_study_analysis
from .extension import extend_very_high
from .future import future_risk_analysis
from .hazard import hazard_analysis, population_served_at_risk
from .historical import historical_analysis, total_in_perimeters
from .metro import city_very_high_counts, metro_risk_analysis
from .population_impact import population_impact_analysis
from .provider_risk import provider_risk_analysis, regional_carriers_at_risk
from .technology import technology_risk_analysis
from .validation import validate_whp_2019

__all__ = ["export_results", "run_all_experiments",
           "render_markdown_report"]


def run_all_experiments(universe: SyntheticUS,
                        validation_oversample: int = 8) -> dict[str, Any]:
    """Run every pipeline and assemble the results document."""
    from .. import __version__

    hazard = hazard_analysis(universe)
    table1 = historical_analysis(universe)
    total_perims, _ = total_in_perimeters(universe)
    case = case_study_analysis(universe)
    validation = validate_whp_2019(universe,
                                   oversample=validation_oversample)
    extension = extend_very_high(universe)
    impact = population_impact_analysis(universe)

    doc: dict[str, Any] = {
        "library_version": __version__,
        "config": asdict(universe.config),
        "universe_scale": universe.universe_scale,
        "table1": {
            "rows": [asdict(r) for r in table1],
            "total_in_perimeters": total_perims,
            "paper_total": paper.TOTAL_IN_PERIMETERS_2000_2018,
        },
        "figure5": {
            "days": case.days,
            "power": case.power,
            "backhaul": case.backhaul,
            "damage": case.damage,
            "peak_total": case.peak_total,
            "peak_power_share": case.peak_power_share,
            "paper": paper.DIRS_CASE_STUDY,
        },
        "figure7": {
            "class_counts": hazard.class_counts,
            "at_risk_total": hazard.at_risk_total,
            "population_served": population_served_at_risk(universe,
                                                           hazard),
            "paper_counts": paper.WHP_AT_RISK_COUNTS,
            "paper_total": paper.WHP_AT_RISK_TOTAL,
        },
        "figure8": {
            "states": [asdict(s) for s in hazard.states[:15]],
            "paper_top_moderate": list(paper.TOP_MODERATE_STATES),
        },
        "validation_s34": {
            "in_perimeter_total": validation.in_perimeter_total,
            "accuracy": validation.accuracy,
            "missed_in_la_fires": validation.missed_in_la_fires,
            "missed": validation.missed,
            "paper": paper.VALIDATION_2019,
        },
        "extension_s38": {
            "vh_before": extension.vh_before,
            "vh_after": extension.vh_after,
            "total_before": extension.total_before,
            "total_after": extension.total_after,
            "accuracy_before": extension.validation_before.accuracy,
            "accuracy_after": extension.validation_after.accuracy,
            "paper": paper.EXTENSION_HALF_MILE,
        },
        "table2": {
            "rows": [asdict(r) for r in provider_risk_analysis(universe)],
            "regional_carriers": regional_carriers_at_risk(universe),
            "paper": {k: {c: list(v) for c, v in d.items()}
                      for k, d in paper.TABLE2_PROVIDER_RISK.items()},
        },
        "table3": {
            "rows": [asdict(r)
                     for r in technology_risk_analysis(universe)],
            "paper": {k: list(v)
                      for k, v in paper.TABLE3_TECHNOLOGY_RISK.items()},
        },
        "figure10": {
            "matrix": impact.matrix,
            "at_risk_in_vh_pop_counties":
                impact.at_risk_in_vh_pop_counties,
            "n_vh_pop_counties": impact.n_vh_pop_counties,
            "paper": paper.POP_IMPACT,
        },
        "figure12": {
            "metros": [asdict(m) for m in metro_risk_analysis(universe)],
        },
        "cities_s36": {
            "counts": city_very_high_counts(universe),
            "paper": paper.CITY_VERY_HIGH_COUNTS,
        },
        "ecoregions_s39": {
            "rows": [asdict(r) for r in future_risk_analysis(universe)],
            "paper_deltas": paper.ECOREGION_DELTAS,
        },
    }
    return doc


def export_results(universe: SyntheticUS, path: str | Path,
                   validation_oversample: int = 8) -> dict[str, Any]:
    """Run everything and write the JSON document to ``path``."""
    doc = run_all_experiments(universe,
                              validation_oversample=validation_oversample)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True),
                          encoding="utf-8")
    return doc


def render_markdown_report(doc: dict[str, Any]) -> str:
    """Render the results document as a human-readable Markdown report.

    The output mirrors EXPERIMENTS.md's structure so a CI job can
    regenerate that file from :func:`run_all_experiments` output.
    """
    lines = ["# Reproduction results", "",
             f"library {doc['library_version']}, "
             f"n={doc['config']['n_transceivers']:,}, "
             f"seed={doc['config']['seed']}", ""]

    lines.append("## Figure 7 — WHP hazard counts")
    fig7 = doc["figure7"]
    lines.append("| Class | Measured | Paper |")
    lines.append("|---|---|---|")
    for name, paper_count in fig7["paper_counts"].items():
        lines.append(f"| {name} | {fig7['class_counts'][name]:,} "
                     f"| {paper_count:,} |")
    lines.append(f"| Total | {fig7['at_risk_total']:,} "
                 f"| {fig7['paper_total']:,} |")
    lines.append("")

    lines.append("## Table 1 — historical analysis")
    t1 = doc["table1"]
    lines.append(f"Total in perimeters 2000-2018: "
                 f"{t1['total_in_perimeters']:,} "
                 f"(paper >{t1['paper_total']:,})")
    lines.append("")

    lines.append("## S3.4 — validation")
    v = doc["validation_s34"]
    lines.append(f"accuracy {v['accuracy']:.0%} "
                 f"(paper {v['paper']['accuracy_pct']:.0f}%); "
                 f"misses in LA fires {v['missed_in_la_fires']}"
                 f"/{v['missed']} "
                 f"(paper {v['paper']['missed_in_la_fires']}"
                 f"/{v['paper']['missed']})")
    lines.append("")

    lines.append("## S3.8 — extension")
    e = doc["extension_s38"]
    lines.append(f"VH {e['vh_before']:,} -> {e['vh_after']:,} "
                 f"(paper {e['paper']['vh_before']:,} -> "
                 f"{e['paper']['vh_after']:,}); accuracy "
                 f"{e['accuracy_before']:.0%} -> "
                 f"{e['accuracy_after']:.0%} (paper 46% -> 62%)")
    lines.append("")

    lines.append("## Figure 8 — top states")
    states = doc["figure8"]["states"][:7]
    lines.append(", ".join(f"{s['state']} ({s['moderate'] + s['high'] + s['very_high']:,})"
                           for s in states))
    lines.append(f"paper: "
                 f"{', '.join(doc['figure8']['paper_top_moderate'])}")
    lines.append("")

    lines.append("## Table 2 — providers")
    lines.append("| Provider | At-risk | Fleet |")
    lines.append("|---|---|---|")
    for row in doc["table2"]["rows"]:
        total = row["moderate"] + row["high"] + row["very_high"]
        lines.append(f"| {row['provider']} | {total:,} "
                     f"| {row['fleet_size']:,} |")
    lines.append(f"regional carriers at risk: "
                 f"{doc['table2']['regional_carriers']} (paper 46)")
    lines.append("")

    lines.append("## S3.6 — city very-high counts")
    for city, count in doc["cities_s36"]["counts"].items():
        paper_count = doc["cities_s36"]["paper"].get(city, 0)
        lines.append(f"- {city}: {count:,} (paper {paper_count:,})")
    return "\n".join(lines)
