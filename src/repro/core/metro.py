"""Metro-area analysis: Figures 12–13 and the §3.6 city counts.

Transceivers are attributed to the nearest metro anchor within a fixed
great-circle radius; per-metro at-risk counts by WHP class produce the
Figure 12 ranking, and the §3.6 city-level "WHP very high × county very
dense" counts (Los Angeles 3,547; Miami 1,536; ... Las Vegas 10).

The paper groups San Francisco and San Jose into one Bay-Area entry; we
do the same via ``CITY_GROUPS``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.cities import PAPER_METROS, city_by_name
from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..geo.projection import haversine_m
from .overlay import classify_cells
from .population_impact import population_impact_analysis

__all__ = ["MetroRisk", "metro_risk_analysis", "city_very_high_counts",
           "CITY_GROUPS", "DEFAULT_METRO_RADIUS_M"]

#: Metro assignment radius (~100 km covers a metro's WUI fringe).
DEFAULT_METRO_RADIUS_M = 100_000.0

#: City groupings used in §3.6 (Bay Area combines SF and San Jose).
CITY_GROUPS = {
    "San Francisco/San Jose": ("San Francisco", "San Jose"),
    "Los Angeles": ("Los Angeles",),
    "San Diego": ("San Diego",),
    "Miami": ("Miami", "Fort Lauderdale"),
    "Phoenix": ("Phoenix",),
    "New York City": ("New York City",),
    "Las Vegas": ("Las Vegas",),
}


@dataclass(frozen=True)
class MetroRisk:
    """Per-metro at-risk transceiver counts (scaled)."""

    metro: str
    moderate: int
    high: int
    very_high: int

    @property
    def total(self) -> int:
        return self.moderate + self.high + self.very_high


def _assign_metro(universe: SyntheticUS, metro_names: tuple[str, ...],
                  radius_m: float) -> np.ndarray:
    """Index of the nearest listed metro within radius, else -1."""
    cells = universe.cells
    best_idx = np.full(len(cells), -1, dtype=np.int64)
    best_d = np.full(len(cells), np.inf)
    for i, name in enumerate(metro_names):
        city = city_by_name(name)
        d = haversine_m(cells.lons, cells.lats,
                        np.full(len(cells), city.lon),
                        np.full(len(cells), city.lat))
        closer = (d < best_d) & (d <= radius_m)
        best_idx[closer] = i
        best_d[closer] = d[closer]
    return best_idx


def metro_risk_analysis(universe: SyntheticUS,
                        metros: tuple[str, ...] = PAPER_METROS,
                        radius_m: float = DEFAULT_METRO_RADIUS_M) \
        -> list[MetroRisk]:
    """Figure 12: metros ranked by at-risk transceivers."""
    cells = universe.cells
    classes = classify_cells(cells, universe.whp)
    scale = universe.universe_scale
    metro_idx = _assign_metro(universe, metros, radius_m)

    rows = []
    for i, name in enumerate(metros):
        sub = classes[metro_idx == i]
        rows.append(MetroRisk(
            metro=name,
            moderate=int(round((sub == int(WHPClass.MODERATE)).sum()
                               * scale)),
            high=int(round((sub == int(WHPClass.HIGH)).sum() * scale)),
            very_high=int(round((sub == int(WHPClass.VERY_HIGH)).sum()
                                * scale)),
        ))
    rows.sort(key=lambda r: r.total, reverse=True)
    return rows


def city_very_high_counts(universe: SyntheticUS,
                          radius_m: float = DEFAULT_METRO_RADIUS_M) \
        -> dict[str, int]:
    """§3.6: WHP-VH transceivers in >1.5M counties, grouped by city."""
    impact = population_impact_analysis(universe)
    cells = universe.cells
    scale = universe.universe_scale

    flat_names: list[str] = []
    group_of: list[str] = []
    for group, members in CITY_GROUPS.items():
        for member in members:
            flat_names.append(member)
            group_of.append(group)
    metro_idx = _assign_metro(universe, tuple(flat_names), radius_m)

    counts: dict[str, int] = {g: 0 for g in CITY_GROUPS}
    mask = impact.panel_vh_both_mask
    for i, group in enumerate(group_of):
        raw = int((mask & (metro_idx == i)).sum())
        counts[group] += int(round(raw * scale))
    return counts
