"""Metro-area analysis: Figures 12–13 and the §3.6 city counts.

Transceivers are attributed to the nearest metro anchor within a fixed
great-circle radius; per-metro at-risk counts by WHP class produce the
Figure 12 ranking, and the §3.6 city-level "WHP very high × county very
dense" counts (Los Angeles 3,547; Miami 1,536; ... Las Vegas 10).

The paper groups San Francisco and San Jose into one Bay-Area entry; we
do the same via ``CITY_GROUPS``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.cities import PAPER_METROS, city_by_name
from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..geo.projection import haversine_m
from ..session import artifact, register_stage, session_of

__all__ = ["MetroRisk", "metro_risk_analysis", "city_very_high_counts",
           "CITY_GROUPS", "DEFAULT_METRO_RADIUS_M"]

#: Metro assignment radius (~100 km covers a metro's WUI fringe).
DEFAULT_METRO_RADIUS_M = 100_000.0

#: City groupings used in §3.6 (Bay Area combines SF and San Jose).
CITY_GROUPS = {
    "San Francisco/San Jose": ("San Francisco", "San Jose"),
    "Los Angeles": ("Los Angeles",),
    "San Diego": ("San Diego",),
    "Miami": ("Miami", "Fort Lauderdale"),
    "Phoenix": ("Phoenix",),
    "New York City": ("New York City",),
    "Las Vegas": ("Las Vegas",),
}


@dataclass(frozen=True)
class MetroRisk:
    """Per-metro at-risk transceiver counts (scaled)."""

    metro: str
    moderate: int
    high: int
    very_high: int

    @property
    def total(self) -> int:
        return self.moderate + self.high + self.very_high


def _assign_metro(universe: SyntheticUS, metro_names: tuple[str, ...],
                  radius_m: float) -> np.ndarray:
    """Index of the nearest listed metro within radius, else -1."""
    cells = universe.cells
    best_idx = np.full(len(cells), -1, dtype=np.int64)
    best_d = np.full(len(cells), np.inf)
    for i, name in enumerate(metro_names):
        city = city_by_name(name)
        d = haversine_m(cells.lons, cells.lats,
                        np.full(len(cells), city.lon),
                        np.full(len(cells), city.lat))
        closer = (d < best_d) & (d <= radius_m)
        best_idx[closer] = i
        best_d[closer] = d[closer]
    return best_idx


def metro_risk_analysis(universe: SyntheticUS,
                        metros: tuple[str, ...] = PAPER_METROS,
                        radius_m: float = DEFAULT_METRO_RADIUS_M) \
        -> list[MetroRisk]:
    """Figure 12: metros ranked by at-risk transceivers."""
    return session_of(universe).artifact(
        "metro_risk", metros=tuple(metros), radius_m=radius_m)


def _compute_metro_risk(session, metros: tuple[str, ...],
                        radius_m: float) -> list[MetroRisk]:
    universe = session.universe
    classes = session.artifact("whp_classes")
    scale = universe.universe_scale
    metro_idx = _assign_metro(universe, metros, radius_m)

    rows = []
    for i, name in enumerate(metros):
        sub = classes[metro_idx == i]
        rows.append(MetroRisk(
            metro=name,
            moderate=int(round((sub == int(WHPClass.MODERATE)).sum()
                               * scale)),
            high=int(round((sub == int(WHPClass.HIGH)).sum() * scale)),
            very_high=int(round((sub == int(WHPClass.VERY_HIGH)).sum()
                                * scale)),
        ))
    rows.sort(key=lambda r: r.total, reverse=True)
    return rows


def city_very_high_counts(universe: SyntheticUS,
                          radius_m: float = DEFAULT_METRO_RADIUS_M) \
        -> dict[str, int]:
    """§3.6: WHP-VH transceivers in >1.5M counties, grouped by city."""
    return session_of(universe).artifact("city_vh_counts",
                                         radius_m=radius_m)


def _compute_city_vh_counts(session, radius_m: float) -> dict[str, int]:
    universe = session.universe
    impact = session.artifact("population_impact")
    scale = universe.universe_scale

    flat_names: list[str] = []
    group_of: list[str] = []
    for group, members in CITY_GROUPS.items():
        for member in members:
            flat_names.append(member)
            group_of.append(group)
    metro_idx = _assign_metro(universe, tuple(flat_names), radius_m)

    counts: dict[str, int] = {g: 0 for g in CITY_GROUPS}
    mask = impact.panel_vh_both_mask
    for i, group in enumerate(group_of):
        raw = int((mask & (metro_idx == i)).sum())
        counts[group] += int(round(raw * scale))
    return counts


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("metro_risk", deps=("whp_classes",))
def _metro_risk_artifact(session,
                         metros: tuple[str, ...] = PAPER_METROS,
                         radius_m: float = DEFAULT_METRO_RADIUS_M) \
        -> list[MetroRisk]:
    """Figure 12 metro ranking."""
    return _compute_metro_risk(session, metros, radius_m)


@artifact("city_vh_counts", deps=("population_impact",))
def _city_vh_counts_artifact(
        session, radius_m: float = DEFAULT_METRO_RADIUS_M) \
        -> dict[str, int]:
    """S3.6 per-city WHP-VH x very-dense-county counts."""
    return _compute_city_vh_counts(session, radius_m)


def _export_figure12(session, ctx) -> dict:
    from dataclasses import asdict

    from ..data import paper_constants as paper
    return {
        "figure12": {
            "metros": [asdict(m)
                       for m in session.artifact("metro_risk")],
        },
        "cities_s36": {
            "counts": session.artifact("city_vh_counts"),
            "paper": paper.CITY_VERY_HIGH_COUNTS,
        },
    }


register_stage("fig12", help="metro ranking (Figure 12)",
               paper="Figure 12", artifact="metro_risk",
               render="render_figure12", order=90, domain="figures",
               export=_export_figure12)
