"""Future wildfire risk from climate change (§3.9, Figures 14–15).

Overlays the Salt Lake City–Denver corridor ecoregions (with Littell et
al. projected changes in area burned) with cellular infrastructure and
the current WHP, producing the per-ecoregion exposure table behind
Figures 14 and 15: how many transceivers sit in each ecoregion, how many
of those are already at risk, and what the projected 2040s/2080s change
implies for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.ecoregions import slc_denver_ecoregions, slc_denver_window
from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..session import artifact, register_stage, session_of

__all__ = ["EcoregionExposure", "future_risk_analysis"]


@dataclass(frozen=True)
class EcoregionExposure:
    """One ecoregion's infrastructure exposure (scaled counts)."""

    code: str
    name: str
    delta_2040_pct: float
    delta_2080_pct: float
    transceivers: int
    at_risk_transceivers: int       # currently WHP moderate+
    projected_at_risk_2040: int     # at-risk scaled by (1 + delta)

    @property
    def increasing(self) -> bool:
        return self.delta_2040_pct > 0


def future_risk_analysis(universe: SyntheticUS) -> list[EcoregionExposure]:
    """Per-ecoregion exposure in the SLC–Denver window.

    ``projected_at_risk_2040`` applies the ecoregion's projected change
    in area burned to the currently at-risk count as a first-order
    exposure index (clamped at zero for decreasing regions).
    """
    return session_of(universe).artifact("future_risk")


def _compute_future_risk(session) -> list[EcoregionExposure]:
    universe = session.universe
    cells = universe.cells
    classes = session.artifact("whp_classes")
    scale = universe.universe_scale
    window = slc_denver_window()
    in_window = window.contains_many(cells.lons, cells.lats)

    rows = []
    for region in slc_denver_ecoregions():
        inside = np.zeros(len(cells), dtype=bool)
        idx = np.nonzero(in_window)[0]
        if len(idx):
            hit = region.polygon.contains_many(cells.lons[idx],
                                               cells.lats[idx])
            inside[idx[hit]] = True
        n = int(round(inside.sum() * scale))
        at_risk_raw = int((inside
                           & (classes >= int(WHPClass.MODERATE))).sum())
        at_risk = int(round(at_risk_raw * scale))
        projected = int(round(
            max(at_risk * (1.0 + region.delta_2040_pct / 100.0), 0.0)))
        rows.append(EcoregionExposure(
            code=region.code,
            name=region.name,
            delta_2040_pct=region.delta_2040_pct,
            delta_2080_pct=region.delta_2080_pct,
            transceivers=n,
            at_risk_transceivers=at_risk,
            projected_at_risk_2040=projected,
        ))
    rows.sort(key=lambda r: -r.delta_2040_pct)
    return rows


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("future_risk", deps=("whp_classes",))
def _future_risk_artifact(session) -> list[EcoregionExposure]:
    """S3.9 per-ecoregion exposure in the SLC-Denver window."""
    return _compute_future_risk(session)


def _export_ecoregions(session, ctx) -> dict:
    from dataclasses import asdict

    from ..data import paper_constants as paper
    return {"ecoregions_s39": {
        "rows": [asdict(r) for r in session.artifact("future_risk")],
        "paper_deltas": paper.ECOREGION_DELTAS,
    }}


register_stage("ecoregions", help="SLC-Denver projections (Figs 14-15)",
               paper="Figures 14-15", artifact="future_risk",
               render="render_ecoregions", order=100, domain="figures",
               export=_export_ecoregions)
