"""Risk prioritization and mitigation planning (§3.10).

The paper argues mitigation resources should flow to the sites where
hazard and impact coincide.  This module turns the analyses into an
actionable ranking: a composite risk score per cell *site* combining

* WHP hazard class (likelihood proxy),
* population served (county population — the paper's impact index),
* tenancy (number of transceivers / providers on the site), and
* power-dependence (the §3.2 finding that power loss dominates means
  sites without hardening are scored by their full hazard; a mitigation
  plan credits backup power before vegetation management).

``mitigation_plan`` then allocates a budget of site-hardening actions
greedily by score, reporting expected coverage — the decision-support
output the paper's §3.10 sketches in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..data.universe import SyntheticUS
from ..data.whp import WHPClass
from ..session import artifact, register_stage, session_of

__all__ = ["MitigationAction", "SiteRisk", "rank_sites", "MitigationPlan",
           "mitigation_plan"]

#: Relative hazard weight per WHP class (likelihood proxy).
_HAZARD_WEIGHT = {
    int(WHPClass.NON_BURNABLE): 0.0,
    int(WHPClass.VERY_LOW): 0.05,
    int(WHPClass.LOW): 0.15,
    int(WHPClass.MODERATE): 0.40,
    int(WHPClass.HIGH): 0.70,
    int(WHPClass.VERY_HIGH): 1.00,
}


class MitigationAction(Enum):
    """§3.10's mitigation measures, ordered by the outage categories."""

    BACKUP_POWER = "backup power (solar + battery)"
    VEGETATION_MANAGEMENT = "vegetation management around site"
    FIRE_RESISTANT_MATERIALS = "fire-retardant coatings / materials"
    BACKHAUL_REDUNDANCY = "redundant (wireless) backhaul"


@dataclass(frozen=True)
class SiteRisk:
    """A ranked cell site."""

    site_id: int
    lon: float
    lat: float
    whp_class: int
    n_transceivers: int
    n_providers: int
    county_population: int
    score: float


def rank_sites(universe: SyntheticUS, top_n: int | None = None) \
        -> list[SiteRisk]:
    """Score and rank every at-risk site.

    Score = hazard weight × log10(county population) × tenancy factor.
    """
    sites = session_of(universe).artifact("site_ranking")
    if top_n is not None:
        sites = sites[:top_n]
    return sites


def _compute_site_ranking(session) -> list[SiteRisk]:
    universe = session.universe
    cells = universe.cells
    classes = session.artifact("whp_classes")
    counties = universe.counties
    county_idx = session.artifact("county_assignment")
    county_pops = counties.populations()

    order = np.argsort(cells.site_ids, kind="stable")
    sites: list[SiteRisk] = []
    sid_sorted = cells.site_ids[order]
    boundaries = np.nonzero(np.diff(sid_sorted))[0] + 1
    groups = np.split(order, boundaries)
    for group in groups:
        whp_class = int(classes[group].max())
        hazard = _HAZARD_WEIGHT[whp_class]
        if hazard < _HAZARD_WEIGHT[int(WHPClass.MODERATE)]:
            continue
        ci = county_idx[group[0]]
        pop = int(county_pops[ci]) if ci >= 0 else 10_000
        n_providers = len(np.unique(cells.provider_group[group]))
        tenancy = 1.0 + 0.25 * (n_providers - 1)
        score = hazard * np.log10(max(pop, 10)) * tenancy
        sites.append(SiteRisk(
            site_id=int(cells.site_ids[group[0]]),
            lon=float(cells.lons[group[0]]),
            lat=float(cells.lats[group[0]]),
            whp_class=whp_class,
            n_transceivers=len(group),
            n_providers=n_providers,
            county_population=pop,
            score=float(score),
        ))
    sites.sort(key=lambda s: s.score, reverse=True)
    return sites


@dataclass
class MitigationPlan:
    """A budgeted hardening plan."""

    budget_sites: int
    hardened: list[SiteRisk]
    actions: dict[int, list[MitigationAction]]   # site_id -> actions
    covered_transceivers: int
    covered_population: int


def mitigation_plan(universe: SyntheticUS,
                    budget_sites: int = 100) -> MitigationPlan:
    """Greedy hardening plan over the ranked sites.

    Every hardened site gets backup power first (§3.2: power is the
    dominant threat); very-high-hazard sites additionally get vegetation
    management and fire-resistant materials; multi-tenant sites get
    backhaul redundancy (more users depend on the fiber lateral).
    """
    ranked = rank_sites(universe, top_n=budget_sites)
    actions: dict[int, list[MitigationAction]] = {}
    covered_pop = 0
    covered_tx = 0
    seen_counties: set[int] = set()
    for site in ranked:
        acts = [MitigationAction.BACKUP_POWER]
        if site.whp_class >= int(WHPClass.HIGH):
            acts.append(MitigationAction.VEGETATION_MANAGEMENT)
        if site.whp_class == int(WHPClass.VERY_HIGH):
            acts.append(MitigationAction.FIRE_RESISTANT_MATERIALS)
        if site.n_providers > 1:
            acts.append(MitigationAction.BACKHAUL_REDUNDANCY)
        actions[site.site_id] = acts
        covered_tx += site.n_transceivers
        key = site.county_population
        if key not in seen_counties:
            covered_pop += site.county_population
            seen_counties.add(key)
    return MitigationPlan(
        budget_sites=budget_sites,
        hardened=ranked,
        actions=actions,
        covered_transceivers=covered_tx,
        covered_population=covered_pop,
    )


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("site_ranking", deps=("whp_classes", "county_assignment"))
def _site_ranking_artifact(session) -> list[SiteRisk]:
    """Every at-risk site scored and ranked (S3.10)."""
    return _compute_site_ranking(session)


register_stage("mitigation", help="site hardening ranking (S3.10)",
               paper="§3.10", artifact="site_ranking",
               render="render_mitigation", domain="infrastructure")
