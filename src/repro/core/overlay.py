"""Spatial-join engine: transceivers × fire perimeters / rasters.

This is the computational heart of the paper's methodology (§2.3):
"identifying cell transceiver locations that fall within the perimeters
of all historical wildfires".  The engine joins a point universe against
polygon sets using the uniform-grid index (bbox candidates, then exact
point-in-polygon), and against rasters by vectorized sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.cells import CellUniverse
from ..data.wildfires import FirePerimeter
from ..data.whp import WhpModel

__all__ = ["FireOverlayResult", "overlay_fires", "overlay_fires_bruteforce",
           "classify_cells"]


@dataclass
class FireOverlayResult:
    """Result of joining a transceiver universe with fire perimeters."""

    year: int
    n_fires: int
    in_perimeter_mask: np.ndarray       # bool per transceiver
    per_fire_counts: dict[str, int]     # fire name -> transceivers inside

    @property
    def n_in_perimeter(self) -> int:
        return int(self.in_perimeter_mask.sum())

    def scaled_count(self, universe_scale: float) -> int:
        """Count rescaled to the paper's 5.36M-transceiver universe."""
        return int(round(self.n_in_perimeter * universe_scale))


def overlay_fires(cells: CellUniverse, fires: list[FirePerimeter],
                  year: int | None = None) -> FireOverlayResult:
    """Join transceivers against fire perimeters using the grid index.

    A transceiver inside any perimeter counts once in the mask; per-fire
    counts can overlap (two fires covering one transceiver both count it,
    exactly as a per-fire tally would).
    """
    index = cells.index()
    mask = np.zeros(len(cells), dtype=bool)
    per_fire: dict[str, int] = {}
    for fire in fires:
        hits = index.query_polygon(fire.polygon)
        per_fire[fire.name] = len(hits)
        mask[hits] = True
    return FireOverlayResult(
        year=year if year is not None else (fires[0].year if fires else 0),
        n_fires=len(fires),
        in_perimeter_mask=mask,
        per_fire_counts=per_fire,
    )


def overlay_fires_bruteforce(cells: CellUniverse,
                             fires: list[FirePerimeter],
                             year: int | None = None) -> FireOverlayResult:
    """Reference implementation without the spatial index.

    Used by tests (equivalence oracle) and by the ablation benchmark that
    quantifies what the index buys.
    """
    mask = np.zeros(len(cells), dtype=bool)
    per_fire: dict[str, int] = {}
    for fire in fires:
        inside = fire.polygon.contains_many(cells.lons, cells.lats)
        per_fire[fire.name] = int(inside.sum())
        mask |= inside
    return FireOverlayResult(
        year=year if year is not None else (fires[0].year if fires else 0),
        n_fires=len(fires),
        in_perimeter_mask=mask,
        per_fire_counts=per_fire,
    )


def classify_cells(cells: CellUniverse, whp: WhpModel) -> np.ndarray:
    """WHP class code per transceiver (vectorized raster sampling)."""
    return whp.classify(cells.lons, cells.lats)
