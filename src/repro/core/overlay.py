"""Spatial-join engine: transceivers × fire perimeters / rasters.

This is the computational heart of the paper's methodology (§2.3):
"identifying cell transceiver locations that fall within the perimeters
of all historical wildfires".  The engine joins a point universe against
polygon sets using the uniform-grid index (bbox candidates, then exact
point-in-polygon), and against rasters by vectorized sampling.

Execution is delegated to :mod:`repro.runtime`:

* the adaptive dispatcher (:mod:`repro.runtime.dispatch`) estimates the
  work of each join and stays serial below the measured crossover, so
  requesting workers can never make a join slower;
* above the crossover, the perimeter overlay shards **by fire** over a
  persistent worker pool (:mod:`repro.runtime.pool`).  Workers hold the
  full point universe and build the grid index **once**, on first use,
  then reuse it for every fire of every season of a 19-year sweep; a
  task ships only a slice of the fire list and returns per-fire counts
  plus global hit indices;
* results are memoized in a content-addressed cache keyed by the
  inputs' bytes.

Every path is bit-identical to the serial join: each fire is evaluated
by exactly one worker running the same full-universe index query the
serial loop runs, per-fire counts are reassembled in fire order, and
the mask is the union of exact global hit indices.  ``tests/runtime/``
holds the differential proof.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from ..data.cells import CellUniverse
from ..data.packed import unpack_index
from ..data.whp import WhpModel
from ..data.wildfires import FirePerimeter
from ..geo.index import UniformGridIndex
from ..runtime import (
    cache_key,
    chunk_spans,
    classify_workers,
    get_cache,
    get_config,
    overlay_workers,
    run_tasks,
    use_shared_memory,
)
from ..runtime import shm as _shm
from ..obs.trace import span as trace_span
from ..runtime.stats import STATS
from ..session import StageOption, artifact, register_stage

__all__ = ["FireOverlayResult", "overlay_fires", "overlay_fires_bruteforce",
           "classify_cells", "fires_token"]

#: Default grid-index bucket size, matching :meth:`CellUniverse.index`.
_INDEX_CELL_DEG = 0.25

#: Fire-slices per worker and pool run.  More slices than workers keeps
#: the pool load-balanced when perimeter sizes vary wildly (they do).
_FIRE_SLICES_PER_WORKER = 4


@dataclass
class FireOverlayResult:
    """Result of joining a transceiver universe with fire perimeters."""

    year: int
    n_fires: int
    in_perimeter_mask: np.ndarray       # bool per transceiver
    per_fire_counts: dict[str, int]     # fire name -> transceivers inside

    @property
    def n_in_perimeter(self) -> int:
        return int(self.in_perimeter_mask.sum())

    def scaled_count(self, universe_scale: float) -> int:
        """Count rescaled to the paper's 5.36M-transceiver universe."""
        return int(round(self.n_in_perimeter * universe_scale))


# Per-perimeter content digests, memoized for the life of the fire
# object.  Keyed weakly so discarded seasons do not pin their digests;
# FirePerimeter is frozen, so content cannot drift under the memo.
_FIRE_TOKENS: WeakKeyDictionary = WeakKeyDictionary()


def _fire_token(fire: FirePerimeter) -> bytes:
    token = _FIRE_TOKENS.get(fire)
    if token is None:
        h = hashlib.sha256()
        h.update(fire.name.encode())
        h.update(str(fire.year).encode())
        h.update(fire.polygon.exterior.tobytes())
        for hole in fire.polygon.holes:
            h.update(hole.tobytes())
        token = h.digest()
        _FIRE_TOKENS[fire] = token
    return token


def fires_token(fires: list[FirePerimeter]) -> bytes:
    """Content digest of a fire list (names, years, ring bytes).

    Per-fire digests are memoized, so the 19-year historical sweep stops
    re-hashing megabytes of ring coordinates on every overlay call.
    """
    h = hashlib.sha256()
    for fire in fires:
        h.update(_fire_token(fire))
    return h.digest()


# ----------------------------------------------------------------------
# Worker-process plumbing.  The pool initializer installs the point
# universe once per worker (inherited copy-on-write under fork); the
# grid index is built lazily on the first task and reused for every
# subsequent task of every subsequent call — the pool itself persists
# across overlay_fires calls (see repro.runtime.pool).
# ----------------------------------------------------------------------

_WORKER_STATE: dict | None = None


def _init_overlay_worker(lons, lats, cell_deg) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"lons": lons, "lats": lats, "cell_deg": cell_deg,
                     "index": None}


def _init_overlay_worker_shm(handle) -> None:
    """Shared-memory initializer: store only the (tiny) handle.

    The actual attach happens lazily on the first task: an initializer
    that raises would put the pool into a silent respawn loop, whereas a
    task failure propagates through ``pool.map`` into the runtime's
    serial fallback.
    """
    global _WORKER_STATE
    _WORKER_STATE = {"shm_handle": handle, "index": None}


def _init_classify_worker_shm(handle, whp) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"shm_handle": handle, "whp": whp}


def _worker_arrays() -> dict:
    """The worker's zero-copy view dict, attaching on first use."""
    state = _WORKER_STATE
    arrays = state.get("arrays")
    if arrays is None:
        arrays = _shm.attach_arrays(state["shm_handle"])
        state["arrays"] = arrays
    return arrays


def _worker_index() -> UniformGridIndex:
    state = _WORKER_STATE
    index = state["index"]
    if index is None:
        if "shm_handle" in state:
            # Adopt the parent's pre-built CSR index zero-copy: no
            # coordinate hashing, no argsort, no bucket rebuild.
            index = unpack_index(_worker_arrays())
            STATS.count("pool.worker_index_attach")
        else:
            index = UniformGridIndex(state["lons"], state["lats"],
                                     state["cell_deg"])
            STATS.count("pool.worker_index_builds")
        state["index"] = index
    return index


def _shared_handle(cells: CellUniverse):
    """Shared-memory handle for the universe's pack, or ``None``.

    ``None`` (segment creation failed, or the universe refuses to pack)
    sends the caller down the classic initializer-pickle path.
    """
    try:
        pack = cells.packed(_INDEX_CELL_DEG)
    except ValueError:
        return None
    return _shm.share_arrays(pack.token, pack.arrays)


def _overlay_fires_task(fires: list[FirePerimeter]):
    """Join a slice of the fire list against the worker-resident index.

    Returns per-fire hit counts (slice order), the concatenated global
    hit indices, and the worker's stats delta.
    """
    before = STATS.snapshot()
    with trace_span("overlay.chunk", n_fires=len(fires)) as sp:
        index = _worker_index()
        counts = np.zeros(len(fires), dtype=np.int64)
        hit_chunks = []
        for i, fire in enumerate(fires):
            hits = index.query_polygon(fire.polygon)
            counts[i] = len(hits)
            hit_chunks.append(hits)
        hits = np.concatenate(hit_chunks) if hit_chunks \
            else np.empty(0, dtype=np.int64)
        sp.set(hits=int(counts.sum()))
    return counts, hits, STATS.delta_since(before)


def _init_classify_worker(lons, lats, whp) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"lons": lons, "lats": lats, "whp": whp}


def _classify_task(span: tuple[int, int]):
    start, stop = span
    state = _WORKER_STATE
    if "shm_handle" in state:
        arrays = _worker_arrays()
        lons, lats = arrays["lons"], arrays["lats"]
    else:
        lons, lats = state["lons"], state["lats"]
    before = STATS.snapshot()
    with trace_span("classify.chunk", start=start, stop=stop):
        classes = state["whp"].classify(lons[start:stop],
                                        lats[start:stop])
    return classes, STATS.delta_since(before)


# ----------------------------------------------------------------------
# Public joins
# ----------------------------------------------------------------------

def overlay_fires(cells: CellUniverse, fires: list[FirePerimeter],
                  year: int | None = None, *,
                  workers: int | None = None,
                  chunk_size: int | None = None,
                  use_cache: bool | None = None) -> FireOverlayResult:
    """Join transceivers against fire perimeters using the grid index.

    A transceiver inside any perimeter counts once in the mask; per-fire
    counts can overlap (two fires covering one transceiver both count it,
    exactly as a per-fire tally would).

    ``workers``/``chunk_size``/``use_cache`` override the global
    :class:`repro.runtime.RuntimeConfig` for this call.  ``workers`` is
    a *request*: the adaptive dispatcher resolves it against the
    estimated work and the machine's core budget, and falls back to the
    strictly-serial path whenever parallelism could not win.
    """
    cfg = get_config()
    if workers is None:
        workers = cfg.workers
    if use_cache is None:
        use_cache = cfg.cache_enabled
    resolved_year = year if year is not None else (
        fires[0].year if fires else 0)

    key = None
    if use_cache:
        key = cache_key(b"overlay_fires/v1", cells.content_token(),
                        fires_token(fires), resolved_year)
        entry = get_cache().get(key)
        if entry is not None:
            return _decode_overlay(entry)

    with trace_span("overlay_fires", year=resolved_year,
                    n_points=len(cells), n_fires=len(fires)) as sp:
        with STATS.timer("overlay_fires"):
            eff_workers = overlay_workers(workers, len(cells),
                                          len(fires))
            sp.set(workers=eff_workers)
            if eff_workers > 1:
                result = _overlay_parallel(cells, fires, resolved_year,
                                           eff_workers)
            else:
                result = _overlay_serial(cells, fires, resolved_year)

    if use_cache and key is not None:
        get_cache().put(key, _encode_overlay(result))
    return result


def _overlay_serial(cells: CellUniverse, fires: list[FirePerimeter],
                    year: int) -> FireOverlayResult:
    index = cells.index()
    mask = np.zeros(len(cells), dtype=bool)
    per_fire: dict[str, int] = {}
    for fire in fires:
        hits = index.query_polygon(fire.polygon)
        per_fire[fire.name] = len(hits)
        mask[hits] = True
    return FireOverlayResult(year=year, n_fires=len(fires),
                             in_perimeter_mask=mask,
                             per_fire_counts=per_fire)


def _overlay_parallel(cells: CellUniverse, fires: list[FirePerimeter],
                      year: int, workers: int) -> FireOverlayResult:
    """Fire-sharded parallel overlay on the persistent universe pool.

    Each task is a contiguous slice of the fire list; each fire is
    evaluated by exactly one worker against the same full-universe index
    the serial path queries, so results are bit-identical by
    construction (not merely by concatenation order).
    """
    slice_size = max(1, -(-len(fires) //
                          (workers * _FIRE_SLICES_PER_WORKER)))
    spans = chunk_spans(len(fires), slice_size)
    tasks = [fires[lo:hi] for lo, hi in spans]
    initializer, initargs = _init_overlay_worker, \
        (cells.lons, cells.lats, _INDEX_CELL_DEG)
    if use_shared_memory(len(cells)):
        handle = _shared_handle(cells)
        if handle is not None:
            initializer, initargs = _init_overlay_worker_shm, (handle,)
    results = run_tasks(
        "overlay", workers, cells.content_token(),
        _overlay_fires_task, tasks,
        initializer=initializer, initargs=initargs)
    if results is None:
        return _overlay_serial(cells, fires, year)

    mask = np.zeros(len(cells), dtype=bool)
    counts = np.concatenate([r[0] for r in results]) if results \
        else np.empty(0, dtype=np.int64)
    for _, hits, delta in results:
        mask[hits] = True
        STATS.merge(delta)
    per_fire = {fire.name: int(counts[i]) for i, fire in enumerate(fires)}
    return FireOverlayResult(year=year, n_fires=len(fires),
                             in_perimeter_mask=mask,
                             per_fire_counts=per_fire)


def overlay_fires_bruteforce(cells: CellUniverse,
                             fires: list[FirePerimeter],
                             year: int | None = None) -> FireOverlayResult:
    """Reference implementation without the spatial index.

    Used by tests (equivalence oracle) and by the ablation benchmark that
    quantifies what the index buys.  Never parallel, never cached.
    """
    mask = np.zeros(len(cells), dtype=bool)
    per_fire: dict[str, int] = {}
    for fire in fires:
        inside = fire.polygon.contains_many(cells.lons, cells.lats)
        per_fire[fire.name] = int(inside.sum())
        mask |= inside
    return FireOverlayResult(
        year=year if year is not None else (fires[0].year if fires else 0),
        n_fires=len(fires),
        in_perimeter_mask=mask,
        per_fire_counts=per_fire,
    )


def classify_cells(cells: CellUniverse, whp: WhpModel, *,
                   workers: int | None = None,
                   chunk_size: int | None = None,
                   use_cache: bool | None = None) -> np.ndarray:
    """WHP class code per transceiver (vectorized raster sampling).

    Sharded over the persistent worker pool for very large universes and
    memoized like :func:`overlay_fires`; the sampling itself is exact
    per point, so every path returns identical codes.
    """
    cfg = get_config()
    if workers is None:
        workers = cfg.workers
    if chunk_size is None:
        chunk_size = cfg.chunk_size
    if use_cache is None:
        use_cache = cfg.cache_enabled

    key = None
    if use_cache:
        key = cache_key(b"classify_cells/v1", cells.content_token(),
                        whp.content_token())
        entry = get_cache().get(key)
        if entry is not None:
            return entry["classes"]

    with trace_span("classify_cells", n_points=len(cells)) as sp:
        with STATS.timer("classify_cells"):
            eff_workers = classify_workers(workers, len(cells),
                                           chunk_size)
            sp.set(workers=eff_workers)
            classes = None
            if eff_workers > 1:
                spans = chunk_spans(len(cells), chunk_size)
                token = cells.content_token() + whp.content_token()
                initializer, initargs = _init_classify_worker, \
                    (cells.lons, cells.lats, whp)
                if use_shared_memory(len(cells)):
                    handle = _shared_handle(cells)
                    if handle is not None:
                        initializer, initargs = \
                            _init_classify_worker_shm, (handle, whp)
                results = run_tasks(
                    "classify", eff_workers, token, _classify_task,
                    spans, initializer=initializer, initargs=initargs)
                if results is not None:
                    for _, delta in results:
                        STATS.merge(delta)
                    classes = np.concatenate([c[0] for c in results])
            if classes is None:
                classes = whp.classify(cells.lons, cells.lats)

    if use_cache and key is not None:
        get_cache().put(key, {"classes": classes})
    return classes


# ----------------------------------------------------------------------
# Session artifacts: the two shared primitives of the analysis DAG.
# Every analysis that needs the WHP classification or a season's
# perimeter join fetches these through the session, so each is invoked
# exactly once per session regardless of how many stages consume it.
# The wrappers call the module-level functions by name (late-bound), so
# tests can spy on `overlay.classify_cells` / `overlay.overlay_fires`.
# ----------------------------------------------------------------------

@artifact("whp_classes",
          doc="WHP class code per transceiver (classify_cells)")
def _whp_classes_artifact(session) -> np.ndarray:
    universe = session.universe
    return classify_cells(universe.cells, universe.whp)


@artifact("season_overlay",
          doc="one year's transceiver x fire-perimeter join")
def _season_overlay_artifact(session, year: int = 2019) \
        -> FireOverlayResult:
    universe = session.universe
    return overlay_fires(universe.cells, universe.fire_season(year).fires,
                         year=year)


# Direct CLI surface for the raw perimeter join (the paper-scale smoke
# job drives it standalone).  ``order=None`` keeps it out of
# ``repro all`` — the historical sweep already covers every season.
register_stage("season_overlay",
               help="one season's raw perimeter join",
               paper="§2.3", artifact="season_overlay",
               render="render_season_overlay", order=None,
               options=(StageOption("--year", type=int, default=2019),),
               params=("year",))


# ----------------------------------------------------------------------
# Cache payload encoding
# ----------------------------------------------------------------------

def _encode_overlay(result: FireOverlayResult) -> dict:
    names = list(result.per_fire_counts)
    return {
        "mask": result.in_perimeter_mask,
        "counts": np.array([result.per_fire_counts[n] for n in names],
                           dtype=np.int64),
        "names": np.array(names, dtype=np.str_),
        "meta": np.array([result.year, result.n_fires], dtype=np.int64),
    }


def _decode_overlay(entry: dict) -> FireOverlayResult:
    names = [str(n) for n in entry["names"]]
    counts = entry["counts"]
    return FireOverlayResult(
        year=int(entry["meta"][0]),
        n_fires=int(entry["meta"][1]),
        in_perimeter_mask=np.asarray(entry["mask"], dtype=bool),
        per_fire_counts={n: int(c) for n, c in zip(names, counts)},
    )
