"""Spatial-join engine: transceivers × hazard footprints / rasters.

This is the computational heart of the paper's methodology (§2.3):
"identifying cell transceiver locations that fall within the perimeters
of all historical wildfires".  The engine joins a point universe against
polygon sets using the uniform-grid index (bbox candidates, then exact
point-in-polygon), and against rasters by vectorized sampling.

The engine is hazard-agnostic: it consumes events through the
structural :class:`~repro.hazard.base.HazardEvent` shape (``name`` /
``year`` / ``polygon``) and intensity surfaces through
:class:`~repro.hazard.base.IntensitySurface` (``classify`` /
``content_token``), resolved from the hazard registry by the session
artifacts' canonical ``hazard=`` parameter (default ``"wildfire"`` —
the paper's peril, byte-identical to the pre-protocol path).  The
``fire``/``whp`` vocabulary below is kept for the dominant instance;
nothing in the code requires fire-shaped inputs.

Execution is delegated to :mod:`repro.runtime`:

* the adaptive dispatcher (:mod:`repro.runtime.dispatch`) estimates the
  work of each join and stays serial below the measured crossover, so
  requesting workers can never make a join slower;
* above the crossover, the perimeter overlay shards **by fire** over a
  persistent worker pool (:mod:`repro.runtime.pool`).  Workers hold the
  full point universe and build the grid index **once**, on first use,
  then reuse it for every fire of every season of a 19-year sweep; a
  task ships only a slice of the fire list and returns per-fire counts
  plus global hit indices;
* results are memoized in a content-addressed cache keyed by the
  inputs' bytes.

Every path is bit-identical to the serial join: each fire is evaluated
by exactly one worker running the same full-universe index query the
serial loop runs, per-fire counts are reassembled in fire order, and
the mask is the union of exact global hit indices.  ``tests/runtime/``
holds the differential proof.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING
from weakref import WeakKeyDictionary

import numpy as np

from ..data.cells import CellUniverse
from ..data.packed import unpack_index
from ..geo.index import UniformGridIndex
from ..runtime import (
    cache_key,
    chunk_spans,
    classify_workers,
    delta_workers,
    get_cache,
    get_config,
    overlay_workers,
    run_tasks,
    use_shared_memory,
)
from ..runtime import shm as _shm
from ..obs.trace import span as trace_span
from ..runtime.stats import STATS
from ..session import StageOption, artifact, register_stage

if TYPE_CHECKING:
    from ..hazard.base import HazardEvent, IntensitySurface

__all__ = ["FireOverlayResult", "FireDelta", "overlay_fires",
           "overlay_fires_bruteforce", "update_overlay", "empty_overlay",
           "classify_cells", "fires_token"]

#: Default grid-index bucket size, matching :meth:`CellUniverse.index`.
_INDEX_CELL_DEG = 0.25

#: Fire-slices per worker and pool run.  More slices than workers keeps
#: the pool load-balanced when perimeter sizes vary wildly (they do).
_FIRE_SLICES_PER_WORKER = 4


@dataclass
class FireOverlayResult:
    """Result of joining a transceiver universe with fire perimeters.

    ``per_fire_hits`` (populated by ``keep_hits=True``) carries each
    fire's exact hit indices — the *answered footprint* the incremental
    engine hands back to :meth:`UniformGridIndex.query_polygon_delta`
    so a later tick re-tests only dirty buckets.  ``None`` means the
    footprints were not retained; :func:`update_overlay` then falls
    back to full queries for the affected fires (still bit-identical,
    just without the skip).
    """

    year: int
    n_fires: int
    in_perimeter_mask: np.ndarray       # bool per transceiver
    per_fire_counts: dict[str, int]     # fire name -> transceivers inside
    per_fire_hits: dict[str, np.ndarray] | None = None

    @property
    def n_in_perimeter(self) -> int:
        return int(self.in_perimeter_mask.sum())

    def scaled_count(self, universe_scale: float) -> int:
        """Count rescaled to the paper's 5.36M-transceiver universe."""
        return int(round(self.n_in_perimeter * universe_scale))


@dataclass(frozen=True)
class FireDelta:
    """One mutated fire front: the perimeter as of the current tick.

    ``fire.name`` identifies the fire.  A name already present in the
    previous overlay is a **growth** delta — its polygon must contain
    the previous perimeter (a fire front only spreads); an unknown
    name is an **ignition** and joins the season.
    """

    fire: HazardEvent


# Per-event content digests, memoized for the life of the event
# object.  Keyed weakly so discarded seasons do not pin their digests;
# event dataclasses are frozen, so content cannot drift under the memo.
_FIRE_TOKENS: WeakKeyDictionary = WeakKeyDictionary()


def _fire_token(fire: HazardEvent) -> bytes:
    token = _FIRE_TOKENS.get(fire)
    if token is None:
        h = hashlib.sha256()
        h.update(fire.name.encode())
        h.update(str(fire.year).encode())
        h.update(fire.polygon.exterior.tobytes())
        for hole in fire.polygon.holes:
            h.update(hole.tobytes())
        token = h.digest()
        _FIRE_TOKENS[fire] = token
    return token


def fires_token(fires: list[HazardEvent]) -> bytes:
    """Content digest of a fire list (names, years, ring bytes).

    Per-fire digests are memoized, so the 19-year historical sweep stops
    re-hashing megabytes of ring coordinates on every overlay call.
    """
    h = hashlib.sha256()
    for fire in fires:
        h.update(_fire_token(fire))
    return h.digest()


# ----------------------------------------------------------------------
# Worker-process plumbing.  The pool initializer installs the point
# universe once per worker (inherited copy-on-write under fork); the
# grid index is built lazily on the first task and reused for every
# subsequent task of every subsequent call — the pool itself persists
# across overlay_fires calls (see repro.runtime.pool).
# ----------------------------------------------------------------------

_WORKER_STATE: dict | None = None


def _init_overlay_worker(lons, lats, cell_deg) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"lons": lons, "lats": lats, "cell_deg": cell_deg,
                     "index": None}


def _init_overlay_worker_shm(handle) -> None:
    """Shared-memory initializer: store only the (tiny) handle.

    The actual attach happens lazily on the first task: an initializer
    that raises would put the pool into a silent respawn loop, whereas a
    task failure propagates through ``pool.map`` into the runtime's
    serial fallback.
    """
    global _WORKER_STATE
    _WORKER_STATE = {"shm_handle": handle, "index": None}


def _init_classify_worker_shm(handle, whp) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"shm_handle": handle, "whp": whp}


def _worker_arrays() -> dict:
    """The worker's zero-copy view dict, attaching on first use."""
    state = _WORKER_STATE
    arrays = state.get("arrays")
    if arrays is None:
        arrays = _shm.attach_arrays(state["shm_handle"])
        state["arrays"] = arrays
    return arrays


def _worker_index() -> UniformGridIndex:
    state = _WORKER_STATE
    index = state["index"]
    if index is None:
        if "shm_handle" in state:
            # Adopt the parent's pre-built CSR index zero-copy: no
            # coordinate hashing, no argsort, no bucket rebuild.
            index = unpack_index(_worker_arrays())
            STATS.count("pool.worker_index_attach")
        else:
            index = UniformGridIndex(state["lons"], state["lats"],
                                     state["cell_deg"])
            STATS.count("pool.worker_index_builds")
        state["index"] = index
    return index


def _shared_handle(cells: CellUniverse):
    """Shared-memory handle for the universe's pack, or ``None``.

    ``None`` (segment creation failed, or the universe refuses to pack)
    sends the caller down the classic initializer-pickle path.
    """
    try:
        pack = cells.packed(_INDEX_CELL_DEG)
    except ValueError:
        return None
    return _shm.share_arrays(pack.token, pack.arrays)


def _overlay_fires_task(fires: list[HazardEvent]):
    """Join a slice of the fire list against the worker-resident index.

    Returns per-fire hit counts (slice order), the concatenated global
    hit indices, and the worker's stats delta.
    """
    before = STATS.snapshot()
    with trace_span("overlay.chunk", n_fires=len(fires)) as sp:
        index = _worker_index()
        counts = np.zeros(len(fires), dtype=np.int64)
        hit_chunks = []
        for i, fire in enumerate(fires):
            hits = index.query_polygon(fire.polygon)
            counts[i] = len(hits)
            hit_chunks.append(hits)
        hits = np.concatenate(hit_chunks) if hit_chunks \
            else np.empty(0, dtype=np.int64)
        sp.set(hits=int(counts.sum()))
    return counts, hits, STATS.delta_since(before)


def _delta_overlay_task(items: list):
    """Delta-join a slice of ``(fire, prev_hits)`` pairs.

    Same shape as :func:`_overlay_fires_task` — per-fire hit counts in
    slice order, concatenated global hit indices, worker stats delta —
    but each fire with an answered footprint runs the dirty-bucket
    delta query instead of the full polygon query.
    """
    before = STATS.snapshot()
    with trace_span("overlay.delta_chunk", n_deltas=len(items)) as sp:
        index = _worker_index()
        counts = np.zeros(len(items), dtype=np.int64)
        hit_chunks = []
        for i, (fire, prev_hits) in enumerate(items):
            if prev_hits is None:
                hits = index.query_polygon(fire.polygon)
            else:
                hits = index.query_polygon_delta(fire.polygon, prev_hits)
            counts[i] = len(hits)
            hit_chunks.append(hits)
        hits = np.concatenate(hit_chunks) if hit_chunks \
            else np.empty(0, dtype=np.int64)
        sp.set(hits=int(counts.sum()))
    return counts, hits, STATS.delta_since(before)


def _init_classify_worker(lons, lats, whp) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"lons": lons, "lats": lats, "whp": whp}


def _classify_task(span: tuple[int, int]):
    start, stop = span
    state = _WORKER_STATE
    if "shm_handle" in state:
        arrays = _worker_arrays()
        lons, lats = arrays["lons"], arrays["lats"]
    else:
        lons, lats = state["lons"], state["lats"]
    before = STATS.snapshot()
    with trace_span("classify.chunk", start=start, stop=stop):
        classes = state["whp"].classify(lons[start:stop],
                                        lats[start:stop])
    return classes, STATS.delta_since(before)


# ----------------------------------------------------------------------
# Public joins
# ----------------------------------------------------------------------

def overlay_fires(cells: CellUniverse, fires: list[HazardEvent],
                  year: int | None = None, *,
                  workers: int | None = None,
                  chunk_size: int | None = None,
                  use_cache: bool | None = None,
                  keep_hits: bool = False) -> FireOverlayResult:
    """Join transceivers against fire perimeters using the grid index.

    A transceiver inside any perimeter counts once in the mask; per-fire
    counts can overlap (two fires covering one transceiver both count it,
    exactly as a per-fire tally would).

    ``workers``/``chunk_size``/``use_cache`` override the global
    :class:`repro.runtime.RuntimeConfig` for this call.  ``workers`` is
    a *request*: the adaptive dispatcher resolves it against the
    estimated work and the machine's core budget, and falls back to the
    strictly-serial path whenever parallelism could not win.

    ``keep_hits=True`` additionally retains each fire's exact hit
    indices (``per_fire_hits``), the answered footprints
    :func:`update_overlay` needs to run incremental ticks.  Masks and
    counts are unaffected; cached entries are keyed separately because
    the payload differs.
    """
    cfg = get_config()
    if workers is None:
        workers = cfg.workers
    if use_cache is None:
        use_cache = cfg.cache_enabled
    resolved_year = year if year is not None else (
        fires[0].year if fires else 0)

    key = None
    if use_cache:
        version = b"overlay_fires/v2+hits" if keep_hits \
            else b"overlay_fires/v1"
        key = cache_key(version, cells.content_token(),
                        fires_token(fires), resolved_year)
        entry = get_cache().get(key)
        if entry is not None:
            return _decode_overlay(entry)

    with trace_span("overlay_fires", year=resolved_year,
                    n_points=len(cells), n_fires=len(fires)) as sp:
        with STATS.timer("overlay_fires"):
            eff_workers = overlay_workers(workers, len(cells),
                                          len(fires))
            sp.set(workers=eff_workers)
            if eff_workers > 1:
                result = _overlay_parallel(cells, fires, resolved_year,
                                           eff_workers, keep_hits)
            else:
                result = _overlay_serial(cells, fires, resolved_year,
                                         keep_hits)

    if use_cache and key is not None:
        get_cache().put(key, _encode_overlay(result))
    return result


def _overlay_serial(cells: CellUniverse, fires: list[HazardEvent],
                    year: int, keep_hits: bool = False) \
        -> FireOverlayResult:
    index = cells.index()
    mask = np.zeros(len(cells), dtype=bool)
    per_fire: dict[str, int] = {}
    hits_map: dict[str, np.ndarray] | None = {} if keep_hits else None
    for fire in fires:
        hits = index.query_polygon(fire.polygon)
        per_fire[fire.name] = len(hits)
        if hits_map is not None:
            hits_map[fire.name] = hits
        mask[hits] = True
    return FireOverlayResult(year=year, n_fires=len(fires),
                             in_perimeter_mask=mask,
                             per_fire_counts=per_fire,
                             per_fire_hits=hits_map)


def _overlay_parallel(cells: CellUniverse, fires: list[HazardEvent],
                      year: int, workers: int,
                      keep_hits: bool = False) -> FireOverlayResult:
    """Fire-sharded parallel overlay on the persistent universe pool.

    Each task is a contiguous slice of the fire list; each fire is
    evaluated by exactly one worker against the same full-universe index
    the serial path queries, so results are bit-identical by
    construction (not merely by concatenation order).
    """
    slice_size = max(1, -(-len(fires) //
                          (workers * _FIRE_SLICES_PER_WORKER)))
    spans = chunk_spans(len(fires), slice_size)
    tasks = [fires[lo:hi] for lo, hi in spans]
    initializer, initargs = _overlay_pool_init(cells)
    results = run_tasks(
        "overlay", workers, cells.content_token(),
        _overlay_fires_task, tasks,
        initializer=initializer, initargs=initargs)
    if results is None:
        return _overlay_serial(cells, fires, year, keep_hits)

    mask = np.zeros(len(cells), dtype=bool)
    counts = np.concatenate([r[0] for r in results]) if results \
        else np.empty(0, dtype=np.int64)
    pieces: list[np.ndarray] = []
    for slice_counts, hits, delta in results:
        mask[hits] = True
        STATS.merge(delta)
        if keep_hits:
            pieces.extend(np.split(hits,
                                   np.cumsum(slice_counts)[:-1]))
    per_fire = {fire.name: int(counts[i]) for i, fire in enumerate(fires)}
    hits_map = {fire.name: pieces[i] for i, fire in enumerate(fires)} \
        if keep_hits else None
    return FireOverlayResult(year=year, n_fires=len(fires),
                             in_perimeter_mask=mask,
                             per_fire_counts=per_fire,
                             per_fire_hits=hits_map)


def _overlay_pool_init(cells: CellUniverse):
    """(initializer, initargs) for the shared universe pool."""
    initializer, initargs = _init_overlay_worker, \
        (cells.lons, cells.lats, _INDEX_CELL_DEG)
    if use_shared_memory(len(cells)):
        handle = _shared_handle(cells)
        if handle is not None:
            initializer, initargs = _init_overlay_worker_shm, (handle,)
    return initializer, initargs


def empty_overlay(cells: CellUniverse, year: int, *,
                  keep_hits: bool = False) -> FireOverlayResult:
    """A no-fires overlay — the tick-zero state of an incident fold."""
    return FireOverlayResult(
        year=year, n_fires=0,
        in_perimeter_mask=np.zeros(len(cells), dtype=bool),
        per_fire_counts={},
        per_fire_hits={} if keep_hits else None)


def update_overlay(cells: CellUniverse, prev: FireOverlayResult,
                   deltas: list[FireDelta], *,
                   workers: int | None = None,
                   keep_hits: bool = True) -> FireOverlayResult:
    """Advance an overlay by one tick of fire-front deltas.

    Produces the exact result a from-scratch :func:`overlay_fires`
    would on the updated fire list (changed perimeters replaced in
    place, ignitions appended) — pinned bit-for-bit by the
    differential suite in ``tests/stream/`` — while touching only the
    *dirty* grid buckets of the changed fires:

    * a grown fire with an answered footprint in ``prev.per_fire_hits``
      runs :meth:`UniformGridIndex.query_polygon_delta`, skipping every
      fully-answered bucket and every already-answered candidate;
    * an ignition (or a fire whose footprint was not retained) runs the
      ordinary full polygon query;
    * unchanged fires are not touched at all — their counts, hit
      footprints, and mask contribution carry over.

    The mask update relies on monotone growth (``prev`` hits stay
    hits), the same contract ``query_polygon_delta`` documents.  Large
    dirty sets dispatch through the persistent pool/shm machinery
    (``delta_workers`` crossover); small ticks run serially.
    """
    cfg = get_config()
    if workers is None:
        workers = cfg.workers
    if not deltas:
        return prev
    prev_hits_map = prev.per_fire_hits or {}
    items = [(d.fire, prev_hits_map.get(d.fire.name)) for d in deltas]

    with trace_span("update_overlay", year=prev.year,
                    n_points=len(cells), n_deltas=len(deltas)) as sp:
        with STATS.timer("update_overlay"):
            eff_workers = delta_workers(workers, len(cells),
                                        len(deltas))
            sp.set(workers=eff_workers)
            fire_hits = None
            if eff_workers > 1:
                fire_hits = _update_parallel(cells, items, eff_workers)
            if fire_hits is None:
                fire_hits = _update_serial(cells, items)

    mask = prev.in_perimeter_mask.copy()
    per_fire = dict(prev.per_fire_counts)
    hits_map = dict(prev_hits_map) if keep_hits else None
    n_fires = prev.n_fires
    for delta, hits in zip(deltas, fire_hits):
        name = delta.fire.name
        if name not in per_fire:
            n_fires += 1
        mask[hits] = True
        per_fire[name] = len(hits)
        if hits_map is not None:
            hits_map[name] = hits
    return FireOverlayResult(year=prev.year, n_fires=n_fires,
                             in_perimeter_mask=mask,
                             per_fire_counts=per_fire,
                             per_fire_hits=hits_map)


def _update_serial(cells: CellUniverse, items: list) -> list[np.ndarray]:
    index = cells.index()
    out = []
    for fire, prev_hits in items:
        if prev_hits is None:
            out.append(index.query_polygon(fire.polygon))
        else:
            out.append(index.query_polygon_delta(fire.polygon,
                                                 prev_hits))
    return out


def _update_parallel(cells: CellUniverse, items: list,
                     workers: int) -> list[np.ndarray] | None:
    """Delta-sharded parallel tick on the persistent universe pool.

    Reuses the warm ``overlay`` pool (same name, same universe token)
    so a tick after a batch overlay ships only its delta slices; the
    pool-failure fallback returns ``None`` and the caller runs the
    identical queries serially.
    """
    slice_size = max(1, -(-len(items) //
                          (workers * _FIRE_SLICES_PER_WORKER)))
    spans = chunk_spans(len(items), slice_size)
    tasks = [items[lo:hi] for lo, hi in spans]
    initializer, initargs = _overlay_pool_init(cells)
    results = run_tasks(
        "overlay", workers, cells.content_token(),
        _delta_overlay_task, tasks,
        initializer=initializer, initargs=initargs)
    if results is None:
        return None
    out: list[np.ndarray] = []
    for counts, hits, delta in results:
        STATS.merge(delta)
        out.extend(np.split(hits, np.cumsum(counts)[:-1]))
    return out


def overlay_fires_bruteforce(cells: CellUniverse,
                             fires: list[HazardEvent],
                             year: int | None = None, *,
                             keep_hits: bool = False) \
        -> FireOverlayResult:
    """Reference implementation without the spatial index.

    Used by tests (equivalence oracle) and by the ablation benchmark that
    quantifies what the index buys.  Never parallel, never cached.
    """
    mask = np.zeros(len(cells), dtype=bool)
    per_fire: dict[str, int] = {}
    hits_map: dict[str, np.ndarray] | None = {} if keep_hits else None
    for fire in fires:
        inside = fire.polygon.contains_many(cells.lons, cells.lats)
        per_fire[fire.name] = int(inside.sum())
        if hits_map is not None:
            hits_map[fire.name] = np.nonzero(inside)[0]
        mask |= inside
    return FireOverlayResult(
        year=year if year is not None else (fires[0].year if fires else 0),
        n_fires=len(fires),
        in_perimeter_mask=mask,
        per_fire_counts=per_fire,
        per_fire_hits=hits_map,
    )


def classify_cells(cells: CellUniverse, whp: IntensitySurface, *,
                   workers: int | None = None,
                   chunk_size: int | None = None,
                   use_cache: bool | None = None) -> np.ndarray:
    """WHP class code per transceiver (vectorized raster sampling).

    Sharded over the persistent worker pool for very large universes and
    memoized like :func:`overlay_fires`; the sampling itself is exact
    per point, so every path returns identical codes.
    """
    cfg = get_config()
    if workers is None:
        workers = cfg.workers
    if chunk_size is None:
        chunk_size = cfg.chunk_size
    if use_cache is None:
        use_cache = cfg.cache_enabled

    key = None
    if use_cache:
        key = cache_key(b"classify_cells/v1", cells.content_token(),
                        whp.content_token())
        entry = get_cache().get(key)
        if entry is not None:
            return entry["classes"]

    with trace_span("classify_cells", n_points=len(cells)) as sp:
        with STATS.timer("classify_cells"):
            eff_workers = classify_workers(workers, len(cells),
                                           chunk_size)
            sp.set(workers=eff_workers)
            classes = None
            if eff_workers > 1:
                spans = chunk_spans(len(cells), chunk_size)
                token = cells.content_token() + whp.content_token()
                initializer, initargs = _init_classify_worker, \
                    (cells.lons, cells.lats, whp)
                if use_shared_memory(len(cells)):
                    handle = _shared_handle(cells)
                    if handle is not None:
                        initializer, initargs = \
                            _init_classify_worker_shm, (handle, whp)
                results = run_tasks(
                    "classify", eff_workers, token, _classify_task,
                    spans, initializer=initializer, initargs=initargs)
                if results is not None:
                    for _, delta in results:
                        STATS.merge(delta)
                    classes = np.concatenate([c[0] for c in results])
            if classes is None:
                classes = whp.classify(cells.lons, cells.lats)

    if use_cache and key is not None:
        get_cache().put(key, {"classes": classes})
    return classes


# ----------------------------------------------------------------------
# Session artifacts: the two shared primitives of the analysis DAG.
# Every analysis that needs the WHP classification or a season's
# perimeter join fetches these through the session, so each is invoked
# exactly once per session regardless of how many stages consume it.
# The wrappers call the module-level functions by name (late-bound), so
# tests can spy on `overlay.classify_cells` / `overlay.overlay_fires`.
# ----------------------------------------------------------------------

@artifact("whp_classes",
          doc="intensity class code per transceiver (classify_cells)")
def _whp_classes_artifact(session, hazard: str = "wildfire") \
        -> np.ndarray:
    from ..hazard.registry import get_hazard
    universe = session.universe
    # The wildfire instance returns universe.whp itself, so the default
    # parameterization is byte-identical to the pre-protocol builder.
    surface = get_hazard(hazard).intensity(universe)
    return classify_cells(universe.cells, surface)


@artifact("season_overlay",
          doc="one year's transceiver x hazard-event join")
def _season_overlay_artifact(session, year: int = 2019,
                             hazard: str = "wildfire") \
        -> FireOverlayResult:
    from ..hazard.registry import get_hazard
    universe = session.universe
    # For "wildfire" the event list is the season's own fires list
    # object, keeping the per-fire digest memo and cache keys intact.
    events = get_hazard(hazard).event_set(universe, year).events
    return overlay_fires(universe.cells, events, year=year)


def _run_season_overlay(session, args) -> str:
    from ..core.report import render_season_overlay
    from ..hazard.registry import get_hazard
    hazard = getattr(args, "hazard", None) or "wildfire"
    try:
        get_hazard(hazard)
    except KeyError as exc:
        raise SystemExit(f"repro season_overlay: {exc.args[0]}")
    result = session.artifact("season_overlay",
                              year=getattr(args, "year", None) or 2019,
                              hazard=hazard)
    return render_season_overlay(result)


# Direct CLI surface for the raw event join (the paper-scale smoke
# job drives it standalone).  ``order=None`` keeps it out of
# ``repro all`` — the historical sweep already covers every season.
register_stage("season_overlay",
               help="one season's raw hazard-event join",
               paper="§2.3", artifact="season_overlay",
               render="render_season_overlay", order=None,
               domain="engine", run=_run_season_overlay,
               options=(StageOption("--year", type=int, default=2019),
                        StageOption("--hazard", type=str,
                                    default="wildfire",
                                    help="hazard instance to join "
                                         "(wildfire/grid_fire/wind)")),
               params=("year", "hazard"))


# ----------------------------------------------------------------------
# Cache payload encoding
# ----------------------------------------------------------------------

def _encode_overlay(result: FireOverlayResult) -> dict:
    names = list(result.per_fire_counts)
    entry = {
        "mask": result.in_perimeter_mask,
        "counts": np.array([result.per_fire_counts[n] for n in names],
                           dtype=np.int64),
        "names": np.array(names, dtype=np.str_),
        "meta": np.array([result.year, result.n_fires], dtype=np.int64),
    }
    if result.per_fire_hits is not None:
        # Footprints concatenated in name order; the counts array is
        # the split table (each fire's hit count == its footprint len).
        hits = [result.per_fire_hits[n] for n in names]
        entry["hits"] = np.concatenate(hits) if hits \
            else np.empty(0, dtype=np.int64)
    return entry


def _decode_overlay(entry: dict) -> FireOverlayResult:
    names = [str(n) for n in entry["names"]]
    counts = entry["counts"]
    hits_map = None
    if "hits" in entry:
        pieces = np.split(np.asarray(entry["hits"], dtype=np.int64),
                          np.cumsum(counts)[:-1])
        hits_map = dict(zip(names, pieces))
    return FireOverlayResult(
        year=int(entry["meta"][0]),
        n_fires=int(entry["meta"][1]),
        in_perimeter_mask=np.asarray(entry["mask"], dtype=bool),
        per_fire_counts={n: int(c) for n, c in zip(names, counts)},
        per_fire_hits=hits_map,
    )
