"""Spatial-join engine: transceivers × fire perimeters / rasters.

This is the computational heart of the paper's methodology (§2.3):
"identifying cell transceiver locations that fall within the perimeters
of all historical wildfires".  The engine joins a point universe against
polygon sets using the uniform-grid index (bbox candidates, then exact
point-in-polygon), and against rasters by vectorized sampling.

Execution is delegated to :mod:`repro.runtime`: the point universe is
sharded into contiguous chunks mapped over worker processes
(``REPRO_WORKERS``), and results are memoized in a content-addressed
cache keyed by the inputs' bytes.  Both paths are bit-identical to the
serial single-chunk join — chunk predicates are exact per-point tests
and chunk results concatenate in order; ``tests/runtime/`` holds the
differential proof.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..data.cells import CellUniverse
from ..data.whp import WhpModel
from ..data.wildfires import FirePerimeter
from ..geo.index import UniformGridIndex
from ..runtime import (
    cache_key,
    chunk_spans,
    get_cache,
    get_config,
    parallel_map,
)
from ..runtime.stats import STATS

__all__ = ["FireOverlayResult", "overlay_fires", "overlay_fires_bruteforce",
           "classify_cells", "fires_token"]

#: Default grid-index bucket size, matching :meth:`CellUniverse.index`.
_INDEX_CELL_DEG = 0.25


@dataclass
class FireOverlayResult:
    """Result of joining a transceiver universe with fire perimeters."""

    year: int
    n_fires: int
    in_perimeter_mask: np.ndarray       # bool per transceiver
    per_fire_counts: dict[str, int]     # fire name -> transceivers inside

    @property
    def n_in_perimeter(self) -> int:
        return int(self.in_perimeter_mask.sum())

    def scaled_count(self, universe_scale: float) -> int:
        """Count rescaled to the paper's 5.36M-transceiver universe."""
        return int(round(self.n_in_perimeter * universe_scale))


def fires_token(fires: list[FirePerimeter]) -> bytes:
    """Content digest of a fire list (names, years, ring bytes)."""
    h = hashlib.sha256()
    for fire in fires:
        h.update(fire.name.encode())
        h.update(str(fire.year).encode())
        h.update(fire.polygon.exterior.tobytes())
        for hole in fire.polygon.holes:
            h.update(hole.tobytes())
    return h.digest()


# ----------------------------------------------------------------------
# Worker-process plumbing.  State is installed once per worker by the
# pool initializer (inherited copy-on-write under fork), so tasks are
# just (start, stop) spans.
# ----------------------------------------------------------------------

_WORKER_STATE: tuple | None = None


def _init_overlay_worker(lons, lats, fires, cell_deg) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (lons, lats, fires, cell_deg)


def _overlay_chunk(span: tuple[int, int]):
    """Join one contiguous point chunk against every fire."""
    start, stop = span
    lons, lats, fires, cell_deg = _WORKER_STATE
    before = STATS.snapshot()
    index = UniformGridIndex(lons[start:stop], lats[start:stop], cell_deg)
    mask = np.zeros(stop - start, dtype=bool)
    counts = np.zeros(len(fires), dtype=np.int64)
    for i, fire in enumerate(fires):
        hits = index.query_polygon(fire.polygon)
        counts[i] = len(hits)
        mask[hits] = True
    return mask, counts, STATS.delta_since(before)


def _init_classify_worker(lons, lats, whp) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (lons, lats, whp)


def _classify_chunk(span: tuple[int, int]):
    start, stop = span
    lons, lats, whp = _WORKER_STATE
    before = STATS.snapshot()
    classes = whp.classify(lons[start:stop], lats[start:stop])
    return classes, STATS.delta_since(before)


# ----------------------------------------------------------------------
# Public joins
# ----------------------------------------------------------------------

def overlay_fires(cells: CellUniverse, fires: list[FirePerimeter],
                  year: int | None = None, *,
                  workers: int | None = None,
                  chunk_size: int | None = None,
                  use_cache: bool | None = None) -> FireOverlayResult:
    """Join transceivers against fire perimeters using the grid index.

    A transceiver inside any perimeter counts once in the mask; per-fire
    counts can overlap (two fires covering one transceiver both count it,
    exactly as a per-fire tally would).

    ``workers``/``chunk_size``/``use_cache`` override the global
    :class:`repro.runtime.RuntimeConfig` for this call.
    """
    cfg = get_config()
    if workers is None:
        workers = cfg.workers
    if chunk_size is None:
        chunk_size = cfg.chunk_size
    if use_cache is None:
        use_cache = cfg.cache_enabled
    resolved_year = year if year is not None else (
        fires[0].year if fires else 0)

    key = None
    if use_cache:
        key = cache_key(b"overlay_fires/v1", cells.content_token(),
                        fires_token(fires), resolved_year)
        entry = get_cache().get(key)
        if entry is not None:
            return _decode_overlay(entry)

    with STATS.timer("overlay_fires"):
        eff_workers = _effective(workers, len(cells), chunk_size)
        if eff_workers > 1:
            result = _overlay_parallel(cells, fires, resolved_year,
                                       eff_workers, chunk_size)
        else:
            result = _overlay_serial(cells, fires, resolved_year)

    if use_cache and key is not None:
        get_cache().put(key, _encode_overlay(result))
    return result


def _effective(workers: int, n_points: int, chunk_size: int) -> int:
    from ..runtime.config import MIN_PARALLEL_POINTS
    if workers <= 1 or n_points < MIN_PARALLEL_POINTS:
        return 1
    n_chunks = -(-n_points // chunk_size)
    return max(1, min(workers, n_chunks))


def _overlay_serial(cells: CellUniverse, fires: list[FirePerimeter],
                    year: int) -> FireOverlayResult:
    index = cells.index()
    mask = np.zeros(len(cells), dtype=bool)
    per_fire: dict[str, int] = {}
    for fire in fires:
        hits = index.query_polygon(fire.polygon)
        per_fire[fire.name] = len(hits)
        mask[hits] = True
    return FireOverlayResult(year=year, n_fires=len(fires),
                             in_perimeter_mask=mask,
                             per_fire_counts=per_fire)


def _overlay_parallel(cells: CellUniverse, fires: list[FirePerimeter],
                      year: int, workers: int,
                      chunk_size: int) -> FireOverlayResult:
    spans = chunk_spans(len(cells), chunk_size)
    chunks = parallel_map(
        _overlay_chunk, spans, workers,
        initializer=_init_overlay_worker,
        initargs=(cells.lons, cells.lats, fires, _INDEX_CELL_DEG))
    mask = np.concatenate([c[0] for c in chunks]) if chunks \
        else np.zeros(0, dtype=bool)
    counts = np.zeros(len(fires), dtype=np.int64)
    for _, chunk_counts, delta in chunks:
        counts += chunk_counts
        STATS.merge(delta)
    per_fire = {fire.name: int(counts[i]) for i, fire in enumerate(fires)}
    return FireOverlayResult(year=year, n_fires=len(fires),
                             in_perimeter_mask=mask,
                             per_fire_counts=per_fire)


def overlay_fires_bruteforce(cells: CellUniverse,
                             fires: list[FirePerimeter],
                             year: int | None = None) -> FireOverlayResult:
    """Reference implementation without the spatial index.

    Used by tests (equivalence oracle) and by the ablation benchmark that
    quantifies what the index buys.  Never parallel, never cached.
    """
    mask = np.zeros(len(cells), dtype=bool)
    per_fire: dict[str, int] = {}
    for fire in fires:
        inside = fire.polygon.contains_many(cells.lons, cells.lats)
        per_fire[fire.name] = int(inside.sum())
        mask |= inside
    return FireOverlayResult(
        year=year if year is not None else (fires[0].year if fires else 0),
        n_fires=len(fires),
        in_perimeter_mask=mask,
        per_fire_counts=per_fire,
    )


def classify_cells(cells: CellUniverse, whp: WhpModel, *,
                   workers: int | None = None,
                   chunk_size: int | None = None,
                   use_cache: bool | None = None) -> np.ndarray:
    """WHP class code per transceiver (vectorized raster sampling).

    Sharded over worker processes for large universes and memoized like
    :func:`overlay_fires`; the sampling itself is exact per point, so
    every path returns identical codes.
    """
    cfg = get_config()
    if workers is None:
        workers = cfg.workers
    if chunk_size is None:
        chunk_size = cfg.chunk_size
    if use_cache is None:
        use_cache = cfg.cache_enabled

    key = None
    if use_cache:
        key = cache_key(b"classify_cells/v1", cells.content_token(),
                        whp.content_token())
        entry = get_cache().get(key)
        if entry is not None:
            return entry["classes"]

    with STATS.timer("classify_cells"):
        eff_workers = _effective(workers, len(cells), chunk_size)
        if eff_workers > 1:
            spans = chunk_spans(len(cells), chunk_size)
            chunks = parallel_map(
                _classify_chunk, spans, eff_workers,
                initializer=_init_classify_worker,
                initargs=(cells.lons, cells.lats, whp))
            for _, delta in chunks:
                STATS.merge(delta)
            classes = np.concatenate([c[0] for c in chunks])
        else:
            classes = whp.classify(cells.lons, cells.lats)

    if use_cache and key is not None:
        get_cache().put(key, {"classes": classes})
    return classes


# ----------------------------------------------------------------------
# Cache payload encoding
# ----------------------------------------------------------------------

def _encode_overlay(result: FireOverlayResult) -> dict:
    names = list(result.per_fire_counts)
    return {
        "mask": result.in_perimeter_mask,
        "counts": np.array([result.per_fire_counts[n] for n in names],
                           dtype=np.int64),
        "names": np.array(names, dtype=np.str_),
        "meta": np.array([result.year, result.n_fires], dtype=np.int64),
    }


def _decode_overlay(entry: dict) -> FireOverlayResult:
    names = [str(n) for n in entry["names"]]
    counts = entry["counts"]
    return FireOverlayResult(
        year=int(entry["meta"][0]),
        n_fires=int(entry["meta"][1]),
        in_perimeter_mask=np.asarray(entry["mask"], dtype=bool),
        per_fire_counts={n: int(c) for n, c in zip(names, counts)},
    )
