"""The synthetic US: one object wiring every substrate together.

:class:`SyntheticUS` builds (lazily, with per-configuration caching) the
population surface, the WHP raster, the transceiver universe, the county
layer and the per-year fire seasons, with the shared parameters
(placement exponent, urban half-saturation) kept consistent across
components — the calibration of the WHP class thresholds depends on
that consistency.

Scale is controlled by ``n_transceivers``.  Tests use ~20k, benchmarks
~150k; results are reported both raw and rescaled to the paper's
5,364,949-transceiver universe via :attr:`CellUniverse.universe_scale`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .cells import PAPER_TRANSCEIVER_COUNT, CellUniverse, generate_cells
from .counties import CountyLayer, build_counties
from .dirs import DirsSimulation, simulate_dirs
from .population import PopulationSurface
from .whp import WhpModel, build_whp
from .wildfires import FireSeason, generate_2019_season, generate_fire_season

__all__ = ["UniverseConfig", "SyntheticUS", "default_universe",
           "small_universe", "SCALE_PRESETS", "scale_config",
           "universe_for_scale"]


@dataclass(frozen=True)
class UniverseConfig:
    """Reproducible configuration for a synthetic US."""

    n_transceivers: int = 150_000
    seed: int = 20_190_722
    pop_resolution_deg: float = 0.1
    whp_resolution_deg: float = 0.05
    placement_exponent: float = 0.85
    urban_halfsat: float = 50_000.0
    mean_per_site: float = 5.6


class SyntheticUS:
    """Lazily-built synthetic United States.

    Every component is built at most once per instance; instances are
    cheap until a component is touched.
    """

    def __init__(self, config: UniverseConfig | None = None):
        self.config = config or UniverseConfig()
        self._population: PopulationSurface | None = None
        self._whp: WhpModel | None = None
        self._cells: CellUniverse | None = None
        self._counties: CountyLayer | None = None
        self._seasons: dict[int, FireSeason] = {}
        self._dirs: DirsSimulation | None = None
        self._validation_cells: dict[int, CellUniverse] = {}

    # ------------------------------------------------------------------
    @property
    def population(self) -> PopulationSurface:
        if self._population is None:
            self._population = PopulationSurface(
                resolution_deg=self.config.pop_resolution_deg)
        return self._population

    @property
    def whp(self) -> WhpModel:
        if self._whp is None:
            self._whp = build_whp(
                self.population,
                seed=self.config.seed + 1,
                resolution_deg=self.config.whp_resolution_deg,
                placement_exponent=self.config.placement_exponent,
                urban_halfsat=self.config.urban_halfsat,
            )
        return self._whp

    @property
    def cells(self) -> CellUniverse:
        if self._cells is None:
            self._cells = generate_cells(
                self.population,
                n_transceivers=self.config.n_transceivers,
                seed=self.config.seed + 2,
                placement_exponent=self.config.placement_exponent,
                mean_per_site=self.config.mean_per_site,
                urban_halfsat=self.config.urban_halfsat,
            )
        return self._cells

    @property
    def counties(self) -> CountyLayer:
        if self._counties is None:
            self._counties = build_counties(self.population)
        return self._counties

    def fire_season(self, year: int) -> FireSeason:
        """The fire season for a year (2019 includes the scripted fires)."""
        if year not in self._seasons:
            if year == 2019:
                self._seasons[year] = generate_2019_season(
                    self.whp, seed=self.config.seed + 19)
            else:
                self._seasons[year] = generate_fire_season(
                    year, self.whp, seed=self.config.seed + year)
        return self._seasons[year]

    def validation_cells(self, oversample: int = 8) -> CellUniverse:
        """A denser transceiver sample for low-variance validation.

        The §3.4 validation counts transceivers inside 2019 perimeters —
        a ~1e-4 tail event, far too rare at test scale.  This draws an
        ``oversample``-times larger universe (same generator, distinct
        seed) purely for that estimate; fractions are unbiased and counts
        are rescaled by the matching factor.
        """
        key = int(oversample)
        if key not in self._validation_cells:
            self._validation_cells[key] = generate_cells(
                self.population,
                n_transceivers=self.config.n_transceivers * key,
                seed=self.config.seed + 7,
                placement_exponent=self.config.placement_exponent,
                mean_per_site=self.config.mean_per_site,
                urban_halfsat=self.config.urban_halfsat,
            )
        return self._validation_cells[key]

    @property
    def dirs(self) -> DirsSimulation:
        """The 2019 California DIRS case-study simulation."""
        if self._dirs is None:
            self._dirs = simulate_dirs(
                self.cells, self.fire_season(2019).fires,
                seed=self.config.seed + 3)
        return self._dirs

    @property
    def universe_scale(self) -> float:
        return self.cells.universe_scale


@lru_cache(maxsize=4)
def _cached_universe(config: UniverseConfig) -> SyntheticUS:
    return SyntheticUS(config)


def default_universe() -> SyntheticUS:
    """The benchmark-scale universe (~150k transceivers), cached."""
    return _cached_universe(UniverseConfig())


def small_universe(n_transceivers: int = 20_000,
                   seed: int = 20_190_722) -> SyntheticUS:
    """A test-scale universe (coarser WHP grid, fewer transceivers)."""
    return _cached_universe(UniverseConfig(
        n_transceivers=n_transceivers,
        seed=seed,
        whp_resolution_deg=0.1,
    ))


#: Named universe scales for the `--scale` CLI knob and the stratified
#: test tier.  "paper" is the full 5,364,949-transceiver OpenCelliD
#: snapshot on a 0.01-degree WHP grid — the compute-budget equivalent of
#: the paper's 270 m raster (a literal 0.0025-degree CONUS grid would be
#: ~245M cells / ~20 GB and is out of reach for the synthetic pipeline).
SCALE_PRESETS: dict[str, UniverseConfig] = {
    "tiny": UniverseConfig(n_transceivers=20_000, whp_resolution_deg=0.1),
    "seed": UniverseConfig(),
    "paper": UniverseConfig(n_transceivers=PAPER_TRANSCEIVER_COUNT,
                            whp_resolution_deg=0.01),
}


def scale_config(scale: str) -> UniverseConfig:
    """The :class:`UniverseConfig` behind a named scale."""
    try:
        return SCALE_PRESETS[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from "
            f"{sorted(SCALE_PRESETS)}") from None


def universe_for_scale(scale: str) -> SyntheticUS:
    """The (cached) synthetic US at a named scale."""
    return _cached_universe(scale_config(scale))
