"""Contiguous column packs for zero-copy worker sharing.

A :class:`PackedCells` is the flat-array image of a
:class:`~repro.data.cells.CellUniverse` plus its spatial index: every
column re-laid as one contiguous numpy array at a pinned dtype, suitable
for copying into a ``multiprocessing.shared_memory`` segment and
re-adopting on the worker side without pickling or rebuilding.

Dtype ledger
------------
``PACK_DTYPES`` pins the on-segment dtype of every column.  Coordinates
stay **float64**: the point-in-polygon kernel compares raw coordinate
values, and a float32 round-trip would perturb points near polygon
edges — the pack must be bit-identical on unpack, so narrowing the
coordinate columns is explicitly rejected.  Integer columns narrow where
the value range provably allows it (``site_ids`` drops to int32 only
when its max fits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo.index import UniformGridIndex

__all__ = ["PackedCells", "PACK_DTYPES", "pack_cells", "unpack_cells",
           "unpack_index"]

#: Pinned on-segment dtype per column (site_ids adapts, see pack_cells).
PACK_DTYPES = {
    "lons": np.float64,
    "lats": np.float64,
    "mcc": np.int32,
    "mnc": np.int32,
    "provider_group": np.int8,
    "radio": np.int8,
}

#: Pack keys carrying the serialized spatial index (UniformGridIndex
#: .to_arrays() payload) rather than a universe column.
INDEX_PREFIX = "index."


@dataclass(frozen=True)
class PackedCells:
    """Flat-array image of a universe and its index.

    ``arrays`` maps column name -> contiguous ndarray; index arrays are
    stored under the ``index.`` prefix.  ``token`` is the source
    universe's content token, used to key shared-memory segments and
    warm pools.
    """

    arrays: dict[str, np.ndarray] = field(repr=False)
    cell_deg: float
    token: bytes

    def __len__(self) -> int:
        return len(self.arrays["lons"])

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.arrays.values())


def pack_cells(cells, cell_deg: float = 0.25) -> PackedCells:
    """Pack a universe (and its index) into contiguous pinned arrays."""
    arrays: dict[str, np.ndarray] = {}
    for name, dtype in PACK_DTYPES.items():
        col = getattr(cells, name)
        packed = np.ascontiguousarray(col, dtype=dtype)
        if not np.array_equal(packed, col):
            raise ValueError(f"column {name} not lossless at "
                             f"{np.dtype(dtype).name}")
        arrays[name] = packed
    sids = cells.site_ids
    if len(sids) and (sids.min() < np.iinfo(np.int32).min
                      or sids.max() > np.iinfo(np.int32).max):
        arrays["site_ids"] = np.ascontiguousarray(sids, dtype=np.int64)
    else:
        arrays["site_ids"] = np.ascontiguousarray(sids, dtype=np.int32)
    for name, arr in cells.index(cell_deg).to_arrays().items():
        arrays[INDEX_PREFIX + name] = arr
    return PackedCells(arrays=arrays, cell_deg=cell_deg,
                       token=cells.content_token())


def unpack_cells(packed: PackedCells | dict[str, np.ndarray]):
    """Rebuild a :class:`CellUniverse` from a pack (or raw array dict).

    The reconstructed universe adopts the pack's coordinate arrays
    as-is (they may be shared-memory views) and restores ``site_ids``
    to its canonical int64.
    """
    from .cells import CellUniverse

    arrays = packed.arrays if isinstance(packed, PackedCells) else packed
    return CellUniverse(
        lons=arrays["lons"],
        lats=arrays["lats"],
        site_ids=arrays["site_ids"].astype(np.int64, copy=False),
        mcc=arrays["mcc"],
        mnc=arrays["mnc"],
        provider_group=arrays["provider_group"],
        radio=arrays["radio"],
    )


def unpack_index(packed: PackedCells | dict[str, np.ndarray]) \
        -> UniformGridIndex:
    """Adopt the pack's serialized spatial index without rebuilding."""
    arrays = packed.arrays if isinstance(packed, PackedCells) else packed
    index_arrays = {name[len(INDEX_PREFIX):]: arr
                    for name, arr in arrays.items()
                    if name.startswith(INDEX_PREFIX)}
    if not index_arrays:
        raise ValueError("pack carries no index arrays")
    return UniformGridIndex.from_arrays(index_arrays)
