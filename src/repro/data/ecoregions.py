"""Bailey-style ecoregions for the Salt Lake City–Denver corridor (§3.9).

Littell et al. (2018) project mid-century changes in annual area burned
per ecoregion; the paper overlays 13 ecoregions between Salt Lake City
and Denver with cellular infrastructure and the WHP (Figures 14–15),
highlighting the +240% ecoregion that Interstate 80 crosses and the
−119% ecoregion on the I-70 route through the Colorado Rockies.

We embed 13 ecoregion polygons that exactly partition the same window,
with the paper's published deltas (+240%, +132%, +43%, −119%) attached
to the correspondingly-located regions.  Shapes are simplified
rectangles following the basin/range/plateau structure; what matters for
the analysis is the partition of the corridor and each piece's delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..geo.geometry import BBox, Polygon

__all__ = ["Ecoregion", "slc_denver_window", "slc_denver_ecoregions",
           "ecoregion_at"]


@dataclass(frozen=True)
class Ecoregion:
    """An ecoregion with its projected change in annual area burned."""

    code: str
    name: str
    polygon: Polygon
    delta_2040_pct: float   # projected % change in area burned, 2040s
    delta_2080_pct: float   # projected % change in area burned, 2080s


def slc_denver_window() -> BBox:
    """The Figure 14/15 analysis window."""
    return BBox(-113.2, 38.0, -104.0, 42.2)


def _rect(min_lon, min_lat, max_lon, max_lat) -> Polygon:
    return Polygon([(min_lon, min_lat), (max_lon, min_lat),
                    (max_lon, max_lat), (min_lon, max_lat)])


# 13 ecoregions exactly tiling the window (column/row splits shared so
# the rectangles partition it with no gaps or overlaps).
_TABLE = [
    ("341A", "Bonneville Basin", (-113.2, 38.0, -112.2, 42.2), 43.0, 61.0),
    ("M331E", "Wasatch Plateau", (-112.2, 38.0, -111.2, 40.8), 96.0, 140.0),
    ("342B", "Northern Wasatch Front", (-112.2, 40.8, -111.2, 42.2),
     178.0, 230.0),
    ("342C", "Green River Basin (I-80 corridor)",
     (-111.2, 40.8, -107.4, 42.2), 240.0, 305.0),
    ("342D", "Great Divide Basin", (-107.4, 40.8, -104.0, 42.2),
     132.0, 180.0),
    ("M341C", "Canyonlands", (-111.2, 38.0, -109.4, 39.2), 47.0, 70.0),
    ("342E", "Uinta Basin", (-111.2, 39.2, -109.4, 40.0), 58.0, 85.0),
    ("M331D", "Uinta Mountains", (-111.2, 40.0, -109.4, 40.8),
     132.0, 175.0),
    ("M331G", "South-Central Highlands", (-109.4, 38.0, -107.4, 39.2),
     88.0, 120.0),
    ("342G", "White River Plateau", (-109.4, 39.2, -107.4, 40.8),
     52.0, 75.0),
    ("M331F", "Southern Colorado Plateaus", (-107.4, 38.0, -105.6, 39.2),
     66.0, 95.0),
    ("M331I", "Northern Colorado Rockies (I-70 corridor)",
     (-107.4, 39.2, -105.6, 40.8), -119.0, -80.0),
    ("M331H", "Colorado Front Range", (-105.6, 38.0, -104.0, 40.8),
     74.0, 110.0),
]


@lru_cache(maxsize=1)
def slc_denver_ecoregions() -> tuple[Ecoregion, ...]:
    """The 13 corridor ecoregions (cached)."""
    regions = tuple(
        Ecoregion(code=code, name=name, polygon=_rect(*rect),
                  delta_2040_pct=d40, delta_2080_pct=d80)
        for code, name, rect, d40, d80 in _TABLE)
    codes = {r.code for r in regions}
    if len(codes) != len(regions):
        raise ValueError("duplicate ecoregion codes")
    return regions


def ecoregion_at(lon: float, lat: float) -> Ecoregion | None:
    """The ecoregion containing a point, or None outside the window."""
    for region in slc_denver_ecoregions():
        if region.polygon.contains(lon, lat):
            return region
    return None
