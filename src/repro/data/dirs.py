"""FCC DIRS outage-report simulator (2019 California case study, §3.2).

The FCC activated the Disaster Information Reporting System for 37
California counties from 25 October to 1 November 2019 while PG&E ran
Public Safety Power Shutoffs (PSPS) and the Kincade/Getty fires burned.
We simulate the system the reports describe:

* counties get PSPS de-energization windows (start day, duration),
* a fraction of each de-energized county's cell sites loses grid power;
  on-site batteries last hours, not days, so at daily resolution a
  de-energized site is *out* (the paper's central finding: >80% of
  outages were power, not damage),
* sites inside fire perimeters can be damaged (out for the whole window
  and beyond) and nearby fiber laterals can be cut (backhaul outages,
  repaired in a couple of days),
* restorations follow the PSPS windows, so outages fall off after the
  peak but do not reach zero by 1 November.

Daily outputs mirror the DIRS summary: sites out by cause.  The
calibration targets are the paper's anchors — peak 874 sites out on
28 Oct (702 = 80% power), 110 still out on 1 Nov including 21 damaged —
expressed as *fractions* of the region's sites so they scale with the
synthetic universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..geo.geometry import BBox
from .cells import CellUniverse
from .wildfires import FirePerimeter

__all__ = ["OutageCause", "DirsDailyReport", "DirsSimulation",
           "simulate_dirs", "DIRS_REPORT_DAYS", "DIRS_REGION"]

#: Reporting days: 25 October .. 1 November 2019 (day-of-year 298..305).
DIRS_REPORT_DAYS = tuple(range(298, 306))

#: The 37-county DIRS activation region (Northern & Southern CA).
DIRS_REGION = BBox(-124.4, 32.5, -118.0, 42.0)


class OutageCause(IntEnum):
    """FCC outage categories, §3.2."""

    POWER = 0
    BACKHAUL = 1
    DAMAGE = 2


@dataclass(frozen=True)
class DirsDailyReport:
    """One day's DIRS summary."""

    doy: int
    sites_out_power: int
    sites_out_backhaul: int
    sites_out_damage: int

    @property
    def sites_out_total(self) -> int:
        return (self.sites_out_power + self.sites_out_backhaul
                + self.sites_out_damage)


@dataclass
class DirsSimulation:
    """Full simulation output."""

    reports: list[DirsDailyReport]
    n_region_sites: int
    #: lon/lat of every region site and whether it was ever out
    site_lons: "np.ndarray | None" = None
    site_lats: "np.ndarray | None" = None
    ever_out: "np.ndarray | None" = None

    def peak(self) -> DirsDailyReport:
        return max(self.reports, key=lambda r: r.sites_out_total)

    def final(self) -> DirsDailyReport:
        return self.reports[-1]

    def scaled_reports(self, universe_scale: float) -> list[dict]:
        """Reports rescaled to the paper's 5.36M-transceiver universe."""
        out = []
        for r in self.reports:
            out.append({
                "doy": r.doy,
                "power": int(round(r.sites_out_power * universe_scale)),
                "backhaul": int(round(r.sites_out_backhaul
                                      * universe_scale)),
                "damage": int(round(r.sites_out_damage * universe_scale)),
            })
        return out


def simulate_dirs(cells: CellUniverse, fires: list[FirePerimeter],
                  seed: int = 25,
                  psps_site_fraction: float = 0.014,
                  backhaul_fraction: float = 0.004,
                  damage_fraction_in_perimeter: float = 0.08) \
        -> DirsSimulation:
    """Run the daily outage simulation.

    Parameters
    ----------
    cells:
        The transceiver universe; sites within :data:`DIRS_REGION`
        participate.
    fires:
        2019 fire perimeters (the Kincade-like fire drives damage).
    psps_site_fraction:
        Fraction of region sites de-energized at the event peak
        (0.029 reproduces the paper's scaled peak of ~874 sites).
    backhaul_fraction:
        Fraction of region sites losing fiber backhaul during the event.
    damage_fraction_in_perimeter:
        Probability a site inside an active fire perimeter is damaged.
    """
    rng = np.random.default_rng(seed)

    in_region = DIRS_REGION.contains_many(cells.lons, cells.lats)
    region_sites, site_first = np.unique(cells.site_ids[in_region],
                                         return_index=True)
    region_idx = np.nonzero(in_region)[0][site_first]
    site_lons = cells.lons[region_idx]
    site_lats = cells.lats[region_idx]
    n_sites = len(region_sites)
    if n_sites == 0:
        return DirsSimulation(
            reports=[DirsDailyReport(d, 0, 0, 0) for d in DIRS_REPORT_DAYS],
            n_region_sites=0,
            site_lons=np.empty(0), site_lats=np.empty(0),
            ever_out=np.empty(0, dtype=bool))

    # --- PSPS power outages -------------------------------------------
    # Each affected site gets a de-energization window.  Windows cluster
    # so that the aggregate peaks on 28 October (doy 301), as observed.
    n_psps = int(round(n_sites * psps_site_fraction / 0.8))
    psps_sites = rng.choice(n_sites, size=min(n_psps, n_sites),
                            replace=False)
    # Window starts weighted toward the first event days; durations 1-5
    # days with a tail (some sites stayed out the whole period).
    start_choices = np.array([298, 299, 300, 301, 302])
    start_weights = np.array([0.10, 0.18, 0.27, 0.33, 0.12])
    starts = rng.choice(start_choices, size=len(psps_sites),
                        p=start_weights)
    durations = 1 + rng.geometric(0.42, size=len(psps_sites))
    power_out = np.zeros((len(DIRS_REPORT_DAYS), n_sites), dtype=bool)
    for k, doy in enumerate(DIRS_REPORT_DAYS):
        active = (starts <= doy) & (doy < starts + durations)
        power_out[k, psps_sites] = active

    # --- fire damage ---------------------------------------------------
    damaged = np.zeros(n_sites, dtype=bool)
    damage_start = np.full(n_sites, 10_000)
    for fire in fires:
        if fire.year != 2019:
            continue
        inside = fire.polygon.contains_many(site_lons, site_lats)
        candidates = np.nonzero(inside)[0]
        if len(candidates) == 0:
            continue
        hit = candidates[rng.random(len(candidates))
                         < damage_fraction_in_perimeter]
        damaged[hit] = True
        damage_start[hit] = np.minimum(damage_start[hit],
                                       max(fire.start_doy, 298))

    # --- backhaul cuts ---------------------------------------------------
    n_backhaul = int(round(n_sites * backhaul_fraction))
    backhaul_sites = rng.choice(n_sites, size=min(n_backhaul, n_sites),
                                replace=False)
    bh_starts = rng.choice(np.array([299, 300, 301]),
                           size=len(backhaul_sites))
    bh_durations = 1 + rng.geometric(0.5, size=len(backhaul_sites))

    backhaul_out = np.zeros((len(DIRS_REPORT_DAYS), n_sites), dtype=bool)
    for k, doy in enumerate(DIRS_REPORT_DAYS):
        active = (bh_starts <= doy) & (doy < bh_starts + bh_durations)
        backhaul_out[k, backhaul_sites] = active

    # --- daily reports (damage dominates other causes for a site) ------
    reports = []
    ever_out = np.zeros(n_sites, dtype=bool)
    for k, doy in enumerate(DIRS_REPORT_DAYS):
        dmg = damaged & (damage_start <= doy)
        pwr = power_out[k] & ~dmg
        bh = backhaul_out[k] & ~dmg & ~pwr
        ever_out |= dmg | pwr | bh
        reports.append(DirsDailyReport(
            doy=doy,
            sites_out_power=int(pwr.sum()),
            sites_out_backhaul=int(bh.sum()),
            sites_out_damage=int(dmg.sum()),
        ))
    return DirsSimulation(reports=reports, n_region_sites=n_sites,
                          site_lons=site_lons, site_lats=site_lats,
                          ever_out=ever_out)
