"""Synthetic cell-transceiver universe (OpenCelliD substitute).

The OpenCelliD snapshot the paper uses has 5,364,949 transceivers in the
conterminous US.  Analyses only consume per-transceiver (lon, lat,
MCC/MNC, radio type); we generate those with the spatial and categorical
structure the paper's results depend on:

* sites sampled from the population surface with a flattening exponent
  (cell sites are less concentrated than people, §2.2.3 / Figure 2),
* 1–12 transceivers per site (multi-tenant towers; the paper infers
  towers from co-located transceivers),
* provider mix with per-provider rural/urban footprint biases (Table 2),
* technology mix per provider with a rural LTE tilt (Table 3),
* ~100 m location jitter mimicking OpenCelliD's triangulation error.

Storage is struct-of-arrays (numpy), scaling to millions of rows.  CSV
I/O follows the OpenCelliD column layout so a real snapshot can be
loaded instead.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..geo.index import UniformGridIndex
from .population import PopulationSurface
from .providers import (
    MAJOR_PROVIDERS,
    provider_market_shares,
    provider_registry,
    rural_affinity,
)
from .radios import RadioType, draw_radio_types

__all__ = ["CellUniverse", "generate_cells", "PROVIDER_GROUPS",
           "PAPER_TRANSCEIVER_COUNT"]

#: The paper's OpenCelliD CONUS snapshot size (2019-10-22).
PAPER_TRANSCEIVER_COUNT = 5_364_949

#: Canonical provider groups, in Table 2 order; index = stored code.
PROVIDER_GROUPS = (*MAJOR_PROVIDERS, "Others")


@dataclass
class CellUniverse:
    """Struct-of-arrays container for the transceiver universe."""

    lons: np.ndarray          # float64, degrees
    lats: np.ndarray          # float64, degrees
    site_ids: np.ndarray      # int64; transceivers sharing a site share id
    mcc: np.ndarray           # int32
    mnc: np.ndarray           # int32
    provider_group: np.ndarray  # int8 index into PROVIDER_GROUPS
    radio: np.ndarray         # int8 RadioType code
    _index: UniformGridIndex | None = field(default=None, repr=False)
    _token: bytes | None = field(default=None, repr=False)
    _packed: object | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.lons)

    def __post_init__(self):
        n = len(self.lons)
        for name in ("lats", "site_ids", "mcc", "mnc",
                     "provider_group", "radio"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")

    @property
    def universe_scale(self) -> float:
        """Factor mapping synthetic counts to paper-universe counts."""
        return PAPER_TRANSCEIVER_COUNT / max(len(self), 1)

    def index(self, cell_deg: float = 0.25) -> UniformGridIndex:
        """Spatial index over all transceivers (built lazily, cached)."""
        if self._index is None or self._index.cell_deg != cell_deg:
            self._index = UniformGridIndex(self.lons, self.lats, cell_deg)
        return self._index

    def content_token(self) -> bytes:
        """Digest of the universe's coordinates (computed once).

        The runtime result cache keys spatial joins by this token:
        universes generated from different seeds, sizes or placement
        parameters hash to different tokens because their coordinate
        bytes differ, while the same configuration always re-hashes to
        the same token.
        """
        if self._token is None:
            h = hashlib.sha256()
            for arr in (self.lons, self.lats):
                h.update(np.ascontiguousarray(arr).tobytes())
            self._token = h.digest()
        return self._token

    def packed(self, cell_deg: float = 0.25):
        """Contiguous column pack of this universe (built lazily, cached).

        The pack bundles every column plus the serialized spatial index
        at pinned dtypes, ready to copy into a shared-memory segment so
        pool workers adopt state instead of rebuilding it.
        """
        from .packed import pack_cells

        if self._packed is None or self._packed.cell_deg != cell_deg:
            self._packed = pack_cells(self, cell_deg)
        return self._packed

    def stratified_sample(self, fraction: float) -> "CellUniverse":
        """Deterministic stratified subsample of the universe.

        Strata are (provider_group, radio) pairs; within each stratum
        every ``round(1/fraction)``-th transceiver (in storage order) is
        kept.  No RNG involved: the same universe and fraction always
        select the same rows, which is what the scale-stratified
        differential tests key on.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        step = max(1, int(round(1.0 / fraction)))
        strata = (self.provider_group.astype(np.int64) * 64
                  + self.radio.astype(np.int64))
        picks = [np.flatnonzero(strata == s)[::step]
                 for s in np.unique(strata)]
        idx = np.sort(np.concatenate(picks))
        return self.subset(idx)

    def group_names(self) -> np.ndarray:
        """Provider group name per transceiver."""
        return np.array(PROVIDER_GROUPS)[self.provider_group]

    def subset(self, mask_or_idx) -> "CellUniverse":
        """A new universe restricted to the given mask/index array."""
        return CellUniverse(
            lons=self.lons[mask_or_idx],
            lats=self.lats[mask_or_idx],
            site_ids=self.site_ids[mask_or_idx],
            mcc=self.mcc[mask_or_idx],
            mnc=self.mnc[mask_or_idx],
            provider_group=self.provider_group[mask_or_idx],
            radio=self.radio[mask_or_idx],
        )

    def n_sites(self) -> int:
        return len(np.unique(self.site_ids))

    # ------------------------------------------------------------------
    # OpenCelliD-style CSV I/O
    # ------------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write in the OpenCelliD column layout."""
        radio_names = {int(r): r.name for r in RadioType}
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(["radio", "mcc", "net", "area", "cell",
                             "lon", "lat"])
            for i in range(len(self)):
                writer.writerow([
                    radio_names[int(self.radio[i])],
                    int(self.mcc[i]), int(self.mnc[i]),
                    int(self.site_ids[i]), i,
                    f"{self.lons[i]:.6f}", f"{self.lats[i]:.6f}",
                ])

    @classmethod
    def from_csv(cls, path: str | Path) -> "CellUniverse":
        """Read an OpenCelliD-layout CSV (synthetic or real)."""
        radio_codes = {r.name: int(r) for r in RadioType}
        rows = {"lon": [], "lat": [], "site": [], "mcc": [], "mnc": [],
                "radio": []}
        with open(path, newline="", encoding="utf-8") as fh:
            for rec in csv.DictReader(fh):
                rows["lon"].append(float(rec["lon"]))
                rows["lat"].append(float(rec["lat"]))
                rows["site"].append(int(rec.get("area") or 0))
                rows["mcc"].append(int(rec["mcc"]))
                rows["mnc"].append(int(rec["net"]))
                rows["radio"].append(radio_codes.get(rec["radio"], 0))
        mcc = np.array(rows["mcc"], dtype=np.int32)
        mnc = np.array(rows["mnc"], dtype=np.int32)
        groups = _groups_from_plmns(mcc, mnc)
        return cls(
            lons=np.array(rows["lon"]), lats=np.array(rows["lat"]),
            site_ids=np.array(rows["site"], dtype=np.int64),
            mcc=mcc, mnc=mnc, provider_group=groups,
            radio=np.array(rows["radio"], dtype=np.int8),
        )


def _groups_from_plmns(mcc: np.ndarray, mnc: np.ndarray) -> np.ndarray:
    """Resolve provider-group codes for PLMN arrays."""
    from .providers import resolve_provider
    lookup = {name: i for i, name in enumerate(PROVIDER_GROUPS)}
    out = np.empty(len(mcc), dtype=np.int8)
    cache: dict[tuple[int, int], int] = {}
    for i, key in enumerate(zip(mcc.tolist(), mnc.tolist())):
        code = cache.get(key)
        if code is None:
            name = resolve_provider(*key)
            if name not in lookup and name != "Unknown":
                name = "Others"
            code = lookup.get(name, lookup["Others"])
            cache[key] = code
        out[i] = code
    return out


def generate_cells(pop: PopulationSurface, n_transceivers: int,
                   seed: int = 11, placement_exponent: float = 0.85,
                   mean_per_site: float = 5.6,
                   jitter_m: float = 120.0,
                   urban_halfsat: float = 50_000.0) -> CellUniverse:
    """Generate the synthetic transceiver universe.

    ``placement_exponent`` and ``urban_halfsat`` must match the WHP model
    for its calibration to hold; :class:`repro.data.universe.SyntheticUS`
    wires them together.
    """
    if n_transceivers <= 0:
        raise ValueError("n_transceivers must be positive")
    rng = np.random.default_rng(seed)

    n_sites = max(1, int(round(n_transceivers / mean_per_site)))
    site_lons, site_lats = pop.sample_points(n_sites, rng,
                                             exponent=placement_exponent)

    # Transceivers per site: geometric-ish, clipped to [1, 12].
    per_site = np.clip(rng.geometric(1.0 / mean_per_site, size=n_sites),
                       1, 12)
    # Adjust total to exactly n_transceivers by trimming/padding.
    total = int(per_site.sum())
    while total != n_transceivers:
        i = int(rng.integers(n_sites))
        if total < n_transceivers and per_site[i] < 12:
            per_site[i] += 1
            total += 1
        elif total > n_transceivers and per_site[i] > 1:
            per_site[i] -= 1
            total -= 1

    site_of = np.repeat(np.arange(n_sites, dtype=np.int64), per_site)
    lons = np.repeat(site_lons, per_site)
    lats = np.repeat(site_lats, per_site)

    # OpenCelliD-style location noise per transceiver.
    jitter_deg = jitter_m / 111_000.0
    lons = lons + rng.normal(0.0, jitter_deg, size=len(lons))
    lats = lats + rng.normal(0.0, jitter_deg, size=len(lats))

    # Urbanization at each site drives provider and technology biases.
    density = pop.density_at(lons, lats).astype(float)
    u = density / (density + urban_halfsat)
    ruralness = 1.0 - u

    groups = _draw_provider_groups(u, rng)
    mcc, mnc = _draw_plmns(groups, rng)
    radio = draw_radio_types(np.array(PROVIDER_GROUPS)[groups],
                             ruralness, rng)

    return CellUniverse(lons=lons, lats=lats, site_ids=site_of,
                        mcc=mcc, mnc=mnc, provider_group=groups,
                        radio=radio)


def _draw_provider_groups(u: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
    """Provider-group draw with rural-affinity tilt.

    Group weight at a point: share * (1 + affinity * (1 - 2u)); u in
    [0, 1], so rural points (u→0) boost positive-affinity providers.
    """
    shares = provider_market_shares()
    base = np.array([shares[g] for g in PROVIDER_GROUPS])
    affinity = np.array([rural_affinity(g) for g in PROVIDER_GROUPS])
    weights = base[None, :] * (1.0 + affinity[None, :]
                               * (1.0 - 2.0 * u[:, None]))
    weights = np.clip(weights, 1e-9, None)
    weights /= weights.sum(axis=1, keepdims=True)
    cdf = np.cumsum(weights, axis=1)
    draws = (rng.random(len(u))[:, None] > cdf).sum(axis=1)
    return draws.astype(np.int8)


def _draw_plmns(groups: np.ndarray, rng: np.random.Generator) \
        -> tuple[np.ndarray, np.ndarray]:
    """Vectorized PLMN assignment per transceiver."""
    registry = provider_registry()
    mcc = np.empty(len(groups), dtype=np.int32)
    mnc = np.empty(len(groups), dtype=np.int32)
    for code, name in enumerate(PROVIDER_GROUPS):
        mask = groups == code
        count = int(mask.sum())
        if count == 0:
            continue
        if name == "Others":
            # Pool every regional carrier's PLMNs, uniform over carriers.
            plmns = [p for prov in registry.values()
                     if prov.name not in MAJOR_PROVIDERS
                     for p in prov.plmns]
            weights = np.full(len(plmns), 1.0 / len(plmns))
        else:
            plmns = list(registry[name].plmns)
            weights = 1.0 / (np.arange(len(plmns)) + 1.0)
            weights /= weights.sum()
        pick = rng.choice(len(plmns), size=count, p=weights)
        mcc[mask] = np.array([plmns[i].mcc for i in pick], dtype=np.int32)
        mnc[mask] = np.array([plmns[i].mnc for i in pick], dtype=np.int32)
    return mcc, mnc
