"""Metro anchors for the synthetic US.

About 70 city records shape everything downstream: the population surface
(city kernels), transceiver density, the highway network (cities are graph
nodes), county naming/populations for the density categories of §3.6, and
the metro windows of Figures 12–13.

Coordinates are the real city centers; metro and county populations are
2018-era estimates rounded to 10k.  ``county_name``/``county_pop`` seed the
named counties in :mod:`repro.data.counties` — the paper's "23 most
populous counties (>1.5M)" emerge from these records.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = ["City", "conus_cities", "city_by_name", "PAPER_METROS",
           "COUNTY_BBOXES", "WILDLAND_FRONTS"]


@dataclass(frozen=True)
class City:
    """A metro anchor point."""

    name: str
    state: str
    lon: float
    lat: float
    metro_pop: int
    county_name: str
    county_pop: int

    @property
    def county_bbox(self) -> tuple[float, float, float, float] | None:
        """Approximate real county extent (min_lon, min_lat, max_lon,
        max_lat), or None for cities without an embedded extent."""
        return COUNTY_BBOXES.get(self.county_name)

    @property
    def wildland_front(self) -> tuple[float, float, float, float] | None:
        """(lon, lat, sigma_deg, propensity_boost) of the adjacent
        high-fuel terrain feature (mountain front, Everglades edge), or
        None."""
        front = WILDLAND_FRONTS.get(self.name)
        if front is None:
            return None
        dlon, dlat, sigma, boost = front
        return (self.lon + dlon, self.lat + dlat, sigma, boost)


# name, state, lon, lat, metro pop, county name, county pop
_CITY_TABLE = [
    ("Seattle", "WA", -122.33, 47.61, 3_940_000, "King", 2_230_000),
    ("Portland", "OR", -122.68, 45.52, 2_480_000, "Multnomah", 810_000),
    ("Spokane", "WA", -117.43, 47.66, 570_000, "Spokane", 520_000),
    ("Boise", "ID", -116.20, 43.62, 730_000, "Ada", 470_000),
    ("Billings", "MT", -108.50, 45.78, 180_000, "Yellowstone", 160_000),
    ("Sacramento", "CA", -121.49, 38.58, 2_350_000, "Sacramento", 1_540_000),
    ("San Francisco", "CA", -122.42, 37.77, 1_700_000, "San Francisco",
     880_000),
    ("Oakland", "CA", -122.27, 37.80, 1_150_000, "Alameda", 1_660_000),
    ("San Jose", "CA", -121.89, 37.34, 2_000_000, "Santa Clara", 1_940_000),
    ("Fresno", "CA", -119.79, 36.74, 1_000_000, "Fresno", 990_000),
    ("Los Angeles", "CA", -118.24, 34.05, 13_200_000, "Los Angeles",
     10_100_000),
    ("Riverside", "CA", -117.40, 33.95, 2_440_000, "Riverside", 2_450_000),
    ("San Bernardino", "CA", -117.29, 34.11, 2_170_000, "San Bernardino",
     2_170_000),
    ("Anaheim", "CA", -117.91, 33.84, 3_190_000, "Orange", 3_190_000),
    ("San Diego", "CA", -117.16, 32.72, 3_340_000, "San Diego", 3_340_000),
    ("Las Vegas", "NV", -115.14, 36.17, 2_230_000, "Clark", 2_230_000),
    ("Reno", "NV", -119.81, 39.53, 470_000, "Washoe", 470_000),
    ("Phoenix", "AZ", -112.07, 33.45, 4_860_000, "Maricopa", 4_410_000),
    ("Tucson", "AZ", -110.97, 32.22, 1_040_000, "Pima", 1_040_000),
    ("Albuquerque", "NM", -106.65, 35.08, 920_000, "Bernalillo", 680_000),
    ("El Paso", "TX", -106.49, 31.76, 840_000, "El Paso", 840_000),
    ("Denver", "CO", -104.99, 39.74, 2_930_000, "Denver", 720_000),
    ("Colorado Springs", "CO", -104.82, 38.83, 740_000, "El Paso CO",
     710_000),
    ("Salt Lake City", "UT", -111.89, 40.76, 1_220_000, "Salt Lake",
     1_150_000),
    ("Dallas", "TX", -96.80, 32.78, 2_900_000, "Dallas", 2_640_000),
    ("Fort Worth", "TX", -97.33, 32.76, 2_430_000, "Tarrant", 2_080_000),
    ("Houston", "TX", -95.37, 29.76, 5_600_000, "Harris", 4_700_000),
    ("San Antonio", "TX", -98.49, 29.42, 2_510_000, "Bexar", 1_990_000),
    ("Austin", "TX", -97.74, 30.27, 2_170_000, "Travis", 1_250_000),
    ("Oklahoma City", "OK", -97.52, 35.47, 1_400_000, "Oklahoma", 790_000),
    ("Tulsa", "OK", -95.99, 36.15, 990_000, "Tulsa", 650_000),
    ("Wichita", "KS", -97.34, 37.69, 640_000, "Sedgwick", 510_000),
    ("Kansas City", "MO", -94.58, 39.10, 2_140_000, "Jackson", 700_000),
    ("Omaha", "NE", -95.93, 41.26, 940_000, "Douglas", 570_000),
    ("Minneapolis", "MN", -93.27, 44.98, 3_630_000, "Hennepin", 1_260_000),
    ("Chicago", "IL", -87.63, 41.88, 7_600_000, "Cook", 5_150_000),
    ("St. Louis", "MO", -90.20, 38.63, 2_810_000, "St. Louis", 1_000_000),
    ("Milwaukee", "WI", -87.91, 43.04, 1_580_000, "Milwaukee", 950_000),
    ("Detroit", "MI", -83.05, 42.33, 2_300_000, "Wayne", 1_750_000),
    ("Columbus", "OH", -82.99, 39.96, 2_110_000, "Franklin", 1_310_000),
    ("Cleveland", "OH", -81.69, 41.50, 2_060_000, "Cuyahoga", 1_240_000),
    ("Cincinnati", "OH", -84.51, 39.10, 2_190_000, "Hamilton", 820_000),
    ("Indianapolis", "IN", -86.16, 39.77, 2_050_000, "Marion", 950_000),
    ("Nashville", "TN", -86.78, 36.16, 1_930_000, "Davidson", 690_000),
    ("Memphis", "TN", -90.05, 35.15, 1_350_000, "Shelby", 940_000),
    ("Louisville", "KY", -85.76, 38.25, 1_300_000, "Jefferson", 770_000),
    ("Atlanta", "GA", -84.39, 33.75, 4_200_000, "Fulton", 1_050_000),
    ("Birmingham", "AL", -86.80, 33.52, 1_150_000, "Jefferson AL", 660_000),
    ("New Orleans", "LA", -90.07, 29.95, 1_270_000, "Orleans", 390_000),
    ("Little Rock", "AR", -92.29, 34.75, 740_000, "Pulaski", 390_000),
    ("Jacksonville", "FL", -81.66, 30.33, 1_530_000, "Duval", 950_000),
    ("Orlando", "FL", -81.38, 28.54, 2_570_000, "Orange FL", 1_380_000),
    ("Tampa", "FL", -82.46, 27.95, 3_140_000, "Hillsborough", 1_440_000),
    ("Miami", "FL", -80.19, 25.76, 2_760_000, "Miami-Dade", 2_760_000),
    ("Fort Lauderdale", "FL", -80.14, 26.12, 1_950_000, "Broward",
     1_950_000),
    ("West Palm Beach", "FL", -80.05, 26.71, 1_490_000, "Palm Beach",
     1_490_000),
    ("Charlotte", "NC", -80.84, 35.23, 2_570_000, "Mecklenburg", 1_090_000),
    ("Raleigh", "NC", -78.64, 35.78, 1_360_000, "Wake", 1_090_000),
    ("Columbia", "SC", -81.03, 34.00, 830_000, "Richland", 410_000),
    ("Charleston", "SC", -79.93, 32.78, 790_000, "Charleston", 400_000),
    ("Virginia Beach", "VA", -76.00, 36.85, 1_730_000, "Virginia Beach",
     450_000),
    ("Richmond", "VA", -77.46, 37.54, 1_290_000, "Henrico", 330_000),
    ("Washington", "DC", -77.04, 38.91, 3_900_000, "District of Columbia",
     700_000),
    ("Baltimore", "MD", -76.61, 39.29, 2_800_000, "Baltimore", 830_000),
    ("Philadelphia", "PA", -75.17, 39.95, 4_300_000, "Philadelphia",
     1_580_000),
    ("Pittsburgh", "PA", -79.99, 40.44, 2_320_000, "Allegheny", 1_220_000),
    ("Newark", "NJ", -74.17, 40.73, 2_040_000, "Essex", 800_000),
    ("New York City", "NY", -74.01, 40.71, 11_500_000, "New York City",
     8_400_000),
    ("Hartford", "CT", -72.68, 41.77, 1_210_000, "Hartford", 890_000),
    ("Providence", "RI", -71.41, 41.82, 1_620_000, "Providence", 640_000),
    ("Boston", "MA", -71.06, 42.36, 3_200_000, "Middlesex", 1_610_000),
    ("Buffalo", "NY", -78.88, 42.89, 1_130_000, "Erie", 920_000),
    ("Des Moines", "IA", -93.62, 41.59, 700_000, "Polk", 490_000),
    # Suburban county anchors around the largest metros: these keep
    # county-tile populations realistic (the parent metro weights above
    # are reduced by the same amounts).
    ("Mineola", "NY", -73.64, 40.75, 1_360_000, "Nassau", 1_360_000),
    ("White Plains", "NY", -73.77, 41.03, 970_000, "Westchester", 970_000),
    ("Hackensack", "NJ", -74.05, 40.89, 940_000, "Bergen", 940_000),
    ("Norristown", "PA", -75.34, 40.12, 830_000, "Montgomery PA", 830_000),
    ("Doylestown", "PA", -75.13, 40.31, 630_000, "Bucks", 630_000),
    ("Wheaton", "IL", -88.11, 41.87, 930_000, "DuPage", 930_000),
    ("Waukegan", "IL", -87.84, 42.36, 700_000, "Lake IL", 700_000),
    ("Fairfax", "VA", -77.30, 38.78, 1_150_000, "Fairfax", 1_150_000),
    ("Rockville", "MD", -77.15, 39.08, 1_050_000, "Montgomery MD",
     1_050_000),
    ("Upper Marlboro", "MD", -76.85, 38.83, 910_000, "Prince George's",
     910_000),
    ("Salem", "MA", -70.90, 42.52, 790_000, "Essex MA", 790_000),
    ("Worcester", "MA", -71.80, 42.26, 830_000, "Worcester", 830_000),
    ("Pontiac", "MI", -83.29, 42.64, 1_260_000, "Oakland MI", 1_260_000),
    ("Warren", "MI", -82.91, 42.67, 870_000, "Macomb", 870_000),
    ("Lawrenceville", "GA", -84.00, 33.95, 930_000, "Gwinnett", 930_000),
    ("Marietta", "GA", -84.55, 33.95, 760_000, "Cobb", 760_000),
    ("Plano", "TX", -96.70, 33.02, 1_000_000, "Collin", 1_000_000),
    ("Denton", "TX", -97.13, 33.21, 860_000, "Denton", 860_000),
    ("Sugar Land", "TX", -95.62, 29.62, 790_000, "Fort Bend", 790_000),
]



#: Approximate real county extents for the anchored counties.  These give
#: the named counties realistic footprints — crucially, Los Angeles
#: county includes the San Gabriel mountains and Miami-Dade includes the
#: Everglades edge, which is where their at-risk infrastructure lives
#: (Figures 10-12 depend on this).
COUNTY_BBOXES: dict[str, tuple[float, float, float, float]] = {
    "King": (-122.55, 47.10, -121.00, 47.80),
    "Multnomah": (-122.95, 45.40, -121.80, 45.70),
    "Spokane": (-117.85, 47.20, -117.00, 48.05),
    "Ada": (-116.55, 43.10, -115.95, 43.85),
    "Yellowstone": (-109.00, 45.40, -107.80, 46.20),
    "Sacramento": (-121.90, 38.00, -121.00, 38.75),
    "San Francisco": (-122.55, 37.70, -122.35, 37.85),
    "Alameda": (-122.35, 37.45, -121.45, 37.90),
    "Santa Clara": (-122.20, 36.90, -121.20, 37.50),
    "Fresno": (-120.90, 35.90, -118.35, 37.60),
    "Los Angeles": (-118.95, 33.70, -117.65, 34.85),
    "Riverside": (-117.70, 33.40, -114.40, 34.10),
    "San Bernardino": (-117.80, 34.00, -114.10, 35.80),
    "Orange": (-118.10, 33.35, -117.40, 33.95),
    "San Diego": (-117.60, 32.53, -116.10, 33.50),
    "Clark": (-115.90, 35.00, -114.00, 36.85),
    "Washoe": (-120.00, 39.00, -119.55, 41.00),
    "Maricopa": (-113.35, 32.50, -111.00, 34.05),
    "Pima": (-113.35, 31.40, -110.45, 32.50),
    "Bernalillo": (-107.20, 34.85, -106.15, 35.25),
    "El Paso": (-106.65, 31.60, -105.90, 32.00),
    "Denver": (-105.10, 39.60, -104.60, 39.95),
    "El Paso CO": (-105.10, 38.50, -104.05, 39.15),
    "Salt Lake": (-112.25, 40.40, -111.55, 40.92),
    "Dallas": (-97.05, 32.55, -96.45, 33.00),
    "Tarrant": (-97.55, 32.55, -97.03, 33.00),
    "Harris": (-95.95, 29.50, -94.90, 30.20),
    "Bexar": (-98.85, 29.10, -98.00, 29.75),
    "Travis": (-98.15, 30.00, -97.35, 30.60),
    "Oklahoma": (-97.80, 35.25, -97.10, 35.75),
    "Tulsa": (-96.30, 35.90, -95.60, 36.45),
    "Sedgwick": (-97.80, 37.40, -97.15, 37.85),
    "Jackson": (-94.65, 38.80, -94.10, 39.25),
    "Douglas": (-96.50, 41.10, -95.85, 41.40),
    "Hennepin": (-93.80, 44.75, -93.15, 45.25),
    "Cook": (-88.30, 41.45, -87.50, 42.15),
    "St. Louis": (-90.75, 38.40, -90.10, 38.90),
    "Milwaukee": (-88.10, 42.85, -87.80, 43.20),
    "Wayne": (-83.60, 42.00, -82.90, 42.45),
    "Franklin": (-83.30, 39.80, -82.75, 40.15),
    "Cuyahoga": (-82.00, 41.30, -81.40, 41.60),
    "Hamilton": (-84.85, 39.00, -84.25, 39.30),
    "Marion": (-86.35, 39.60, -85.95, 39.95),
    "Davidson": (-87.05, 36.00, -86.50, 36.40),
    "Shelby": (-90.30, 34.98, -89.65, 35.40),
    "Jefferson": (-85.95, 38.00, -85.40, 38.40),
    "Fulton": (-84.85, 33.50, -84.25, 34.20),
    "Jefferson AL": (-87.35, 33.20, -86.45, 33.85),
    "Orleans": (-90.15, 29.85, -89.60, 30.20),
    "Pulaski": (-92.60, 34.50, -92.00, 35.00),
    "Duval": (-82.05, 30.10, -81.30, 30.60),
    "Orange FL": (-81.70, 28.30, -80.85, 28.80),
    "Hillsborough": (-82.65, 27.60, -82.05, 28.20),
    "Miami-Dade": (-80.90, 25.10, -80.10, 25.98),
    "Broward": (-80.90, 25.95, -80.05, 26.35),
    "Palm Beach": (-80.90, 26.30, -79.98, 26.98),
    "Mecklenburg": (-81.05, 35.00, -80.55, 35.50),
    "Wake": (-78.95, 35.50, -78.25, 36.05),
    "Richland": (-81.40, 33.75, -80.60, 34.30),
    "Charleston": (-80.40, 32.50, -79.50, 33.20),
    "Virginia Beach": (-76.25, 36.60, -75.90, 37.00),
    "Henrico": (-77.70, 37.40, -77.20, 37.70),
    "District of Columbia": (-77.12, 38.79, -76.91, 39.00),
    "Baltimore": (-76.90, 39.20, -76.30, 39.70),
    "Philadelphia": (-75.30, 39.85, -74.95, 40.15),
    "Allegheny": (-80.40, 40.20, -79.70, 40.70),
    "Essex": (-74.40, 40.65, -74.10, 40.90),
    "New York City": (-74.26, 40.50, -73.70, 40.92),
    "Hartford": (-73.05, 41.55, -72.40, 42.05),
    "Providence": (-71.80, 41.70, -71.30, 42.02),
    "Middlesex": (-71.90, 42.15, -71.00, 42.75),
    "Erie": (-79.20, 42.45, -78.45, 43.10),
    "Polk": (-93.85, 41.50, -93.30, 41.90),
    "Nassau": (-73.77, 40.53, -73.40, 40.92),
    "Westchester": (-73.98, 40.87, -73.48, 41.37),
    "Bergen": (-74.30, 40.80, -73.90, 41.15),
    "Montgomery PA": (-75.75, 40.00, -75.15, 40.50),
    "Bucks": (-75.50, 40.05, -74.70, 40.65),
    "DuPage": (-88.30, 41.65, -87.90, 42.00),
    "Lake IL": (-88.20, 42.15, -87.70, 42.50),
    "Fairfax": (-77.55, 38.60, -77.00, 39.05),
    "Montgomery MD": (-77.55, 38.93, -76.90, 39.35),
    "Prince George's": (-77.05, 38.50, -76.65, 39.00),
    "Essex MA": (-71.30, 42.40, -70.60, 42.90),
    "Worcester": (-72.35, 42.00, -71.45, 42.75),
    "Oakland MI": (-83.70, 42.43, -83.00, 42.90),
    "Macomb": (-83.10, 42.40, -82.60, 42.90),
    "Gwinnett": (-84.30, 33.75, -83.80, 34.20),
    "Cobb": (-84.85, 33.75, -84.40, 34.10),
    "Collin": (-96.85, 32.98, -96.30, 33.45),
    "Denton": (-97.40, 32.98, -96.85, 33.45),
    "Fort Bend": (-96.10, 29.25, -95.45, 29.80),
}

#: Adjacent high-fuel terrain per metro: (dlon, dlat, sigma_deg, boost).
#: These model the real wildland fronts — the San Gabriel mountains over
#: Los Angeles, the Wasatch front over Salt Lake City, the Everglades
#: edge west of Miami — that put WHP very-high cells right against the
#: urban fringe (§3.7: risk "increases with distance from the metro
#: center" toward these features).
WILDLAND_FRONTS: dict[str, tuple[float, float, float, float]] = {
    "Los Angeles": (0.15, 0.35, 0.25, 0.80),
    "San Diego": (0.35, 0.15, 0.20, 0.80),
    "Anaheim": (0.30, 0.10, 0.15, 0.55),
    "Oakland": (0.15, 0.05, 0.12, 0.22),
    "San Jose": (0.15, -0.10, 0.15, 0.25),
    "Sacramento": (0.40, 0.15, 0.25, 0.25),
    "Salt Lake City": (0.20, 0.00, 0.15, 0.90),
    "Miami": (-0.30, 0.10, 0.20, 0.50),
    "Orlando": (-0.25, -0.10, 0.20, 0.30),
    "Phoenix": (0.35, 0.25, 0.25, 0.22),
    "Denver": (-0.35, 0.10, 0.20, 0.30),
    "Colorado Springs": (-0.20, 0.00, 0.15, 0.30),
    "Las Vegas": (-0.30, 0.10, 0.20, 0.45),
    "Albuquerque": (0.20, 0.10, 0.12, 0.50),
    "Reno": (-0.15, 0.05, 0.12, 0.45),
    "Philadelphia": (0.55, -0.15, 0.30, 0.30),
}

#: Metros the paper analyzes in §3.6–§3.7 (Figures 11–13).
PAPER_METROS = (
    "Los Angeles", "San Diego", "San Francisco", "San Jose", "Sacramento",
    "Salt Lake City", "Denver", "Phoenix", "Philadelphia", "Orlando",
    "Miami", "Las Vegas", "New York City",
)


@lru_cache(maxsize=1)
def conus_cities() -> tuple[City, ...]:
    """All metro anchors (cached, immutable)."""
    return tuple(City(*row) for row in _CITY_TABLE)


def city_by_name(name: str) -> City:
    """Look up a city record by exact name."""
    for city in conus_cities():
        if city.name == name:
            return city
    raise KeyError(f"unknown city: {name!r}")
