"""Every number the paper reports, for calibration and comparison.

These constants serve two purposes: (1) a few are calibration inputs for
the synthetic generators (documented at each use site), and (2) the
benchmark harness prints paper-vs-measured rows for EXPERIMENTS.md
against them.  Source: Anderson, Barford & Barford, IMC 2020.
"""

from __future__ import annotations

__all__ = [
    "TOTAL_TRANSCEIVERS",
    "TABLE1_TRANSCEIVERS_IN_PERIMETERS",
    "TOTAL_IN_PERIMETERS_2000_2018",
    "WHP_AT_RISK_COUNTS",
    "WHP_AT_RISK_TOTAL",
    "WHP_AT_RISK_POPULATION",
    "TOP_MODERATE_STATES",
    "TOP_VH_PER_CAPITA_STATES",
    "TABLE2_PROVIDER_RISK",
    "TABLE3_TECHNOLOGY_RISK",
    "VALIDATION_2019",
    "EXTENSION_HALF_MILE",
    "POP_IMPACT",
    "CITY_VERY_HIGH_COUNTS",
    "DIRS_CASE_STUDY",
    "ECOREGION_DELTAS",
]

#: OpenCelliD CONUS snapshot size (2019-10-22).
TOTAL_TRANSCEIVERS = 5_364_949

#: Table 1, "Transceivers within Wildfire Perimeters" per year.
TABLE1_TRANSCEIVERS_IN_PERIMETERS = {
    2018: 3_099, 2017: 2_726, 2016: 987, 2015: 565, 2014: 453,
    2013: 517, 2012: 553, 2011: 1_422, 2010: 181, 2009: 664,
    2008: 2_068, 2007: 4_978, 2006: 1_025, 2005: 956, 2004: 528,
    2003: 4_421, 2002: 894, 2001: 466, 2000: 811,
}

#: "between 2000 and 2018, there were over 27,000 cell transceivers
#: within wildfire perimeters" (Figure 4).
TOTAL_IN_PERIMETERS_2000_2018 = 27_000

#: Figure 7: transceivers per WHP class (Moderate, High, Very High).
WHP_AT_RISK_COUNTS = {"Moderate": 261_569, "High": 142_968,
                      "Very High": 26_307}
WHP_AT_RISK_TOTAL = 430_844

#: "aggregate populations of the areas served ... over 85 million".
WHP_AT_RISK_POPULATION = 85_000_000

#: Figure 8 ordering: states with >5,000 transceivers in Moderate WHP.
TOP_MODERATE_STATES = ("CA", "FL", "TX", "SC", "GA", "NC", "AZ")

#: Figure 9: most VH transceivers per thousand people.
TOP_VH_PER_CAPITA_STATES = ("UT", "FL", "CA", "NV", "NM")

#: Table 2: provider -> (count, pct) per WHP class.
TABLE2_PROVIDER_RISK = {
    "AT&T": {"Moderate": (101_930, 5.44), "High": (53_805, 2.87),
             "Very High": (10_991, 0.59)},
    "T-Mobile": {"Moderate": (69_360, 4.26), "High": (40_365, 2.48),
                 "Very High": (7_573, 0.47)},
    "Sprint": {"Moderate": (32_417, 3.90), "High": (16_523, 1.99),
               "Very High": (2_746, 0.33)},
    "Verizon": {"Moderate": (42_493, 5.50), "High": (24_228, 3.14),
                "Very High": (3_757, 0.49)},
    "Others": {"Moderate": (15_369, 3.90), "High": (8_047, 2.04),
               "Very High": (1_240, 0.31)},
}

#: Table 3: radio type -> (VH, H, M, total) at-risk counts.
TABLE3_TECHNOLOGY_RISK = {
    "CDMA": (2_178, 13_801, 25_062, 41_041),
    "GSM": (1_943, 10_096, 17_955, 29_994),
    "LTE": (12_022, 75_072, 141_324, 228_418),
    "UMTS": (10_164, 43_999, 77_228, 131_391),
}

#: §3.4 validation of WHP against the 2019 fire season.
VALIDATION_2019 = {
    "in_perimeter_total": 656,
    "predicted_at_risk": 302,          # 46%
    "accuracy_pct": 46.0,
    "missed": 354,
    "missed_in_la_fires": 288,         # Saddle Ridge + Tick
    "accuracy_excluding_la_pct": 84.0,
}

#: §3.8 half-mile very-high extension.
EXTENSION_HALF_MILE = {
    "radius_miles": 0.5,
    "vh_before": 26_307,
    "vh_after": 176_275,
    "total_before": 430_844,
    "total_after": 509_693,
    "validation_hits_after": 411,
    "accuracy_after_pct": 62.0,
    "missed_after": 245,
    "missed_after_in_la_fires": 203,
}

#: §3.6 population-impact analysis (Figures 10-11).
POP_IMPACT = {
    "at_risk_in_pop_counties": 250_000,   # "nearly 250,000" in >200k
    "at_risk_in_vh_pop_counties": 57_504,  # in the 23 counties >1.5M
    "n_vh_pop_counties": 23,
    "pop_category_share_of_us": 0.65,
    "vh_pop_la_sd_region": 38_000,
    "vh_pop_east_coast": 8_000,
    "vh_pop_texas": 1_400,
}

#: §3.6: transceivers in WHP Very High within >1.5M counties, per city.
CITY_VERY_HIGH_COUNTS = {
    "Los Angeles": 3_547,
    "Miami": 1_536,
    "San Diego": 1_082,
    "San Francisco/San Jose": 935,
    "Phoenix": 106,
    "New York City": 81,
    "Las Vegas": 10,
}

#: §3.2 / Figure 5: FCC DIRS case-study anchors.
DIRS_CASE_STUDY = {
    "peak_sites_out": 874,
    "peak_doy": 301,                 # 28 October
    "peak_power_out": 702,           # >80% of the peak
    "power_share_at_peak": 0.80,
    "final_sites_out": 110,          # 1 November
    "final_damaged": 21,
    "n_counties": 37,
    "report_days": 8,
}

#: §3.9 ecoregion projection extremes (Littell et al.).
ECOREGION_DELTAS = {
    "max_increase_pct": 240.0,
    "secondary_increase_pct": 132.0,
    "slc_west_increase_pct": 43.0,
    "max_decrease_pct": -119.0,
}
