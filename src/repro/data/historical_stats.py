"""Historical US wildfire statistics (NIFC), 2000-2019.

The first two data columns of the paper's Table 1 — annual number of
fires and acres burned — are *inputs* from the national fire record, not
measured results.  We embed them verbatim so the fire-season generator
reproduces each year's aggregate burden exactly; only the
"transceivers within perimeters" column is then a measured output of the
overlay analysis.

2019 (used by the §3.4 validation) is the NIFC year-end figure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["YearStats", "HISTORICAL_YEARS", "year_stats", "STUDY_YEARS"]


@dataclass(frozen=True)
class YearStats:
    """One fire season's national aggregates."""

    year: int
    n_fires: int          # all ignitions, including small contained fires
    acres_burned: float   # millions of acres


_TABLE = [
    # year, number of fires, acres burned (millions) - paper Table 1
    (2018, 58_083, 8.767),
    (2017, 71_499, 10.026),
    (2016, 67_743, 5.509),
    (2015, 68_151, 10.125),
    (2014, 63_312, 3.595),
    (2013, 47_579, 4.319),
    (2012, 67_774, 9.326),
    (2011, 74_126, 8.711),
    (2010, 71_971, 3.422),
    (2009, 78_792, 5.921),
    (2008, 78_979, 5.292),
    (2007, 85_705, 9.328),
    (2006, 96_385, 9.873),
    (2005, 66_753, 8.689),
    (2004, 65_461, 8.097),
    (2003, 63_629, 3.960),
    (2002, 73_457, 7.184),
    (2001, 84_079, 3.570),
    (2000, 92_250, 7.393),
    # validation year (NIFC 2019 year-end report)
    (2019, 50_477, 4.664),
]

HISTORICAL_YEARS: dict[int, YearStats] = {
    y: YearStats(y, n, a) for y, n, a in _TABLE
}

#: The years of the paper's historical analysis (Table 1, Figures 3-4).
STUDY_YEARS = tuple(range(2000, 2019))


def year_stats(year: int) -> YearStats:
    """Aggregates for one year (KeyError for years outside 2000-2019)."""
    return HISTORICAL_YEARS[year]
