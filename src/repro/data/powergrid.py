"""Synthetic power-distribution grid.

The paper's case study (§3.2) showed that *power loss* — not equipment
damage — dominates wildfire-related cell outages, and its limitations
section (§3.11) flags "not fully accounting for risk from loss of
power" as the main gap: cell sites fail when their upstream feeder or
substation is de-energized, even when the site itself is far outside
the fire perimeter.  This substrate models the dependency chain the
authors describe studying in their follow-on work:

* **substations** placed proportionally to population (each serves a
  service area),
* **transmission lines** connecting substations (minimum spanning tree
  plus nearest-neighbor redundancy, like the highway graph),
* **feeder assignment**: every cell site depends on its nearest
  substation,
* exposure helpers: which lines cross high-WHP cells (Public Safety
  Power Shutoff candidates), which substations sit inside a fire
  perimeter.

The model is deliberately radial (no load flow): the question the
analyses ask is *which sites lose power when a line or substation is
taken out*, which a dependency graph answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..geo.geometry import LineString
from .cells import CellUniverse
from .population import PopulationSurface
from .whp import WhpModel

__all__ = ["PowerGrid", "build_power_grid", "dense_mst"]


@dataclass
class PowerGrid:
    """The synthetic grid: substations, lines, and site dependencies."""

    substation_lons: np.ndarray
    substation_lats: np.ndarray
    #: (n_lines, 2) array of substation indices
    lines: np.ndarray
    #: substation index per cell site id (dict: site_id -> substation)
    site_substation: dict[int, int]
    graph: "nx.Graph" = field(repr=False, default=None,
                              metadata={"fingerprint": False})

    @property
    def n_substations(self) -> int:
        return len(self.substation_lons)

    @property
    def n_lines(self) -> int:
        return len(self.lines)

    def line_segments(self) -> list[LineString]:
        """Transmission lines as LineStrings."""
        out = []
        for a, b in self.lines:
            out.append(LineString([
                (self.substation_lons[a], self.substation_lats[a]),
                (self.substation_lons[b], self.substation_lats[b])]))
        return out

    def sites_of_substation(self, substation: int) -> list[int]:
        """Site ids fed by a substation."""
        return [site for site, sub in self.site_substation.items()
                if sub == substation]

    def substations_in_polygon(self, polygon) -> np.ndarray:
        """Indices of substations inside a polygon."""
        inside = polygon.contains_many(self.substation_lons,
                                       self.substation_lats)
        return np.nonzero(inside)[0]

    def lines_crossing_mask(self, whp: WhpModel, mask: np.ndarray,
                            step_deg: float = 0.05) -> np.ndarray:
        """Indices of lines that cross True cells of a WHP-grid mask.

        Lines are sampled every ``step_deg`` along their length; a line
        crosses the mask when any sample lands in a True cell.  This is
        the PSPS-candidate test: utilities de-energize lines that
        traverse high-hazard terrain.
        """
        grid = whp.grid
        hits = []
        for i, (a, b) in enumerate(self.lines):
            x1, y1 = self.substation_lons[a], self.substation_lats[a]
            x2, y2 = self.substation_lons[b], self.substation_lats[b]
            length = float(np.hypot(x2 - x1, y2 - y1))
            n = max(2, int(length / step_deg))
            ts = np.linspace(0.0, 1.0, n)
            lons = x1 + ts * (x2 - x1)
            lats = y1 + ts * (y2 - y1)
            rows, cols = grid.rowcol(lons, lats)
            ok = grid.inside(rows, cols)
            if ok.any() and mask[rows[ok], cols[ok]].any():
                hits.append(i)
        return np.asarray(hits, dtype=np.int64)

    def feeder_cut_sites(self, cells: CellUniverse, whp: WhpModel,
                         mask: np.ndarray,
                         step_deg: float = 0.04) -> set[int]:
        """Site ids whose distribution feeder crosses True mask cells.

        The feeder is modeled as the straight run from the site to its
        substation; fires or shutoffs anywhere along it cut the site's
        power — the §3.2 mechanism by which sites far outside a
        perimeter go dark.
        """
        grid = whp.grid
        site_ids, first = np.unique(cells.site_ids, return_index=True)
        site_lons = cells.lons[first]
        site_lats = cells.lats[first]
        # Sample every feeder, then do one batched grid lookup for all
        # samples; the per-site verdict is a segmented any().
        sids: list[int] = []
        counts: list[int] = []
        lon_chunks: list[np.ndarray] = []
        lat_chunks: list[np.ndarray] = []
        for sid, lon, lat in zip(site_ids.tolist(), site_lons,
                                 site_lats):
            sub = self.site_substation.get(int(sid))
            if sub is None:
                continue
            x2 = self.substation_lons[sub]
            y2 = self.substation_lats[sub]
            length = float(np.hypot(x2 - lon, y2 - lat))
            n = max(2, int(length / step_deg))
            ts = np.linspace(0.0, 1.0, n)
            lon_chunks.append(lon + ts * (x2 - lon))
            lat_chunks.append(lat + ts * (y2 - lat))
            sids.append(int(sid))
            counts.append(n)
        if not sids:
            return set()
        rows, cols = grid.rowcol(np.concatenate(lon_chunks),
                                 np.concatenate(lat_chunks))
        ok = grid.inside(rows, cols)
        hit = np.zeros(len(rows), dtype=bool)
        hit[ok] = mask[rows[ok], cols[ok]]
        offsets = np.cumsum([0] + counts[:-1])
        crossed = np.logical_or.reduceat(hit, offsets)
        return {sid for sid, c in zip(sids, crossed.tolist()) if c}

    def dead_sites(self, dead_substations: set[int],
                   cut_lines: set[int]) -> set[int]:
        """Site ids without power given failed substations/cut lines.

        A site is dead when its substation is dead, or its substation is
        disconnected from every live generation-bearing component.  We
        treat the largest connected component of the surviving line
        graph as energized (bulk grid), matching how islanding plays out
        in a radial simplification.
        """
        g = self.graph.copy()
        g.remove_nodes_from(dead_substations)
        g.remove_edges_from(
            tuple(self.lines[i]) for i in cut_lines
            if self.lines[i][0] in g and self.lines[i][1] in g)
        if len(g) == 0:
            energized: set[int] = set()
        else:
            components = list(nx.connected_components(g))
            energized = max(components, key=len)
        dead = set()
        for site, sub in self.site_substation.items():
            if sub in dead_substations or sub not in energized:
                dead.add(site)
        return dead


def build_power_grid(pop: PopulationSurface, cells: CellUniverse,
                     n_substations: int = 400, seed: int = 77,
                     k_neighbors: int = 2) -> PowerGrid:
    """Build the synthetic grid.

    Substations are drawn from the population surface (power capacity
    follows load); the line network is an MST over substations plus
    ``k_neighbors`` nearest-neighbor ties; every cell site attaches to
    its nearest substation.
    """
    if n_substations < 2:
        raise ValueError("need at least two substations")
    rng = np.random.default_rng(seed)
    sub_lons, sub_lats = pop.sample_points(n_substations, rng,
                                           exponent=0.7)

    # MST + k nearest neighbors over substations.  The full pairwise
    # distance matrix is small (n^2 floats); the MST comes from a dense
    # vectorized Prim instead of a quadratic Python loop feeding
    # Kruskal — identical tree, since the continuous sampled distances
    # are pairwise distinct.
    d = np.hypot(sub_lons[:, None] - sub_lons[None, :],
                 sub_lats[:, None] - sub_lats[None, :])
    order = np.argsort(d, axis=1)
    graph = nx.Graph()
    graph.add_nodes_from(range(n_substations))
    mst = dense_mst(d)
    graph.add_edges_from(zip(*np.nonzero(mst)))
    for col in range(1, k_neighbors + 1):
        graph.add_edges_from(enumerate(order[:, col].tolist()))

    lines = np.asarray(sorted(tuple(sorted(e)) for e in graph.edges()),
                       dtype=np.int64)

    # Site -> nearest substation (one representative location per site).
    site_ids, first = np.unique(cells.site_ids, return_index=True)
    site_lons = cells.lons[first]
    site_lats = cells.lats[first]
    nearest_chunks = []
    chunk = 4096
    for start in range(0, len(site_ids), chunk):
        sl = site_lons[start:start + chunk][:, None]
        sa = site_lats[start:start + chunk][:, None]
        d2 = (sl - sub_lons[None, :]) ** 2 + (sa - sub_lats[None, :]) ** 2
        nearest_chunks.append(np.argmin(d2, axis=1))
    nearest = np.concatenate(nearest_chunks) if nearest_chunks \
        else np.empty(0, dtype=np.int64)
    assignment = {int(sid): int(sub)
                  for sid, sub in zip(site_ids.tolist(), nearest.tolist())}

    return PowerGrid(substation_lons=sub_lons, substation_lats=sub_lats,
                     lines=lines, site_substation=assignment,
                     graph=graph)


def dense_mst(d: np.ndarray) -> np.ndarray:
    """Minimum spanning tree edges of a dense distance matrix.

    Dense Prim's algorithm, O(n^2) with one vectorized relaxation per
    added node.  Returns a boolean (n, n) matrix marking tree edges
    (parent -> child as discovered).  The MST is unique — hence equal to
    the Kruskal tree of the complete graph — whenever the off-diagonal
    distances are distinct, the generic case for continuously sampled
    points.
    """
    n = d.shape[0]
    mst = np.zeros((n, n), dtype=bool)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best = d[0].astype(float, copy=True)
    best[0] = np.inf
    parent = np.zeros(n, dtype=np.int64)
    for _ in range(n - 1):
        j = int(np.argmin(best))
        in_tree[j] = True
        mst[parent[j], j] = True
        best[j] = np.inf
        better = (d[j] < best) & ~in_tree
        parent[better] = j
        best[better] = d[j][better]
    return mst
