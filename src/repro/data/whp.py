"""Synthetic Wildfire Hazard Potential (WHP) raster.

The real WHP (USFS, 270 m, five classes plus non-burnable/water) is built
from burn-probability simulations.  Our substitute derives a *fuel score*
per cell from three ingredients whose interaction produces the paper's
geography:

* a state-level wildland propensity (high in the West and Southeast),
* an urbanization suppressor ``(1 - u)^q`` — urban cores and road
  corridors hold little fuel, which is precisely why the paper's §3.4
  validation finds in-perimeter roadside transceivers in low-WHP cells,
* spatially-correlated lognormal noise (terrain/vegetation texture).

Cells above an urbanization cutoff become NON_BURNABLE; the remaining
burnable cells are classified by fuel rank.  Class thresholds are
calibrated so the *expected transceiver share* per class matches the
fractions implied by the paper's Figure 7 (26,307 / 142,968 / 261,569 of
5,364,949 — i.e. 0.49% / 2.67% / 4.88%), using the same placement weights
the transceiver sampler uses.  This mirrors how the real WHP's class
breaks were chosen to make the top classes small and actionable (§3.7:
"This is by design").  Rankings across states, metros, providers and
technologies are *not* calibrated — they emerge from the geography.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np
from scipy import ndimage

from ..geo.raster import GridSpec, Raster
from .population import PopulationSurface
from .states import StateAssigner, conus_bbox

__all__ = ["WHPClass", "WHP_CLASS_NAMES", "WhpModel", "build_whp",
           "AT_RISK_CLASSES", "DEFAULT_TARGET_SHARES"]


class WHPClass(IntEnum):
    """WHP hazard classes (order matters: higher = more hazardous)."""

    NON_BURNABLE = 0   # water, urban cores, road corridors
    VERY_LOW = 1
    LOW = 2
    MODERATE = 3
    HIGH = 4
    VERY_HIGH = 5


WHP_CLASS_NAMES = {
    WHPClass.NON_BURNABLE: "Non-burnable",
    WHPClass.VERY_LOW: "Very Low",
    WHPClass.LOW: "Low",
    WHPClass.MODERATE: "Moderate",
    WHPClass.HIGH: "High",
    WHPClass.VERY_HIGH: "Very High",
}

#: The classes the paper treats as "at risk" (§3.3).
AT_RISK_CLASSES = (WHPClass.MODERATE, WHPClass.HIGH, WHPClass.VERY_HIGH)

#: Expected transceiver share per class, from Figure 7 counts / 5,364,949.
DEFAULT_TARGET_SHARES = {
    WHPClass.VERY_HIGH: 26_307 / 5_364_949,
    WHPClass.HIGH: 142_968 / 5_364_949,
    WHPClass.MODERATE: 261_569 / 5_364_949,
    WHPClass.LOW: 0.15,
    # VERY_LOW takes the remaining burnable cells.
}


@dataclass
class WhpModel:
    """A built WHP raster plus the intermediate fields analyses reuse."""

    raster: Raster          # int8 WHPClass codes
    fuel: Raster            # float fuel score (0 = water)
    urbanization: Raster    # u in [0, 1]
    placement_weight: Raster  # transceiver placement weight per cell

    @property
    def grid(self) -> GridSpec:
        return self.raster.grid

    def content_token(self) -> bytes:
        """Digest of the class raster (delegates to the raster payload).

        Memoized per model: a built WHP raster is immutable in practice,
        and the digest keys every classify_cells cache probe.
        """
        token = getattr(self, "_token", None)
        if token is None:
            token = self.raster.content_token()
            self._token = token
        return token

    def classify(self, lons, lats) -> np.ndarray:
        """WHP class codes at the given points (NON_BURNABLE outside)."""
        return self.raster.sample(lons, lats,
                                  outside=np.int8(WHPClass.NON_BURNABLE))

    def class_mask(self, whp_class: WHPClass) -> np.ndarray:
        return self.raster.data == int(whp_class)

    def at_risk_mask(self) -> np.ndarray:
        return self.raster.data >= int(WHPClass.MODERATE)

    def ignition_weights(self, remoteness: float = 400.0) -> np.ndarray:
        """Relative ignition probability per cell for the fire generator.

        Fires start predominantly in hazardous fuel; a small floor on
        LOW/VERY_LOW reflects that WHP is a likelihood, not a guarantee.

        ``remoteness`` penalizes populated cells: ignitions near people
        are contained before they become tracked perimeter fires, so the
        big perimeters concentrate in remote wildland (the reason only
        hundreds — not tens of thousands — of transceivers fall inside
        perimeters each year despite millions of acres burning).

        Memoized per (model, remoteness): the gaussian smoothing pass
        dominates fire-season generation at paper scale, and every year's
        season asks for the identical field.  Callers treat the result
        as read-only.
        """
        cache = getattr(self, "_ignition_cache", None)
        if cache is None:
            cache = self._ignition_cache = {}
        key = float(remoteness)
        cached = cache.get(key)
        if cached is not None:
            return cached
        table = np.array([0.0, 0.05, 0.25, 1.0, 2.0, 4.0])
        hazard = table[self.raster.data.astype(np.int64)]
        # Smooth the placement weight so the penalty sees the whole
        # neighborhood a fire footprint would sweep (~0.25 deg), not
        # just the ignition cell.
        weight = ndimage.gaussian_filter(self.placement_weight.data,
                                         sigma=0.25 / self.grid.res)
        positive = weight[weight > 0]
        w0 = np.percentile(positive, 25) if len(positive) else 1.0
        penalty = 1.0 / (1.0 + remoteness * (weight / max(w0, 1e-9)))
        cache[key] = hazard * penalty
        return cache[key]


def build_whp(pop: PopulationSurface, seed: int = 7,
              resolution_deg: float = 0.05,
              placement_exponent: float = 0.85,
              urban_cutoff: float = 0.60,
              urban_halfsat: float = 50_000.0,
              suppression_q: float = 1.8,
              noise_sigma_cells: float = 3.0,
              noise_amplitude: float = 0.35,
              micro_amplitude: float = 0.10,
              corridor_nonburnable_deg: float = 0.06,
              target_shares: dict | None = None) -> WhpModel:
    """Build the synthetic WHP raster.

    Parameters mirror the fuel model described in the module docstring.
    ``placement_exponent`` must match the transceiver sampler's exponent
    for the calibration to hold (SyntheticUS wires them together).
    """
    rng = np.random.default_rng(seed)
    grid = GridSpec(conus_bbox(), resolution_deg)
    rows = np.arange(grid.height)
    cols = np.arange(grid.width)
    col_mesh, row_mesh = np.meshgrid(cols, rows)
    lons, lats = grid.cell_center(row_mesh.ravel(), col_mesh.ravel())

    # Population density resampled onto the WHP grid.
    density = pop.raster.sample(lons, lats).astype(float)
    land = density > 0.0

    urbanization = np.where(land, density / (density + urban_halfsat), 0.0)

    propensity, intermix = _propensity_field(pop, grid, lons, lats, land)
    front_field = _wildland_front_field(lons, lats)

    noise = rng.standard_normal(grid.shape)
    noise = ndimage.gaussian_filter(noise, sigma=noise_sigma_cells)
    noise = noise / max(noise.std(), 1e-12)
    # Clip the tails: without it, extreme-noise cells in low-hazard
    # states would dominate the globally-ranked top class.
    noise = np.clip(noise, -1.6, 1.6)
    # Cell-level micro-texture fragments the class boundaries the way
    # the real 270 m WHP is fragmented — very-high cells touch developed
    # fringe directly, which is what makes the §3.8 buffer experiment
    # recover missed roadside/fringe infrastructure.
    micro = np.clip(rng.standard_normal(grid.shape), -2.0, 2.0)
    texture = np.exp(noise_amplitude * noise
                     + micro_amplitude * micro).ravel()

    # Per-state WUI intermix weakens the urban suppression: in Florida or
    # around Los Angeles/Salt Lake City hazard coexists with development,
    # while in the remote mountain West it does not.
    q_eff = suppression_q * (1.0 - intermix)
    fuel = propensity * np.power(1.0 - urbanization, q_eff) * texture
    # Wildland fronts add hazard that persists into the urban fringe
    # (steep fuel-heavy terrain abutting development — the reason the
    # paper's very-high cells hug Los Angeles, Salt Lake City, Miami).
    fuel += front_field * np.power(1.0 - urbanization, 0.3)
    fuel[~land] = 0.0

    # Highway corridors are managed/paved and classified non-burnable by
    # the real WHP (§3.8: "Most of the area alongside transportation
    # throughways is classified as either low risk or nonburnable").
    if pop.road_distance is not None:
        road_d = pop.road_distance.sample(lons, lats, outside=np.inf)
        in_corridor = land & (road_d < corridor_nonburnable_deg)
        # A road crossing a wildland front does not sterilize the front:
        # the canyon highways through the San Gabriels or Wasatch are
        # surrounded by high hazard.
        in_corridor &= front_field < 0.2
    else:
        in_corridor = np.zeros(lons.shape, dtype=bool)

    weight = np.where(land, np.power(density, placement_exponent), 0.0)

    classes = _classify(fuel, weight, land,
                        urbanization, urban_cutoff, in_corridor,
                        target_shares or DEFAULT_TARGET_SHARES)

    shape = grid.shape
    return WhpModel(
        raster=Raster(grid, classes.reshape(shape).astype(np.int8)),
        fuel=Raster(grid, fuel.reshape(shape)),
        urbanization=Raster(grid, urbanization.reshape(shape)),
        placement_weight=Raster(grid, weight.reshape(shape)),
    )


def _wildland_front_field(lons: np.ndarray,
                          lats: np.ndarray) -> np.ndarray:
    """Additive hazard field at the metros' adjacent wildland fronts.

    Models the terrain features (San Gabriel mountains, Wasatch front,
    Everglades edge, ...) that put very-high WHP cells against specific
    urban fringes; see :data:`repro.data.cities.WILDLAND_FRONTS`.
    """
    from .cities import conus_cities

    out = np.zeros(lons.shape)
    for city in conus_cities():
        front = city.wildland_front
        if front is None:
            continue
        flon, flat, sigma, boost = front
        d2 = ((lons - flon) * np.cos(np.radians(flat))) ** 2 \
            + (lats - flat) ** 2
        out += boost * np.exp(-d2 / (2.0 * sigma * sigma))
    return out


def _propensity_field(pop: PopulationSurface, grid: GridSpec,
                      lons: np.ndarray, lats: np.ndarray,
                      land: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """State (propensity, wui_intermix) resampled to the WHP grid.

    Assignment runs once on the (coarser) population grid and is sampled
    from there, keeping the build O(population cells) rather than
    O(WHP cells) in point-in-polygon work.
    """
    assigner = StateAssigner()
    pgrid = pop.grid
    prow = np.arange(pgrid.height)
    pcol = np.arange(pgrid.width)
    cmesh, rmesh = np.meshgrid(pcol, prow)
    plons, plats = pgrid.cell_center(rmesh.ravel(), cmesh.ravel())
    pland = pop.raster.data.ravel() > 0
    abbrs = assigner.assign_many(plons[pland], plats[pland])
    prop_lut = {abbr: st.whp_propensity
                for abbr, st in assigner.states.items()}
    mix_lut = {abbr: st.wui_intermix
               for abbr, st in assigner.states.items()}

    fields = []
    for lut in (prop_lut, mix_lut):
        vals = np.zeros(plons.shape)
        vals[pland] = np.array([lut[a] for a in abbrs])
        raster = Raster(pgrid, vals.reshape(pgrid.shape))
        out = raster.sample(lons, lats).astype(float)
        # WHP cells on land whose coarse parent was water: median fill.
        missing = land & (out <= 0.0)
        if missing.any():
            positive = land & (out > 0)
            out[missing] = np.median(out[positive]) if positive.any() else 0.1
        fields.append(out)
    return fields[0], fields[1]


def _classify(fuel: np.ndarray, weight: np.ndarray, land: np.ndarray,
              urbanization: np.ndarray, urban_cutoff: float,
              in_corridor: np.ndarray, target_shares: dict) -> np.ndarray:
    """Assign WHP classes by fuel rank with weight-share calibration."""
    classes = np.full(fuel.shape, int(WHPClass.NON_BURNABLE), dtype=np.int8)
    burnable = (land & (urbanization < urban_cutoff) & (fuel > 0)
                & ~in_corridor)
    classes[land & ~burnable] = int(WHPClass.NON_BURNABLE)

    idx = np.nonzero(burnable)[0]
    if len(idx) == 0:
        return classes
    order = idx[np.argsort(-fuel[idx])]   # most hazardous first
    total_weight = weight.sum()
    cum = np.cumsum(weight[order]) / max(total_weight, 1e-12)

    bounds = [
        (WHPClass.VERY_HIGH, target_shares[WHPClass.VERY_HIGH]),
        (WHPClass.HIGH, target_shares[WHPClass.HIGH]),
        (WHPClass.MODERATE, target_shares[WHPClass.MODERATE]),
        (WHPClass.LOW, target_shares[WHPClass.LOW]),
    ]
    start = 0
    acc = 0.0
    for whp_class, share in bounds:
        acc += share
        end = int(np.searchsorted(cum, acc, side="right"))
        end = max(end, start + 1)  # every class gets at least one cell
        classes[order[start:end]] = int(whp_class)
        start = end
        if start >= len(order):
            break
    if start < len(order):
        classes[order[start:]] = int(WHPClass.VERY_LOW)
    return classes
