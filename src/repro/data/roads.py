"""Synthetic interstate-highway network.

Cell infrastructure follows roads (§3.7: "the network extends limited
assets into more rural areas and along transportation pathways"), and the
WHP-validation anomaly of §3.4 hinges on transceivers sitting in road
corridors that WHP classifies as low-risk.  We build a highway graph over
the metro anchors: a Euclidean minimum spanning tree (guaranteeing
connectivity, like the national backbone) plus each city's k nearest
neighbors (adding the redundant links real interstates have).

Edges are straight great-circle corridors — adequate at the fidelity of
the synthetic US.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx
import numpy as np

from ..geo.geometry import LineString
from ..geo.projection import haversine_m
from .cities import City, conus_cities

__all__ = ["road_graph", "road_segments", "distance_to_roads_deg"]


@lru_cache(maxsize=1)
def road_graph(k_neighbors: int = 3) -> "nx.Graph":
    """Highway graph over metro anchors.

    Nodes are city names with ``lon``/``lat``/``city`` attributes; edges
    carry great-circle ``length_m``.
    """
    cities = conus_cities()
    g = nx.Graph()
    for c in cities:
        g.add_node(c.name, lon=c.lon, lat=c.lat, city=c)

    lons = np.array([c.lon for c in cities])
    lats = np.array([c.lat for c in cities])

    # Complete graph distances (70 cities -> trivial).
    full = nx.Graph()
    for i, a in enumerate(cities):
        d = haversine_m(lons[i], lats[i], lons, lats)
        for j in range(i + 1, len(cities)):
            full.add_edge(a.name, cities[j].name, length_m=float(d[j]))

    mst = nx.minimum_spanning_tree(full, weight="length_m")
    g.add_edges_from(mst.edges(data=True))

    # k nearest neighbors per city for redundancy.
    for i, a in enumerate(cities):
        d = haversine_m(lons[i], lats[i], lons, lats)
        order = np.argsort(d)
        added = 0
        for j in order:
            if j == i:
                continue
            b = cities[int(j)]
            if not g.has_edge(a.name, b.name):
                g.add_edge(a.name, b.name, length_m=float(d[j]))
            added += 1
            if added >= k_neighbors:
                break
    return g


@lru_cache(maxsize=1)
def road_segments() -> tuple[LineString, ...]:
    """All highway edges as 2-vertex LineStrings (lon/lat)."""
    g = road_graph()
    segs = []
    for u, v in g.edges():
        segs.append(LineString([
            (g.nodes[u]["lon"], g.nodes[u]["lat"]),
            (g.nodes[v]["lon"], g.nodes[v]["lat"]),
        ]))
    return tuple(segs)


def distance_to_roads_deg(lons, lats) -> np.ndarray:
    """Min distance (degrees) from points to any highway segment.

    Used by the population/transceiver samplers to create road corridors.
    Vectorized over points; loops over the ~200 segments.
    """
    lons = np.asarray(lons, dtype=float)
    lats = np.asarray(lats, dtype=float)
    best = np.full(lons.shape, np.inf)
    for seg in road_segments():
        (x1, y1), (x2, y2) = seg.coords
        # Prune: skip segments whose bbox is far from all points; cheap
        # check against the aggregate point bbox.
        if (max(x1, x2) < lons.min() - 3 or min(x1, x2) > lons.max() + 3
                or max(y1, y2) < lats.min() - 3
                or min(y1, y2) > lats.max() + 3):
            continue
        d = _point_segment_distance_vec(lons, lats, x1, y1, x2, y2)
        np.minimum(best, d, out=best)
    return best


def _point_segment_distance_vec(px, py, x1, y1, x2, y2) -> np.ndarray:
    dx = x2 - x1
    dy = y2 - y1
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0.0:
        return np.hypot(px - x1, py - y1)
    t = np.clip(((px - x1) * dx + (py - y1) * dy) / seg_len2, 0.0, 1.0)
    return np.hypot(px - (x1 + t * dx), py - (y1 + t * dy))
