"""Synthetic interstate-highway network.

Cell infrastructure follows roads (§3.7: "the network extends limited
assets into more rural areas and along transportation pathways"), and the
WHP-validation anomaly of §3.4 hinges on transceivers sitting in road
corridors that WHP classifies as low-risk.  We build a highway graph over
the metro anchors: a Euclidean minimum spanning tree (guaranteeing
connectivity, like the national backbone) plus each city's k nearest
neighbors (adding the redundant links real interstates have).

Edges are straight great-circle corridors — adequate at the fidelity of
the synthetic US.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx
import numpy as np

from ..geo.geometry import LineString
from ..geo.projection import haversine_m
from .cities import conus_cities

__all__ = ["road_graph", "road_segments", "distance_to_roads_deg"]


@lru_cache(maxsize=1)
def road_graph(k_neighbors: int = 3) -> "nx.Graph":
    """Highway graph over metro anchors.

    Nodes are city names with ``lon``/``lat``/``city`` attributes; edges
    carry great-circle ``length_m``.
    """
    cities = conus_cities()
    g = nx.Graph()
    for c in cities:
        g.add_node(c.name, lon=c.lon, lat=c.lat, city=c)

    lons = np.array([c.lon for c in cities])
    lats = np.array([c.lat for c in cities])

    # Complete graph distances (70 cities -> trivial).
    full = nx.Graph()
    for i, a in enumerate(cities):
        d = haversine_m(lons[i], lats[i], lons, lats)
        for j in range(i + 1, len(cities)):
            full.add_edge(a.name, cities[j].name, length_m=float(d[j]))

    mst = nx.minimum_spanning_tree(full, weight="length_m")
    g.add_edges_from(mst.edges(data=True))

    # k nearest neighbors per city for redundancy.
    for i, a in enumerate(cities):
        d = haversine_m(lons[i], lats[i], lons, lats)
        order = np.argsort(d)
        added = 0
        for j in order:
            if j == i:
                continue
            b = cities[int(j)]
            if not g.has_edge(a.name, b.name):
                g.add_edge(a.name, b.name, length_m=float(d[j]))
            added += 1
            if added >= k_neighbors:
                break
    return g


@lru_cache(maxsize=1)
def road_segments() -> tuple[LineString, ...]:
    """All highway edges as 2-vertex LineStrings (lon/lat)."""
    g = road_graph()
    segs = []
    for u, v in g.edges():
        segs.append(LineString([
            (g.nodes[u]["lon"], g.nodes[u]["lat"]),
            (g.nodes[v]["lon"], g.nodes[v]["lat"]),
        ]))
    return tuple(segs)


def distance_to_roads_deg(lons, lats, chunk: int = 512) -> np.ndarray:
    """Min distance (degrees) from points to any highway segment.

    Used by the population/transceiver samplers to create road corridors.
    Works on chunks of points and skips, per chunk, every segment that
    provably cannot contain the minimum: a segment is dropped only when
    the separation of its bbox from the chunk's bbox exceeds an upper
    bound on the chunk's final answer (nearest-segment distance from the
    chunk center plus the chunk's half-diagonal, plus a safety margin
    dwarfing float rounding).  Min is exact in floating point, so the
    result is bit-identical to testing every segment.
    """
    lons = np.asarray(lons, dtype=float)
    lats = np.asarray(lats, dtype=float)
    flat_lons = np.atleast_1d(lons.ravel())
    flat_lats = np.atleast_1d(lats.ravel())
    segs = np.array([(s.coords[0][0], s.coords[0][1],
                      s.coords[1][0], s.coords[1][1])
                     for s in road_segments()])
    sx0 = np.minimum(segs[:, 0], segs[:, 2])
    sx1 = np.maximum(segs[:, 0], segs[:, 2])
    sy0 = np.minimum(segs[:, 1], segs[:, 3])
    sy1 = np.maximum(segs[:, 1], segs[:, 3])

    # Group points into ~1-degree spatial tiles before chunking: callers
    # pass raster scan orders whose consecutive runs span the whole
    # domain, which would give every chunk a domain-sized bbox and
    # defeat the pruning.  Each point's distance is independent of
    # processing order, so the permutation changes nothing but speed.
    tile_key = ((np.floor(flat_lons) + 200.0) * 400.0
                + (np.floor(flat_lats) + 100.0)).astype(np.int64)
    order = np.argsort(tile_key, kind="stable")

    best = np.full(flat_lons.shape, np.inf)
    for start in range(0, len(flat_lons), chunk):
        idx = order[start:start + chunk]
        px = flat_lons[idx]
        py = flat_lats[idx]
        bx0, bx1 = px.min(), px.max()
        by0, by1 = py.min(), py.max()
        # Minimax bound: point-to-segment distance is convex, so its max
        # over the chunk rectangle sits on a corner.  min over segments
        # of that corner max bounds every point's final answer.
        dx = segs[:, 2] - segs[:, 0]
        dy = segs[:, 3] - segs[:, 1]
        seg_len2 = np.where(dx * dx + dy * dy == 0.0, 1.0,
                            dx * dx + dy * dy)
        corner_max = np.zeros(len(segs))
        for qx, qy in ((bx0, by0), (bx0, by1), (bx1, by0), (bx1, by1)):
            t = np.clip(((qx - segs[:, 0]) * dx + (qy - segs[:, 1]) * dy)
                        / seg_len2, 0.0, 1.0)
            d = np.hypot(qx - (segs[:, 0] + t * dx),
                         qy - (segs[:, 1] + t * dy))
            np.maximum(corner_max, d, out=corner_max)
        upper = float(corner_max.min()) + 1e-6
        lower = np.hypot(np.maximum(0.0, np.maximum(sx0 - bx1, bx0 - sx1)),
                         np.maximum(0.0, np.maximum(sy0 - by1, by0 - sy1)))
        keep = np.nonzero(lower <= upper)[0]
        if len(keep) == 0:
            best[idx] = np.inf
            continue
        # One broadcast evaluation over (kept segments, chunk points);
        # the per-element arithmetic matches _point_segment_distance_vec
        # (including its zero-length-segment fallback via the where'd
        # denominator), and an axis-min of the same floats equals the
        # running-minimum loop exactly.
        x1 = segs[keep, 0][:, None]
        y1 = segs[keep, 1][:, None]
        dxk = dx[keep][:, None]
        dyk = dy[keep][:, None]
        len2 = seg_len2[keep][:, None]
        t = np.clip(((px[None, :] - x1) * dxk + (py[None, :] - y1) * dyk)
                    / len2, 0.0, 1.0)
        d = np.hypot(px[None, :] - (x1 + t * dxk),
                     py[None, :] - (y1 + t * dyk))
        best[idx] = d.min(axis=0)
    return best.reshape(lons.shape)


def _point_segment_distance_vec(px, py, x1, y1, x2, y2) -> np.ndarray:
    dx = x2 - x1
    dy = y2 - y1
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0.0:
        return np.hypot(px - x1, py - y1)
    t = np.clip(((px - x1) * dx + (py - y1) * dy) / seg_len2, 0.0, 1.0)
    return np.hypot(px - (x1 + t * dx), py - (y1 + t * dy))
