"""Cellular service providers and PLMN (MCC/MNC) resolution.

The paper identifies providers from OpenCelliD's MCC/MNC pairs and notes
the core difficulty: "the largest service providers do not have a single
MCC/MNC combination that identifies their entire network, but have many
hundreds that they have acquired through business expansion, mergers, or
acquisitions".  We reproduce that structure: each major carrier owns a
block of PLMN ids including legacy codes inherited from acquired networks
(e.g. AT&T absorbing Cingular/Centennial codes, T-Mobile absorbing
MetroPCS, Verizon absorbing Alltel), plus 46 regional carriers with a
couple of PLMNs each — matching the paper's footnote that 46 smaller
providers have at-risk infrastructure.

``resolve_provider`` is the cross-reference lookup the paper performs
against mcc-mnc.com / IFAST.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "MAJOR_PROVIDERS",
    "Provider",
    "Plmn",
    "provider_registry",
    "resolve_provider",
    "provider_market_shares",
    "rural_affinity",
    "plmn_pool",
]

#: Canonical provider groups in the paper's Table 2 order.
MAJOR_PROVIDERS = ("AT&T", "T-Mobile", "Sprint", "Verizon")


@dataclass(frozen=True)
class Plmn:
    """A Public Land Mobile Network identity."""

    mcc: int
    mnc: int
    network_name: str
    provider: str  # canonical group after mergers/acquisitions


@dataclass(frozen=True)
class Provider:
    """A canonical provider group."""

    name: str
    market_share: float      # share of the transceiver universe
    rural_affinity: float    # >0 = relatively more rural footprint
    plmns: tuple[Plmn, ...]


# Universe shares implied by the paper's Table 2 (count / percent):
# AT&T 101,930/5.44% -> 1.874M; T-Mobile 69,360/4.26% -> 1.628M;
# Sprint 32,417/3.90% -> 0.831M; Verizon 42,493/5.50% -> 0.773M;
# Others 15,369/3.90% -> 0.394M.  Normalized below.
_SHARES = {
    "AT&T": 0.3409,
    "T-Mobile": 0.2962,
    "Sprint": 0.1512,
    "Verizon": 0.1406,
}
_OTHERS_SHARE = 1.0 - sum(_SHARES.values())

# Relative rural footprint, tuned so the per-provider at-risk percentages
# reproduce Table 2's ordering (Verizon and AT&T most rural-exposed,
# Sprint the most urban).
_RURAL_AFFINITY = {
    "AT&T": 0.22,
    "T-Mobile": -0.08,
    "Sprint": -0.42,
    "Verizon": 0.28,
    "Others": -0.38,
}

# Major-carrier PLMN blocks: (mnc, network name) under MCC 310/311/312.
# These mix current ids with acquired legacy brands, mirroring the messy
# real registry.
_MAJOR_PLMNS: dict[str, list[tuple[int, int, str]]] = {
    "AT&T": [
        (310, 410, "AT&T Mobility"), (310, 280, "AT&T Mobility"),
        (310, 380, "AT&T Mobility"), (310, 170, "AT&T (Cingular)"),
        (310, 150, "AT&T (Cingular)"), (310, 680, "AT&T (Dobson)"),
        (310, 980, "AT&T (Centennial)"), (311, 180, "AT&T Mobility"),
        (310, 560, "AT&T (Dobson CellularOne)"), (310, 30, "AT&T (Centennial)"),
        (310, 70, "AT&T Mobility"), (310, 90, "AT&T (Edge Wireless)"),
        (310, 950, "AT&T (XIT Wireless)"), (311, 70, "AT&T (Aio)"),
        (310, 16, "AT&T (Cricket legacy)"), (310, 470, "AT&T FirstNet"),
    ],
    "T-Mobile": [
        (310, 260, "T-Mobile USA"), (310, 200, "T-Mobile (VoiceStream)"),
        (310, 210, "T-Mobile (VoiceStream)"), (310, 220, "T-Mobile"),
        (310, 230, "T-Mobile"), (310, 240, "T-Mobile"),
        (310, 250, "T-Mobile"), (310, 270, "T-Mobile (Powertel)"),
        (310, 310, "T-Mobile (Aerial)"), (310, 490, "T-Mobile (SunCom)"),
        (310, 660, "T-Mobile (MetroPCS)"), (310, 800, "T-Mobile"),
        (310, 160, "T-Mobile"), (310, 300, "T-Mobile (iWireless)"),
    ],
    "Sprint": [
        (310, 120, "Sprint PCS"), (311, 490, "Sprint"),
        (312, 530, "Sprint"), (311, 870, "Sprint (Boost)"),
        (311, 880, "Sprint (Virgin Mobile)"), (310, 53, "Sprint (Virgin)"),
        (316, 10, "Sprint (Nextel iDEN)"), (310, 940, "Sprint (iPCS)"),
    ],
    "Verizon": [
        (311, 480, "Verizon Wireless"), (310, 4, "Verizon"),
        (310, 5, "Verizon"), (310, 12, "Verizon"),
        (311, 110, "Verizon"), (311, 270, "Verizon"),
        (311, 390, "Verizon (Alltel)"), (310, 13, "Verizon (Alltel)"),
        (310, 590, "Verizon (Alltel legacy)"), (311, 489, "Verizon"),
    ],
}

# 46 regional/rural carriers (paper footnote 1).  Real-world-flavored
# names; each gets one or two PLMNs assigned programmatically.
_REGIONAL_NAMES = [
    "US Cellular", "C Spire", "Cellular One of NE Arizona", "GCI Wireless",
    "Appalachian Wireless", "Bluegrass Cellular", "Carolina West Wireless",
    "Cellcom", "Chariton Valley", "Chat Mobility", "Copper Valley Telecom",
    "Cordova Wireless", "Custer Telephone", "East Kentucky Network",
    "Epic Touch", "Farmers Mutual Telephone", "Five Star Wireless",
    "Golden West Cellular", "Illinois Valley Cellular", "Inland Cellular",
    "James Valley Wireless", "Kaplan Telephone", "Leaco Rural Telephone",
    "Limitless Mobile", "Matanuska Telephone", "Mid-Rivers Communications",
    "Mobi PCS", "Nemont Telephone", "Nex-Tech Wireless",
    "Northwest Missouri Cellular", "Panhandle Telephone", "Peoples Wireless",
    "Pine Belt Wireless", "Pine Cellular", "Pioneer Cellular",
    "Plateau Wireless", "Redzone Wireless", "Sagebrush Cellular",
    "SI Wireless", "Silver Star Wireless", "SRT Communications",
    "Thumb Cellular", "Triangle Communications", "Union Wireless",
    "United Wireless", "Viaero Wireless",
]


@lru_cache(maxsize=1)
def provider_registry() -> dict[str, Provider]:
    """Build the full provider registry (cached)."""
    registry: dict[str, Provider] = {}
    for name, rows in _MAJOR_PLMNS.items():
        plmns = tuple(Plmn(mcc, mnc, net, name) for mcc, mnc, net in rows)
        registry[name] = Provider(
            name=name,
            market_share=_SHARES[name],
            rural_affinity=_RURAL_AFFINITY[name],
            plmns=plmns,
        )
    # Regional carriers share the "Others" bucket evenly; PLMNs assigned
    # from a reserved MNC range so they never collide with the majors.
    regional_plmns: list[Plmn] = []
    per_share = _OTHERS_SHARE / len(_REGIONAL_NAMES)
    mnc = 700  # reserved range; no major carrier uses 700-799
    others: list[Provider] = []
    for name in _REGIONAL_NAMES:
        own = (Plmn(310, mnc, name, name), Plmn(311, mnc, name, name))
        mnc += 2
        regional_plmns.extend(own)
        others.append(Provider(name=name, market_share=per_share,
                               rural_affinity=_RURAL_AFFINITY["Others"],
                               plmns=own))
    for p in others:
        registry[p.name] = p
    return registry


@lru_cache(maxsize=1)
def _plmn_lookup() -> dict[tuple[int, int], Plmn]:
    table: dict[tuple[int, int], Plmn] = {}
    for provider in provider_registry().values():
        for plmn in provider.plmns:
            key = (plmn.mcc, plmn.mnc)
            if key in table:
                raise ValueError(f"duplicate PLMN in registry: {key}")
            table[key] = plmn
    return table


def resolve_provider(mcc: int, mnc: int) -> str:
    """Canonical provider group for an MCC/MNC pair.

    Unknown pairs resolve to ``"Unknown"`` — the paper cross-references
    several sources precisely because coverage of the id space is spotty.
    """
    plmn = _plmn_lookup().get((int(mcc), int(mnc)))
    if plmn is None:
        return "Unknown"
    return plmn.provider


def provider_market_shares() -> dict[str, float]:
    """Universe share per canonical group (majors + 'Others')."""
    shares = dict(_SHARES)
    shares["Others"] = _OTHERS_SHARE
    return shares


def rural_affinity(group: str) -> float:
    """Rural-footprint bias used by the transceiver sampler."""
    return _RURAL_AFFINITY.get(group, _RURAL_AFFINITY["Others"])


def plmn_pool(group: str, rng: np.random.Generator) -> Plmn:
    """Draw a PLMN for a transceiver operated by ``group``.

    For the majors the draw is skewed toward the flagship ids (the first
    entries) with a long tail of legacy codes; for "Others" a regional
    carrier is drawn uniformly first.
    """
    registry = provider_registry()
    if group == "Others":
        name = _REGIONAL_NAMES[rng.integers(len(_REGIONAL_NAMES))]
        plmns = registry[name].plmns
        return plmns[rng.integers(len(plmns))]
    plmns = registry[group].plmns
    weights = np.array([1.0 / (i + 1.0) for i in range(len(plmns))])
    weights /= weights.sum()
    return plmns[rng.choice(len(plmns), p=weights)]
