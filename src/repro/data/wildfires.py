"""Synthetic wildfire perimeters (GeoMAC substitute).

GeoMAC provides dated perimeter polygons for the fires large enough to be
tracked.  The generator reproduces, per year:

* the national acreage exactly (Table 1's "acres burned" column is an
  input from :mod:`repro.data.historical_stats`),
* a heavy-tailed size distribution (truncated Pareto — most perimeter
  fires are small; a few megafires carry most acreage, §2.1),
* ignition locations drawn proportionally to WHP hazard (fires start
  where fuel is), and
* irregular star-shaped perimeters with noisy radii.

For 2019, four scripted fires reproduce the case-study geography the
validation of §3.4 depends on: a Kincade-like fire north of the Bay Area,
a small Getty-like fire inside west Los Angeles, and Saddle Ridge/Tick-
like fires straddling the urban fringe and highway corridor north of Los
Angeles — the two fires that account for most of the WHP misses in the
paper (288 of 354).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..geo.geometry import Polygon
from ..geo.projection import acres_to_sqmeters, meters_per_degree
from .cities import city_by_name
from .historical_stats import year_stats
from .whp import WhpModel

__all__ = ["FirePerimeter", "FireSeason", "generate_fire_season",
           "scripted_2019_fires", "scripted_2019_growth",
           "interpolated_perimeter", "star_polygon",
           "SCRIPTED_LA_FIRES_2019"]

#: Names of the two scripted fires that reproduce the paper's §3.4
#: Los Angeles anomaly.
SCRIPTED_LA_FIRES_2019 = ("Saddle Ridge", "Tick")

#: Per-vertex-count cache of the deterministic star-polygon geometry
#: (theta grid, its cos/sin, and sin of the angular step).  Thousands of
#: perimeters share the same vertex count, so the trig is hoisted out of
#: the per-fire loop.
_STAR_TRIG: dict[int, tuple[np.ndarray, np.ndarray, float]] = {}


def _star_trig(n_vertices: int) -> tuple[np.ndarray, np.ndarray, float]:
    cached = _STAR_TRIG.get(n_vertices)
    if cached is None:
        theta = np.linspace(0.0, 2.0 * math.pi, n_vertices,
                            endpoint=False)
        cached = (np.cos(theta), np.sin(theta),
                  math.sin(2.0 * math.pi / n_vertices))
        _STAR_TRIG[n_vertices] = cached
    return cached


@dataclass(frozen=True)
class FirePerimeter:
    """One wildfire perimeter with GeoMAC-style attributes."""

    name: str
    year: int
    start_doy: int
    end_doy: int
    acres: float
    polygon: Polygon
    agency: str = "USFS"
    method: str = "Infrared"

    @property
    def duration_days(self) -> int:
        return max(1, self.end_doy - self.start_doy)


@dataclass
class FireSeason:
    """All perimeter fires of one year."""

    year: int
    fires: list[FirePerimeter]

    def __len__(self) -> int:
        return len(self.fires)

    def total_acres(self) -> float:
        return sum(f.acres for f in self.fires)


def star_polygon(lon: float, lat: float, acres: float,
                 rng: np.random.Generator, n_vertices: int = 24,
                 roughness: float = 0.45, elongation: float = 1.0,
                 bearing_deg: float = 0.0) -> Polygon:
    """An irregular star-convex polygon of the given area.

    Radii are 1 + roughness * smoothed noise around a base radius chosen
    so the polygon's true (equal-area-projected) area equals ``acres``.

    ``elongation`` > 1 stretches the shape along ``bearing_deg``
    (clockwise from north) and compresses it across, preserving area —
    the footprint of a wind-driven fire (Santa Ana events stretch
    perimeters 2-4x along the wind).
    """
    if acres <= 0:
        raise ValueError("fire area must be positive")
    if elongation < 1.0:
        raise ValueError("elongation must be >= 1")
    noise = rng.standard_normal(n_vertices)
    # Circular smoothing keeps the outline coherent rather than spiky.
    noise = ndimage.uniform_filter1d(noise, size=5, mode="wrap")
    noise = noise / max(np.abs(noise).max(), 1e-9)
    # Same values as np.clip(..., 0.25, None) without the clip wrapper.
    radii_rel = np.maximum(1.0 + roughness * noise, 0.25)

    cos_theta, sin_theta, sin_dtheta = _star_trig(n_vertices)
    # Polygon area for radial function r(θ): A = 1/2 Σ r_i r_{i+1} sin Δθ.
    radii_next = np.concatenate((radii_rel[1:], radii_rel[:1]))
    unit_area = 0.5 * float(np.sum(radii_rel * radii_next) * sin_dtheta)
    base_r = math.sqrt(acres_to_sqmeters(acres) / unit_area)

    x = base_r * radii_rel * cos_theta
    y = base_r * radii_rel * sin_theta
    if elongation > 1.0:
        # Area-preserving anisotropic scaling along the wind bearing.
        stretch = math.sqrt(elongation)
        wind = math.radians(90.0 - bearing_deg)  # bearing -> math angle
        ca, sa = math.cos(wind), math.sin(wind)
        along = (x * ca + y * sa) * stretch
        across = (-x * sa + y * ca) / stretch
        x = along * ca - across * sa
        y = along * sa + across * ca

    mx, my = meters_per_degree(lat)
    lons = lon + x / mx
    lats = lat + y / my
    # The ring is CCW by construction (theta increases counter-clockwise,
    # radii are positive) and open, so the trusted constructor applies.
    return Polygon.from_ccw_ring(np.column_stack([lons, lats]))


def _pareto_sizes(n: int, total_acres: float, rng: np.random.Generator,
                  alpha: float = 0.55, min_acres: float = 80.0,
                  max_acres: float = 450_000.0) -> np.ndarray:
    """Truncated-Pareto fire sizes rescaled to sum to ``total_acres``."""
    u = rng.random(n)
    sizes = min_acres * np.power(1.0 - u, -1.0 / alpha)
    sizes = np.clip(sizes, min_acres, max_acres)
    return sizes * (total_acres / sizes.sum())


def generate_fire_season(year: int, whp: WhpModel, seed: int | None = None,
                         n_perimeter_fires: int | None = None,
                         total_acres: float | None = None,
                         elongation_range: tuple[float, float]
                         = (1.0, 1.0)) -> FireSeason:
    """Generate one year's perimeter fires.

    ``total_acres`` defaults to the year's historical record; the number
    of tracked perimeters defaults to a size-dependent few hundred.
    ``elongation_range`` samples a wind-driven stretch factor per fire
    (default isotropic); see :func:`star_polygon`.
    """
    stats = year_stats(year)
    if total_acres is None:
        total_acres = stats.acres_burned * 1e6
    rng = np.random.default_rng(seed if seed is not None
                                else 1_000_000 + year)
    if n_perimeter_fires is None:
        # GeoMAC tracks the escaped fires: a few hundred per season,
        # scaling weakly with national acreage.
        n_perimeter_fires = int(180 + 40.0 * stats.acres_burned)

    sizes = _pareto_sizes(n_perimeter_fires, total_acres, rng)

    weights = whp.ignition_weights().ravel()
    prob = weights / weights.sum()
    cell_ids = rng.choice(len(prob), size=n_perimeter_fires, p=prob)
    rows, cols = np.unravel_index(cell_ids, whp.grid.shape)
    lons, lats = whp.grid.cell_center(rows, cols)
    half = whp.grid.res / 2.0
    lons = lons + rng.uniform(-half, half, size=n_perimeter_fires)
    lats = lats + rng.uniform(-half, half, size=n_perimeter_fires)

    fires = []
    for i in range(n_perimeter_fires):
        # Scalar min/max equals np.clip on floats, minus ~8us of ufunc
        # dispatch per call — this loop runs tens of thousands of times.
        start = int(min(max(rng.normal(225, 45), 32), 340))
        duration = int(min(max(2 + sizes[i] ** 0.33, 2), 90))
        elongation = float(rng.uniform(*elongation_range))
        poly = star_polygon(float(lons[i]), float(lats[i]),
                            float(sizes[i]), rng,
                            elongation=elongation,
                            bearing_deg=float(rng.uniform(0, 360)))
        fires.append(FirePerimeter(
            name=f"FIRE-{year}-{i:04d}",
            year=year,
            start_doy=start,
            end_doy=min(start + duration, 364),
            acres=float(sizes[i]),
            polygon=poly,
        ))
    return FireSeason(year=year, fires=fires)


#: The four scripted 2019 case-study fires as
#: ``(name, agency, anchor_city, dlon, dlat, acres, start_doy, end_doy)``
#: rows.  Row order is the rng-consumption order of
#: :func:`scripted_2019_fires` and must not change — the perimeters are
#: pinned bit-for-bit by golden tests.
_SCRIPTED_2019 = (
    ("Kincade", "CAL FIRE", "San Francisco", -0.35, 0.95,
     77_758.0, 296, 310),
    ("Getty", "LAFD", "Los Angeles", -0.24, 0.05, 745.0, 301, 309),
    ("Saddle Ridge", "LAFD", "Los Angeles", 0.04, 0.13,
     8_799.0, 283, 304),
    ("Tick", "CAL FIRE", "Los Angeles", 0.12, 0.20, 4_615.0, 297, 305),
)

#: A perimeter enters the stream at this fraction of its final linear
#: extent the tick it ignites (a point ignition would be a degenerate
#: polygon).
_IGNITION_FRACTION = 0.2


def _scripted_centers() -> list[tuple[float, float]]:
    """Generation centers of the scripted fires (table order)."""
    return [(city_by_name(anchor).lon + dlon,
             city_by_name(anchor).lat + dlat)
            for _, _, anchor, dlon, dlat, _, _, _ in _SCRIPTED_2019]


def scripted_2019_fires(seed: int = 2019) -> list[FirePerimeter]:
    """The four scripted California fires of the 2019 case study.

    Positions are relative to the synthetic city anchors so they land on
    the same features as the real fires: Kincade in the wildlands north
    of the Bay Area, Getty inside west LA, and Saddle Ridge/Tick on the
    urban fringe and highway corridor north of LA.
    """
    rng = np.random.default_rng(seed)
    fires = []
    for (name, agency, anchor, dlon, dlat, acres,
         start, end) in _SCRIPTED_2019:
        city = city_by_name(anchor)
        fires.append(FirePerimeter(
            name=name, year=2019, start_doy=start, end_doy=end,
            acres=acres,
            polygon=star_polygon(city.lon + dlon, city.lat + dlat,
                                 acres, rng),
            agency=agency))
    return fires


def interpolated_perimeter(fire: FirePerimeter, center_lon: float,
                           center_lat: float,
                           fraction: float) -> FirePerimeter:
    """The fire's front part-way through its growth.

    The exterior ring is scaled about the fire's generation center by
    ``fraction`` of its final *linear* extent (area scales with the
    square).  Star polygons are star-shaped about that center, so the
    interpolated family is monotone: ``fraction1 <= fraction2`` implies
    the smaller perimeter is contained in the larger — the invariant
    the delta-overlay engine's bucket skipping rests on.

    ``fraction == 1.0`` returns the *original object*, not a rescaled
    copy: float scaling does not round-trip bit-exactly, and the stream
    goldens pin the final tick to the static perimeter.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return fire
    ring = fire.polygon.exterior
    lons = center_lon + fraction * (ring[:, 0] - center_lon)
    lats = center_lat + fraction * (ring[:, 1] - center_lat)
    return FirePerimeter(
        name=fire.name, year=fire.year,
        start_doy=fire.start_doy, end_doy=fire.end_doy,
        acres=fire.acres * fraction * fraction,
        polygon=Polygon.from_ccw_ring(np.column_stack([lons, lats])),
        agency=fire.agency, method=fire.method)


def scripted_2019_growth(n_ticks: int = 8, seed: int = 2019) \
        -> list[list[FirePerimeter]]:
    """Deterministic per-tick front snapshots of the scripted fires.

    Tick ``t`` maps linearly onto the scripted fires' shared calendar
    window (day-of-year 283-310); each snapshot holds the fires already
    ignited by that day, grown to the fraction of their span elapsed
    (from :data:`_IGNITION_FRACTION` at ignition to 1.0 at
    containment).  Growth is monotone per fire across ticks, a fire
    that finishes growing is thereafter the *identical* static object,
    and the final tick is bit-identical to
    :func:`scripted_2019_fires` — so folding the stream reproduces the
    batch season exactly.
    """
    if n_ticks < 2:
        raise ValueError("a growth series needs at least 2 ticks")
    fires = scripted_2019_fires(seed)
    centers = _scripted_centers()
    first = min(f.start_doy for f in fires)
    last = max(f.end_doy for f in fires)
    ticks = []
    for t in range(n_ticks):
        doy = first + (last - first) * t / (n_ticks - 1)
        snapshot = []
        for fire, (clon, clat) in zip(fires, centers):
            if doy < fire.start_doy:
                continue
            if t == n_ticks - 1 or doy >= fire.end_doy:
                snapshot.append(fire)
                continue
            elapsed = (doy - fire.start_doy) \
                / (fire.end_doy - fire.start_doy)
            fraction = _IGNITION_FRACTION \
                + (1.0 - _IGNITION_FRACTION) * elapsed
            snapshot.append(interpolated_perimeter(fire, clon, clat,
                                                   fraction))
        ticks.append(snapshot)
    return ticks


def generate_2019_season(whp: WhpModel, seed: int = 42) -> FireSeason:
    """The 2019 validation season: scripted fires + background season.

    Background acreage is reduced by the scripted fires' acreage so the
    national total still matches the 2019 record.
    """
    scripted = scripted_2019_fires()
    scripted_acres = sum(f.acres for f in scripted)
    total = year_stats(2019).acres_burned * 1e6 - scripted_acres
    background = generate_fire_season(2019, whp, seed=seed,
                                      total_acres=total)
    return FireSeason(year=2019, fires=scripted + background.fires)
