"""Radio access technologies and the per-provider technology mix.

OpenCelliD records one of four radio types per transceiver (the paper's
Table 3): GSM, UMTS, CDMA and LTE.  The mix is strongly provider-dependent
— CDMA exists only on the Verizon/Sprint side, GSM/UMTS on the AT&T/
T-Mobile side — and LTE skews slightly rural because by the 2019 snapshot
LTE build-outs had the widest geographic footprint.  There were no 5G
transceivers in the snapshot (§3.5), which we reproduce by not modeling
5G at all (the enum reserves the value for forward compatibility).
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

__all__ = ["RadioType", "RADIO_NAMES", "technology_mix", "draw_radio_types"]


class RadioType(IntEnum):
    """Radio access technology codes (stable, storage-friendly)."""

    GSM = 0
    UMTS = 1
    CDMA = 2
    LTE = 3
    NR5G = 4  # reserved; absent from the 2019 snapshot by construction


RADIO_NAMES = {r: r.name if r is not RadioType.NR5G else "5G"
               for r in RadioType}

# Base technology mix per provider group: (GSM, UMTS, CDMA, LTE).
_MIX = {
    "AT&T": (0.10, 0.34, 0.00, 0.56),
    "T-Mobile": (0.16, 0.34, 0.00, 0.50),
    "Sprint": (0.00, 0.08, 0.42, 0.50),
    "Verizon": (0.00, 0.02, 0.46, 0.52),
    "Others": (0.18, 0.22, 0.22, 0.38),
}

#: Additive rural tilt applied to the LTE share (taken from GSM/UMTS/CDMA
#: proportionally): LTE footprints reach farther into low-density areas.
_LTE_RURAL_TILT = 0.10


def technology_mix(group: str) -> tuple[float, float, float, float]:
    """Base (GSM, UMTS, CDMA, LTE) shares for a provider group."""
    return _MIX.get(group, _MIX["Others"])


def draw_radio_types(groups: np.ndarray, ruralness: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
    """Vectorized radio-type draw.

    Parameters
    ----------
    groups:
        Array of provider group names (``"AT&T"`` ... ``"Others"``).
    ruralness:
        Array in [0, 1]; 1 = deep wildland, 0 = dense urban core.  Shifts
        probability mass toward LTE in rural cells.
    rng:
        Seeded generator.

    Returns
    -------
    Array of :class:`RadioType` integer codes.
    """
    groups = np.asarray(groups)
    ruralness = np.clip(np.asarray(ruralness, dtype=float), 0.0, 1.0)
    n = len(groups)
    out = np.empty(n, dtype=np.int8)
    u = rng.random(n)
    for group in set(groups.tolist()):
        mask = groups == group
        base = np.array(technology_mix(group), dtype=float)
        probs = np.tile(base, (int(mask.sum()), 1))
        tilt = _LTE_RURAL_TILT * ruralness[mask]
        non_lte = probs[:, :3].sum(axis=1)
        scale = np.where(non_lte > 0,
                         (non_lte - tilt).clip(0.0) / np.where(
                             non_lte > 0, non_lte, 1.0),
                         0.0)
        probs[:, :3] *= scale[:, None]
        probs[:, 3] = 1.0 - probs[:, :3].sum(axis=1)
        cdf = np.cumsum(probs, axis=1)
        draws = (u[mask][:, None] > cdf).sum(axis=1)
        out[mask] = draws.astype(np.int8)
    return out
