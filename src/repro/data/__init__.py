"""Dataset substrates: the synthetic US.

Each module replaces one of the paper's inputs (see DESIGN.md §2 for the
substitution table): states/cities/roads/population form the geographic
backbone; cells replaces OpenCelliD; whp replaces the USFS raster;
wildfires replaces GeoMAC; counties replaces Census TIGER; dirs replaces
the FCC reports; ecoregions embeds the Littell et al. projections;
providers/radios model the PLMN registry and technology mixes.
"""

from .cells import (
    PAPER_TRANSCEIVER_COUNT,
    PROVIDER_GROUPS,
    CellUniverse,
    generate_cells,
)
from .cities import PAPER_METROS, City, city_by_name, conus_cities
from .counties import (
    POP_CATEGORY_NAMES,
    County,
    CountyLayer,
    PopCategory,
    build_counties,
    categorize_population,
)
from .dirs import (
    DIRS_REGION,
    DIRS_REPORT_DAYS,
    DirsDailyReport,
    DirsSimulation,
    OutageCause,
    simulate_dirs,
)
from .ecoregions import (
    Ecoregion,
    ecoregion_at,
    slc_denver_ecoregions,
    slc_denver_window,
)
from .fsim import BurnProbability, FsimConfig, derive_whp_classes, run_fsim
from .historical_stats import HISTORICAL_YEARS, STUDY_YEARS, YearStats, year_stats
from .population import CONUS_POPULATION, PopulationSurface
from .powergrid import PowerGrid, build_power_grid
from .providers import (
    MAJOR_PROVIDERS,
    Plmn,
    Provider,
    provider_market_shares,
    provider_registry,
    resolve_provider,
)
from .radios import RADIO_NAMES, RadioType, draw_radio_types, technology_mix
from .states import (
    SOUTHEASTERN_STATES,
    WESTERN_STATES,
    State,
    StateAssigner,
    conus_bbox,
    conus_states,
)
from .packed import (
    PACK_DTYPES,
    PackedCells,
    pack_cells,
    unpack_cells,
    unpack_index,
)
from .universe import (
    SCALE_PRESETS,
    SyntheticUS,
    UniverseConfig,
    default_universe,
    scale_config,
    small_universe,
    universe_for_scale,
)
from .whp import (
    AT_RISK_CLASSES,
    WHP_CLASS_NAMES,
    WhpModel,
    WHPClass,
    build_whp,
)
from .wildfires import (
    SCRIPTED_LA_FIRES_2019,
    FirePerimeter,
    FireSeason,
    generate_2019_season,
    generate_fire_season,
    scripted_2019_fires,
    star_polygon,
)

__all__ = [
    "CellUniverse", "generate_cells", "PROVIDER_GROUPS",
    "PAPER_TRANSCEIVER_COUNT",
    "City", "conus_cities", "city_by_name", "PAPER_METROS",
    "County", "CountyLayer", "PopCategory", "build_counties",
    "categorize_population", "POP_CATEGORY_NAMES",
    "DirsDailyReport", "DirsSimulation", "OutageCause", "simulate_dirs",
    "DIRS_REGION", "DIRS_REPORT_DAYS",
    "Ecoregion", "ecoregion_at", "slc_denver_ecoregions",
    "slc_denver_window",
    "YearStats", "year_stats", "HISTORICAL_YEARS", "STUDY_YEARS",
    "PopulationSurface", "CONUS_POPULATION",
    "PowerGrid", "build_power_grid",
    "FsimConfig", "BurnProbability", "run_fsim", "derive_whp_classes",
    "Provider", "Plmn", "provider_registry", "resolve_provider",
    "provider_market_shares", "MAJOR_PROVIDERS",
    "RadioType", "RADIO_NAMES", "technology_mix", "draw_radio_types",
    "State", "StateAssigner", "conus_states", "conus_bbox",
    "WESTERN_STATES", "SOUTHEASTERN_STATES",
    "PackedCells", "PACK_DTYPES", "pack_cells", "unpack_cells",
    "unpack_index",
    "SyntheticUS", "UniverseConfig", "default_universe", "small_universe",
    "SCALE_PRESETS", "scale_config", "universe_for_scale",
    "WhpModel", "WHPClass", "WHP_CLASS_NAMES", "build_whp",
    "AT_RISK_CLASSES",
    "FirePerimeter", "FireSeason", "generate_fire_season",
    "generate_2019_season", "scripted_2019_fires", "star_polygon",
    "SCRIPTED_LA_FIRES_2019",
]
