"""Synthetic county layer.

The paper's impact analysis (§3.6) needs county polygons with populations
so transceivers can be bucketed into the three density categories:

* ``POP_M``  — moderately dense, 200k–500k people,
* ``POP_H``  — dense, 500k–1.5M people,
* ``POP_VH`` — very dense, >1.5M people.

We tile each state with ~0.35° square "counties" whose populations are
integrated from the population surface.  Like real counties — which are
small where people are dense — tiles holding more than 1.5M people are
recursively subdivided into quadrants (down to ~0.175°), so the
"very dense" category is not inflated by coarse aggregation.

The tile containing a metro anchor is then renamed to that metro's real
county and given the county's real 2018 population, so the paper's "23
most populous counties" (Los Angeles, Cook, Harris, Maricopa, San Diego,
...) exist by name with the right populations and category memberships.
Nearby anchors can fall in one tile (e.g. San Francisco/Oakland); the
largest county wins and the others merge into it — a documented
simplification of Bay-Area geography.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..geo.geometry import BBox
from .cities import conus_cities
from .population import PopulationSurface
from .states import StateAssigner

__all__ = ["PopCategory", "County", "build_counties", "CountyLayer",
           "POP_CATEGORY_NAMES", "categorize_population"]

#: County population above which a tile is considered "very dense" and
#: above which unanchored tiles are subdivided.
_VERY_DENSE_CUT = 1_500_000


class PopCategory(IntEnum):
    """County population-density categories from §3.6."""

    RURAL = 0        # < 200k (not part of the paper's three categories)
    POP_M = 1        # 200k - 500k
    POP_H = 2        # 500k - 1.5M
    POP_VH = 3       # > 1.5M


POP_CATEGORY_NAMES = {
    PopCategory.RURAL: "Rural (<200k)",
    PopCategory.POP_M: "Mod Dense (200k-500k)",
    PopCategory.POP_H: "Dense (500k-1.5M)",
    PopCategory.POP_VH: "Very Dense (>1.5M)",
}


def categorize_population(population: float) -> PopCategory:
    """Map a county population to its density category."""
    if population > _VERY_DENSE_CUT:
        return PopCategory.POP_VH
    if population > 500_000:
        return PopCategory.POP_H
    if population > 200_000:
        return PopCategory.POP_M
    return PopCategory.RURAL


@dataclass
class County:
    """A county tile (possibly a subdivided quadrant)."""

    name: str
    state: str
    bbox: BBox
    population: int
    anchor_city: str | None = None

    @property
    def category(self) -> PopCategory:
        return categorize_population(self.population)


class CountyLayer:
    """All counties plus fast point-to-county assignment.

    Named (metro) counties carry realistic extents and take priority;
    the remaining area is covered by grid tiles, so assignment is a
    vectorized pass over ~90 named boxes plus O(1) tile arithmetic.
    """

    def __init__(self, counties: list[County], tile_deg: float, bbox: BBox,
                 n_named: int = 0):
        self.counties = counties
        self.tile_deg = tile_deg
        self.bbox = bbox
        self.n_named = n_named
        self._ncols = int(np.ceil(bbox.width / tile_deg))
        # base tile key -> list of county indices inside that tile
        self._by_tile: dict[int, list[int]] = {}
        for i, county in enumerate(counties[n_named:], start=n_named):
            key = self._tile_key(county.bbox.center.lon,
                                 county.bbox.center.lat)
            self._by_tile.setdefault(int(key), []).append(i)

    def _tile_key(self, lon, lat):
        col = np.floor((np.asarray(lon) - self.bbox.min_lon)
                       / self.tile_deg).astype(np.int64)
        row = np.floor((np.asarray(lat) - self.bbox.min_lat)
                       / self.tile_deg).astype(np.int64)
        return row * self._ncols + col

    def assign(self, lon: float, lat: float) -> int:
        """County index for one point; -1 if no county covers it."""
        for i in range(self.n_named):
            if self.counties[i].bbox.contains(lon, lat):
                return i
        entries = self._by_tile.get(int(self._tile_key(lon, lat)), [])
        if len(entries) == 1:
            return entries[0]
        for i in entries:
            if self.counties[i].bbox.contains(lon, lat):
                return i
        return -1

    def assign_many(self, lons, lats) -> np.ndarray:
        """County index per point; -1 where no county covers the point."""
        lons = np.atleast_1d(np.asarray(lons, dtype=float))
        lats = np.atleast_1d(np.asarray(lats, dtype=float))
        out = np.full(len(lons), -1, dtype=np.int64)
        # Named counties first (priority), vectorized per box.
        for i in range(self.n_named):
            box = self.counties[i].bbox
            hit = (out < 0) & box.contains_many(lons, lats)
            out[hit] = i
        # Remaining points fall into grid tiles.
        rest = np.nonzero(out < 0)[0]
        keys = np.atleast_1d(self._tile_key(lons[rest], lats[rest]))
        for j, key in zip(rest.tolist(), keys.tolist()):
            entries = self._by_tile.get(key)
            if not entries:
                continue
            if len(entries) == 1:
                out[j] = entries[0]
                continue
            for i in entries:
                if self.counties[i].bbox.contains(lons[j], lats[j]):
                    out[j] = i
                    break
        return out

    def categories(self) -> np.ndarray:
        """(n_counties,) array of PopCategory codes."""
        return np.array([int(c.category) for c in self.counties],
                        dtype=np.int8)

    def populations(self) -> np.ndarray:
        return np.array([c.population for c in self.counties],
                        dtype=np.int64)

    def by_name(self, name: str) -> County:
        for c in self.counties:
            if c.name == name:
                return c
        raise KeyError(f"unknown county: {name!r}")

    def very_dense(self) -> list[County]:
        """Counties in the >1.5M category (the paper's 23)."""
        return [c for c in self.counties
                if c.category == PopCategory.POP_VH]


def _subdivide(tile: BBox, pop: PopulationSurface, min_deg: float) \
        -> list[tuple[BBox, int]]:
    """Recursively split a tile into quadrants while it is very dense."""
    population = int(round(pop.population_in_bbox(tile)))
    if population <= _VERY_DENSE_CUT or tile.width / 2.0 < min_deg:
        return [(tile, population)]
    mid_lon = (tile.min_lon + tile.max_lon) / 2.0
    mid_lat = (tile.min_lat + tile.max_lat) / 2.0
    quads = [
        BBox(tile.min_lon, tile.min_lat, mid_lon, mid_lat),
        BBox(mid_lon, tile.min_lat, tile.max_lon, mid_lat),
        BBox(tile.min_lon, mid_lat, mid_lon, tile.max_lat),
        BBox(mid_lon, mid_lat, tile.max_lon, tile.max_lat),
    ]
    out: list[tuple[BBox, int]] = []
    for quad in quads:
        out.extend(_subdivide(quad, pop, min_deg))
    return out


def _named_counties() -> list[County]:
    """Metro counties with realistic extents, most populous first.

    Descending population order means that where two real county boxes
    overlap slightly (hand-approximated extents), the larger county wins
    point assignment.
    """
    named: list[County] = []
    seen: set[str] = set()
    for city in sorted(conus_cities(), key=lambda c: -c.county_pop):
        if city.county_name in seen:
            continue
        box = city.county_bbox
        if box is None:
            continue
        seen.add(city.county_name)
        named.append(County(
            name=city.county_name,
            state=city.state,
            bbox=BBox(*box),
            population=city.county_pop,
            anchor_city=city.name,
        ))
    return named


def build_counties(pop: PopulationSurface, tile_deg: float = 0.35,
                   min_subdivision_deg: float = 0.17) -> CountyLayer:
    """Build the county layer: named metro counties + grid tiles.

    Named counties (realistic extents, real populations) come first and
    take assignment priority.  The rest of CONUS is covered by tiles
    whose populations integrate the surface; unanchored very-dense tiles
    are quadrant-subdivided like real counties are smaller where people
    are dense.  Tile populations are *not* reduced by named-county
    overlap (the named population is authoritative; the slight double
    count at box edges is a documented approximation).
    """
    named = _named_counties()
    bbox = pop.grid.bbox

    assigner = StateAssigner()
    n_cols = int(np.ceil(bbox.width / tile_deg))
    n_rows = int(np.ceil(bbox.height / tile_deg))

    tiles: list[BBox] = []
    for row in range(n_rows):
        for col in range(n_cols):
            min_lon = bbox.min_lon + col * tile_deg
            min_lat = bbox.min_lat + row * tile_deg
            tiles.append(BBox(min_lon, min_lat, min_lon + tile_deg,
                              min_lat + tile_deg))

    centers_lon = np.array([t.center.lon for t in tiles])
    centers_lat = np.array([t.center.lat for t in tiles])
    abbrs = assigner.assign_many(centers_lon, centers_lat)
    # assign_many is total (nearest-centroid fallback), so re-check which
    # tile centers are actually on land via the population surface.
    on_land = pop.density_at(centers_lon, centers_lat) > 0.0
    in_named = np.zeros(len(tiles), dtype=bool)
    for county in named:
        in_named |= county.bbox.contains_many(centers_lon, centers_lat)

    # Named-county boxes as parallel arrays: each quad-center containment
    # test below is one vectorized comparison instead of a Python scan
    # over every named county.
    nb = np.array([[c.bbox.min_lon, c.bbox.min_lat,
                    c.bbox.max_lon, c.bbox.max_lat] for c in named])

    counties: list[County] = list(named)
    for tile, abbr, land, covered in zip(tiles, abbrs, on_land, in_named):
        if not land or covered:
            continue
        for quad, population in _subdivide(tile, pop, min_subdivision_deg):
            qc = quad.center
            if bool(((nb[:, 0] <= qc.lon) & (qc.lon <= nb[:, 2])
                     & (nb[:, 1] <= qc.lat)
                     & (qc.lat <= nb[:, 3])).any()):
                continue
            name = f"{abbr}-{len(counties):04d}"
            counties.append(County(name=name, state=str(abbr), bbox=quad,
                                   population=population))

    return CountyLayer(counties, tile_deg, bbox, n_named=len(named))
