"""Population density surface for the synthetic US.

One raster drives three things, keeping them mutually consistent exactly
as in the real world:

* transceiver placement density (OpenCelliD density tracks population),
* county populations (integrated surface over county tiles), and
* the urbanization term of the WHP fuel model (urban cores are
  non-burnable; hazard peaks at the wildland-urban interface).

The surface is a sum of Gaussian metro kernels (weight = metro population,
scale grows sublinearly with population), a road-corridor ridge, and a
small rural floor, all clipped to the state polygons (no population in the
ocean / Great Lakes).
"""

from __future__ import annotations

import numpy as np

from ..geo.geometry import BBox
from ..geo.raster import GridSpec, Raster
from .cities import conus_cities
from .roads import distance_to_roads_deg, road_segments
from .states import StateAssigner, conus_bbox

__all__ = ["PopulationSurface", "CONUS_POPULATION"]

#: 2018 conterminous-US population (Census estimate, AK/HI excluded).
CONUS_POPULATION = 325_300_000


class PopulationSurface:
    """A population-density raster over the CONUS.

    Parameters
    ----------
    resolution_deg:
        Cell size in degrees (default 0.1 ~ 10 km, enough structure for the
        analyses while staying laptop-fast).
    total_population:
        The surface is normalized so its cells sum to this.
    """

    def __init__(self, resolution_deg: float = 0.1,
                 total_population: int = CONUS_POPULATION,
                 bbox: BBox | None = None,
                 corridor_share: float = 0.88,
                 corridor_halfwidth_deg: float = 0.08):
        self.grid = GridSpec(bbox or conus_bbox(), resolution_deg)
        self.total_population = int(total_population)
        self.corridor_share = float(corridor_share)
        self.corridor_halfwidth_deg = float(corridor_halfwidth_deg)
        self._assigner = StateAssigner()
        self.road_distance: Raster | None = None
        self.raster = self._build()

    def _build(self) -> Raster:
        grid = self.grid
        rows = np.arange(grid.height)
        cols = np.arange(grid.width)
        col_mesh, row_mesh = np.meshgrid(cols, rows)
        lons, lats = grid.cell_center(row_mesh.ravel(), col_mesh.ravel())

        land = self._land_mask(lons, lats)

        # The grid is separable (lon depends on col only, lat on row
        # only), so every kernel's squared distance is an outer sum of
        # two 1-D terms — bit-identical to the full-grid expression,
        # built from W + H elements instead of W * H.
        lon_axis, _ = grid.cell_center(0, cols)
        _, lat_axis = grid.cell_center(rows, 0)

        def kernel_d2(lon0: float, lat0: float) -> np.ndarray:
            du2 = ((lon_axis - lon0) * np.cos(np.radians(lat0))) ** 2
            dv2 = (lat_axis - lat0) ** 2
            return (du2[None, :] + dv2[:, None]).ravel()

        # Metro kernels, each normalized to integrate to its metro
        # population so large metros do not grab a disproportionate share.
        density = np.zeros(lons.shape)
        for city in conus_cities():
            # Kernel scale (degrees) grows sublinearly with metro size:
            # ~0.13 deg for a 0.5M metro, ~0.35 deg for a 13M metro.
            # Kept tight so county tiles away from the anchor stay under
            # the 1.5M "very dense" cut (the paper has 23 such counties).
            sigma = 0.08 * (city.metro_pop / 1e5) ** 0.30
            d2 = kernel_d2(city.lon, city.lat)
            kernel = np.exp(-d2 / (2.0 * sigma * sigma)) * land
            total = kernel.sum()
            if total > 0:
                density += city.metro_pop * kernel / total

        # Wildland-front voids: the terrain features adjacent to metros
        # (San Gabriel mountains, Wasatch front, Everglades) hold almost
        # no people, even though the metro kernels overlap them.
        for city in conus_cities():
            front = city.wildland_front
            if front is None:
                continue
            flon, flat, sigma, _boost = front
            d2 = kernel_d2(flon, flat)
            density *= 1.0 - 0.65 * np.exp(-d2 / (2.0 * sigma * sigma))

        # Remaining population: road-corridor towns plus a rural floor.
        road_d = distance_to_roads_deg(lons, lats)
        self.road_distance = Raster(grid, road_d.reshape(grid.shape))
        remaining = max(self.total_population - density.sum(), 0.0)

        # The corridor population lives mostly in discrete towns along
        # the highways (real small-town America is clustered, which is
        # why a wildfire crossing a highway usually misses the towns),
        # with a thin roadside ribbon for the continuum of exits,
        # truck stops and roadside cell sites.
        corridor_budget = remaining * self.corridor_share
        density += self._town_kernels(lons, lats, land,
                                      0.95 * corridor_budget)
        ribbon = np.exp(-(road_d / self.corridor_halfwidth_deg) ** 2) \
            * land
        if ribbon.sum() > 0:
            density += 0.05 * corridor_budget * ribbon / ribbon.sum()
        floor = land.astype(float)
        if floor.sum() > 0:
            density += (remaining * (1.0 - self.corridor_share)
                        * floor / floor.sum())

        density = density.reshape(grid.shape)
        density *= self.total_population / density.sum()
        return Raster(grid, density)

    def _town_kernels(self, lons: np.ndarray, lats: np.ndarray,
                      land: np.ndarray, budget: float,
                      spacing_deg: float = 0.8,
                      sigma_deg: float = 0.06) -> np.ndarray:
        """Town population kernels spaced along the highway graph.

        Towns are placed deterministically (seeded by segment order)
        every ~``spacing_deg`` along each highway edge with lognormal
        sizes, then normalized so they sum to ``budget``.
        """
        rng = np.random.default_rng(709)
        town_lon, town_lat, town_size = [], [], []
        for seg in road_segments():
            (x1, y1), (x2, y2) = seg.coords
            length = float(np.hypot((x2 - x1)
                                    * np.cos(np.radians((y1 + y2) / 2)),
                                    y2 - y1))
            n_towns = max(1, int(length / spacing_deg))
            for k in range(n_towns):
                t = (k + 0.5) / n_towns + rng.uniform(-0.2, 0.2) / n_towns
                town_lon.append(x1 + t * (x2 - x1))
                town_lat.append(y1 + t * (y2 - y1))
                town_size.append(rng.lognormal(0.0, 0.8))
        sizes = np.asarray(town_size)
        sizes *= budget / sizes.sum()
        out = np.zeros(lons.shape)
        grid = self.grid
        for lon, lat, size in zip(town_lon, town_lat, sizes):
            # Local window of +-4 sigma to keep this O(towns).
            row0, col0 = grid.rowcol(lon - 4 * sigma_deg,
                                     lat + 4 * sigma_deg)
            row1, col1 = grid.rowcol(lon + 4 * sigma_deg,
                                     lat - 4 * sigma_deg)
            row0 = max(int(row0), 0)
            col0 = max(int(col0), 0)
            row1 = min(int(row1), grid.height - 1)
            col1 = min(int(col1), grid.width - 1)
            if row0 > row1 or col0 > col1:
                continue
            rows = np.arange(row0, row1 + 1)
            cols = np.arange(col0, col1 + 1)
            cmesh, rmesh = np.meshgrid(cols, rows)
            flat = (rmesh * grid.width + cmesh).ravel()
            clons, clats = grid.cell_center(rmesh.ravel(), cmesh.ravel())
            d2 = ((clons - lon) * np.cos(np.radians(lat))) ** 2 \
                + (clats - lat) ** 2
            kernel = np.exp(-d2 / (2.0 * sigma_deg ** 2)) * land[flat]
            ksum = kernel.sum()
            if ksum > 0:
                out[flat] += size * kernel / ksum
        return out

    def _land_mask(self, lons: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """1.0 where the cell center lies inside some state polygon."""
        mask = np.zeros(lons.shape)
        for st in self._assigner.states.values():
            idx = np.nonzero(mask == 0.0)[0]
            if len(idx) == 0:
                break
            hit = st.geometry.contains_many(lons[idx], lats[idx])
            mask[idx[hit]] = 1.0
        return mask

    def density_at(self, lons, lats) -> np.ndarray:
        """Population per cell at the given points (0 outside CONUS)."""
        return self.raster.sample(lons, lats)

    def population_in_bbox(self, bbox: BBox) -> float:
        """Total population inside a lon/lat box (cell-center rule)."""
        grid = self.grid
        r0, c0 = grid.rowcol(bbox.min_lon, bbox.max_lat)
        r1, c1 = grid.rowcol(bbox.max_lon, bbox.min_lat)
        r0 = max(int(r0), 0)
        c0 = max(int(c0), 0)
        r1 = min(int(r1), grid.height - 1)
        c1 = min(int(c1), grid.width - 1)
        if r0 > r1 or c0 > c1:
            return 0.0
        return float(self.raster.data[r0:r1 + 1, c0:c1 + 1].sum())

    def population_in_polygon(self, polygon) -> float:
        """Total population inside a polygon (cell-center rule).

        A raster cell counts iff its *center* falls inside the polygon —
        the same rule :meth:`population_in_bbox` applies to boxes, so the
        two agree on polygons that happen to be rectangles.
        """
        bbox = polygon.bbox
        grid = self.grid
        r0, c0 = grid.rowcol(bbox.min_lon, bbox.max_lat)
        r1, c1 = grid.rowcol(bbox.max_lon, bbox.min_lat)
        r0 = max(int(r0), 0)
        c0 = max(int(c0), 0)
        r1 = min(int(r1), grid.height - 1)
        c1 = min(int(c1), grid.width - 1)
        if r0 > r1 or c0 > c1:
            return 0.0
        rows = np.arange(r0, r1 + 1)
        cols = np.arange(c0, c1 + 1)
        cmesh, rmesh = np.meshgrid(cols, rows)
        clons, clats = grid.cell_center(rmesh.ravel(), cmesh.ravel())
        inside = polygon.contains_many(clons, clats)
        window = self.raster.data[r0:r1 + 1, c0:c1 + 1].ravel()
        return float(window[inside].sum())

    def sample_points(self, n: int, rng: np.random.Generator,
                      exponent: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """Draw n points with probability ∝ density**exponent.

        Points are uniformly jittered within their cell.  ``exponent`` < 1
        flattens the distribution (more rural coverage), matching how cell
        sites are somewhat less concentrated than people.
        """
        weights = np.power(self.raster.data.ravel(), exponent)
        weights = weights / weights.sum()
        cells = rng.choice(len(weights), size=n, p=weights)
        rows, cols = np.unravel_index(cells, self.grid.shape)
        lons, lats = self.grid.cell_center(rows, cols)
        half = self.grid.res / 2.0
        lons = lons + rng.uniform(-half, half, size=n)
        lats = lats + rng.uniform(-half, half, size=n)
        return lons, lats
