"""Fsim-style burn-probability simulation.

The real Wildfire Hazard Potential was "developed from previous wildfire
occurrence, vegetation cover, and results from multiple runs by the
Large Fire Simulation system (Fsim)" (§2.2.2).  Our default WHP takes a
shortcut — a closed-form fuel model.  This module implements the long
way: a stochastic cellular-automaton fire-spread simulator run for
thousands of ignitions, accumulating per-cell burn counts into a burn
probability surface, from which a WHP-style classification can be
derived with the same calibration machinery.

The agreement between the two (see ``benchmarks/test_ablation_fsim``)
is the reproduction's internal check that the shortcut preserves the
geography a simulation would produce.

Spread model: each burning cell ignites its 8 neighbors independently
with probability ``p0 x fuel_neighbor x wind_bias(direction)``; cells
burn for one step; fires end when the frontier empties or a step cap is
reached.  Fuel enters both ignition (where fires start) and spread
(where they go), so low-fuel urban cores and corridors act as the fire
breaks they are.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo.raster import Raster
from .whp import DEFAULT_TARGET_SHARES, WhpModel, WHPClass, _classify

__all__ = ["FsimConfig", "BurnProbability", "run_fsim",
           "derive_whp_classes"]

#: Neighbor offsets (row, col) and their compass bearings, for wind.
_NEIGHBORS = (
    (-1, 0, 0.0), (-1, 1, 45.0), (0, 1, 90.0), (1, 1, 135.0),
    (1, 0, 180.0), (1, -1, 225.0), (0, -1, 270.0), (-1, -1, 315.0),
)


@dataclass(frozen=True)
class FsimConfig:
    """Simulation parameters."""

    n_ignitions: int = 3000
    max_steps: int = 80
    base_spread: float = 0.45       # p0: spread prob at fuel = 1
    wind_strength: float = 0.5      # 0 = isotropic, 1 = strongly biased
    seed: int = 20_190_722


@dataclass
class BurnProbability:
    """Accumulated simulation output."""

    burn_counts: Raster       # times each cell burned
    n_ignitions: int
    total_cells_burned: int

    def probability(self) -> np.ndarray:
        """Per-cell burn probability estimate."""
        return self.burn_counts.data / max(self.n_ignitions, 1)


def run_fsim(whp: WhpModel, config: FsimConfig | None = None) \
        -> BurnProbability:
    """Run the ignition ensemble over the WHP model's fuel field.

    Fuel is normalized to [0, 1]; ignitions are drawn proportionally to
    fuel (fires start where there is something to burn), each with a
    random-but-fixed wind direction for its lifetime.
    """
    config = config or FsimConfig()
    rng = np.random.default_rng(config.seed)
    fuel = whp.fuel.data.copy()
    peak = fuel.max()
    if peak <= 0:
        raise ValueError("WHP model has no burnable fuel")
    fuel = np.clip(fuel / peak, 0.0, 1.0)
    height, width = fuel.shape

    ignition_weights = fuel.ravel()
    prob = ignition_weights / ignition_weights.sum()
    ignition_cells = rng.choice(len(prob), size=config.n_ignitions,
                                p=prob)

    burn_counts = np.zeros(fuel.shape, dtype=np.int32)
    total_burned = 0
    for cell in ignition_cells:
        row, col = divmod(int(cell), width)
        wind_bearing = float(rng.uniform(0.0, 360.0))
        burned = _spread_one_fire(fuel, row, col, wind_bearing,
                                  config, rng)
        burn_counts += burned
        total_burned += int(burned.sum())

    return BurnProbability(
        burn_counts=Raster(whp.grid, burn_counts),
        n_ignitions=config.n_ignitions,
        total_cells_burned=total_burned,
    )


def _spread_one_fire(fuel: np.ndarray, row: int, col: int,
                     wind_bearing: float, config: FsimConfig,
                     rng: np.random.Generator) -> np.ndarray:
    """Cellular-automaton spread from one ignition; returns burn mask."""
    height, width = fuel.shape
    burned = np.zeros(fuel.shape, dtype=bool)
    if fuel[row, col] <= 0:
        return burned.astype(np.int32)
    burned[row, col] = True
    frontier_rows = np.array([row])
    frontier_cols = np.array([col])

    for _ in range(config.max_steps):
        if len(frontier_rows) == 0:
            break
        next_rows = []
        next_cols = []
        for drow, dcol, bearing in _NEIGHBORS:
            rows = frontier_rows + drow
            cols = frontier_cols + dcol
            ok = ((rows >= 0) & (rows < height)
                  & (cols >= 0) & (cols < width))
            rows = rows[ok]
            cols = cols[ok]
            if len(rows) == 0:
                continue
            fresh = ~burned[rows, cols]
            rows = rows[fresh]
            cols = cols[fresh]
            if len(rows) == 0:
                continue
            # Wind bias: spread downwind is boosted, upwind damped.
            angle = np.radians(bearing - wind_bearing)
            wind = 1.0 + config.wind_strength * np.cos(angle)
            p = config.base_spread * fuel[rows, cols] * wind
            ignite = rng.random(len(rows)) < np.clip(p, 0.0, 0.95)
            rows = rows[ignite]
            cols = cols[ignite]
            if len(rows) == 0:
                continue
            burned[rows, cols] = True
            next_rows.append(rows)
            next_cols.append(cols)
        if next_rows:
            frontier_rows = np.concatenate(next_rows)
            frontier_cols = np.concatenate(next_cols)
        else:
            break
    return burned.astype(np.int32)


def derive_whp_classes(whp: WhpModel, burn: BurnProbability,
                       target_shares: dict | None = None) -> np.ndarray:
    """Classify the burn-probability surface into WHP classes.

    Reuses the production calibration (rank cells by hazard, cut class
    boundaries at the paper's transceiver-share targets) with burn
    probability in place of the closed-form fuel score, so the two maps
    are directly comparable cell-for-cell.
    """
    probability = burn.probability().ravel()
    land = whp.fuel.data.ravel() > 0
    weight = whp.placement_weight.data.ravel()
    urbanization = whp.urbanization.data.ravel()
    nonburnable = whp.raster.data.ravel() == int(WHPClass.NON_BURNABLE)
    # Tiny fuel-ordered jitter breaks the ties plateaus of a finite
    # ignition ensemble (cells never burned all share p = 0).
    hazard = probability + 1e-9 * whp.fuel.data.ravel()
    classes = _classify(
        hazard, weight, land,
        urbanization, 2.0,          # urban cutoff disabled (2.0 > max u)
        nonburnable,                # reuse production non-burnable set
        target_shares or DEFAULT_TARGET_SHARES)
    return classes.reshape(whp.grid.shape)
