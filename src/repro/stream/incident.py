"""Tick-by-tick incident state over the delta overlay engine.

:class:`IncidentState` is the mutable core: feed it complete
perimeter snapshots (one list of active fires per tick) and it
detects which fronts actually moved — by ring bytes, not identity —
builds :class:`~repro.core.overlay.FireDelta` batches, and advances
its overlay through :func:`~repro.core.overlay.update_overlay`.
Each tick yields a :class:`TickEvent` with the impact diff:

* newly covered transceivers (union mask growth) and the running
  total;
* newly exposed population per the per-fire tally convention
  (each fire's perimeter integrated independently over the
  population raster; overlapping fronts double-count, exactly as
  the paper's per-fire tables do);
* dirty vs skipped grid buckets, straight from the
  ``index.dirty_buckets`` / ``index.skipped_buckets`` counters the
  delta queries maintain.

Events carry no wall times — they are deterministic functions of the
snapshots, so the JSONL export and the rendered diff table are
byte-stable across machines and worker counts.

:func:`run_scripted_incident` drives a hazard's incident model —
year, background events, and a monotone growth series, resolved
through the hazard registry (default ``"wildfire"``: the scripted
2019 case-study fires over the static season, whose final state is
bit-identical to the batch ``season_overlay`` for 2019).  Hazards
that declare ``monotone_growth = False`` (e.g. ``wind``) refuse the
stream loudly instead of corrupting the delta fold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..core.overlay import (
    FireDelta,
    FireOverlayResult,
    empty_overlay,
    update_overlay,
)
from ..data.cells import CellUniverse
from ..data.universe import SyntheticUS
from ..obs.trace import span as trace_span
from ..runtime.stats import STATS
from ..session import StageOption, artifact, register_stage

if TYPE_CHECKING:
    from ..hazard.base import HazardEvent

__all__ = [
    "TickEvent",
    "StreamResult",
    "IncidentState",
    "run_scripted_incident",
    "write_events_jsonl",
]

#: Schema tag stamped on every exported JSONL event.
EVENT_SCHEMA = "stream-event/1"


@dataclass(frozen=True)
class TickEvent:
    """The deterministic impact diff of one ingested snapshot."""

    tick: int
    #: Fires whose perimeter grew this tick (ring bytes changed).
    changed: tuple[str, ...]
    #: Fires seen for the first time this tick.
    ignited: tuple[str, ...]
    #: Transceivers newly inside *any* perimeter, and the running total.
    new_impacted: int
    cum_impacted: int
    #: Population newly exposed (per-fire tally), and the running total.
    new_population: float
    cum_population: float
    #: Newly covered transceivers per changed/ignited fire.
    per_fire_new: dict[str, int] = field(default_factory=dict)
    #: Grid buckets re-tested vs proven fully answered, summed over the
    #: tick's delta queries (ignitions run full queries and count in
    #: neither).
    dirty_buckets: int = 0
    skipped_buckets: int = 0

    def to_json(self) -> dict:
        """A JSON-serializable dict (sorted-key stable)."""
        return {
            "schema": EVENT_SCHEMA,
            "tick": self.tick,
            "changed": list(self.changed),
            "ignited": list(self.ignited),
            "new_impacted": self.new_impacted,
            "cum_impacted": self.cum_impacted,
            "new_population": self.new_population,
            "cum_population": self.cum_population,
            "per_fire_new": dict(sorted(self.per_fire_new.items())),
            "dirty_buckets": self.dirty_buckets,
            "skipped_buckets": self.skipped_buckets,
        }


@dataclass
class StreamResult:
    """A finished incident run: the event log plus the final overlay."""

    year: int
    n_ticks: int
    events: list[TickEvent]
    final: FireOverlayResult


class IncidentState:
    """Mutable incident engine: fold perimeter snapshots into an overlay.

    Parameters
    ----------
    cells:
        The transceiver universe being impacted.
    year:
        Season label carried on the overlay result.
    population:
        Optional :class:`~repro.data.population.PopulationSurface`;
        when given, events carry per-fire population-exposure diffs
        (cell-center rule).  Without it the population fields stay 0.
    workers:
        Worker request forwarded to :func:`update_overlay` each tick
        (``None`` = the runtime config's setting); the delta-dispatch
        crossover still decides serial vs pool per tick.
    """

    def __init__(self, cells: CellUniverse, year: int, *,
                 population=None, workers: int | None = None):
        self.cells = cells
        self.year = year
        self.population = population
        self.workers = workers
        self.result: FireOverlayResult = empty_overlay(
            cells, year, keep_hits=True)
        self.events: list[TickEvent] = []
        self._tokens: dict[str, bytes] = {}
        self._pop: dict[str, float] = {}
        self._cum_population = 0.0

    # ------------------------------------------------------------------
    def ingest(self, fires: list[HazardEvent]) -> TickEvent:
        """Advance one tick from a complete snapshot of active fires.

        Only fires whose exterior ring bytes differ from the last
        ingested version are dispatched; an unchanged snapshot is a
        true no-op (no queries, zero diff).  Growth must be monotone
        (the delta-query contract): a fire's new perimeter contains
        its previous one.
        """
        tick = len(self.events)
        with trace_span("stream.tick", tick=tick,
                        n_fires=len(fires)):
            with STATS.timer("stream.tick"):
                event = self._ingest(tick, fires)
        self.events.append(event)
        return event

    def _ingest(self, tick: int,
                fires: list[HazardEvent]) -> TickEvent:
        deltas: list[FireDelta] = []
        changed: list[str] = []
        ignited: list[str] = []
        for fire in fires:
            token = fire.polygon.exterior.tobytes()
            prev_token = self._tokens.get(fire.name)
            if prev_token == token:
                continue
            (changed if prev_token is not None else ignited) \
                .append(fire.name)
            deltas.append(FireDelta(fire=fire))
            self._tokens[fire.name] = token

        prev = self.result
        before = STATS.snapshot()
        cur = update_overlay(self.cells, prev, deltas,
                             workers=self.workers)
        counters = STATS.delta_since(before).get("counters", {})
        self.result = cur

        per_fire_new = {
            name: cur.per_fire_counts[name]
            - prev.per_fire_counts.get(name, 0)
            for name in (*changed, *ignited)
        }
        new_population = 0.0
        if self.population is not None:
            for delta in deltas:
                name = delta.fire.name
                pop = self.population.population_in_polygon(
                    delta.fire.polygon)
                new_population += pop - self._pop.get(name, 0.0)
                self._pop[name] = pop
        self._cum_population += new_population

        cum_impacted = int(cur.in_perimeter_mask.sum())
        prev_impacted = int(prev.in_perimeter_mask.sum())
        return TickEvent(
            tick=tick,
            changed=tuple(changed),
            ignited=tuple(ignited),
            new_impacted=cum_impacted - prev_impacted,
            cum_impacted=cum_impacted,
            new_population=new_population,
            cum_population=self._cum_population,
            per_fire_new=per_fire_new,
            dirty_buckets=int(counters.get("index.dirty_buckets", 0)),
            skipped_buckets=int(
                counters.get("index.skipped_buckets", 0)),
        )


# ----------------------------------------------------------------------
# The scripted 2019 incident
# ----------------------------------------------------------------------

def run_scripted_incident(universe: SyntheticUS, n_ticks: int = 8, *,
                          workers: int | None = None,
                          hazard: str = "wildfire") -> StreamResult:
    """Replay a hazard's incident model as a live stream.

    The hazard supplies ``(year, background, growth_ticks)`` via
    :meth:`~repro.hazard.base.Hazard.incident`; tick 0 ingests the
    background events (already-final footprints) plus whichever
    tracked fronts have ignited, later ticks grow the fronts.  For
    the default wildfire hazard this is the scripted 2019 case study:
    the growth series' last tick is the scripted fires' exact final
    perimeters, so the final state equals the batch 2019
    ``season_overlay`` bit-for-bit.
    """
    from ..hazard.registry import get_hazard
    hz = get_hazard(hazard)
    if not hz.monotone_growth:
        raise ValueError(
            f"hazard {hz.name!r} has no monotone growth model; "
            f"the delta-overlay stream requires one")
    year, background, growth = hz.incident(universe, n_ticks)
    state = IncidentState(universe.cells, year,
                          population=universe.population,
                          workers=workers)
    for snapshot in growth:
        state.ingest(background + snapshot)
    return StreamResult(year=year, n_ticks=n_ticks,
                        events=state.events, final=state.result)


def write_events_jsonl(events: list[TickEvent], path) -> None:
    """Export the event log as one sorted-key JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_json(), sort_keys=True))
            fh.write("\n")


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------

@artifact("stream_incident",
          doc="tick-by-tick incident stream (delta overlay)")
def _stream_incident_artifact(session, ticks: int = 8,
                              hazard: str = "wildfire") -> StreamResult:
    return run_scripted_incident(session.universe, n_ticks=ticks,
                                 hazard=hazard)


def _run_stream(session, args) -> str:
    from ..core.report import render_stream
    ticks = getattr(args, "ticks", None) or 8
    if ticks < 2:
        raise SystemExit("repro stream: --ticks must be >= 2")
    hazard = getattr(args, "hazard", None) or "wildfire"
    from ..hazard.registry import get_hazard
    try:
        hz = get_hazard(hazard)
    except KeyError as exc:
        raise SystemExit(f"repro stream: {exc.args[0]}")
    if not hz.monotone_growth:
        raise SystemExit(
            f"repro stream: hazard {hz.name!r} has no monotone growth "
            f"model; the delta-overlay stream requires one")
    result = session.artifact("stream_incident", ticks=ticks,
                              hazard=hazard)
    text = render_stream(result)
    jsonl = getattr(args, "jsonl", None)
    if jsonl:
        try:
            write_events_jsonl(result.events, jsonl)
        except OSError as exc:
            # An unwritable export must never sink a finished
            # analysis — same contract as an unwritable ledger.
            text += f"\njsonl: unwritable ({exc}); events not exported"
    return text


def _export_stream(session, ctx) -> dict:
    result = session.artifact("stream_incident")
    return {"stream": {
        "year": result.year,
        "n_ticks": result.n_ticks,
        "events": [e.to_json() for e in result.events],
    }}


register_stage("stream",
               help="live incident stream (delta spatial joins)",
               paper="§2.3", run=_run_stream,
               artifact="stream_incident", order=None,
               domain="engine",
               options=(
                   StageOption("--ticks", type=int, default=8,
                               help="growth ticks for the tracked "
                                    "incident fronts (>= 2)"),
                   StageOption("--hazard", type=str, default="wildfire",
                               help="hazard instance to stream (must "
                                    "declare monotone growth)"),
                   StageOption("--jsonl", type=str, default=None,
                               help="also export the event stream "
                                    "to this JSONL file"),
               ),
               export=_export_stream)
