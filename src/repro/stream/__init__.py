"""Incremental incident engine: live fire feeds over the static join.

The batch pipeline answers "which transceivers did this season's
perimeters cover?" once, from final perimeters.  ``repro.stream``
answers the same question *while the fires are still moving*: an
:class:`IncidentState` ingests perimeter snapshots tick by tick,
routes only the changed fronts through
:func:`repro.core.overlay.update_overlay` (delta queries over dirty
grid buckets), and logs per-tick impact diffs — newly covered
transceivers, newly exposed population — as a cumulative event
stream.

The engine is exact, not approximate: folding the ticks yields a
result bit-identical to a from-scratch :func:`overlay_fires` on the
final perimeters (pinned by ``tests/stream/``).
"""

from .incident import (
    IncidentState,
    StreamResult,
    TickEvent,
    run_scripted_incident,
    write_events_jsonl,
)

__all__ = [
    "IncidentState",
    "StreamResult",
    "TickEvent",
    "run_scripted_incident",
    "write_events_jsonl",
]
